//! Error-path contract tests: malformed inputs produce *typed* errors with
//! stable `Display` strings — never panics — at every layer boundary.
//!
//! These strings are part of the user-facing CLI/diagnostic surface; a test
//! failure here means downstream tooling that greps or matches on them will
//! break.

use tilefuse::codegen::{AstNode, Buffer, Error as CodegenError};
use tilefuse::core::{algorithm1, Error as CoreError, Options};
use tilefuse::pir::Program;
use tilefuse::scheduler::{build_tree, validate_group, Error as SchedulerError, Group};

/// `core::Error::InvalidInput`: a live-out group index past the end of the
/// group list is rejected before any indexing can panic.
#[test]
fn core_invalid_input_liveout_out_of_range() {
    let program = Program::new("empty");
    let err = algorithm1(&program, &[], &[], 0, &[], &Options::default())
        .expect_err("out-of-range live-out index must be rejected");
    assert!(matches!(err, CoreError::InvalidInput(_)), "got: {err:?}");
    assert_eq!(
        err.to_string(),
        "invalid optimizer input: live-out group index 0 out of range (0 groups)"
    );
}

/// `core::Error::InvalidInput`: producer indices get the same validation as
/// the live-out index.
#[test]
fn core_invalid_input_producer_out_of_range() {
    let program = Program::new("empty");
    let group = Group {
        stmts: vec![],
        depth: 0,
        shifts: vec![],
        coincident: vec![],
        innermost_parallel: false,
    };
    let err = algorithm1(&program, &[], &[group], 0, &[7], &Options::default())
        .expect_err("out-of-range producer index must be rejected");
    assert!(matches!(err, CoreError::InvalidInput(_)), "got: {err:?}");
    assert_eq!(
        err.to_string(),
        "invalid optimizer input: producer group index 7 out of range (1 groups)"
    );
}

/// `scheduler::Error::MalformedGroup`: an empty group is caught by
/// `validate_group` with a stable message.
#[test]
fn scheduler_malformed_group_empty() {
    let program = Program::new("empty");
    let group = Group {
        stmts: vec![],
        depth: 0,
        shifts: vec![],
        coincident: vec![],
        innermost_parallel: false,
    };
    let err = validate_group(&program, &group).expect_err("empty group must be rejected");
    assert!(
        matches!(err, SchedulerError::MalformedGroup(_)),
        "got: {err:?}"
    );
    assert_eq!(
        err.to_string(),
        "malformed fusion group: group has no statements"
    );
}

/// `scheduler::Error::MalformedGroup`: `build_tree` runs the same validation,
/// so a hand-constructed inconsistent group (shift count != statement count)
/// reports instead of panicking inside tree construction.
#[test]
fn scheduler_malformed_group_via_build_tree() {
    let program = Program::new("empty");
    let group = Group {
        stmts: vec![tilefuse::pir::StmtId(0)],
        depth: 1,
        shifts: vec![], // wrong: must have one shift vector per statement
        coincident: vec![true],
        innermost_parallel: false,
    };
    let err = build_tree(&program, &[group]).expect_err("inconsistent group must be rejected");
    assert!(
        matches!(err, SchedulerError::MalformedGroup(_)),
        "got: {err:?}"
    );
    assert_eq!(
        err.to_string(),
        "malformed fusion group: 0 shift vectors for 1 statements"
    );
}

/// `codegen::Error::Exec`: an out-of-bounds buffer access is a typed
/// execution error, not a slice panic.
#[test]
fn codegen_exec_out_of_bounds() {
    let buf = Buffer::zeros(vec![2, 2]);
    let err = buf.get(&[5, 5]).expect_err("out-of-bounds read must fail");
    assert!(matches!(err, CodegenError::Exec(_)), "got: {err:?}");
    assert_eq!(
        err.to_string(),
        "execution error: out-of-bounds access [5, 5] into shape [2, 2]"
    );
}

/// `codegen::Error::Shape`: typed AST accessors on the wrong node kind
/// report expected/found instead of aborting the walk.
#[test]
fn codegen_shape_mismatch() {
    let node = AstNode::Comment("not a loop".into());
    let err = node.as_for().expect_err("comment is not a for loop");
    assert!(
        matches!(
            err,
            CodegenError::Shape {
                expected: "for",
                found: "comment"
            }
        ),
        "got: {err:?}"
    );
    assert_eq!(
        err.to_string(),
        "AST shape error: expected for, found comment"
    );
}
