//! Algorithm 3's shared-intermediate rules (paper Fig. 6): a producer used
//! by several live-out spaces is fused only when the per-consumer slices
//! do not intersect — recomputation across live-outs is never introduced.

use tilefuse::codegen::{check_outputs_match, execute_tree, reference_execute};
use tilefuse::core::{optimize, Options};
use tilefuse::pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::scheduler::FusionHeuristic;

/// One producer, two live-out consumers.
///
/// With `overlap = false`, consumer X reads `A[i]` for the lower half and
/// consumer Y reads `A[i]` for the upper half (disjoint slices `op0'`,
/// `op0''` — fusable into both). With `overlap = true`, both consumers
/// read the full array (intersecting slices — fusion must be prevented).
fn one_def_two_uses(n: i64, overlap: bool) -> Program {
    let mut p = Program::new("shared").with_param("N", n);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let x = p.add_array("X", vec!["N".into()], ArrayKind::Output);
    let y = p.add_array("Y", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::mul(Expr::Iter(0), Expr::Const(0.5)),
        },
    )
    .unwrap();
    let (x_dom, x_read) = if overlap {
        ("{ C1[i] : 0 <= i < N }", i1(0))
    } else {
        ("{ C1[i] : 0 <= i < N and 2i < N }", i1(0))
    };
    p.add_stmt(
        x_dom,
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: x,
            target_idx: vec![i1(0)],
            rhs: Expr::add(Expr::load(a, vec![x_read]), Expr::Const(1.0)),
        },
    )
    .unwrap();
    let (y_dom, y_read) = if overlap {
        ("{ C2[i] : 0 <= i < N }", i1(0))
    } else {
        ("{ C2[i] : 0 <= i < N and 2i >= N }", i1(0))
    };
    p.add_stmt(
        y_dom,
        vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
        Body {
            target: y,
            target_idx: vec![i1(0)],
            rhs: Expr::mul(Expr::load(a, vec![y_read]), Expr::Const(2.0)),
        },
    )
    .unwrap();
    p
}

fn opts() -> Options {
    Options {
        tile_sizes: vec![4],
        parallel_cap: None,
        startup: FusionHeuristic::MinFuse,
        ..Default::default()
    }
}

#[test]
fn disjoint_slices_fuse_into_both_liveouts() {
    let p = one_def_two_uses(16, false);
    let o = optimize(&p, &opts()).unwrap();
    // The producer is fused (into both live-outs' tiles), its original
    // schedule skipped, and no conflict was recorded.
    assert!(
        o.report.is_fused(0),
        "producer should fuse: {:?}",
        o.report.shared_unfused
    );
    assert!(o.report.shared_unfused.is_empty());
    let fused_in: usize = o
        .report
        .mixed
        .iter()
        .filter(|m| m.fused_groups.contains(&0))
        .count();
    assert_eq!(fused_in, 2, "fused under both live-outs");
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    // No recomputation across live-outs: the producer's slices are
    // disjoint, so total P executions never exceed the original count.
    assert!(stats.instances["P"] <= ref_stats.instances["P"]);
}

#[test]
fn disjoint_slices_enable_dead_code_elimination() {
    // Consumers only need A[0..N/2) and A[N/2..N): every P instance is
    // needed. Shrink the consumers to leave dead producer instances.
    let mut p = Program::new("dce").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let x = p.add_array("X", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    // Only the first quarter of A is ever used.
    p.add_stmt(
        "{ C1[i] : 0 <= i < N and 4i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: x,
            target_idx: vec![i1(0)],
            rhs: Expr::load(a, vec![i1(0)]),
        },
    )
    .unwrap();
    let o = optimize(&p, &opts()).unwrap();
    assert!(o.report.is_fused(0));
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    // Fine-grained DCE: dead P instances (3/4 of the domain) are gone.
    assert!(
        stats.instances["P"] < ref_stats.instances["P"],
        "{} !< {}",
        stats.instances["P"],
        ref_stats.instances["P"]
    );
    assert_eq!(stats.instances["P"], 4);
}

#[test]
fn overlapping_slices_prevent_fusion() {
    let p = one_def_two_uses(16, true);
    let o = optimize(&p, &opts()).unwrap();
    // Rule 2: both live-outs want the whole producer — fusing would
    // recompute every instance twice, so the producer keeps its original
    // schedule.
    assert!(!o.report.is_fused(0));
    assert_eq!(o.report.shared_unfused, vec![0]);
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    // "Our fusion strategy never introduces redundancy": P runs once per
    // instance.
    assert_eq!(stats.instances["P"], ref_stats.instances["P"]);
}

#[test]
fn partially_overlapping_slices_prevent_fusion() {
    // Consumer X reads A[0..5N/8), consumer Y reads A[3N/8..N): the middle
    // quarter is wanted by both, so rule 2 must refuse fusion even though
    // neither slice covers the whole array.
    let mut p = Program::new("partial").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let x = p.add_array("X", vec!["N".into()], ArrayKind::Output);
    let y = p.add_array("Y", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ C1[i] : 0 <= i < N and 8i < 5N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: x,
            target_idx: vec![i1(0)],
            rhs: Expr::add(Expr::load(a, vec![i1(0)]), Expr::Const(1.0)),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ C2[i] : 0 <= i < N and 8i >= 3N }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
        Body {
            target: y,
            target_idx: vec![i1(0)],
            rhs: Expr::mul(Expr::load(a, vec![i1(0)]), Expr::Const(2.0)),
        },
    )
    .unwrap();
    let o = optimize(&p, &opts()).unwrap();
    assert!(!o.report.is_fused(0), "partial overlap must block fusion");
    assert_eq!(o.report.shared_unfused, vec![0]);
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    assert_eq!(stats.instances["P"], ref_stats.instances["P"]);
}

#[test]
fn one_intersecting_pair_among_three_consumers_prevents_fusion() {
    // Three live-out consumers: C1 and C2 take disjoint halves, but C3
    // re-reads the lower half. The single intersecting pair (C1, C3) is
    // enough — the producer keeps its original schedule for all three.
    let mut p = Program::new("three").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    for (k, dom) in [
        "{ C1[i] : 0 <= i < N and 2i < N }",
        "{ C2[i] : 0 <= i < N and 2i >= N }",
        "{ C3[i] : 0 <= i < N and 2i < N }",
    ]
    .iter()
    .enumerate()
    {
        let out = p.add_array(&format!("O{k}"), vec!["N".into()], ArrayKind::Output);
        p.add_stmt(
            dom,
            vec![SchedTerm::Cst(k as i64 + 1), SchedTerm::Var(0)],
            Body {
                target: out,
                target_idx: vec![i1(0)],
                rhs: Expr::add(Expr::load(a, vec![i1(0)]), Expr::Const(k as f64)),
            },
        )
        .unwrap();
    }
    let o = optimize(&p, &opts()).unwrap();
    assert!(!o.report.is_fused(0), "one intersecting pair must block");
    assert_eq!(o.report.shared_unfused, vec![0]);
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    assert_eq!(stats.instances["P"], ref_stats.instances["P"]);
}

#[test]
fn stencil_halo_overlap_at_slice_boundary_prevents_fusion() {
    // The consumers split the domain in halves, but each reads a 3-point
    // stencil of A — the halos reach one element across the boundary into
    // the other consumer's slice, so the slices intersect and rule 2 must
    // keep the producer unfused.
    let mut p = Program::new("halo").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let x = p.add_array("X", vec!["N".into()], ArrayKind::Output);
    let y = p.add_array("Y", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    let stencil = |arr| {
        Expr::add(
            Expr::load(arr, vec![i1(0).plus(&IdxExpr::constant(1, -1))]),
            Expr::add(
                Expr::load(arr, vec![i1(0)]),
                Expr::load(arr, vec![i1(0).plus(&IdxExpr::constant(1, 1))]),
            ),
        )
    };
    p.add_stmt(
        "{ C1[i] : 1 <= i and 2i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: x,
            target_idx: vec![i1(0)],
            rhs: stencil(a),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ C2[i] : i < N - 1 and 2i >= N }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
        Body {
            target: y,
            target_idx: vec![i1(0)],
            rhs: stencil(a),
        },
    )
    .unwrap();
    let o = optimize(&p, &opts()).unwrap();
    assert!(!o.report.is_fused(0), "halo overlap must block fusion");
    assert_eq!(o.report.shared_unfused, vec![0]);
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    assert_eq!(stats.instances["P"], ref_stats.instances["P"]);
}

#[test]
fn chain_through_unfused_shared_producer_stays_correct() {
    // P -> Q -> two overlapping consumers: Q unfuses (rule 2); P, feeding
    // only Q, must then not be fused either (its consumer keeps the
    // original schedule).
    let mut p = Program::new("chain_shared").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec!["N".into()], ArrayKind::Temp);
    let x = p.add_array("X", vec!["N".into()], ArrayKind::Output);
    let y = p.add_array("Y", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ Q[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: b,
            target_idx: vec![i1(0)],
            rhs: Expr::mul(Expr::load(a, vec![i1(0)]), Expr::Const(3.0)),
        },
    )
    .unwrap();
    for (name, dom, arr, seq) in [
        ("C1", "{ C1[i] : 0 <= i < N }", x, 2),
        ("C2", "{ C2[i] : 0 <= i < N }", y, 3),
    ] {
        let _ = name;
        p.add_stmt(
            dom,
            vec![SchedTerm::Cst(seq), SchedTerm::Var(0)],
            Body {
                target: arr,
                target_idx: vec![i1(0)],
                rhs: Expr::add(Expr::load(b, vec![i1(0)]), Expr::Const(1.0)),
            },
        )
        .unwrap();
    }
    let o = optimize(&p, &opts()).unwrap();
    let (r, ref_stats) = reference_execute(&p, &[]).unwrap();
    let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    // No redundancy anywhere.
    assert_eq!(stats.instances["P"], ref_stats.instances["P"]);
    assert_eq!(stats.instances["Q"], ref_stats.instances["Q"]);
}
