//! Golden snapshots of [`tilefuse::codegen::disasm`] on the paper's
//! running example (Fig. 1(a) conv2d): the bytecode lowered from the
//! smartfuse startup tree, and from the fully optimized tree with its
//! tile loops, scratch-scoped `A`, static sequence partitions and clear
//! sets. Companion to `tests/render_golden.rs`, one layer further down.
//!
//! These tests pin the exact listing. If a change to the scheduler,
//! optimizer or lowering alters the bytecode *intentionally*, re-bless by
//! running with `BYTECODE_GOLDEN_PRINT=1` and pasting the new output; any
//! unintentional drift (lost fused loop, wrong clear set, guard changes,
//! reordered partitions) fails loudly here.

use tilefuse::codegen::{disasm, lower_tree};
use tilefuse::core::{optimize, Options};
use tilefuse::pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::scheduler::{schedule, FusionHeuristic};

/// The paper's Fig. 1(a) at 6x6 with a 3x3 kernel (same program as the
/// render goldens, small enough for a readable snapshot).
fn conv2d(h: i64, w: i64) -> Program {
    let mut p = Program::new("conv2d").with_param("H", h).with_param("W", w);
    let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec![3.into(), 3.into()], ArrayKind::Input);
    let c = p.add_array(
        "C",
        vec![("H", -2).into(), ("W", -2).into()],
        ArrayKind::Output,
    );
    let d2 = |d| IdxExpr::dim(2, d);
    let d4 = |d| IdxExpr::dim(4, d);
    p.add_stmt(
        "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: a,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
            SchedTerm::Var(3),
        ],
        Body {
            target: c,
            target_idx: vec![d4(0), d4(1)],
            rhs: Expr::add(
                Expr::load(c, vec![d4(0), d4(1)]),
                Expr::mul(
                    Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                    Expr::load(b, vec![d4(2), d4(3)]),
                ),
            ),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S3[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::relu(Expr::load(c, vec![d2(0), d2(1)])),
        },
    )
    .unwrap();
    p
}

/// Compares against a golden snapshot with a helpful diff on mismatch;
/// set `BYTECODE_GOLDEN_PRINT=1` to print the actual text for re-blessing.
fn assert_golden(actual: &str, golden: &str) {
    if std::env::var_os("BYTECODE_GOLDEN_PRINT").is_some() {
        println!("{actual}");
    }
    if actual.trim_end() != golden.trim_end() {
        let mismatch = actual
            .lines()
            .zip(golden.lines())
            .position(|(a, g)| a != g)
            .unwrap_or_else(|| actual.lines().count().min(golden.lines().count()));
        panic!(
            "disasm drifted from golden snapshot (first differing line {}):\n--- actual ---\n{actual}\n--- golden ---\n{golden}",
            mismatch + 1
        );
    }
}

const GOLDEN_SMARTFUSE: &str = r#";; conv2d — compiled schedule (6 sched dims, 21 insts, 4 loops, 2 fused)
;; params: H=6, W=6
buffers:
  b0 A[6, 6]
  b1 B[3, 3]
  b2 C[4, 4]
body 0 (S0, 3 regs):
  r0 <- load A[i0, i1]
  r1 <- const 0.5
  r2 <- mul r0, r1
  store A[i0, i1] <- r2
body 1 (S1, 1 regs):
  r0 <- const 0
  store C[i0, i1] <- r0
body 2 (S2, 5 regs):
  r0 <- load C[i0, i1]
  r1 <- load A[i0 + i2, i1 + i3]
  r2 <- load B[i2, i3]
  r3 <- mul r1, r2
  r4 <- add r0, r3
  store C[i0, i1] <- r4
body 3 (S3, 2 regs):
  r0 <- load C[i0, i1]
  r1 <- relu r0
  store C[i0, i1] <- r1
code:
0000 set        d0 = 0
0001 loop_open  L0 d1 par  s0{d1 >= -(0), d1 <= 5}
0002   fused_loop d2 kind=point par S0#0  {d2 >= -(0), d2 <= 5}  pin[d3=0,d4=0,d5=0] body=0
0003 loop_close L0
0004 set        d0 = 1
0005 loop_open  L1 d1 par  s1{d1 >= -(0), d1 <= 3} s2{d1 >= -(0), d1 <= 3} s3{d1 >= -(0), d1 <= 3}
0006   loop_open  L2 d2 par  s1{d2 >= -(0), d2 <= 3} s2{d2 >= -(0), d2 <= 3} s3{d2 >= -(0), d2 <= 3}
0007     set        d3 = 0
0008     set        d4 = 0
0009     set        d5 = 0
0010     fiber      S1#1 body=1 inst_dims=2 groups=1 streams={s1}
0011     set        d3 = 1
0012     loop_open  L3 d4  s2{d4 >= -(0), d4 <= 2}
0013       fused_loop d5 kind=stencil S2#2  {d5 >= -(0), d5 <= 2} body=2
0014     loop_close L3
0015     set        d3 = 2
0016     set        d4 = 0
0017     set        d5 = 0
0018     fiber      S3#3 body=3 inst_dims=2 groups=1 streams={s3}
0019   loop_close L2
0020 loop_close L1"#;

const GOLDEN_OPTIMIZED: &str = r#";; conv2d — compiled schedule (9 sched dims, 31 insts, 7 loops, 1 fused)
;; params: H=6, W=6
buffers:
  b0 A[6, 6]  scratch(scope 3)
  b1 B[3, 3]
  b2 C[4, 4]
body 0 (S0, 3 regs):
  r0 <- load A[i0, i1]
  r1 <- const 0.5
  r2 <- mul r0, r1
  store A[i0, i1] <- r2
body 1 (S1, 1 regs):
  r0 <- const 0
  store C[i0, i1] <- r0
body 2 (S2, 5 regs):
  r0 <- load C[i0, i1]
  r1 <- load A[i0 + i2, i1 + i3]
  r2 <- load B[i2, i3]
  r3 <- mul r1, r2
  r4 <- add r0, r3
  store C[i0, i1] <- r4
body 3 (S3, 2 regs):
  r0 <- load C[i0, i1]
  r1 <- relu r0
  store C[i0, i1] <- r1
code:
0000 set        d0 = 1
0001 loop_open  L0 d1 par  s0{d1 >= -(0), 2 * d1 <= 3} s1{d1 >= -(0), 2 * d1 <= 3} s2{d1 >= -(0), 2 * d1 <= 3} s3{d1 >= -(0), 2 * d1 <= 3} s4{d1 >= -(0), 2 * d1 <= 3} s5{d1 >= -(0), 2 * d1 <= 3} s6{d1 >= -(0), 2 * d1 <= 3}
0002   loop_open  L1 d2 par  s0{d2 >= -(0), 2 * d2 <= 3} s1{d2 >= -(0), 2 * d2 <= 3} s2{d2 >= -(0), 2 * d2 <= 3} s3{d2 >= -(0), 2 * d2 <= 3} s4{d2 >= -(0), 2 * d2 <= 3} s5{d2 >= -(0), 2 * d2 <= 3} s6{d2 >= -(0), 2 * d2 <= 3}
0003     set        d3 = 0
0004     loop_open  L2 d4  s0{d4 >= -(0), d4 >= -(-2d1), d4 <= 5, d4 <= 2d1 + 3} s1{d4 >= -(-3), d4 >= -(-2d1), d4 <= 5, d4 <= 2d1 + 3} s2{d4 >= -(0), d4 >= -(-2d1), d4 <= 5, d4 <= 2d1 + 3} s3{d4 >= -(-3), d4 >= -(-2d1), d4 <= 5, d4 <= 2d1 + 3}
0005       loop_open  L3 d5  s0{d5 >= -(0), d5 >= -(-2d2), d5 <= 5, d5 <= 2d2 + 3} s1{d5 >= -(0), d5 >= -(-2d2), d5 <= 5, d5 <= 2d2 + 3} s2{d5 >= -(-3), d5 >= -(-2d2), d5 <= 5, d5 <= 2d2 + 3} s3{d5 >= -(-3), d5 >= -(-2d2), d5 <= 5, d5 <= 2d2 + 3}
0006         set        d6 = 0
0007         set        d7 = 0
0008         set        d8 = 0
0009         fiber      S0#0 body=0 inst_dims=2 groups=4 streams={s0,s1,s2,s3}
0010       loop_close L3
0011     loop_close L2
0012     set        d3 = 1
0013     loop_open  L4 d4  s4{d4 >= -(0), d4 >= -(-2d1), d4 <= 3, d4 <= 2d1 + 1} s5{d4 >= -(0), d4 >= -(-2d1), d4 <= 3, d4 <= 2d1 + 1} s6{d4 >= -(0), d4 >= -(-2d1), d4 <= 3, d4 <= 2d1 + 1}
0014       loop_open  L5 d5  s4{d5 >= -(0), d5 >= -(-2d2), d5 <= 3, d5 <= 2d2 + 1} s5{d5 >= -(0), d5 >= -(-2d2), d5 <= 3, d5 <= 2d2 + 1} s6{d5 >= -(0), d5 >= -(-2d2), d5 <= 3, d5 <= 2d2 + 1}
0015         set        d6 = 0
0016         set        d7 = 0
0017         set        d8 = 0
0018         fiber      S1#1 body=1 inst_dims=2 groups=1 streams={s4}
0019         set        d6 = 1
0020         loop_open  L6 d7  s5{d7 >= -(0), d7 <= 2}
0021           fused_loop d8 kind=stencil S2#2  {d8 >= -(0), d8 <= 2} body=2
0022         loop_close L6
0023         set        d6 = 2
0024         set        d7 = 0
0025         set        d8 = 0
0026         fiber      S3#3 body=3 inst_dims=2 groups=1 streams={s6}
0027       loop_close L5
0028     loop_close L4
0029   loop_close L1  clear[sc0]
0030 loop_close L0  clear[sc0]"#;

#[test]
fn smartfuse_bytecode_matches_golden() {
    let p = conv2d(6, 6);
    let s = schedule(&p, FusionHeuristic::SmartFuse).unwrap();
    let compiled = lower_tree(&p, &s.tree, &[], &std::collections::BTreeMap::new()).unwrap();
    assert_golden(&disasm(&compiled), GOLDEN_SMARTFUSE);
}

#[test]
fn optimized_bytecode_matches_golden() {
    let p = conv2d(6, 6);
    let opts = Options {
        tile_sizes: vec![2, 2],
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let o = optimize(&p, &opts).unwrap();
    let compiled = lower_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    let text = disasm(&compiled);
    // Structural invariants first, so a drift failure still names what is
    // missing rather than only showing a wall of text.
    assert!(text.contains("scratch(scope 3)"), "{text}");
    assert!(text.contains("fused_loop"), "{text}");
    assert!(text.contains("clear[sc0]"), "{text}");
    assert!(text.contains("par"), "{text}");
    assert_golden(&text, GOLDEN_OPTIMIZED);
}
