//! Golden snapshots of `schedtree::render` on the paper's running example
//! (Fig. 1(a) conv2d): the initial sequence/filter tree produced by the
//! startup heuristic, and the post-tiling-fusion tree with its extension
//! node and skipped-mark subtree (compare with the paper's Fig. 2/Fig. 5).
//!
//! These tests pin the exact ASCII rendering. If a change to the scheduler
//! or optimizer alters the tree *intentionally*, re-bless the snapshot by
//! running with `RENDER_GOLDEN_PRINT=1` and pasting the new output; any
//! unintentional drift (lost extension node, missing skipped mark, filter
//! reordering) fails loudly here.

use tilefuse::core::{optimize, Options};
use tilefuse::pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::schedtree::render;
use tilefuse::scheduler::{schedule, FusionHeuristic};

/// The paper's Fig. 1(a) at 6x6 with a 3x3 kernel (same shape as the
/// conv2d end-to-end test, small enough for a readable snapshot).
fn conv2d(h: i64, w: i64) -> Program {
    let mut p = Program::new("conv2d").with_param("H", h).with_param("W", w);
    let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec![3.into(), 3.into()], ArrayKind::Input);
    let c = p.add_array(
        "C",
        vec![("H", -2).into(), ("W", -2).into()],
        ArrayKind::Output,
    );
    let d2 = |d| IdxExpr::dim(2, d);
    let d4 = |d| IdxExpr::dim(4, d);
    p.add_stmt(
        "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: a,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
            SchedTerm::Var(3),
        ],
        Body {
            target: c,
            target_idx: vec![d4(0), d4(1)],
            rhs: Expr::add(
                Expr::load(c, vec![d4(0), d4(1)]),
                Expr::mul(
                    Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                    Expr::load(b, vec![d4(2), d4(3)]),
                ),
            ),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S3[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::relu(Expr::load(c, vec![d2(0), d2(1)])),
        },
    )
    .unwrap();
    p
}

/// Compares against a golden snapshot with a helpful diff on mismatch;
/// set `RENDER_GOLDEN_PRINT=1` to print the actual text for re-blessing.
fn assert_golden(actual: &str, golden: &str) {
    if std::env::var_os("RENDER_GOLDEN_PRINT").is_some() {
        println!("{actual}");
    }
    if actual.trim_end() != golden.trim_end() {
        let mismatch = actual
            .lines()
            .zip(golden.lines())
            .position(|(a, g)| a != g)
            .unwrap_or_else(|| actual.lines().count().min(golden.lines().count()));
        panic!(
            "render drifted from golden snapshot (first differing line {}):\n--- actual ---\n{actual}\n--- golden ---\n{golden}",
            mismatch + 1
        );
    }
}

const GOLDEN_SMARTFUSE: &str = r#"domain: { S0[h, w] : h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0; S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0; S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0; S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
  └─ sequence
     ├─ filter: { S0[h, w] : h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0 }
     │  └─ band: [H, W] -> { S0[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0 } permutable=1 coincident=[1, 1]
     └─ filter: { S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0; S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0; S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
        └─ band: [H, W] -> { S1[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 } ∪ [H, W] -> { S2[h, w, kh, kw] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 } ∪ [H, W] -> { S3[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 } permutable=1 coincident=[1, 1]
           └─ sequence
              ├─ filter: { S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
              ├─ filter: { S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 }
              │  └─ band: [H, W] -> { S2[h, w, kh, kw] -> [i0, i1] : -kh + i0 = 0 and -kw + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 } permutable=0 coincident=[0, 0]
              └─ filter: { S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }"#;

const GOLDEN_OPTIMIZED: &str = r#"domain: { S0[h, w] : h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0; S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0; S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0; S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
  └─ sequence
     ├─ filter: { S0[h, w] : h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0 }
     │  └─ mark: "skipped"
     │     └─ band: [H, W] -> { S0[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0 } permutable=1 coincident=[1, 1]
     └─ filter: { S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0; S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0; S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
        └─ band: [H, W] -> { S1[h, w] -> [i0, i1] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and h - 2i0 >= 0 and -h + 2i0 + 1 >= 0 and w - 2i1 >= 0 and -w + 2i1 + 1 >= 0 } ∪ [H, W] -> { S2[h, w, kh, kw] -> [i0, i1] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 and h - 2i0 >= 0 and -h + 2i0 + 1 >= 0 and w - 2i1 >= 0 and -w + 2i1 + 1 >= 0 } ∪ [H, W] -> { S3[h, w] -> [i0, i1] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and h - 2i0 >= 0 and -h + 2i0 + 1 >= 0 and w - 2i1 >= 0 and -w + 2i1 + 1 >= 0 } permutable=1 coincident=[1, 1]
           └─ extension: { [i0, i1, i2] -> S0[h, w] : i0 - 1 = 0 and -2i1 + h >= 0 and -2i2 + w >= 0 and w >= 0 and h >= 0 and i2 >= 0 and 2i2 - w + 3 >= 0 and i1 >= 0 and 2i1 - h + 3 >= 0 and W - 2i2 - 3 >= 0 and W - w - 1 >= 0 and W - 3 >= 0 and H - 2i1 - 3 >= 0 and H - h - 1 >= 0 and H - 3 >= 0 }
              └─ sequence
                 ├─ filter: { S0[h, w] : h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0 }
                 │  └─ band: [H, W] -> { S0[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 1 >= 0 and w >= 0 and W - w - 1 >= 0 } permutable=1 coincident=[1, 1]
                 └─ filter: { S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0; S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0; S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
                    └─ band: [H, W] -> { S1[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 } ∪ [H, W] -> { S2[h, w, kh, kw] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 } ∪ [H, W] -> { S3[h, w] -> [i0, i1] : -h + i0 = 0 and -w + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 } permutable=1 coincident=[1, 1]
                       └─ sequence
                          ├─ filter: { S1[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }
                          ├─ filter: { S2[h, w, kh, kw] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 }
                          │  └─ band: [H, W] -> { S2[h, w, kh, kw] -> [i0, i1] : -kh + i0 = 0 and -kw + i1 = 0 and h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 and kh >= 0 and -kh + 2 >= 0 and kw >= 0 and -kw + 2 >= 0 } permutable=0 coincident=[0, 0]
                          └─ filter: { S3[h, w] : h >= 0 and H - h - 3 >= 0 and w >= 0 and W - w - 3 >= 0 }"#;

#[test]
fn smartfuse_tree_matches_golden() {
    let p = conv2d(6, 6);
    let s = schedule(&p, FusionHeuristic::SmartFuse).unwrap();
    assert_golden(&render(&s.tree), GOLDEN_SMARTFUSE);
}

#[test]
fn optimized_tree_matches_golden() {
    let p = conv2d(6, 6);
    let opts = Options {
        tile_sizes: vec![2, 2],
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let o = optimize(&p, &opts).unwrap();
    let text = render(&o.tree);
    // Structural invariants first, so a drift failure still names what is
    // missing rather than only showing a wall of text.
    assert!(text.contains("extension:"), "{text}");
    assert!(text.contains("mark: \"skipped\""), "{text}");
    assert!(text.contains("sequence"), "{text}");
    assert!(text.contains("filter:"), "{text}");
    assert_golden(&text, GOLDEN_OPTIMIZED);
}
