//! End-to-end test of the paper's running example (Fig. 1(a)): a 2-D
//! convolution with quantization, ReLU, and a live-out output image.
//!
//! Builds the program, runs every fusion heuristic AND the post-tiling
//! fusion optimizer, executes each resulting schedule tree, and checks the
//! outputs against the reference execution.

use tilefuse::codegen::{check_outputs_match, execute_tree, reference_execute};
use tilefuse::core::{optimize, recomputation_factor, Options};
use tilefuse::pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::schedtree::flatten;
use tilefuse::scheduler::{check_schedule, schedule, FusionHeuristic};

/// The paper's Fig. 1(a), with Quant(x) = 0.5x and a 3x3 kernel.
fn conv2d(h: i64, w: i64) -> Program {
    let mut p = Program::new("conv2d").with_param("H", h).with_param("W", w);
    let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec![3.into(), 3.into()], ArrayKind::Input);
    let c = p.add_array(
        "C",
        vec![("H", -2).into(), ("W", -2).into()],
        ArrayKind::Output,
    );
    let d2 = |d| IdxExpr::dim(2, d);
    let d4 = |d| IdxExpr::dim(4, d);
    p.add_stmt(
        "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: a,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
            SchedTerm::Var(3),
        ],
        Body {
            target: c,
            target_idx: vec![d4(0), d4(1)],
            rhs: Expr::add(
                Expr::load(c, vec![d4(0), d4(1)]),
                Expr::mul(
                    Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                    Expr::load(b, vec![d4(2), d4(3)]),
                ),
            ),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S3[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::relu(Expr::load(c, vec![d2(0), d2(1)])),
        },
    )
    .unwrap();
    p
}

#[test]
fn heuristic_schedules_compute_correct_outputs() {
    let p = conv2d(10, 10);
    let (reference, _) = reference_execute(&p, &[]).unwrap();
    for h in [
        FusionHeuristic::MinFuse,
        FusionHeuristic::SmartFuse,
        FusionHeuristic::MaxFuse,
    ] {
        let s = schedule(&p, h).unwrap();
        let flat = flatten(&s.tree).unwrap();
        let legality = check_schedule(&s.deps, &flat).unwrap();
        assert!(legality.legal, "{h:?}: {:?}", legality.violations);
        let (out, _) = execute_tree(&p, &s.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &reference, &out, 1e-12).unwrap();
    }
}

#[test]
fn post_tiling_fusion_computes_correct_outputs() {
    let p = conv2d(10, 10);
    let (reference, ref_stats) = reference_execute(&p, &[]).unwrap();
    let opts = Options {
        tile_sizes: vec![4, 4],
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let optimized = optimize(&p, &opts).unwrap();
    // The quantization stage is fused into the tiles of the reduction
    // space; tensor A becomes tile-local.
    assert!(optimized.report.is_fused(0), "S0's group should be fused");
    assert_eq!(optimized.report.scratch_arrays.len(), 1);
    let (out, stats) =
        execute_tree(&p, &optimized.tree, &[], &optimized.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &reference, &out, 1e-12).unwrap();
    // Overlapped tiling recomputes boundary quantizations: strictly more
    // S0 executions than the reference, never fewer.
    assert!(stats.instances["S0"] >= ref_stats.instances["S0"] - 36); // DCE may drop dead border
    assert!(
        stats.scratch_hits > 0,
        "consumers must hit tile-local scratch"
    );
    // The recomputation factor is bounded by the overlap ratio.
    let rf = recomputation_factor(&optimized, &p.param_values(&[])).unwrap();
    let f = rf["S0"];
    assert!((1.0..4.0).contains(&f), "recomputation factor {f}");
}

#[test]
fn post_tiling_fusion_with_cpu_cap_still_correct() {
    let p = conv2d(9, 11);
    let (reference, _) = reference_execute(&p, &[]).unwrap();
    let opts = Options {
        tile_sizes: vec![2, 2],
        ..Options::cpu(&[2, 2])
    };
    let optimized = optimize(&p, &opts).unwrap();
    let (out, _) =
        execute_tree(&p, &optimized.tree, &[], &optimized.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &reference, &out, 1e-12).unwrap();
}

#[test]
fn fusion_without_tiling_is_correct() {
    // The equake pattern: empty tile-size vector, fusion only.
    let p = conv2d(8, 8);
    let (reference, _) = reference_execute(&p, &[]).unwrap();
    let opts = Options {
        tile_sizes: vec![],
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let optimized = optimize(&p, &opts).unwrap();
    let (out, _) =
        execute_tree(&p, &optimized.tree, &[], &optimized.report.scratch_scopes).unwrap();
    check_outputs_match(&p, &reference, &out, 1e-12).unwrap();
}

#[test]
fn printed_code_has_fig5_shape() {
    let p = conv2d(6, 6);
    let opts = Options {
        tile_sizes: vec![2, 2],
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let optimized = optimize(&p, &opts).unwrap();
    let ast = tilefuse::codegen::generate(&optimized.tree).unwrap();
    let text = tilefuse::codegen::print(&ast, tilefuse::codegen::Target::OpenMp);
    assert!(
        text.contains("skipped"),
        "original S0 loop must be skipped:\n{text}"
    );
    assert!(
        text.contains("S0("),
        "S0 must appear inside the fused tile:\n{text}"
    );
    assert!(text.contains("#pragma omp parallel for"), "{text}");
    let tree_text = tilefuse::schedtree::render(&optimized.tree);
    assert!(tree_text.contains("extension:"), "{tree_text}");
    assert!(tree_text.contains("mark: \"skipped\""), "{tree_text}");
}
