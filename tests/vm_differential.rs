//! Differential test of the bytecode VM against the reference
//! interpreter: for every PolyMage workload and the paper's running
//! example, at two tile sizes, sequentially and in parallel, the VM must
//! produce bit-identical buffers AND identical execution statistics
//! (instance counts, loads, stores, scratch hits).
//!
//! The interpreter is the semantic oracle (it is itself checked against
//! `reference_execute` elsewhere); this test pins the VM to it exactly.

use std::collections::BTreeMap;

use tilefuse::codegen::{
    execute_tree_backend, execute_tree_parallel, ExecBackend, ExecContext, ExecStats,
};
use tilefuse::core::{optimize, Options};
use tilefuse::pir::{ArrayId, ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::schedtree::ScheduleTree;
use tilefuse::scheduler::schedule;
use tilefuse::FusionHeuristic;

/// The paper's Fig. 1(a), with Quant(x) = 0.5x and a 3x3 kernel (same
/// program as the conv2d end-to-end test).
fn conv2d(h: i64, w: i64) -> Program {
    let mut p = Program::new("conv2d").with_param("H", h).with_param("W", w);
    let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec![3.into(), 3.into()], ArrayKind::Input);
    let c = p.add_array(
        "C",
        vec![("H", -2).into(), ("W", -2).into()],
        ArrayKind::Output,
    );
    let d2 = |d| IdxExpr::dim(2, d);
    let d4 = |d| IdxExpr::dim(4, d);
    p.add_stmt(
        "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: a,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
            SchedTerm::Var(3),
        ],
        Body {
            target: c,
            target_idx: vec![d4(0), d4(1)],
            rhs: Expr::add(
                Expr::load(c, vec![d4(0), d4(1)]),
                Expr::mul(
                    Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                    Expr::load(b, vec![d4(2), d4(3)]),
                ),
            ),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ S3[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::relu(Expr::load(c, vec![d2(0), d2(1)])),
        },
    )
    .unwrap();
    p
}

/// Asserts every buffer of both contexts is bit-identical (f64 bit
/// patterns, not epsilon comparison) and the statistics match exactly.
fn assert_bit_exact(
    program: &Program,
    what: &str,
    interp: &(ExecContext, ExecStats),
    vm: &(ExecContext, ExecStats),
) {
    for a in program.arrays() {
        let bi = interp.0.buffer(a.id()).data();
        let bv = vm.0.buffer(a.id()).data();
        assert_eq!(bi.len(), bv.len(), "{what}: {} length", a.name());
        for (i, (x, y)) in bi.iter().zip(bv).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: {}[{i}] interp={x:e} vm={y:e}",
                a.name()
            );
        }
    }
    assert_eq!(interp.1, vm.1, "{what}: execution statistics differ");
}

/// Runs both backends on one tree at every thread count, checking
/// bit-exactness of buffers and stats each time against a sequential
/// interpreter reference.
fn check_tree(
    program: &Program,
    tree: &ScheduleTree,
    scopes: &BTreeMap<ArrayId, usize>,
    interp: &(ExecContext, ExecStats),
    label: &str,
    threads: &[usize],
    recheck_interp: bool,
) {
    for &n in threads {
        let what = format!("{label} threads={n}");
        let vm = execute_tree_backend(program, tree, &[], scopes, n, ExecBackend::Vm)
            .unwrap_or_else(|e| panic!("{what}: VM failed: {e}"));
        assert_bit_exact(program, &what, interp, &vm);
        if !recheck_interp {
            continue;
        }
        // The interpreter itself must also be thread-count independent;
        // re-check so a mismatch clearly blames the right backend. (Only
        // on the cheap running example — the interpreter is the slow side
        // and this triples its runs.)
        let interp_n = execute_tree_backend(program, tree, &[], scopes, n, ExecBackend::Interp)
            .unwrap_or_else(|e| panic!("{what}: interpreter failed: {e}"));
        assert_bit_exact(program, &format!("{what} (interp par)"), interp, &interp_n);
    }
}

/// Optimizes `program` at `tile` and differential-tests the optimized
/// tree. Two pyramid workloads (Local Laplacian, Multiscale Interpolation)
/// hit a pre-existing interpreter limitation on their *optimized* trees
/// (`Unbounded` during scanning) — since the interpreter is the oracle,
/// those fall back to the minfuse-scheduled tree, which both backends run.
fn check_program(program: &Program, tile: &[i64], threads: &[usize], recheck_interp: bool) {
    let opt = optimize(program, &Options::cpu(tile)).expect("optimize");
    let scopes = &opt.report.scratch_scopes;
    let label = format!("{} tile={tile:?}", program.name());
    match execute_tree_parallel(program, &opt.tree, &[], scopes, 1) {
        Ok(interp) => {
            check_tree(
                program,
                &opt.tree,
                scopes,
                &interp,
                &label,
                threads,
                recheck_interp,
            );
        }
        Err(_) => {
            let sched = schedule(program, FusionHeuristic::MinFuse).expect("schedule");
            let label = format!("{label} (scheduled tree)");
            let scopes = BTreeMap::new();
            let interp = execute_tree_parallel(program, &sched.tree, &[], &scopes, 1)
                .unwrap_or_else(|e| panic!("{label}: interpreter reference failed: {e}"));
            check_tree(
                program,
                &sched.tree,
                &scopes,
                &interp,
                &label,
                threads,
                recheck_interp,
            );
        }
    }
}

#[test]
fn running_example_bit_exact() {
    for tile in [&[2i64, 2][..], &[4, 4][..]] {
        check_program(&conv2d(8, 8), tile, &[1, 2, 4], true);
    }
}

#[test]
fn polymage_workloads_bit_exact() {
    for w in tilefuse::workloads::polymage::all(16, 16).expect("workloads") {
        for tile in [&[4i64, 4][..], &[8, 8][..]] {
            check_program(&w.program, tile, &[1, 4], false);
        }
    }
}
