//! Degradation-ladder integration tests on the paper's PolyMage pipelines.
//!
//! The resource governor (DESIGN.md §10) must turn *any* budget — however
//! adversarial — into a graceful fall down the four-rung ladder, never a
//! panic, hang, or wrong answer: the optimizer returns `Ok` with a
//! populated [`DegradationReport`], respects the disjunct cap, and the
//! resulting tree still executes bit-identically to the reference.
//!
//! Optimization runs at the bench suite's simulation-friendly 128x128;
//! the bit-exactness executions override H/W down to 40x40 (the trees are
//! symbolic in the parameters) so the interpreter passes stay fast in
//! unoptimized CI builds.

use tilefuse::codegen::{check_outputs_match, execute_tree, reference_execute};
use tilefuse::core::{optimize, Options};
use tilefuse::trace::Budget;
use tilefuse::workloads::{polymage, Workload};

/// Execution-time parameter overrides: small, and different from the
/// build-time size so parameter specialization bugs cannot hide.
const EXEC_SIZE: &[(&str, i64)] = &[("H", 40), ("W", 40)];

fn opts_for(w: &Workload, budget: Budget) -> Options {
    Options {
        tile_sizes: w.tile_sizes.clone(),
        budget,
        ..Default::default()
    }
}

/// With no budget installed every pipeline stays on rung 1: full
/// tiling-then-fusion, no trips, nothing silently approximated.
#[test]
fn default_budget_stays_on_rung_one() {
    for w in polymage::all(128, 128).unwrap() {
        let o = optimize(&w.program, &opts_for(&w, Budget::default())).unwrap();
        let deg = &o.report.degradation;
        assert_eq!(deg.rung, 1, "{}: expected rung 1, got {deg:?}", w.name);
        assert!(
            deg.trips.is_empty(),
            "{}: unexpected trips {:?}",
            w.name,
            deg.trips
        );
        assert_eq!(deg.silent_feasible, 0, "{}: {deg:?}", w.name);
    }
}

/// Runs `optimize` under `budget`, checks report coherence and the
/// disjunct cap, then executes the degraded tree and compares it
/// bit-exactly against `reference`.
fn check_degraded_exact(w: &Workload, budget: &Budget, reference: &tilefuse::codegen::ExecContext) {
    let o = optimize(&w.program, &opts_for(w, budget.clone()))
        .unwrap_or_else(|e| panic!("{} under {budget:?}: {e}", w.name));
    let deg = &o.report.degradation;
    assert!(
        (1..=4).contains(&deg.rung),
        "{}: rung {} out of range",
        w.name,
        deg.rung
    );
    assert!(
        deg.rung == 1 || !deg.trips.is_empty(),
        "{}: rung {} without recorded trips",
        w.name,
        deg.rung
    );
    if let Some(cap) = budget.max_disjuncts {
        assert!(
            deg.peak_disjuncts <= cap,
            "{}: peak {} disjuncts exceeds cap {cap}",
            w.name,
            deg.peak_disjuncts
        );
    }
    let (out, _) = execute_tree(&w.program, &o.tree, EXEC_SIZE, &o.report.scratch_scopes)
        .unwrap_or_else(|e| panic!("{} under {budget:?}: {e}", w.name));
    check_outputs_match(&w.program, reference, &out, 1e-12)
        .unwrap_or_else(|e| panic!("{} under {budget:?}: {e}", w.name));
}

/// A zero-op grant — the harshest deterministic enforcement budget — on
/// every pipeline: the ladder falls to wherever it must, the report
/// explains it, and the tree stays bit-exact.
#[test]
fn zero_op_budget_degrades_but_stays_exact_on_every_pipeline() {
    let zero_ops = Budget {
        max_omega_ops: Some(0),
        ..Budget::default()
    };
    for w in polymage::all(128, 128).unwrap() {
        let (reference, _) = reference_execute(&w.program, EXEC_SIZE).unwrap();
        check_degraded_exact(&w, &zero_ops, &reference);
    }
}

/// Precision caps (single-digit branch cap, disjunct ceiling) plus a
/// bounded op grant: the budget that exercises silent-feasibility
/// absorption. Capped feasibility answers legitimately bypass the memo
/// table, so this runs on the two small pipelines — the larger ones would
/// grind through minutes of uncached Omega tests in debug CI builds (the
/// release-build `--budget-fuzz` soak covers them).
#[test]
fn branch_capped_budget_degrades_but_stays_exact() {
    let capped = Budget {
        max_branches_per_call: Some(4),
        max_disjuncts: Some(6),
        max_omega_ops: Some(2_000),
        ..Budget::default()
    };
    for w in [
        polymage::unsharp_mask(128, 128).unwrap(),
        polymage::harris(128, 128).unwrap(),
    ] {
        let (reference, _) = reference_execute(&w.program, EXEC_SIZE).unwrap();
        check_degraded_exact(&w, &capped, &reference);
    }
}

/// A zero-op grant leaves nothing for fusion *or* plain tiling: the ladder
/// must land on its untiled floor, and the trips must name both dropped
/// rungs.
#[test]
fn zero_op_budget_lands_on_the_untiled_floor() {
    let w = polymage::harris(128, 128).unwrap();
    let budget = Budget {
        max_omega_ops: Some(0),
        ..Budget::default()
    };
    let o = optimize(&w.program, &opts_for(&w, budget)).unwrap();
    let deg = &o.report.degradation;
    assert_eq!(deg.rung, 4, "expected the untiled floor, got {deg:?}");
    assert!(
        deg.trips.len() >= 2,
        "expected ladder trips, got {:?}",
        deg.trips
    );
    assert!(o.report.mixed.is_empty(), "rung 4 must not fuse: {deg:?}");
}

/// An expired deadline must never hang or panic — it degrades like any
/// other exhausted budget and the result still validates and executes.
#[test]
fn expired_deadline_degrades_without_hanging() {
    for w in polymage::all(128, 128).unwrap() {
        let budget = Budget {
            deadline_ms: Some(0),
            ..Budget::default()
        };
        let o = optimize(&w.program, &opts_for(&w, budget))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let deg = &o.report.degradation;
        assert!(
            (1..=4).contains(&deg.rung),
            "{}: rung {} out of range",
            w.name,
            deg.rung
        );
        assert!(
            deg.rung == 1 || !deg.trips.is_empty(),
            "{}: rung {} without recorded trips",
            w.name,
            deg.rung
        );
    }
}
