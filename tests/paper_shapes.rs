//! Regression tests for the *shapes* of the paper's evaluation: who wins,
//! in which direction, and where the pathologies appear — at small sizes
//! so they run quickly in CI.

use tilefuse::bench::versions::{summaries, TargetKind, Version};
use tilefuse::memsim::{cpu_time, davinci_time, gpu_time, CpuModel, DavinciModel, GpuModel};
use tilefuse::workloads::{polybench, polymage, resnet};

fn cpu(v: &[tilefuse::memsim::ExecGroup], threads: usize) -> f64 {
    cpu_time(&CpuModel::xeon_e5_2683_v4().with_threads(threads), v)
        .unwrap()
        .total
}

#[test]
fn unsharp_mask_ordering_ours_beats_polymage_beats_naive() {
    let w = polymage::unsharp_mask(512, 512).unwrap();
    let naive = cpu(&summaries(&w, Version::Naive, TargetKind::Cpu).unwrap(), 1);
    let pm = cpu(
        &summaries(&w, Version::PolyMage, TargetKind::Cpu).unwrap(),
        32,
    );
    let ours = cpu(&summaries(&w, Version::Ours, TargetKind::Cpu).unwrap(), 32);
    assert!(ours <= pm, "ours {ours} <= polymage {pm}");
    assert!(pm < naive, "polymage {pm} < naive {naive}");
}

#[test]
fn harris_halide_misses_inlining() {
    // Table I: the manual Halide schedule is ~2x the automatic versions.
    let w = polymage::harris(512, 512).unwrap();
    let ours = cpu(&summaries(&w, Version::Ours, TargetKind::Cpu).unwrap(), 32);
    let halide = cpu(
        &summaries(&w, Version::Halide, TargetKind::Cpu).unwrap(),
        32,
    );
    assert!(halide > 1.5 * ours, "halide {halide} vs ours {ours}");
}

#[test]
fn gpu_ours_never_loses_to_minfuse() {
    let gpu = GpuModel::quadro_p6000();
    for w in [
        polymage::unsharp_mask(512, 512).unwrap(),
        polymage::harris(512, 512).unwrap(),
    ] {
        let minfuse = gpu_time(
            &gpu,
            &summaries(&w, Version::MinFuse, TargetKind::Gpu).unwrap(),
        )
        .unwrap()
        .total;
        let ours = gpu_time(
            &gpu,
            &summaries(&w, Version::Ours, TargetKind::Gpu).unwrap(),
        )
        .unwrap()
        .total;
        assert!(
            ours <= minfuse,
            "{}: ours {ours} <= minfuse {minfuse}",
            w.name
        );
    }
}

#[test]
fn two_mm_recompute_guard_prevents_catastrophic_fusion() {
    // Table II: ours performs like minfuse on 2mm (no fusion blow-up).
    let w = polybench::two_mm(128).unwrap();
    let minfuse = cpu(
        &summaries(&w, Version::MinFuse, TargetKind::Cpu).unwrap(),
        32,
    );
    let ours = cpu(&summaries(&w, Version::Ours, TargetKind::Cpu).unwrap(), 32);
    assert!(
        ours <= minfuse * 1.05,
        "ours {ours} must not blow past minfuse {minfuse}"
    );
}

#[test]
fn gemver_maxfuse_loses_parallel_scaling() {
    // Table II: maxfuse's serial fusion stops scaling with threads.
    let w = polybench::gemver(512).unwrap();
    let s = summaries(&w, Version::MaxFuse, TargetKind::Cpu).unwrap();
    let t1 = cpu(&s, 1);
    let t32 = cpu(&s, 32);
    assert!(
        t32 > 0.8 * t1,
        "maxfuse must not scale: t1 {t1} vs t32 {t32}"
    );
    // smartfuse does scale.
    let sm = summaries(&w, Version::SmartFuse, TargetKind::Cpu).unwrap();
    assert!(cpu(&sm, 32) < 0.3 * cpu(&sm, 1));
}

#[test]
fn covariance_hybridfuse_crashes() {
    let w = polybench::covariance(128, 128).unwrap();
    assert!(summaries(&w, Version::HybridFuse, TargetKind::Cpu).is_err());
}

#[test]
fn resnet_block_fusion_wins_on_davinci() {
    // Table III direction: ours beats smartfuse on every conv+bn block.
    let npu = DavinciModel::ascend_910();
    let b = resnet::blocks()[2]; // res2 3x3
    let w = resnet::conv_bn_program(&b).unwrap();
    let smart = davinci_time(
        &npu,
        &summaries(&w, Version::SmartFuse, TargetKind::Davinci).unwrap(),
    )
    .unwrap()
    .total;
    let ours = davinci_time(
        &npu,
        &summaries(&w, Version::Ours, TargetKind::Davinci).unwrap(),
    )
    .unwrap()
    .total;
    assert!(ours < smart, "ours {ours} < smartfuse {smart}");
    // And the speedup is in a sane band around the paper's 1.72x.
    let speedup = smart / ours;
    assert!(speedup > 1.05 && speedup < 4.0, "speedup {speedup}");
}

#[test]
fn equake_fusion_order_minfuse_smartfuse_ours() {
    use tilefuse::workloads::equake::{equake, EquakeSize};
    let cpu_model = CpuModel::xeon_e5_2683_v4();
    let permuted = equake(EquakeSize::Test, true).unwrap();
    let original = equake(EquakeSize::Test, false).unwrap();
    let minfuse = cpu_time(
        &cpu_model,
        &summaries(&permuted, Version::MinFuse, TargetKind::Cpu).unwrap(),
    )
    .unwrap()
    .total;
    let ours = cpu_time(
        &cpu_model,
        &summaries(&original, Version::Ours, TargetKind::Cpu).unwrap(),
    )
    .unwrap()
    .total;
    assert!(ours < minfuse, "ours {ours} < minfuse {minfuse}");
}
