//! Property-based end-to-end validation: random pipelines of pointwise,
//! stencil, downsample and combine stages are optimized with random tile
//! sizes and executed; the output must always match the reference
//! execution, and fusion must never lose instances (recomputation only
//! ever adds). Randomness comes from a deterministic in-tree xorshift
//! generator so the suite is reproducible without external dependencies.

use tilefuse::codegen::{
    check_outputs_match, execute_tree, execute_tree_backend, execute_tree_parallel,
    reference_execute, ExecBackend,
};
use tilefuse::core::{optimize, FaultInjection, Options};
use tilefuse::scheduler::FusionHeuristic;
use tilefuse::workloads::pipeline::PipelineBuilder;

/// Deterministic xorshift64* PRNG for test-case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Kinds of stages the generator may append.
#[derive(Debug, Clone, Copy)]
enum StageKind {
    Pointwise,
    StencilX,
    StencilY,
    CombineWithInput,
}

const KINDS: [StageKind; 4] = [
    StageKind::Pointwise,
    StageKind::StencilX,
    StageKind::StencilY,
    StageKind::CombineWithInput,
];

fn random_kinds(rng: &mut Rng) -> Vec<StageKind> {
    let n = rng.range(1, 5) as usize;
    (0..n).map(|_| KINDS[rng.range(0, 4) as usize]).collect()
}

fn build_pipeline(kinds: &[StageKind], size: i64) -> tilefuse::pir::Program {
    let (mut b, input) = PipelineBuilder::new("prop", size, size);
    let mut cur = input;
    for k in kinds {
        cur = match k {
            StageKind::Pointwise => b.pointwise(cur).unwrap(),
            StageKind::StencilX => b.stencil_x(cur, 1).unwrap(),
            StageKind::StencilY => b.stencil_y(cur, 1).unwrap(),
            StageKind::CombineWithInput => b.combine(cur, input).unwrap(),
        };
    }
    b.output(cur).unwrap()
}

#[test]
fn random_pipeline_post_tiling_fusion_is_correct() {
    let mut rng = Rng::new(0x70f1);
    for _ in 0..12 {
        let kinds = random_kinds(&mut rng);
        let tile = rng.range(2, 5) as i64;
        let startup_smart = rng.next().is_multiple_of(2);
        let size = 14;
        let p = build_pipeline(&kinds, size);
        let opts = Options {
            tile_sizes: vec![tile, tile],
            parallel_cap: None,
            startup: if startup_smart {
                FusionHeuristic::SmartFuse
            } else {
                FusionHeuristic::MinFuse
            },
            ..Default::default()
        };
        let o = optimize(&p, &opts).unwrap();
        let (reference, ref_stats) = reference_execute(&p, &[]).unwrap();
        let (transformed, stats) =
            execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        check_outputs_match(&p, &reference, &transformed, 1e-9).unwrap();
        // Fusion never *loses* output-relevant instances; the live-out
        // statements execute exactly once per domain point.
        for s in p.stmts() {
            if p.is_live_out(s.id()) {
                assert_eq!(
                    stats.instances.get(s.name()),
                    ref_stats.instances.get(s.name()),
                    "kinds = {kinds:?} tile = {tile}"
                );
            }
        }
    }
}

/// The parallel interpreter must be *bit-identical* to the sequential one
/// — buffers and statistics — on optimized (tiled, post-tiling-fused,
/// scratch-carrying) schedules, for every thread count.
#[test]
fn random_pipeline_parallel_execution_is_bit_identical() {
    let mut rng = Rng::new(0xd1ce);
    for case in 0..10 {
        let kinds = random_kinds(&mut rng);
        let tile = rng.range(2, 5) as i64;
        let size = 14;
        let p = build_pipeline(&kinds, size);
        let opts = Options {
            tile_sizes: vec![tile, tile],
            parallel_cap: None,
            ..Default::default()
        };
        let o = optimize(&p, &opts).unwrap();
        let (seq, seq_stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        for threads in [2, 5] {
            let (par, par_stats) =
                execute_tree_parallel(&p, &o.tree, &[], &o.report.scratch_scopes, threads).unwrap();
            for a in p.arrays() {
                assert_eq!(
                    seq.max_diff(&par, a.id()).unwrap(),
                    0.0,
                    "case {case}: array {} differs with {threads} threads \
                     (kinds = {kinds:?}, tile = {tile})",
                    a.name()
                );
            }
            assert_eq!(
                seq_stats, par_stats,
                "case {case}: stats differ with {threads} threads (kinds = {kinds:?})"
            );
        }
    }
}

/// Budget exhaustion must degrade identically no matter which execution
/// backend consumes the result: the `DegradationReport` is produced by
/// `optimize` alone (two optimize runs under the same exhausted budget
/// land on the same rung), and the degraded tree — at every rung of the
/// ladder, including real (non-injected) exhaustion — executes
/// bit-exactly on the bytecode VM: identical buffers by f64 bit pattern
/// and identical statistics to the interpreter, sequentially and in
/// parallel.
#[test]
fn degraded_schedules_are_bit_exact_across_backends() {
    let mut rng = Rng::new(0xbadbed);
    let faults: [(FaultInjection, Option<u8>, Option<u64>); 4] = [
        // Injected exhaustion at each pipeline phase → rungs 2, 3, 4.
        (FaultInjection::BudgetExhaustExtension, Some(2), None),
        (FaultInjection::BudgetExhaustSurgery, Some(3), None),
        (FaultInjection::BudgetExhaustTiling, Some(4), None),
        // Real exhaustion: a zero-op omega grant trips wherever the first
        // feasibility test lands; whatever rung results must still be
        // backend-independent and bit-exact.
        (FaultInjection::None, None, Some(0)),
    ];
    for (case, (fault, want_rung, max_ops)) in faults.into_iter().enumerate() {
        let kinds = random_kinds(&mut rng);
        let tile = rng.range(2, 5) as i64;
        let p = build_pipeline(&kinds, 14);
        let opts = Options {
            tile_sizes: vec![tile, tile],
            parallel_cap: None,
            fault,
            budget: tilefuse::trace::Budget {
                max_omega_ops: max_ops,
                ..Default::default()
            },
            ..Default::default()
        };
        // One optimize run per backend: the reports must agree rung for
        // rung (degradation is decided before any backend runs).
        let oi = optimize(&p, &opts).unwrap();
        let ov = optimize(&p, &opts).unwrap();
        assert_eq!(
            oi.report.degradation.rung, ov.report.degradation.rung,
            "case {case} ({fault:?}): rung differs between optimize runs"
        );
        if let Some(want) = want_rung {
            assert_eq!(
                oi.report.degradation.rung, want,
                "case {case} ({fault:?}): {:?}",
                oi.report.degradation
            );
        }
        assert!(
            oi.report.degradation.rung == 1 || !oi.report.degradation.trips.is_empty(),
            "case {case}: degraded without a recorded trip"
        );
        let (seq, seq_stats) = execute_tree(&p, &oi.tree, &[], &oi.report.scratch_scopes).unwrap();
        for threads in [1, 3] {
            let (vm, vm_stats) = execute_tree_backend(
                &p,
                &ov.tree,
                &[],
                &ov.report.scratch_scopes,
                threads,
                ExecBackend::Vm,
            )
            .unwrap();
            for a in p.arrays() {
                let bi = seq.buffer(a.id()).data();
                let bv = vm.buffer(a.id()).data();
                assert!(
                    bi.len() == bv.len()
                        && bi.iter().zip(bv).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "case {case} ({fault:?}) rung {}: array {} differs on the VM \
                     with {threads} thread(s) (kinds = {kinds:?}, tile = {tile})",
                    oi.report.degradation.rung,
                    a.name()
                );
            }
            assert_eq!(
                seq_stats, vm_stats,
                "case {case} ({fault:?}) rung {}: stats differ with {threads} thread(s)",
                oi.report.degradation.rung
            );
        }
    }
}

#[test]
fn random_pipeline_heuristics_are_correct() {
    let mut rng = Rng::new(0xac3);
    for _ in 0..12 {
        let kinds = random_kinds(&mut rng);
        let which = rng.range(0, 3) as usize;
        let p = build_pipeline(&kinds, 12);
        let h = [
            FusionHeuristic::MinFuse,
            FusionHeuristic::SmartFuse,
            FusionHeuristic::MaxFuse,
        ][which];
        let s = tilefuse::scheduler::schedule(&p, h).unwrap();
        // Legality double-check with the exact checker.
        let flat = tilefuse::schedtree::flatten(&s.tree).unwrap();
        let report = tilefuse::scheduler::check_schedule(&s.deps, &flat).unwrap();
        assert!(report.legal, "{:?}", report.violations);
        let (reference, _) = reference_execute(&p, &[]).unwrap();
        let (transformed, _) = execute_tree(&p, &s.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &reference, &transformed, 1e-9).unwrap();
    }
}
