//! Property-based end-to-end validation: random pipelines of pointwise,
//! stencil, downsample and combine stages are optimized with random tile
//! sizes and executed; the output must always match the reference
//! execution, and fusion must never lose instances (recomputation only
//! ever adds).

use proptest::prelude::*;
use tilefuse::codegen::{check_outputs_match, execute_tree, reference_execute};
use tilefuse::core::{optimize, Options};
use tilefuse::scheduler::FusionHeuristic;
use tilefuse::workloads::pipeline::PipelineBuilder;

/// Kinds of stages the generator may append.
#[derive(Debug, Clone, Copy)]
enum StageKind {
    Pointwise,
    StencilX,
    StencilY,
    CombineWithInput,
}

fn stage_kind() -> impl Strategy<Value = StageKind> {
    prop_oneof![
        Just(StageKind::Pointwise),
        Just(StageKind::StencilX),
        Just(StageKind::StencilY),
        Just(StageKind::CombineWithInput),
    ]
}

fn build_pipeline(kinds: &[StageKind], size: i64) -> tilefuse::pir::Program {
    let (mut b, input) = PipelineBuilder::new("prop", size, size);
    let mut cur = input;
    for k in kinds {
        cur = match k {
            StageKind::Pointwise => b.pointwise(cur).unwrap(),
            StageKind::StencilX => b.stencil_x(cur, 1).unwrap(),
            StageKind::StencilY => b.stencil_y(cur, 1).unwrap(),
            StageKind::CombineWithInput => b.combine(cur, input).unwrap(),
        };
    }
    b.output(cur).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn random_pipeline_post_tiling_fusion_is_correct(
        kinds in prop::collection::vec(stage_kind(), 1..5),
        tile in 2i64..5,
        startup_smart in any::<bool>(),
    ) {
        let size = 14;
        let p = build_pipeline(&kinds, size);
        let opts = Options {
            tile_sizes: vec![tile, tile],
            parallel_cap: None,
            startup: if startup_smart {
                FusionHeuristic::SmartFuse
            } else {
                FusionHeuristic::MinFuse
            },
            ..Default::default()
        };
        let o = optimize(&p, &opts).unwrap();
        let (reference, ref_stats) = reference_execute(&p, &[]).unwrap();
        let (transformed, stats) =
            execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        check_outputs_match(&p, &reference, &transformed, 1e-9).unwrap();
        // Fusion never *loses* output-relevant instances; the live-out
        // statements execute exactly once per domain point.
        for s in p.stmts() {
            if p.is_live_out(s.id()) {
                prop_assert_eq!(
                    stats.instances.get(s.name()),
                    ref_stats.instances.get(s.name())
                );
            }
        }
    }

    #[test]
    fn random_pipeline_heuristics_are_correct(
        kinds in prop::collection::vec(stage_kind(), 1..5),
        which in 0usize..3,
    ) {
        let p = build_pipeline(&kinds, 12);
        let h = [
            FusionHeuristic::MinFuse,
            FusionHeuristic::SmartFuse,
            FusionHeuristic::MaxFuse,
        ][which];
        let s = tilefuse::scheduler::schedule(&p, h).unwrap();
        // Legality double-check with the exact checker.
        let flat = tilefuse::schedtree::flatten(&s.tree).unwrap();
        let report = tilefuse::scheduler::check_schedule(&s.deps, &flat).unwrap();
        prop_assert!(report.legal, "{:?}", report.violations);
        let (reference, _) = reference_execute(&p, &[]).unwrap();
        let (transformed, _) =
            execute_tree(&p, &s.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &reference, &transformed, 1e-9).unwrap();
    }
}
