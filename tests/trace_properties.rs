//! Tracing must be purely observational: enabling it changes neither the
//! optimizer's output nor the presburger cache behaviour, and a *disabled*
//! tracer must cost a negligible fraction of optimize wall time.
//!
//! The tracer and the presburger statistics are process-global, so the two
//! tests serialize on a mutex instead of relying on `--test-threads=1`.

use std::sync::Mutex;
use std::time::Instant;

use tilefuse::codegen::execute_tree;
use tilefuse::core::{optimize, Optimized, Options};
use tilefuse::presburger::stats;
use tilefuse::trace;
use tilefuse::workloads::pipeline::PipelineBuilder;

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// A fixed mid-sized pipeline: pointwise producer, two stencils, a
/// combine — enough to exercise Algorithm 1 chains, Rule 2 and grafting.
fn pipeline() -> tilefuse::pir::Program {
    let (mut b, input) = PipelineBuilder::new("traced", 18, 18);
    let p0 = b.pointwise(input).unwrap();
    let sx = b.stencil_x(p0, 1).unwrap();
    let sy = b.stencil_y(sx, 1).unwrap();
    let c = b.combine(sy, input).unwrap();
    b.output(c).unwrap()
}

fn run_cold(enabled: bool) -> (Optimized, stats::CacheStats) {
    // Build the program before resetting counters: statement validation
    // performs presburger ops of its own, outside any span.
    let p = pipeline();
    stats::clear_cache();
    stats::reset();
    trace::reset();
    trace::set_enabled(enabled);
    let opts = Options {
        tile_sizes: vec![4, 4],
        ..Default::default()
    };
    let o = optimize(&p, &opts).unwrap();
    let cache = stats::snapshot();
    trace::set_enabled(false);
    (o, cache)
}

#[test]
fn tracing_on_and_off_yield_identical_results_and_cache_stats() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let (off, cache_off) = run_cold(false);
    let (on, cache_on) = run_cold(true);

    // Bit-identical optimizer output: same tree, same groups, and the
    // executed live-out buffers match exactly.
    assert_eq!(
        tilefuse::schedtree::render(&off.tree),
        tilefuse::schedtree::render(&on.tree)
    );
    assert_eq!(off.report.groups, on.report.groups);
    assert_eq!(off.report.liveouts, on.report.liveouts);
    let p = pipeline();
    let (ctx_off, _) = execute_tree(&p, &off.tree, &[], &off.report.scratch_scopes).unwrap();
    let (ctx_on, _) = execute_tree(&p, &on.tree, &[], &on.report.scratch_scopes).unwrap();
    for a in p.arrays() {
        assert_eq!(
            ctx_off.max_diff(&ctx_on, a.id()).unwrap(),
            0.0,
            "{}",
            a.name()
        );
    }

    // Identical presburger cache behaviour, op by op: the tracer only
    // *observes* the memo, it never changes what gets cached.
    for (name, a, b) in [
        ("is_empty", &cache_off.is_empty, &cache_on.is_empty),
        ("project", &cache_off.project, &cache_on.project),
        ("intersect", &cache_off.intersect, &cache_on.intersect),
        ("apply", &cache_off.apply, &cache_on.apply),
        ("reverse", &cache_off.reverse, &cache_on.reverse),
    ] {
        assert_eq!(a.hits, b.hits, "{name} hits differ");
        assert_eq!(a.misses, b.misses, "{name} misses differ");
    }

    // With tracing off the report carries no phases; with it on, the
    // summary names the pipeline's major phases and its per-span
    // presburger counters account for every recorded cache probe.
    assert!(off.report.phases.is_empty());
    let names: Vec<&str> = on.report.phases.iter().map(|p| p.name.as_str()).collect();
    for expected in ["optimize", "schedule", "schedule/deps", "algo1"] {
        assert!(
            names.contains(&expected),
            "missing phase {expected}: {names:?}"
        );
    }
    for (i, op) in [
        &cache_on.is_empty,
        &cache_on.project,
        &cache_on.intersect,
        &cache_on.apply,
        &cache_on.reverse,
    ]
    .iter()
    .enumerate()
    {
        let attributed: u64 = on
            .report
            .phases
            .iter()
            .map(|p| p.slots[i].hits + p.slots[i].misses)
            .sum();
        assert_eq!(
            attributed,
            op.hits + op.misses,
            "slot {i} ({}) probes not fully attributed to spans",
            stats::OP_NAMES[i]
        );
    }
}

#[test]
fn disabled_tracer_overhead_is_below_two_percent() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    trace::set_enabled(false);

    // Cost of one disabled span: an atomic load and an untouched guard.
    const PROBES: u32 = 1_000_000;
    let t = Instant::now();
    for _ in 0..PROBES {
        let _g = trace::span!("overhead/probe");
    }
    let per_span_ns = t.elapsed().as_nanos() as f64 / f64::from(PROBES);

    // Spans a cold optimize run of the pipeline creates (count them with
    // tracing on), and the wall time it takes with tracing off.
    let (on, _) = run_cold(true);
    let n_spans: u64 = on.report.phases.iter().map(|p| p.count).sum();
    assert!(n_spans > 0);
    stats::clear_cache();
    stats::reset();
    let p = pipeline();
    let opts = Options {
        tile_sizes: vec![4, 4],
        ..Default::default()
    };
    let t = Instant::now();
    let _ = optimize(&p, &opts).unwrap();
    let wall_ns = t.elapsed().as_nanos() as f64;

    let overhead = n_spans as f64 * per_span_ns / wall_ns;
    assert!(
        overhead < 0.02,
        "disabled tracer would cost {:.3}% of optimize wall time \
         ({n_spans} spans x {per_span_ns:.1} ns over {:.2} ms)",
        overhead * 100.0,
        wall_ns / 1e6
    );
}
