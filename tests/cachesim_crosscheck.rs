//! Cross-validation of the analytic memory model with the trace-driven
//! cache simulator: replaying the interpreter's access trace through a
//! simulated cache must show the qualitative effect the analytic model
//! claims — the post-tiling-fused schedule moves fewer bytes from backing
//! memory than the unfused one.

use tilefuse::codegen::{execute_tree, execute_tree_traced};
use tilefuse::core::{optimize, Options};
use tilefuse::memsim::{AddressMap, CacheSim};
use tilefuse::scheduler::{schedule, FusionHeuristic};
use tilefuse::workloads::polymage::unsharp_mask;

fn trace_misses(
    program: &tilefuse::pir::Program,
    tree: &tilefuse::schedtree::ScheduleTree,
    scratch: &std::collections::BTreeMap<tilefuse::pir::ArrayId, usize>,
) -> (u64, u64) {
    // Register arrays at disjoint addresses.
    let mut amap = AddressMap::new();
    let bind = program.default_binding();
    for a in program.arrays() {
        amap.register(a.id().0, &a.shape(&bind));
    }
    let mut l1 = CacheSim::new(2048, 8, 64); // deliberately small L1
    let mut accesses = 0u64;
    let (_, _) = execute_tree_traced(program, tree, &[], scratch, &mut |acc| {
        // Scratch accesses stay on-chip; everything else goes through the
        // simulated cache.
        if !acc.scratch {
            accesses += 1;
            l1.access(amap.addr(acc.array.0, &acc.coords));
        }
    })
    .unwrap();
    (l1.misses(), accesses)
}

#[test]
fn fused_schedule_misses_less_than_unfused() {
    let w = unsharp_mask(32, 32).unwrap();
    let p = &w.program;

    let unfused = schedule(p, FusionHeuristic::MinFuse).unwrap();
    let (m_unfused, a_unfused) = trace_misses(p, &unfused.tree, &Default::default());

    let opts = Options {
        tile_sizes: vec![8, 8],
        parallel_cap: None,
        startup: FusionHeuristic::MinFuse,
        ..Default::default()
    };
    let o = optimize(p, &opts).unwrap();
    let (m_fused, _) = trace_misses(p, &o.tree, &o.report.scratch_scopes);

    assert!(a_unfused > 0 && m_unfused > 0);
    assert!(
        m_fused < m_unfused,
        "fused misses {m_fused} should undercut unfused {m_unfused}"
    );
}

#[test]
fn trace_is_consistent_with_stats() {
    let w = unsharp_mask(16, 16).unwrap();
    let p = &w.program;
    let s = schedule(p, FusionHeuristic::MinFuse).unwrap();
    let mut n_reads = 0u64;
    let mut n_writes = 0u64;
    let (_, stats) = execute_tree_traced(p, &s.tree, &[], &Default::default(), &mut |acc| {
        if acc.is_write {
            n_writes += 1;
        } else {
            n_reads += 1;
        }
    })
    .unwrap();
    assert_eq!(n_reads, stats.loads);
    assert_eq!(n_writes, stats.stores);
    // Untraced execution gives the same stats.
    let (_, stats2) = execute_tree(p, &s.tree, &[], &Default::default()).unwrap();
    assert_eq!(stats.loads, stats2.loads);
    assert_eq!(stats.stores, stats2.stores);
}
