//! Imperative AST generation from schedule trees.
//!
//! This is a pragmatic polyhedral code generator: it walks the tree,
//! deriving loop bounds for each band dimension from the symbolic
//! per-level bounds of the active statements' composite schedule
//! relations, and emits an [`AstNode`] tree that the printers render as
//! OpenMP C or CUDA-style code (compare the paper's Fig. 1(b) and Fig. 5).

use crate::error::{Error, Result};
use std::fmt::Write as _;
use tilefuse_presburger::{Map, Scanner, Set, UnionSet};
use tilefuse_schedtree::{Band, Node, ScheduleTree, MARK_SKIPPED};

/// A node of the generated imperative AST.
#[derive(Debug, Clone)]
pub enum AstNode {
    /// A `for` loop over `var`.
    For {
        /// Loop variable name.
        var: String,
        /// Lower bound (rendered expression).
        lb: String,
        /// Upper bound (inclusive, rendered expression).
        ub: String,
        /// Whether the loop is parallel (coincident band member).
        parallel: bool,
        /// Band role marker: `"tile"`, `"point"` or `""`.
        role: &'static str,
        /// Loop body.
        body: Vec<AstNode>,
    },
    /// A statement instance `S(args...)`.
    Stmt {
        /// Statement name.
        name: String,
        /// Instance coordinates as rendered expressions.
        args: Vec<String>,
    },
    /// A comment line.
    Comment(String),
}

/// A borrowed view of an [`AstNode::For`]'s fields, produced by
/// [`AstNode::as_for`].
#[derive(Debug, Clone, Copy)]
pub struct ForView<'a> {
    /// Loop variable name.
    pub var: &'a str,
    /// Lower bound (rendered expression).
    pub lb: &'a str,
    /// Upper bound (inclusive, rendered expression).
    pub ub: &'a str,
    /// Whether the loop is parallel.
    pub parallel: bool,
    /// Band role marker: `"tile"`, `"point"` or `""`.
    pub role: &'static str,
    /// Loop body.
    pub body: &'a [AstNode],
}

/// A borrowed view of an [`AstNode::Stmt`]'s fields, produced by
/// [`AstNode::as_stmt`].
#[derive(Debug, Clone, Copy)]
pub struct StmtView<'a> {
    /// Statement name.
    pub name: &'a str,
    /// Instance coordinates as rendered expressions.
    pub args: &'a [String],
}

impl AstNode {
    /// The node's kind as a short name (for diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            AstNode::For { .. } => "for",
            AstNode::Stmt { .. } => "stmt",
            AstNode::Comment(_) => "comment",
        }
    }

    /// Typed accessor: this node as a `for` loop.
    ///
    /// # Errors
    /// Returns [`Error::Shape`] when the node is not a `For`, so callers
    /// walking machine-generated (possibly malformed) trees report instead
    /// of aborting.
    pub fn as_for(&self) -> Result<ForView<'_>> {
        match self {
            AstNode::For {
                var,
                lb,
                ub,
                parallel,
                role,
                body,
            } => Ok(ForView {
                var,
                lb,
                ub,
                parallel: *parallel,
                role,
                body,
            }),
            other => Err(Error::Shape {
                expected: "for",
                found: other.kind(),
            }),
        }
    }

    /// Typed accessor: this node as a statement instance.
    ///
    /// # Errors
    /// Returns [`Error::Shape`] when the node is not a `Stmt`.
    pub fn as_stmt(&self) -> Result<StmtView<'_>> {
        match self {
            AstNode::Stmt { name, args } => Ok(StmtView { name, args }),
            other => Err(Error::Shape {
                expected: "stmt",
                found: other.kind(),
            }),
        }
    }
}

/// One active statement during AST generation.
#[derive(Debug, Clone)]
struct Active {
    name: String,
    domain: Set,
    /// `{ S[i] -> [outer loop dims] }` accumulated so far.
    prefix: Map,
    /// For each statement dim: the rendered expression in terms of loop
    /// variables, once bound by an identity-like band member.
    dim_exprs: Vec<Option<String>>,
}

/// Generates the AST of a schedule tree.
///
/// # Errors
/// Returns an error on set-operation failure or malformed trees.
pub fn generate(tree: &ScheduleTree) -> Result<Vec<AstNode>> {
    let Node::Domain { domain, child } = tree.root() else {
        return Err(Error::Exec("root must be a domain node".into()));
    };
    let mut actives = Vec::new();
    for part in domain.parts() {
        let name = part
            .space()
            .tuple()
            .name()
            .ok_or_else(|| Error::Exec("domain tuples must be named".into()))?
            .to_owned();
        let n = part.space().n_dim();
        actives.push(Active {
            name,
            domain: part.clone(),
            prefix: const_out_map(part, 0)?,
            dim_exprs: vec![None; n],
        });
    }
    let mut names: Vec<String> = Vec::new();
    walk(child, &actives, &mut names)
}

fn const_out_map(part: &Set, n_out: usize) -> Result<Map> {
    let params: Vec<&str> = part.space().params().iter().map(String::as_str).collect();
    let space = part.space().join_map(&tilefuse_presburger::Space::set(
        &params,
        tilefuse_presburger::Tuple::anonymous(n_out),
    ))?;
    let exprs: Vec<tilefuse_presburger::AffExpr> = (0..n_out)
        .map(|_| tilefuse_presburger::AffExpr::constant(&space, 0))
        .collect();
    Ok(Map::from_affine(space, &exprs)?)
}

fn walk(node: &Node, actives: &[Active], names: &mut Vec<String>) -> Result<Vec<AstNode>> {
    match node {
        Node::Leaf => {
            let mut out = Vec::new();
            for a in actives {
                let args: Vec<String> = a
                    .dim_exprs
                    .iter()
                    .map(|e| e.clone().unwrap_or_else(|| "?".to_owned()))
                    .collect();
                out.push(AstNode::Stmt {
                    name: a.name.clone(),
                    args,
                });
            }
            Ok(out)
        }
        Node::Domain { .. } => Err(Error::Exec("nested domain".into())),
        Node::Mark { mark, child } => {
            if mark == MARK_SKIPPED {
                return Ok(vec![AstNode::Comment(
                    "subtree skipped (fused via extension)".to_owned(),
                )]);
            }
            let mut out = vec![AstNode::Comment(format!("mark: {mark}"))];
            out.extend(walk(child, actives, names)?);
            Ok(out)
        }
        Node::Filter { filter, child } => {
            let kept = filter_actives(actives, filter)?;
            if kept.is_empty() {
                return Ok(Vec::new());
            }
            walk(child, &kept, names)
        }
        Node::Sequence { children } => {
            let mut out = Vec::new();
            for c in children {
                out.extend(walk(c, actives, names)?);
            }
            Ok(out)
        }
        Node::Extension { extension, child } => {
            let mut extended = actives.to_vec();
            for part in extension.parts() {
                let name = part
                    .space()
                    .out_tuple()
                    .name()
                    .ok_or_else(|| Error::Exec("unnamed extension target".into()))?
                    .to_owned();
                let n = part.space().n_out();
                // The extension's leading input dims may include pinned
                // outer sequence positions that do not correspond to loop
                // levels; drop them so levels align with the name stack.
                let n_in = part.space().n_in();
                let part = if n_in > names.len() {
                    part.remove_in_dims(0, n_in - names.len())?
                } else {
                    part.clone()
                };
                extended.push(Active {
                    name,
                    domain: part.range()?,
                    prefix: part.reverse(),
                    dim_exprs: vec![None; n],
                });
            }
            walk(child, &extended, names)
        }
        Node::Band { band: b, child } => walk_band(b, child, actives, names),
    }
}

fn filter_actives(actives: &[Active], filter: &UnionSet) -> Result<Vec<Active>> {
    let mut kept = Vec::new();
    for a in actives {
        if let Some(part) = filter.part_named(&a.name) {
            let domain = a.domain.intersect(part)?;
            if !domain.is_empty()? {
                let mut a2 = a.clone();
                a2.domain = domain;
                kept.push(a2);
            }
        }
    }
    Ok(kept)
}

fn walk_band(
    b: &Band,
    child: &Node,
    actives: &[Active],
    names: &mut Vec<String>,
) -> Result<Vec<AstNode>> {
    let n = b.n_member();
    // Extend each active with this band's members; remember identity-like
    // bindings for statement argument rendering.
    let mut extended = Vec::with_capacity(actives.len());
    let role = band_role(b);
    let base_depth = names.len();
    for j in 0..n {
        names.push(loop_var_name(role, base_depth + j));
    }
    for a in actives {
        let part = b
            .sched()
            .parts()
            .iter()
            .find(|m| m.space().in_tuple().name() == Some(a.name.as_str()))
            .cloned();
        let part = match part {
            Some(m) => m.intersect_domain(&a.domain)?,
            None => const_out_map(&a.domain, n)?,
        };
        let mut a2 = a.clone();
        // Identity binding detection: out_j = dim_d + c.
        for j in 0..n {
            if let Some((d, c)) = identity_binding(&part, j) {
                let var = loop_var_name(role, base_depth + j);
                a2.dim_exprs[d] = Some(if c == 0 {
                    var
                } else if c > 0 {
                    format!("{var} - {c}")
                } else {
                    format!("{var} + {}", -c)
                });
            }
        }
        a2.prefix = a2.prefix.flat_range_product(&part)?;
        extended.push(a2);
    }
    let body = walk(child, &extended, names)?;
    // Bounds: per member, from the symbolic scan levels of the union of
    // the actives' prefix ranges.
    let mut node = body;
    for j in (0..n).rev() {
        let var = names[base_depth + j].clone();
        let (lb, ub) = bounds_text(&extended, base_depth + j, names)?;
        node = vec![AstNode::For {
            var,
            lb,
            ub,
            parallel: b.coincident().get(j).copied().unwrap_or(false),
            role,
            body: node,
        }];
    }
    names.truncate(base_depth);
    Ok(node)
}

/// A band is a "tile" band when its parts are non-functional relations
/// (tile coordinates), otherwise "point".
fn band_role(b: &Band) -> &'static str {
    for part in b.sched().parts() {
        for j in 0..b.n_member() {
            if identity_binding(part, j).is_none() {
                return "tile";
            }
        }
    }
    "point"
}

/// If band member `j` of `part` is `dim_d + c`, returns `(d, c)`.
fn identity_binding(part: &Map, j: usize) -> Option<(usize, i64)> {
    let space = part.space();
    let np = space.n_param();
    let n_in = space.n_in();
    let basics = part.basics();
    let b = basics.first()?;
    let out_col = np + n_in + j;
    for r in b.eq_rows() {
        let c_out = r[out_col];
        if c_out.abs() != 1 {
            continue;
        }
        // row: ±(out_j) ∓ dim_d ∓ c = 0 with no other dims/params/divs.
        let mut dim = None;
        let mut ok = true;
        for (col, &v) in r.iter().enumerate().take(r.len() - 1) {
            if col == out_col || v == 0 {
                continue;
            }
            if col >= np && col < np + n_in && v == -c_out && dim.is_none() {
                dim = Some(col - np);
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            if let Some(d) = dim {
                // c_out·out − c_out·dim + const = 0  =>  out = dim − const·c_out.
                return Some((d, -r[r.len() - 1] * c_out));
            }
        }
    }
    None
}

fn loop_var_name(role: &str, level: usize) -> String {
    match role {
        "tile" => format!("t{level}"),
        _ => format!("c{level}"),
    }
}

/// Renders the `[lb, ub]` bounds of loop level `level` as expressions over
/// parameters and outer loop variables.
fn bounds_text(actives: &[Active], level: usize, names: &[String]) -> Result<(String, String)> {
    // Per disjunct (and per active statement): the branch's bounds combine
    // with max/min; across disjuncts the *union* semantics require the
    // loosest bound (min of lower bounds, max of upper bounds).
    let mut branch_lbs: Vec<Vec<String>> = Vec::new();
    let mut branch_ubs: Vec<Vec<String>> = Vec::new();
    for a in actives {
        let rng = a.prefix.intersect_domain(&a.domain)?.range()?;
        let scanner = Scanner::symbolic(&rng)?;
        for br in 0..scanner.n_branch() {
            let levels = scanner.branch_bounds(br);
            if level >= levels.len() {
                continue;
            }
            let space = rng.space();
            let np = space.n_param();
            let name_of = |col: usize| -> String {
                if col < np {
                    space.params()[col].clone()
                } else {
                    names
                        .get(col - np)
                        .cloned()
                        .unwrap_or_else(|| format!("c{}", col - np))
                }
            };
            let mut lbs: Vec<String> = levels[level]
                .lowers
                .iter()
                .map(|(a_coef, row)| render_div(row, *a_coef, &name_of, true))
                .collect();
            let mut ubs: Vec<String> = levels[level]
                .uppers
                .iter()
                .map(|(b_coef, row)| render_div(row, *b_coef, &name_of, false))
                .collect();
            lbs.sort();
            lbs.dedup();
            ubs.sort();
            ubs.dedup();
            branch_lbs.push(lbs);
            branch_ubs.push(ubs);
        }
    }
    // A branch whose bound set is a superset of another's is dominated
    // (its max lower bound is at least the other's; its min upper bound is
    // at most the other's) and drops out of the union.
    let lb = join_bounds(
        drop_supersets(branch_lbs)
            .into_iter()
            .map(|v| join_bounds(v, "max"))
            .collect(),
        "min",
    );
    let ub = join_bounds(
        drop_supersets(branch_ubs)
            .into_iter()
            .map(|v| join_bounds(v, "min"))
            .collect(),
        "max",
    );
    Ok((lb, ub))
}

/// Removes entries whose string set is a strict superset of (or equal to)
/// another entry's set, keeping one representative.
fn drop_supersets(mut sets: Vec<Vec<String>>) -> Vec<Vec<String>> {
    sets.sort();
    sets.dedup();
    let snapshot = sets.clone();
    sets.retain(|s| {
        !snapshot
            .iter()
            .any(|o| o != s && o.iter().all(|x| s.contains(x)))
    });
    if sets.is_empty() {
        snapshot
    } else {
        sets
    }
}

fn join_bounds(mut v: Vec<String>, f: &str) -> String {
    match v.len() {
        0 => "?".to_owned(),
        1 => v.pop().unwrap(),
        _ => format!("{f}({})", v.join(", ")),
    }
}

/// Renders `ceil(-row/a)` (lower) or `floor(row/b)` (upper).
fn render_div(row: &[i64], coef: i64, name_of: &dyn Fn(usize) -> String, lower: bool) -> String {
    let mut expr = String::new();
    let n = row.len() - 1;
    let mut first = true;
    let sign = if lower { -1 } else { 1 };
    for (col, &c) in row[..n].iter().enumerate() {
        let c = c * sign;
        if c == 0 {
            continue;
        }
        let v = name_of(col);
        if first {
            match c {
                1 => {
                    let _ = write!(expr, "{v}");
                }
                -1 => {
                    let _ = write!(expr, "-{v}");
                }
                _ => {
                    let _ = write!(expr, "{c}{v}");
                }
            }
            first = false;
        } else if c > 0 {
            if c == 1 {
                let _ = write!(expr, " + {v}");
            } else {
                let _ = write!(expr, " + {c}{v}");
            }
        } else if c == -1 {
            let _ = write!(expr, " - {v}");
        } else {
            let _ = write!(expr, " - {}{v}", -c);
        }
    }
    let k = row[n] * sign;
    if first {
        let _ = write!(expr, "{k}");
    } else if k > 0 {
        let _ = write!(expr, " + {k}");
    } else if k < 0 {
        let _ = write!(expr, " - {}", -k);
    }
    if coef == 1 {
        expr
    } else if lower {
        format!("ceil(({expr}) / {coef})")
    } else {
        format!("floor(({expr}) / {coef})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_presburger::UnionMap;
    use tilefuse_schedtree::{band as band_node, Band, ScheduleTree};

    fn uset(s: &str) -> UnionSet {
        UnionSet::from_parts([s.parse::<Set>().unwrap()]).unwrap()
    }

    #[test]
    fn simple_loop_nest() {
        let dom = uset("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }");
        let b = Band::new(
            UnionMap::from_parts(["[N] -> { S[i, j] -> [i, j] }".parse::<Map>().unwrap()]).unwrap(),
            true,
            vec![true, false],
        )
        .unwrap();
        let t = ScheduleTree::new(dom, band_node(b, Node::Leaf));
        let ast = generate(&t).unwrap();
        assert_eq!(ast.len(), 1);
        let outer = ast[0].as_for().unwrap();
        assert_eq!(outer.var, "c0");
        assert_eq!(outer.lb, "0");
        assert_eq!(outer.ub, "N - 1");
        assert!(outer.parallel);
        let inner = outer.body[0].as_for().unwrap();
        assert_eq!(inner.lb, "0");
        assert_eq!(inner.ub, "c0");
        assert!(!inner.parallel);
        let stmt = inner.body[0].as_stmt().unwrap();
        assert_eq!(stmt.name, "S");
        assert_eq!(stmt.args, &["c0".to_owned(), "c1".to_owned()]);
    }

    #[test]
    fn tiled_band_gets_tile_vars() {
        let dom = uset("{ S[i] : 0 <= i <= 7 }");
        let orig = Band::new(
            UnionMap::from_parts(["{ S[i] -> [i] }".parse::<Map>().unwrap()]).unwrap(),
            true,
            vec![true],
        )
        .unwrap();
        let (tile, point) = orig.tile(&[4]).unwrap();
        let t = ScheduleTree::new(dom, band_node(tile, band_node(point, Node::Leaf)));
        let ast = generate(&t).unwrap();
        let tile_loop = ast[0].as_for().unwrap();
        assert_eq!(tile_loop.role, "tile");
        assert_eq!(tile_loop.var, "t0");
        let point_loop = tile_loop.body[0].as_for().unwrap();
        assert_eq!(point_loop.role, "point");
        assert_eq!(point_loop.var, "c1");
    }

    #[test]
    fn typed_accessors_report_shape_mismatches() {
        let c = AstNode::Comment("x".into());
        let err = c.as_for().unwrap_err();
        assert_eq!(
            err,
            Error::Shape {
                expected: "for",
                found: "comment"
            }
        );
        let s = AstNode::Stmt {
            name: "S".into(),
            args: vec![],
        };
        assert!(s.as_for().is_err());
        assert!(s.as_stmt().is_ok());
        assert_eq!(s.kind(), "stmt");
        assert!(c.as_stmt().unwrap_err().to_string().contains("comment"));
    }

    #[test]
    fn skipped_subtree_renders_comment() {
        let dom = uset("{ S[i] : 0 <= i <= 3 }");
        let b = Band::new(
            UnionMap::from_parts(["{ S[i] -> [i] }".parse::<Map>().unwrap()]).unwrap(),
            true,
            vec![true],
        )
        .unwrap();
        let t = ScheduleTree::new(
            dom,
            tilefuse_schedtree::mark(MARK_SKIPPED, band_node(b, Node::Leaf)),
        );
        let ast = generate(&t).unwrap();
        assert!(matches!(&ast[0], AstNode::Comment(c) if c.contains("skipped")));
    }
}
