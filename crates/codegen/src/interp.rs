//! The schedule-tree interpreter: executable semantics for every schedule
//! this repository produces.
//!
//! Both the reference (initial-schedule) execution and the execution of an
//! arbitrary transformed schedule tree run through here, so any
//! transformation — heuristic fusion, tiling, post-tiling fusion with
//! overlapped recomputation — is validated bit-for-bit against the
//! original program semantics.
//!
//! Fused producers write to *tile-local scratch* (the paper's Section V-B
//! aggressive memory optimization): each tile gets a private buffer for
//! the fused array, lazily initialized from the global array — exactly
//! what buffer privatization does in PPCG/AKG. Scratch contents are
//! discarded when execution crosses a tile boundary (a change in the
//! schedule-tuple prefix whose length is the array's *scratch scope*, the
//! depth of the extension node that fused its producer). This gives the
//! right semantics for both in-place producers (`A[h][w] = Quant(A[h][w])`
//! re-reads the pristine global value in every tile) and reductions
//! (`tmp += ...` accumulates in the tile-private buffer).

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use tilefuse_pir::{ArrayId, Program, SchedTerm, StmtId};
use tilefuse_presburger::Scanner;
use tilefuse_schedtree::{flatten, ScheduleTree};

/// A dense multi-dimensional `f64` buffer.
#[derive(Debug, Clone)]
pub struct Buffer {
    shape: Vec<i64>,
    data: Vec<f64>,
}

impl Buffer {
    /// Creates a zero-filled buffer.
    pub fn zeros(shape: Vec<i64>) -> Self {
        let len: i64 = shape.iter().product::<i64>().max(0);
        Buffer {
            shape,
            data: vec![0.0; len as usize],
        }
    }

    /// The buffer's shape.
    pub fn shape(&self) -> &[i64] {
        &self.shape
    }

    /// The raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data, for the VM backend's flat-arena execution.
    pub(crate) fn data_mut(&mut self) -> &mut Vec<f64> {
        &mut self.data
    }

    fn index(&self, coords: &[i64]) -> Result<usize> {
        if coords.len() != self.shape.len() {
            return Err(Error::Exec(format!(
                "access with {} coords into {}-d buffer",
                coords.len(),
                self.shape.len()
            )));
        }
        let mut idx = 0i64;
        for (c, s) in coords.iter().zip(&self.shape) {
            if *c < 0 || c >= s {
                return Err(Error::Exec(format!(
                    "out-of-bounds access {coords:?} into shape {:?}",
                    self.shape
                )));
            }
            idx = idx * s + c;
        }
        Ok(idx as usize)
    }

    /// Reads one element.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds coordinates.
    pub fn get(&self, coords: &[i64]) -> Result<f64> {
        Ok(self.data[self.index(coords)?])
    }

    /// Writes one element.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds coordinates.
    pub fn set(&mut self, coords: &[i64], v: f64) -> Result<()> {
        let i = self.index(coords)?;
        self.data[i] = v;
        Ok(())
    }
}

/// The state after executing a program: one buffer per array.
#[derive(Debug, Clone)]
pub struct ExecContext {
    buffers: BTreeMap<ArrayId, Buffer>,
}

impl ExecContext {
    /// Allocates buffers for every array of `program` and fills them with
    /// deterministic pseudo-input values (same seed on every call, so a
    /// reference run and a transformed run start identically).
    pub fn initialized(program: &Program, overrides: &[(&str, i64)]) -> Self {
        let values = program.param_values(overrides);
        let bind = make_binding(program, &values);
        let mut buffers = BTreeMap::new();
        for a in program.arrays() {
            let shape = a.shape(&bind);
            let mut buf = Buffer::zeros(shape);
            for (i, v) in buf.data.iter_mut().enumerate() {
                // Small deterministic values; distinct per array.
                let h = (i as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add(a.id().0 as u64 * 97);
                *v = ((h % 1000) as f64) / 499.5 - 1.0;
            }
            buffers.insert(a.id(), buf);
        }
        ExecContext { buffers }
    }

    /// The buffer of `array`.
    ///
    /// # Panics
    /// Panics if the array was not allocated.
    pub fn buffer(&self, array: ArrayId) -> &Buffer {
        &self.buffers[&array]
    }

    /// Mutable buffer access, for the VM backend.
    ///
    /// # Panics
    /// Panics if the array was not allocated.
    pub(crate) fn buffer_mut(&mut self, array: ArrayId) -> &mut Buffer {
        self.buffers.get_mut(&array).expect("buffer allocated")
    }

    /// Maximum absolute difference of one array between two contexts.
    ///
    /// # Errors
    /// Returns an error if shapes differ.
    pub fn max_diff(&self, other: &ExecContext, array: ArrayId) -> Result<f64> {
        let a = self.buffer(array);
        let b = other.buffer(array);
        if a.shape != b.shape {
            return Err(Error::Exec("shape mismatch".into()));
        }
        Ok(a.data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max))
    }
}

/// Execution statistics (consumed by the cost models and tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Statement instances executed, by statement name (recomputed
    /// instances count every execution).
    pub instances: BTreeMap<String, u64>,
    /// Total array element loads.
    pub loads: u64,
    /// Total array element stores.
    pub stores: u64,
    /// Loads served by tile-local scratch instead of backing memory.
    pub scratch_hits: u64,
}

impl ExecStats {
    /// Total executed instances across statements.
    pub fn total_instances(&self) -> u64 {
        self.instances.values().sum()
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        for (name, n) in &other.instances {
            *self.instances.entry(name.clone()).or_insert(0) += n;
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.scratch_hits += other.scratch_hits;
    }
}

/// Backing memory as seen by one statement instance: the sequential
/// interpreter writes straight through to the [`ExecContext`], while each
/// thread of the parallel interpreter executes against an [`OverlayMem`]
/// so concurrent chunks never alias.
trait Mem {
    fn load(&self, arr: ArrayId, coords: &[i64]) -> Result<f64>;
    fn store(&mut self, arr: ArrayId, coords: &[i64], v: f64) -> Result<()>;
}

impl Mem for ExecContext {
    fn load(&self, arr: ArrayId, coords: &[i64]) -> Result<f64> {
        self.buffers
            .get(&arr)
            .ok_or_else(|| Error::Exec("missing buffer".into()))?
            .get(coords)
    }

    fn store(&mut self, arr: ArrayId, coords: &[i64], v: f64) -> Result<()> {
        self.buffers
            .get_mut(&arr)
            .ok_or_else(|| Error::Exec("missing buffer".into()))?
            .set(coords, v)
    }
}

/// A copy-on-write view over a shared base context: loads fall through to
/// the base unless this overlay wrote the element; stores land in a
/// private log keyed by flat element index. Merging the logs of parallel
/// chunks back into the base *in chunk order* reproduces the sequential
/// final state exactly (the sequential last writer of any element is the
/// highest chunk that writes it).
struct OverlayMem<'a> {
    base: &'a ExecContext,
    writes: BTreeMap<(ArrayId, usize), f64>,
}

impl Mem for OverlayMem<'_> {
    fn load(&self, arr: ArrayId, coords: &[i64]) -> Result<f64> {
        let buf = self
            .base
            .buffers
            .get(&arr)
            .ok_or_else(|| Error::Exec("missing buffer".into()))?;
        let idx = buf.index(coords)?;
        Ok(self
            .writes
            .get(&(arr, idx))
            .copied()
            .unwrap_or(buf.data[idx]))
    }

    fn store(&mut self, arr: ArrayId, coords: &[i64], v: f64) -> Result<()> {
        let buf = self
            .base
            .buffers
            .get(&arr)
            .ok_or_else(|| Error::Exec("missing buffer".into()))?;
        let idx = buf.index(coords)?;
        self.writes.insert((arr, idx), v);
        Ok(())
    }
}

pub(crate) fn make_binding<'a>(
    program: &'a Program,
    values: &'a [i64],
) -> impl Fn(&str) -> i64 + 'a {
    // Undeclared names resolve to 0: every execution entry point runs
    // `Program::validate_params` first, so by the time this closure is
    // consulted all referenced parameters are known to be declared.
    move |name: &str| {
        program
            .params()
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| values[i])
            .unwrap_or(0)
    }
}

/// Executes `program` in its original (initial-schedule) order.
///
/// # Errors
/// Returns an error on unbounded domains or out-of-bounds accesses.
pub fn reference_execute(
    program: &Program,
    overrides: &[(&str, i64)],
) -> Result<(ExecContext, ExecStats)> {
    program.validate_params()?;
    let values = program.param_values(overrides);
    let len = program.sched_len();
    // Collect (schedule tuple, stmt, instance).
    let mut work: Vec<(Vec<i64>, StmtId, Vec<i64>)> = Vec::new();
    for s in program.stmts() {
        let scanner = Scanner::new(s.domain(), &values)?;
        scanner.for_each(&mut |pt: &[i64]| {
            let sched: Vec<i64> = (0..len)
                .map(|k| match s.sched().get(k) {
                    Some(SchedTerm::Cst(c)) => *c,
                    Some(SchedTerm::Var(d)) => pt[*d],
                    None => 0,
                })
                .collect();
            work.push((sched, s.id(), pt.to_vec()));
            true
        })?;
    }
    work.sort();
    let mut ctx = ExecContext::initialized(program, overrides);
    let mut stats = ExecStats::default();
    for (_, stmt, point) in work {
        execute_instance(
            program, &mut ctx, &values, stmt, &point, None, &mut stats, None,
        )?;
    }
    Ok((ctx, stats))
}

/// Executes a transformed schedule tree.
///
/// `scratch_scopes` maps each tile-local array to its *scratch scope*: the
/// schedule-prefix length identifying a tile; the array's scratch is
/// cleared whenever that prefix changes (see module docs). Pass an empty
/// map for schedules without fused producers.
///
/// # Errors
/// Returns an error on unbounded schedules or out-of-bounds accesses.
pub fn execute_tree(
    program: &Program,
    tree: &ScheduleTree,
    overrides: &[(&str, i64)],
    scratch_scopes: &BTreeMap<ArrayId, usize>,
) -> Result<(ExecContext, ExecStats)> {
    execute_tree_traced(program, tree, overrides, scratch_scopes, &mut |_| {})
}

/// One memory access, as reported to a trace sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The array touched.
    pub array: ArrayId,
    /// Element coordinates.
    pub coords: Vec<i64>,
    /// `true` for stores.
    pub is_write: bool,
    /// Whether the access was served by tile-local scratch.
    pub scratch: bool,
}

/// [`execute_tree`] with a per-access trace sink — feeds the trace-driven
/// cache simulator in `tilefuse-memsim` for cross-validating the analytic
/// model.
///
/// # Errors
/// See [`execute_tree`].
pub fn execute_tree_traced(
    program: &Program,
    tree: &ScheduleTree,
    overrides: &[(&str, i64)],
    scratch_scopes: &BTreeMap<ArrayId, usize>,
    sink: &mut dyn FnMut(Access),
) -> Result<(ExecContext, ExecStats)> {
    let _span = tilefuse_trace::span!("interp/execute", "{}", program.name());
    program.validate_params()?;
    let values = program.param_values(overrides);
    let entries = flatten(tree)?;
    // Collect (sched tuple, order, stmt, instance) from each entry's
    // schedule graph. The wrapped set enumerates [instance, sched] pairs;
    // recomputation (one instance under several tiles) appears as several
    // pairs.
    let mut work: Vec<(Vec<i64>, usize, StmtId, Vec<i64>)> = Vec::new();
    for (order, e) in entries.iter().enumerate() {
        let stmt = program
            .stmt_named(&e.stmt)
            .ok_or_else(|| Error::Exec(format!("unknown statement {}", e.stmt)))?
            .id();
        let n_inst = e.schedule.space().n_in();
        let graph = e.schedule.intersect_domain(&e.domain)?;
        let scanner = Scanner::new(graph.as_wrapped_set(), &values)?;
        scanner.for_each(&mut |pt: &[i64]| {
            let inst = pt[..n_inst].to_vec();
            let sched = pt[n_inst..].to_vec();
            work.push((sched, order, stmt, inst));
            true
        })?;
    }
    work.sort();
    let mut ctx = ExecContext::initialized(program, overrides);
    let mut stats = ExecStats::default();
    let mut scratch = Scratch::new(scratch_scopes.clone());
    for (sched, _, stmt, point) in work {
        scratch.enter(&sched);
        execute_instance(
            program,
            &mut ctx,
            &values,
            stmt,
            &point,
            Some(&mut scratch),
            &mut stats,
            Some(sink),
        )?;
    }
    Ok((ctx, stats))
}

/// Thread count used by [`execute_tree_parallel`] when the caller passes
/// `0`: the `TILEFUSE_JOBS` environment variable if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("TILEFUSE_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One (schedule tuple, entry order, statement, instance) execution pair.
type WorkItem = (Vec<i64>, usize, StmtId, Vec<i64>);

/// A chunk's copy-on-write write log plus its execution statistics.
type ChunkResult = (BTreeMap<(ArrayId, usize), f64>, ExecStats);

/// [`execute_tree`] fanned out across OS threads.
///
/// The work list is grouped by schedule-tuple prefix; at the outermost
/// depth where every flattened entry's [`par_depths`] flag is set (a
/// *coincident* band dimension — no dependence crosses distinct values)
/// and every scratch scope is strictly deeper, the groups execute
/// concurrently under `std::thread::scope`. Each chunk runs against a
/// private [`OverlayMem`] write log and a private [`Scratch`]; logs and
/// statistics are merged back **in ascending chunk order**, so the result
/// — buffers *and* [`ExecStats`] — is bit-identical to [`execute_tree`]
/// regardless of thread count or interleaving.
///
/// `n_threads == 0` means [`default_threads`]; `n_threads == 1` (or a
/// schedule with no coincident dimension) degrades to the sequential path.
///
/// [`par_depths`]: tilefuse_schedtree::FlatEntry::par_depths
///
/// # Errors
/// See [`execute_tree`]. A panic on any worker thread (index bugs, scoped
/// thread failures) is caught at this boundary and surfaced as
/// [`Error::Exec`] tagged with the active governor phase, so callers —
/// including the fuzz oracle — always see a typed error, never an abort.
pub fn execute_tree_parallel(
    program: &Program,
    tree: &ScheduleTree,
    overrides: &[(&str, i64)],
    scratch_scopes: &BTreeMap<ArrayId, usize>,
    n_threads: usize,
) -> Result<(ExecContext, ExecStats)> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_tree_parallel_inner(program, tree, overrides, scratch_scopes, n_threads)
    }))
    .unwrap_or_else(|payload| {
        Err(Error::Exec(format!(
            "panic during parallel execution (phase {}): {}",
            tilefuse_trace::governor::last_phase(),
            tilefuse_trace::governor::panic_message(payload.as_ref()),
        )))
    })
}

fn execute_tree_parallel_inner(
    program: &Program,
    tree: &ScheduleTree,
    overrides: &[(&str, i64)],
    scratch_scopes: &BTreeMap<ArrayId, usize>,
    n_threads: usize,
) -> Result<(ExecContext, ExecStats)> {
    let _span = tilefuse_trace::span!("interp/execute-parallel", "{}", program.name());
    program.validate_params()?;
    let n_threads = if n_threads == 0 {
        default_threads()
    } else {
        n_threads
    };
    let values = program.param_values(overrides);
    let entries = flatten(tree)?;
    // A depth is parallelizable only if *every* entry marks it coincident
    // (conservative: entries whose work is disjoint from a subtree still
    // veto it) and no scratch region spans chunks at that depth.
    let sched_len = entries
        .iter()
        .map(|e| e.par_depths.len())
        .max()
        .unwrap_or(0);
    let mut par_ok = vec![true; sched_len];
    for e in &entries {
        for (d, ok) in par_ok.iter_mut().enumerate() {
            *ok &= e.par_depths.get(d).copied().unwrap_or(false);
        }
    }
    let min_scope = scratch_scopes.values().copied().min().unwrap_or(usize::MAX);
    for (d, ok) in par_ok.iter_mut().enumerate() {
        *ok &= d < min_scope;
    }
    let mut work: Vec<WorkItem> = Vec::new();
    for (order, e) in entries.iter().enumerate() {
        let stmt = program
            .stmt_named(&e.stmt)
            .ok_or_else(|| Error::Exec(format!("unknown statement {}", e.stmt)))?
            .id();
        let n_inst = e.schedule.space().n_in();
        let graph = e.schedule.intersect_domain(&e.domain)?;
        let scanner = Scanner::new(graph.as_wrapped_set(), &values)?;
        scanner.for_each(&mut |pt: &[i64]| {
            work.push((pt[n_inst..].to_vec(), order, stmt, pt[..n_inst].to_vec()));
            true
        })?;
    }
    work.sort();
    let mut ctx = ExecContext::initialized(program, overrides);
    let mut stats = ExecStats::default();
    let mut scratch = Scratch::new(scratch_scopes.clone());
    run_level(
        program,
        &values,
        &work,
        0,
        &par_ok,
        n_threads,
        &mut ctx,
        &mut scratch,
        &mut stats,
    )?;
    Ok((ctx, stats))
}

/// Recursive driver for [`execute_tree_parallel`]: `work` is a sorted
/// slice sharing one schedule prefix of length `d`.
#[allow(clippy::too_many_arguments)]
fn run_level(
    program: &Program,
    values: &[i64],
    work: &[WorkItem],
    d: usize,
    par_ok: &[bool],
    n_threads: usize,
    ctx: &mut ExecContext,
    scratch: &mut Scratch,
    stats: &mut ExecStats,
) -> Result<()> {
    if work.is_empty() {
        return Ok(());
    }
    // No parallelism left at or below this depth: finish sequentially.
    if d >= par_ok.len() || n_threads <= 1 || !par_ok[d..].iter().any(|&b| b) {
        for (sched, _, stmt, point) in work {
            scratch.enter(sched);
            execute_instance(
                program,
                ctx,
                values,
                *stmt,
                point,
                Some(scratch),
                stats,
                None,
            )?;
        }
        return Ok(());
    }
    // Split into contiguous groups by the value of schedule dim `d`.
    let mut groups: Vec<&[WorkItem]> = Vec::new();
    let mut start = 0;
    for i in 1..=work.len() {
        if i == work.len() || work[i].0[d] != work[start].0[d] {
            groups.push(&work[start..i]);
            start = i;
        }
    }
    if !par_ok[d] || groups.len() < 2 {
        for g in groups {
            run_level(
                program,
                values,
                g,
                d + 1,
                par_ok,
                n_threads,
                ctx,
                scratch,
                stats,
            )?;
        }
        return Ok(());
    }
    // Parallel section. Chunks are claimed by index from a shared counter;
    // results are stored by chunk index so the merge below is ordered no
    // matter which thread ran what. Every scratch scope is > d here, so a
    // fresh per-chunk Scratch sees exactly what the shared one would (the
    // chunk boundary changes the tile prefix, which clears scratch).
    let results: Vec<Mutex<Option<Result<ChunkResult>>>> =
        (0..groups.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let base: &ExecContext = ctx;
    std::thread::scope(|s| {
        for _ in 0..n_threads.min(groups.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(group) = groups.get(i) else { break };
                let r = run_chunk(program, values, base, &scratch.scopes, group);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    for cell in results {
        let r = cell
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("every chunk index was claimed by a worker");
        let (writes, chunk_stats) = r?;
        for ((arr, idx), v) in writes {
            let buf = ctx
                .buffers
                .get_mut(&arr)
                .ok_or_else(|| Error::Exec("missing buffer".into()))?;
            buf.data[idx] = v;
        }
        stats.merge(&chunk_stats);
    }
    Ok(())
}

/// Executes one parallel chunk sequentially against a private overlay.
fn run_chunk(
    program: &Program,
    values: &[i64],
    base: &ExecContext,
    scopes: &BTreeMap<ArrayId, usize>,
    work: &[WorkItem],
) -> Result<ChunkResult> {
    let mut mem = OverlayMem {
        base,
        writes: BTreeMap::new(),
    };
    let mut scratch = Scratch::new(scopes.clone());
    let mut stats = ExecStats::default();
    for (sched, _, stmt, point) in work {
        scratch.enter(sched);
        execute_instance(
            program,
            &mut mem,
            values,
            *stmt,
            point,
            Some(&mut scratch),
            &mut stats,
            None,
        )?;
    }
    Ok((mem.writes, stats))
}

/// Tile-private storage for fused arrays (see module docs).
#[derive(Debug, Default)]
struct Scratch {
    scopes: BTreeMap<ArrayId, usize>,
    values: BTreeMap<(ArrayId, Vec<i64>), f64>,
    last_prefix: BTreeMap<ArrayId, Vec<i64>>,
}

impl Scratch {
    fn new(scopes: BTreeMap<ArrayId, usize>) -> Self {
        Scratch {
            scopes,
            values: BTreeMap::new(),
            last_prefix: BTreeMap::new(),
        }
    }

    /// Called before each instance with its schedule tuple: clears any
    /// array whose tile prefix changed.
    fn enter(&mut self, sched: &[i64]) {
        let mut to_clear = Vec::new();
        for (&arr, &scope) in &self.scopes {
            let prefix = &sched[..scope.min(sched.len())];
            match self.last_prefix.get(&arr) {
                Some(p) if p.as_slice() == prefix => {}
                _ => {
                    to_clear.push(arr);
                    self.last_prefix.insert(arr, prefix.to_vec());
                }
            }
        }
        for arr in to_clear {
            self.values.retain(|(a, _), _| *a != arr);
        }
    }

    fn is_scratch(&self, arr: ArrayId) -> bool {
        self.scopes.contains_key(&arr)
    }

    fn get(&self, arr: ArrayId, coords: &[i64]) -> Option<f64> {
        self.values.get(&(arr, coords.to_vec())).copied()
    }

    fn set(&mut self, arr: ArrayId, coords: Vec<i64>, v: f64) {
        self.values.insert((arr, coords), v);
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_instance<M: Mem>(
    program: &Program,
    mem: &mut M,
    param_values: &[i64],
    stmt: StmtId,
    point: &[i64],
    scratch: Option<&mut Scratch>,
    stats: &mut ExecStats,
    sink: Option<&mut dyn FnMut(Access)>,
) -> Result<()> {
    let s = program.stmt(stmt);
    let bind = make_binding(program, param_values);
    let body = s.body();
    *stats.instances.entry(s.name().to_owned()).or_insert(0) += 1;
    let own_target = body.target;
    let mut err: Option<Error> = None;
    let scratch = std::cell::RefCell::new(scratch);
    let sink = std::cell::RefCell::new(sink);
    let mut loads = 0u64;
    let mut scratch_hits = 0u64;
    let value = {
        let mut load = |arr: ArrayId, coords: &[i64]| -> f64 {
            loads += 1;
            // Tile-local scratch first (lazily falling back to the global
            // buffer for values the tile has not produced).
            if let Some(sc) = scratch.borrow().as_ref() {
                if sc.is_scratch(arr) {
                    if let Some(v) = sc.get(arr, coords) {
                        scratch_hits += 1;
                        if let Some(f) = sink.borrow_mut().as_mut() {
                            f(Access {
                                array: arr,
                                coords: coords.to_vec(),
                                is_write: false,
                                scratch: true,
                            });
                        }
                        return v;
                    }
                }
            }
            if let Some(f) = sink.borrow_mut().as_mut() {
                f(Access {
                    array: arr,
                    coords: coords.to_vec(),
                    is_write: false,
                    scratch: false,
                });
            }
            match mem.load(arr, coords) {
                Ok(v) => v,
                Err(e) => {
                    err = Some(e);
                    0.0
                }
            }
        };
        body.rhs.eval(point, &bind, &mut load)
    };
    stats.loads += loads;
    stats.scratch_hits += scratch_hits;
    if let Some(e) = err {
        return Err(e);
    }
    let coords: Vec<i64> = body
        .target_idx
        .iter()
        .map(|e| e.eval(point, &bind))
        .collect();
    stats.stores += 1;
    let mut scratch = scratch.into_inner();
    let to_scratch = scratch.as_ref().is_some_and(|sc| sc.is_scratch(own_target));
    if let Some(f) = sink.into_inner() {
        f(Access {
            array: own_target,
            coords: coords.clone(),
            is_write: true,
            scratch: to_scratch,
        });
    }
    if to_scratch {
        scratch
            .as_mut()
            .expect("checked above")
            .set(own_target, coords, value);
    } else {
        mem.store(own_target, &coords, value)?;
    }
    Ok(())
}

/// Asserts that every `Output` array matches between two contexts.
///
/// # Errors
/// Returns an error naming the first mismatching array.
pub fn check_outputs_match(
    program: &Program,
    reference: &ExecContext,
    transformed: &ExecContext,
    tolerance: f64,
) -> Result<()> {
    for a in program.arrays() {
        if a.kind() != tilefuse_pir::ArrayKind::Output {
            continue;
        }
        let d = reference.max_diff(transformed, a.id())?;
        if d > tolerance {
            return Err(Error::Exec(format!(
                "output array {} differs by {d} (tolerance {tolerance})",
                a.name()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_pir::{ArrayKind, Body, Expr, IdxExpr};

    fn simple_program() -> Program {
        let mut p = Program::new("t").with_param("N", 8);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec!["N".into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::mul(Expr::Iter(0), Expr::Const(2.0)),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(Expr::load(a, vec![IdxExpr::dim(1, 0)]), Expr::Const(1.0)),
            },
        )
        .unwrap();
        p
    }

    #[test]
    fn reference_executes_in_order() {
        let p = simple_program();
        let (ctx, stats) = reference_execute(&p, &[]).unwrap();
        let b = ctx.buffer(tilefuse_pir::ArrayId(1));
        for i in 0..8 {
            assert_eq!(b.get(&[i]).unwrap(), (i * 2) as f64 + 1.0);
        }
        assert_eq!(stats.instances["S0"], 8);
        assert_eq!(stats.instances["S1"], 8);
        assert_eq!(stats.stores, 16);
    }

    #[test]
    fn buffer_bounds_checked() {
        let mut b = Buffer::zeros(vec![2, 3]);
        assert!(b.set(&[1, 2], 5.0).is_ok());
        assert_eq!(b.get(&[1, 2]).unwrap(), 5.0);
        assert!(b.get(&[2, 0]).is_err());
        assert!(b.get(&[0]).is_err());
        assert!(b.get(&[-1, 0]).is_err());
        assert_eq!(b.shape(), &[2, 3]);
        assert_eq!(b.data().len(), 6);
    }

    #[test]
    fn initialized_is_deterministic() {
        let p = simple_program();
        let a = ExecContext::initialized(&p, &[]);
        let b = ExecContext::initialized(&p, &[]);
        assert_eq!(a.max_diff(&b, tilefuse_pir::ArrayId(0)).unwrap(), 0.0);
    }

    #[test]
    fn param_overrides_resize_buffers() {
        let p = simple_program();
        let ctx = ExecContext::initialized(&p, &[("N", 4)]);
        assert_eq!(ctx.buffer(tilefuse_pir::ArrayId(0)).shape(), &[4]);
    }

    #[test]
    fn execute_tree_matches_reference_for_initial_schedule() {
        let p = simple_program();
        let scheduled =
            tilefuse_scheduler::schedule(&p, tilefuse_scheduler::FusionHeuristic::MinFuse).unwrap();
        let (r, _) = reference_execute(&p, &[]).unwrap();
        let (t, stats) = execute_tree(&p, &scheduled.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &r, &t, 0.0).unwrap();
        assert_eq!(stats.total_instances(), 16);
    }

    #[test]
    fn execute_tree_matches_reference_for_smartfuse() {
        let p = simple_program();
        let scheduled =
            tilefuse_scheduler::schedule(&p, tilefuse_scheduler::FusionHeuristic::SmartFuse)
                .unwrap();
        let (r, _) = reference_execute(&p, &[]).unwrap();
        let (t, _) = execute_tree(&p, &scheduled.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &r, &t, 0.0).unwrap();
    }

    #[test]
    fn parallel_execution_is_bit_identical_across_thread_counts() {
        let p = simple_program();
        for h in [
            tilefuse_scheduler::FusionHeuristic::MinFuse,
            tilefuse_scheduler::FusionHeuristic::SmartFuse,
            tilefuse_scheduler::FusionHeuristic::MaxFuse,
        ] {
            let scheduled = tilefuse_scheduler::schedule(&p, h).unwrap();
            let (seq, seq_stats) =
                execute_tree(&p, &scheduled.tree, &[], &Default::default()).unwrap();
            for threads in [1, 2, 3, 8] {
                let (par, par_stats) =
                    execute_tree_parallel(&p, &scheduled.tree, &[], &Default::default(), threads)
                        .unwrap();
                for a in p.arrays() {
                    assert_eq!(
                        seq.max_diff(&par, a.id()).unwrap(),
                        0.0,
                        "array {} differs ({h:?}, {threads} threads)",
                        a.name()
                    );
                }
                assert_eq!(
                    seq_stats, par_stats,
                    "stats differ ({h:?}, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn default_threads_respects_env_override() {
        // Not parallel-safe against other tests mutating the same var, but
        // nothing else in this binary touches TILEFUSE_JOBS.
        std::env::set_var("TILEFUSE_JOBS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("TILEFUSE_JOBS", "not a number");
        assert!(default_threads() >= 1);
        std::env::remove_var("TILEFUSE_JOBS");
        assert!(default_threads() >= 1);
    }

    #[test]
    fn check_outputs_match_detects_difference() {
        let p = simple_program();
        let (r, _) = reference_execute(&p, &[]).unwrap();
        let fresh = ExecContext::initialized(&p, &[]);
        assert!(check_outputs_match(&p, &r, &fresh, 1e-9).is_err());
    }
}
