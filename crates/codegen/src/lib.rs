//! Code generation and executable semantics for schedule trees.
//!
//! Two consumers of a transformed schedule tree live here:
//!
//! * the **interpreter** ([`execute_tree`], [`reference_execute`]) runs
//!   statement instances against real buffers in the order the tree
//!   prescribes — including extension-node recomputation and tile-local
//!   scratch storage — so every optimization in this repository is
//!   validated against the original program's output;
//! * the **AST generator + printers** ([`generate`], [`print()`]) render the
//!   tree as OpenMP-C or CUDA-flavoured pseudo-code, reproducing the shape
//!   of the paper's Fig. 1(b) and Fig. 5 listings.

mod ast;
mod error;
mod interp;
mod printer;

pub use ast::{generate, AstNode, ForView, StmtView};
pub use error::{Error, Result};
pub use interp::{
    check_outputs_match, default_threads, execute_tree, execute_tree_parallel, execute_tree_traced,
    reference_execute, Access, Buffer, ExecContext, ExecStats,
};
pub use printer::{print, print_cuda_kernel, Target};
