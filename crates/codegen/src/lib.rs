//! Code generation and executable semantics for schedule trees.
//!
//! Two consumers of a transformed schedule tree live here:
//!
//! * the **interpreter** ([`execute_tree`], [`reference_execute`]) runs
//!   statement instances against real buffers in the order the tree
//!   prescribes — including extension-node recomputation and tile-local
//!   scratch storage — so every optimization in this repository is
//!   validated against the original program's output;
//! * the **AST generator + printers** ([`generate`], [`print()`]) render the
//!   tree as OpenMP-C or CUDA-flavoured pseudo-code, reproducing the shape
//!   of the paper's Fig. 1(b) and Fig. 5 listings;
//! * the **bytecode VM** ([`lower_tree`], [`execute_compiled`]) lowers the
//!   tree once to a register-based instruction stream and executes it
//!   bit-identically to the interpreter — same buffers, same statistics —
//!   but without per-instance set enumeration. [`execute_tree_backend`]
//!   selects between the two engines via [`ExecBackend`].

mod ast;
mod bytecode;
mod error;
mod interp;
mod lower;
mod printer;
mod vm;

pub use ast::{generate, AstNode, ForView, StmtView};
pub use bytecode::{disasm, CompiledProgram};
pub use error::{Error, Result};
pub use interp::{
    check_outputs_match, default_threads, execute_tree, execute_tree_parallel, execute_tree_traced,
    reference_execute, Access, Buffer, ExecContext, ExecStats,
};
pub use lower::lower_tree;
pub use printer::{print, print_cuda_kernel, Target};
pub use vm::{execute_compiled, execute_tree_backend, ExecBackend};
