//! Pretty-printers: OpenMP C and CUDA-flavoured renderings of the
//! generated AST (compare the paper's Fig. 1(b) and Fig. 5).

use crate::ast::AstNode;
use std::fmt::Write;

/// Rendering target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// OpenMP C: `#pragma omp parallel for` on the outermost parallel
    /// loop, `#pragma ivdep` on the innermost parallel loop.
    OpenMp,
    /// CUDA-style: the first (up to) two tile loops map to block indices,
    /// the first (up to) two point loops to thread indices.
    Cuda,
    /// CCE-style (DaVinci): tile loops annotated as DDR→L1 DMA scopes,
    /// point loops as L1→L0/UB compute scopes (compare Section V-A).
    Cce,
}

/// Renders an AST to target-flavoured pseudo-C.
pub fn print(ast: &[AstNode], target: Target) -> String {
    let mut out = String::new();
    let mut state = State {
        target,
        used_parallel_pragma: false,
        block_dims: 0,
        thread_dims: 0,
    };
    for n in ast {
        render(n, 0, &mut state, &mut out);
    }
    out
}

struct State {
    target: Target,
    used_parallel_pragma: bool,
    block_dims: usize,
    thread_dims: usize,
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(node: &AstNode, depth: usize, state: &mut State, out: &mut String) {
    match node {
        AstNode::Comment(c) => {
            indent(out, depth);
            let _ = writeln!(out, "/* {c} */");
        }
        AstNode::Stmt { name, args } => {
            indent(out, depth);
            let _ = writeln!(out, "{name}({});", args.join(", "));
        }
        AstNode::For {
            var,
            lb,
            ub,
            parallel,
            role,
            body,
        } => {
            let mut mapped = false;
            match state.target {
                Target::OpenMp => {
                    if *parallel && !state.used_parallel_pragma {
                        state.used_parallel_pragma = true;
                        indent(out, depth);
                        let _ = writeln!(out, "#pragma omp parallel for");
                    } else if *parallel && is_innermost(body) {
                        indent(out, depth);
                        let _ = writeln!(out, "#pragma ivdep");
                    }
                }
                Target::Cce => {
                    if *role == "tile" && state.block_dims == 0 {
                        state.block_dims += 1;
                        indent(out, depth);
                        let _ = writeln!(out, "/* DMA scope: DDR -> L1 buffer per {var} tile */");
                    } else if *role != "tile" && state.thread_dims == 0 && state.block_dims > 0 {
                        state.thread_dims += 1;
                        indent(out, depth);
                        let _ = writeln!(
                            out,
                            "/* compute scope: L1 -> L0A/L0B (cube) and UB (vector) */"
                        );
                    }
                }
                Target::Cuda => {
                    if *parallel && *role == "tile" && state.block_dims < 2 {
                        let axis = ["x", "y"][state.block_dims];
                        state.block_dims += 1;
                        indent(out, depth);
                        let _ = writeln!(
                            out,
                            "/* {var} = blockIdx.{axis} (grid-mapped, {lb} <= {var} <= {ub}) */"
                        );
                        mapped = true;
                    } else if *parallel
                        && *role != "tile"
                        && state.block_dims > 0
                        && state.thread_dims < 2
                    {
                        let axis = ["x", "y"][state.thread_dims];
                        state.thread_dims += 1;
                        indent(out, depth);
                        let _ = writeln!(
                            out,
                            "/* {var} = threadIdx.{axis} (thread-mapped, {lb} <= {var} <= {ub}) */"
                        );
                        mapped = true;
                    }
                }
            }
            if !mapped {
                indent(out, depth);
                let _ = writeln!(out, "for ({var} = {lb}; {var} <= {ub}; {var}++) {{");
            }
            for c in body {
                render(c, depth + 1, state, out);
            }
            if !mapped {
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
        }
    }
}

fn is_innermost(body: &[AstNode]) -> bool {
    !body.iter().any(|n| matches!(n, AstNode::For { .. }))
}

/// Renders a CUDA-style kernel: `__shared__` declarations for the
/// tile-local arrays (name, element count) followed by the mapped body —
/// the form the paper's Section V-B describes for intermediate values on
/// shared memory.
pub fn print_cuda_kernel(ast: &[AstNode], shared: &[(String, usize)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "__global__ void kernel0(...) {{");
    for (name, elems) in shared {
        let _ = writeln!(out, "  __shared__ float {name}_local[{elems}];");
    }
    let body = print(ast, Target::Cuda);
    for line in body.lines() {
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ast() -> Vec<AstNode> {
        vec![AstNode::For {
            var: "t0".into(),
            lb: "0".into(),
            ub: "3".into(),
            parallel: true,
            role: "tile",
            body: vec![AstNode::For {
                var: "c1".into(),
                lb: "4t0".into(),
                ub: "4t0 + 3".into(),
                parallel: true,
                role: "point",
                body: vec![AstNode::Stmt {
                    name: "S".into(),
                    args: vec!["c1".into()],
                }],
            }],
        }]
    }

    #[test]
    fn openmp_adds_parallel_pragma_once() {
        let text = print(&sample_ast(), Target::OpenMp);
        assert_eq!(
            text.matches("#pragma omp parallel for").count(),
            1,
            "{text}"
        );
        assert!(text.contains("#pragma ivdep"), "{text}");
        assert!(text.contains("for (t0 = 0; t0 <= 3; t0++)"), "{text}");
        assert!(text.contains("S(c1);"), "{text}");
    }

    #[test]
    fn cuda_maps_tile_to_blocks_and_points_to_threads() {
        let text = print(&sample_ast(), Target::Cuda);
        assert!(text.contains("blockIdx.x"), "{text}");
        assert!(text.contains("threadIdx.x"), "{text}");
        // Mapped loops are not emitted as `for`.
        assert!(!text.contains("for (t0"), "{text}");
        assert!(!text.contains("for (c1"), "{text}");
    }

    #[test]
    fn cce_annotates_memory_scopes() {
        let text = print(&sample_ast(), Target::Cce);
        assert!(text.contains("DDR -> L1"), "{text}");
        assert!(text.contains("L0A/L0B"), "{text}");
        // All loops still rendered.
        assert!(text.contains("for (t0"), "{text}");
        assert!(text.contains("for (c1"), "{text}");
    }

    #[test]
    fn comments_render() {
        let ast = vec![AstNode::Comment("hello".into())];
        let text = print(&ast, Target::OpenMp);
        assert_eq!(text, "/* hello */\n");
    }
}
