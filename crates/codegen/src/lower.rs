//! Lowering: optimized schedule tree → bytecode.
//!
//! The pass reproduces the interpreter's execution order *by construction*
//! instead of by sorting: every flattened entry's schedule graph is viewed
//! as a loop nest over `[schedule dims, instance dims]` (the reverse of the
//! wrapped set the interpreter scans), the per-level Fourier–Motzkin bounds
//! from the [`Scanner`] become compiled guard rows with parameters folded
//! in, and the entries' disjunct *streams* are merged into one shared loop
//! nest: schedule dimensions that are compile-time constants become
//! [`Inst::SetDim`] partitions emitted in ascending order, everything else
//! becomes a merged [`Inst::LoopOpen`] whose per-stream guards keep each
//! stream's activity in sync while the union range is walked ascending.
//! Either way the VM visits schedule tuples in exactly the lexicographic
//! `(sched, entry order, instance)` order the interpreter's global sort
//! produces.
//!
//! Invariants the pass maintains (checked by the differential tests and
//! the fuzz oracle's VM check):
//!
//! 1. **Order** — loops iterate ascending, static partitions are emitted
//!    ascending, fibers run in flattened-entry order: the instance
//!    sequence equals the interpreter's sorted work list.
//! 2. **Exactness** — for div-free streams the per-level bounds are exact
//!    (see [`Scanner::branch_exact`]) once branches that are empty under
//!    the concrete parameters are dropped (their emptiness lives in
//!    pure-parameter rows no loop level ever checks); streams with
//!    existential divs carry the exact [`BasicSet`] for a per-point
//!    membership test.
//! 3. **Scratch** — a clear is attached to every loop increment (and
//!    emitted between static partitions) at depth `d` for each scratch
//!    buffer of scope `> d`: exactly the set the interpreter clears when
//!    consecutive schedule tuples first differ at `d`.
//! 4. **Parallelism** — a loop is marked parallel iff the interpreter's
//!    `par_ok` predicate holds at its depth (all entries coincident, all
//!    scratch scopes deeper); such dimensions are never turned into static
//!    partitions so the VM can fan them out.
//!
//! [`Scanner`]: tilefuse_presburger::Scanner
//! [`BasicSet`]: tilefuse_presburger::BasicSet
//! [`Inst::SetDim`]: crate::bytecode::Inst::SetDim
//! [`Inst::LoopOpen`]: crate::bytecode::Inst::LoopOpen

use std::collections::{BTreeMap, BTreeSet};

use crate::bytecode::{
    BodyOp, BufMeta, CAccess, CAffine, CBound, CLevel, CompiledBody, CompiledProgram, FiberMeta,
    FusedMeta, Inst, KernelKind, LoopMeta, ScratchMeta, StreamGuard, StreamMeta,
};
use crate::error::{Error, Result};
use crate::interp::make_binding;
use tilefuse_pir::{ArrayId, Expr, IdxExpr, Program};
use tilefuse_presburger::{LoopBounds, Scanner, Set};
use tilefuse_schedtree::{flatten, ScheduleTree};

/// `ceil(n / d)` for `d > 0` (mirrors the scanner's bound evaluation).
pub(crate) fn cdiv(n: i64, d: i64) -> i64 {
    let q = n / d;
    if n % d != 0 && (n < 0) == (d < 0) {
        q + 1
    } else {
        q
    }
}

/// `floor(n / d)` for `d > 0` (mirrors the scanner's bound evaluation).
pub(crate) fn fdiv(n: i64, d: i64) -> i64 {
    let q = n / d;
    if n % d != 0 && (n < 0) != (d < 0) {
        q - 1
    } else {
        q
    }
}

/// Folds a scanner bound row `[params | dims | const]` into a [`CBound`]
/// with the parameter contribution substituted.
fn cbound(coeff: i64, row: &[i64], n_param: usize, values: &[i64]) -> CBound {
    let mut constant = row[row.len() - 1];
    for (c, v) in row[..n_param].iter().zip(values) {
        constant += c * v;
    }
    let terms = row[n_param..row.len() - 1]
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(j, &c)| (j, c))
        .collect();
    CBound {
        coeff,
        terms,
        constant,
    }
}

fn clevel(lb: &LoopBounds, n_param: usize, values: &[i64]) -> CLevel {
    // Canonicalize: `max(lowers)` / `min(uppers)` are order-insensitive
    // multiset reductions, so sorting and deduplicating changes nothing
    // semantically but lets identical FM branches collapse into one
    // stream (the real-shadow case splits produce thousands of disjuncts
    // that fold to a handful of distinct bound sets after parameter
    // substitution).
    let mut lowers: Vec<CBound> = lb
        .lowers
        .iter()
        .map(|(a, r)| cbound(*a, r, n_param, values))
        .collect();
    let mut uppers: Vec<CBound> = lb
        .uppers
        .iter()
        .map(|(b, r)| cbound(*b, r, n_param, values))
        .collect();
    lowers.sort_unstable();
    lowers.dedup();
    uppers.sort_unstable();
    uppers.dedup();
    CLevel {
        lowers: if lowers.is_empty() {
            Vec::new()
        } else {
            vec![lowers]
        },
        uppers: if uppers.is_empty() {
            Vec::new()
        } else {
            vec![uppers]
        },
    }
}

/// Whether the level has both a lower and an upper bound (a union-box
/// merge needs every contributing disjunct bounded on every level, or the
/// box itself would be unbounded where some disjuncts are fine).
fn level_bounded(level: &CLevel) -> bool {
    !level.lowers.is_empty() && !level.uppers.is_empty()
}

/// The union box of several single-stream levels: each stream's bound
/// rows become one alternative group (deduplicated), so the merged level
/// covers the union of the per-stream ranges at every outer point.
fn merge_levels<'a>(levels: impl Iterator<Item = &'a CLevel>) -> CLevel {
    let mut lowers: BTreeSet<Vec<CBound>> = BTreeSet::new();
    let mut uppers: BTreeSet<Vec<CBound>> = BTreeSet::new();
    for l in levels {
        lowers.extend(l.lowers.iter().cloned());
        uppers.extend(l.uppers.iter().cloned());
    }
    CLevel {
        lowers: lowers.into_iter().collect(),
        uppers: uppers.into_iter().collect(),
    }
}

/// What a stream's compiled bounds say about one schedule dimension.
enum LevelShape {
    /// Pinned to a single compile-time constant.
    Pinned(i64),
    /// Provably empty under the concrete parameters.
    Empty,
    /// A runtime range (or dependent on outer dimensions).
    Dynamic,
}

fn level_shape(level: &CLevel) -> LevelShape {
    if !level_bounded(level) {
        return LevelShape::Dynamic; // unbounded: leave for the runtime check
    }
    if level
        .lowers
        .iter()
        .chain(&level.uppers)
        .flatten()
        .any(|b| !b.terms.is_empty())
    {
        return LevelShape::Dynamic;
    }
    let (Some(lo), Some(hi)) = (level.lo(&[]), level.hi(&[])) else {
        return LevelShape::Dynamic;
    };
    if lo > hi {
        LevelShape::Empty
    } else if lo == hi {
        LevelShape::Pinned(lo)
    } else {
        LevelShape::Dynamic
    }
}

/// Whether a level's bounds pin the dimension to an affine function of the
/// outer dimensions (an equality constraint): used only to classify fused
/// kernels for the disassembly.
fn level_pinned(level: &CLevel) -> bool {
    let ([lowers], [uppers]) = (&level.lowers[..], &level.uppers[..]) else {
        return false; // union boxes span a range by construction
    };
    lowers.iter().any(|lo| {
        uppers.iter().any(|up| {
            lo.coeff == up.coeff
                && lo.constant == -up.constant
                && lo.terms.len() == up.terms.len()
                && lo
                    .terms
                    .iter()
                    .zip(&up.terms)
                    .all(|(&(r1, c1), &(r2, c2))| r1 == r2 && c1 == -c2)
        })
    })
}

/// One scannable disjunct during lowering: the program-level
/// [`StreamMeta`] plus the schedule-dim levels that become loop guards.
struct LStream {
    sched: Vec<CLevel>,
}

struct Emitter<'a> {
    n_sched: usize,
    par_ok: &'a [bool],
    lstreams: &'a [LStream],
    streams: &'a [StreamMeta],
    /// Body index per entry.
    entry_body: &'a [usize],
    /// Scratch indices by scope, for clear sets.
    scratch_scopes: Vec<usize>,
    insts: Vec<Inst>,
    loops: Vec<LoopMeta>,
    fused: Vec<FusedMeta>,
    fibers: Vec<FiberMeta>,
    bodies: &'a [CompiledBody],
}

impl Emitter<'_> {
    /// Scratch buffers cleared when the schedule prefix changes at `d`.
    fn clears_at(&self, d: usize) -> Vec<usize> {
        self.scratch_scopes
            .iter()
            .enumerate()
            .filter(|&(_, &scope)| scope > d)
            .map(|(i, _)| i)
            .collect()
    }

    /// Static partition: every live stream pins dimension `d` to a
    /// constant. Returns the groups in ascending dimension value.
    fn try_static(&self, streams: &[usize], d: usize) -> Option<Vec<(i64, Vec<usize>)>> {
        let mut groups: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        for &s in streams {
            match level_shape(&self.lstreams[s].sched[d]) {
                LevelShape::Pinned(v) => groups.entry(v).or_default().push(s),
                LevelShape::Empty => {}
                LevelShape::Dynamic => return None,
            }
        }
        Some(groups.into_iter().collect())
    }

    fn make_fiber(&mut self, entry: usize, streams: Vec<usize>) -> usize {
        let n_inst = self.streams[streams[0]].inst_levels.len();
        // Partition into walk groups: streams whose instance-level bounds
        // and exact test coincide enumerate the same box at every point.
        let mut by_key: BTreeMap<(&[CLevel], Option<String>), Vec<usize>> = BTreeMap::new();
        for &s in &streams {
            let sm = &self.streams[s];
            let key = (
                sm.inst_levels.as_slice(),
                sm.exact.as_ref().map(|e| format!("{e:?}")),
            );
            by_key.entry(key).or_default().push(s);
        }
        let groups = by_key.into_values().collect();
        self.fibers.push(FiberMeta {
            entry,
            streams,
            groups,
            body: self.entry_body[entry],
            n_inst,
        });
        self.fibers.len() - 1
    }

    /// Innermost-loop specialization: a single stream whose deeper
    /// schedule dims are all pinned constants, with no scratch cleared at
    /// or below this depth. (An exact membership test is fine: the fiber
    /// walk filters phantom points at the leaf either way.)
    fn try_fused(&mut self, streams: &[usize], d: usize) -> bool {
        if streams.len() != 1 {
            return false;
        }
        let s = streams[0];
        if !self.clears_at(d).is_empty() {
            return false;
        }
        let mut pins = Vec::new();
        for dd in d + 1..self.n_sched {
            match level_shape(&self.lstreams[s].sched[dd]) {
                LevelShape::Pinned(v) => pins.push((dd, v)),
                _ => return false,
            }
        }
        let level = self.lstreams[s].sched[d].clone();
        let kind = self.classify(s);
        let fiber = self.make_fiber(self.streams[s].entry, vec![s]);
        self.fused.push(FusedMeta {
            dim: d,
            parallel: self.par_ok.get(d).copied().unwrap_or(false),
            level,
            pins,
            fiber,
            kind,
        });
        self.insts.push(Inst::Fused(self.fused.len() - 1));
        true
    }

    fn classify(&self, s: usize) -> KernelKind {
        if !self.streams[s].inst_levels.iter().all(level_pinned) {
            return KernelKind::Combine;
        }
        let body = &self.bodies[self.entry_body[self.streams[s].entry]];
        let translation_of_store = |acc: &CAccess| {
            acc.coords.len() == body.store.coords.len()
                && acc
                    .coords
                    .iter()
                    .zip(&body.store.coords)
                    .all(|(a, b)| a.terms == b.terms && a.constant == b.constant)
        };
        if body.accesses.iter().all(translation_of_store) {
            KernelKind::Point
        } else {
            KernelKind::Stencil
        }
    }

    fn emit(&mut self, streams: &[usize], d: usize) {
        if streams.is_empty() {
            return;
        }
        if d == self.n_sched {
            // Leaf: one fiber per entry, in flattened-entry order.
            let mut by_entry: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &s in streams {
                by_entry.entry(self.streams[s].entry).or_default().push(s);
            }
            for (entry, ss) in by_entry {
                let f = self.make_fiber(entry, ss);
                self.insts.push(Inst::Fiber(f));
            }
            return;
        }
        let parallel = self.par_ok.get(d).copied().unwrap_or(false);
        // Static partitions would serialize a parallel dimension, so only
        // consider them where the interpreter could not fan out either.
        if !parallel {
            if let Some(groups) = self.try_static(streams, d) {
                let clears = self.clears_at(d);
                for (gi, (value, group)) in groups.iter().enumerate() {
                    if gi > 0 && !clears.is_empty() {
                        self.insts.push(Inst::Clear(clears.clone()));
                    }
                    self.insts.push(Inst::SetDim {
                        dim: d,
                        value: *value,
                    });
                    self.emit(group, d + 1);
                }
                return;
            }
        }
        if self.try_fused(streams, d) {
            return;
        }
        let guards = streams
            .iter()
            .map(|&s| StreamGuard {
                stream: s,
                level: self.lstreams[s].sched[d].clone(),
            })
            .collect();
        let l = self.loops.len();
        self.loops.push(LoopMeta {
            dim: d,
            parallel,
            open_ip: 0,
            close_ip: 0,
            guards,
            clears: self.clears_at(d),
        });
        let open_ip = self.insts.len();
        self.insts.push(Inst::LoopOpen(l));
        self.emit(streams, d + 1);
        let close_ip = self.insts.len();
        self.insts.push(Inst::LoopClose(l));
        self.loops[l].open_ip = open_ip;
        self.loops[l].close_ip = close_ip;
    }
}

fn caffine(e: &IdxExpr, n_sched: usize, program: &Program, values: &[i64]) -> CAffine {
    let bind = make_binding(program, values);
    let mut constant = e.constant_term();
    for (n, c) in e.param_terms() {
        constant += c * bind(n);
    }
    let terms = (0..e.n_dims())
        .filter(|&d| e.dim_coeff(d) != 0)
        .map(|d| (n_sched + d, e.dim_coeff(d)))
        .collect();
    CAffine { terms, constant }
}

/// Compiles one statement body to register form, emitting ops in the
/// interpreter's left-to-right evaluation order so loads, errors and
/// floating-point rounding replay identically.
fn compile_body(
    program: &Program,
    stmt_idx: usize,
    body: &tilefuse_pir::Body,
    n_sched: usize,
    values: &[i64],
    buf_of: &BTreeMap<ArrayId, usize>,
) -> CompiledBody {
    let mut ops = Vec::new();
    let mut accesses = Vec::new();
    let mut next_reg = 0usize;
    let result = compile_expr(
        &body.rhs,
        program,
        n_sched,
        values,
        buf_of,
        &mut ops,
        &mut accesses,
        &mut next_reg,
    );
    let store = CAccess {
        buf: buf_of[&body.target],
        coords: body
            .target_idx
            .iter()
            .map(|e| caffine(e, n_sched, program, values))
            .collect(),
    };
    CompiledBody {
        stmt: stmt_idx,
        ops,
        accesses,
        store,
        result,
        n_regs: next_reg.max(1),
    }
}

#[allow(clippy::too_many_arguments)]
fn compile_expr(
    e: &Expr,
    program: &Program,
    n_sched: usize,
    values: &[i64],
    buf_of: &BTreeMap<ArrayId, usize>,
    ops: &mut Vec<BodyOp>,
    accesses: &mut Vec<CAccess>,
    next_reg: &mut usize,
) -> usize {
    fn alloc(next_reg: &mut usize) -> usize {
        let r = *next_reg;
        *next_reg += 1;
        r
    }
    match e {
        Expr::Const(v) => {
            let dst = alloc(next_reg);
            ops.push(BodyOp::Const { dst, v: *v });
            dst
        }
        Expr::Iter(d) => {
            let dst = alloc(next_reg);
            ops.push(BodyOp::Iter {
                dst,
                reg: n_sched + d,
            });
            dst
        }
        Expr::Load(arr, idx) => {
            let acc = accesses.len();
            accesses.push(CAccess {
                buf: buf_of[arr],
                coords: idx
                    .iter()
                    .map(|i| caffine(i, n_sched, program, values))
                    .collect(),
            });
            let dst = alloc(next_reg);
            ops.push(BodyOp::Load { dst, acc });
            dst
        }
        Expr::Bin(op, l, r) => {
            let a = compile_expr(l, program, n_sched, values, buf_of, ops, accesses, next_reg);
            let b = compile_expr(r, program, n_sched, values, buf_of, ops, accesses, next_reg);
            let dst = alloc(next_reg);
            ops.push(BodyOp::Bin { op: *op, dst, a, b });
            dst
        }
        Expr::Un(op, x) => {
            let a = compile_expr(x, program, n_sched, values, buf_of, ops, accesses, next_reg);
            let dst = alloc(next_reg);
            ops.push(BodyOp::Un { op: *op, dst, a });
            dst
        }
    }
}

/// Whether a branch is empty under the concrete parameter values because
/// of constraints that involve no set dimension and no div — rows no loop
/// level ever records, which the interpreter only catches through its leaf
/// membership test.
fn empty_under_params(b: &tilefuse_presburger::BasicSet, values: &[i64]) -> bool {
    let n_param = b.space().n_param();
    let n_var = b.space().n_dim() + b.n_div();
    let pure = |r: &[i64]| r[n_param..n_param + n_var].iter().all(|&c| c == 0);
    let eval = |r: &[i64]| {
        r[..n_param]
            .iter()
            .zip(values)
            .map(|(c, v)| c * v)
            .sum::<i64>()
            + r[r.len() - 1]
    };
    b.ineq_rows().iter().any(|r| pure(r) && eval(r) < 0)
        || b.eq_rows().iter().any(|r| pure(r) && eval(r) != 0)
}

/// Lowers an optimized schedule tree to a [`CompiledProgram`] for the
/// concrete parameter binding given by `overrides`.
///
/// `scratch_scopes` is the same map [`crate::execute_tree`] takes: each
/// tile-local array's schedule-prefix length.
///
/// # Errors
/// Returns an error on malformed trees, unknown statements, scanner
/// overflow, or when the resource governor's budget is exhausted.
pub fn lower_tree(
    program: &Program,
    tree: &ScheduleTree,
    overrides: &[(&str, i64)],
    scratch_scopes: &BTreeMap<ArrayId, usize>,
) -> Result<CompiledProgram> {
    let _span = tilefuse_trace::span!("codegen/lower", "{}", program.name());
    tilefuse_trace::governor::checkpoint("codegen/lower")
        .map_err(|e| Error::Presburger(tilefuse_presburger::Error::from(e)))?;
    program.validate_params()?;
    let values = program.param_values(overrides);
    let entries = flatten(tree)?;
    let n_sched = entries
        .iter()
        .map(|e| e.schedule.space().n_out())
        .max()
        .unwrap_or(0);

    // Parallelizable depths: the same predicate the parallel interpreter
    // uses (all entries coincident, every scratch scope strictly deeper).
    let mut par_ok = vec![true; n_sched];
    for e in &entries {
        for (d, ok) in par_ok.iter_mut().enumerate() {
            *ok &= e.par_depths.get(d).copied().unwrap_or(false);
        }
    }
    let min_scope = scratch_scopes.values().copied().min().unwrap_or(usize::MAX);
    for (d, ok) in par_ok.iter_mut().enumerate() {
        *ok &= d < min_scope;
    }

    // Buffers, in array-id order.
    let mut bufs = Vec::new();
    let mut buf_of = BTreeMap::new();
    {
        let bind = make_binding(program, &values);
        for a in program.arrays() {
            let shape = a.shape(&bind);
            let len = shape.iter().product::<i64>().max(0) as usize;
            buf_of.insert(a.id(), bufs.len());
            bufs.push(BufMeta {
                array: a.id(),
                name: a.name().to_owned(),
                shape,
                len,
                scratch: None,
            });
        }
    }
    let mut scratch = Vec::new();
    for (&arr, &scope) in scratch_scopes {
        let buf = *buf_of
            .get(&arr)
            .ok_or_else(|| Error::Exec(format!("scratch scope for unknown array {arr:?}")))?;
        bufs[buf].scratch = Some(scratch.len());
        scratch.push(ScratchMeta { buf, scope });
    }

    // Bodies: one per distinct statement, in first-appearance order.
    let mut stmt_names: Vec<String> = Vec::new();
    let mut body_of_stmt: BTreeMap<String, usize> = BTreeMap::new();
    let mut bodies = Vec::new();
    let mut entry_body = Vec::with_capacity(entries.len());
    let mut entry_labels = Vec::with_capacity(entries.len());
    for (order, e) in entries.iter().enumerate() {
        let stmt = program
            .stmt_named(&e.stmt)
            .ok_or_else(|| Error::Exec(format!("unknown statement {}", e.stmt)))?;
        let body = match body_of_stmt.get(&e.stmt) {
            Some(&b) => b,
            None => {
                let idx = stmt_names.len();
                stmt_names.push(e.stmt.clone());
                bodies.push(compile_body(
                    program,
                    idx,
                    stmt.body(),
                    n_sched,
                    &values,
                    &buf_of,
                ));
                body_of_stmt.insert(e.stmt.clone(), bodies.len() - 1);
                bodies.len() - 1
            }
        };
        entry_body.push(body);
        entry_labels.push(format!("{}#{order}", e.stmt));
    }

    // Streams: the disjuncts of each entry's schedule graph, scanned as
    // [sched dims, inst dims].
    let n_param = program.params().len();
    let mut lstreams = Vec::new();
    let mut streams = Vec::new();
    let mut max_inst = 0usize;
    for (order, e) in entries.iter().enumerate() {
        tilefuse_trace::governor::checkpoint("codegen/lower")
            .map_err(|g| Error::Presburger(tilefuse_presburger::Error::from(g)))?;
        let n_inst = e.schedule.space().n_in();
        max_inst = max_inst.max(n_inst);
        let graph = e.schedule.intersect_domain(&e.domain)?;
        let rev = graph.reverse();
        let ws = rev.as_wrapped_set();
        let scanner = Scanner::new(ws, &values)?;
        // The FM real-shadow case splits can produce branches whose
        // compiled bounds are identical after parameter substitution; a
        // stream enumerates the same point set as any bound-identical
        // sibling (and the fiber deduplicates instances anyway), so keep
        // one representative per distinct triple.
        let mut seen: BTreeSet<(Vec<CLevel>, Vec<CLevel>, Option<String>)> = BTreeSet::new();
        let mut e_lstreams = Vec::new();
        let mut e_streams = Vec::new();
        for bi in 0..scanner.n_branch() {
            let exact_set = scanner.branch_exact(bi);
            if empty_under_params(exact_set, &values) {
                continue;
            }
            let levels = scanner.branch_bounds(bi);
            debug_assert_eq!(levels.len(), n_sched + n_inst);
            let sched: Vec<CLevel> = levels[..n_sched.min(levels.len())]
                .iter()
                .map(|lb| clevel(lb, n_param, &values))
                .collect();
            let inst_levels: Vec<CLevel> = levels[n_sched.min(levels.len())..]
                .iter()
                .map(|lb| clevel(lb, n_param, &values))
                .collect();
            let exact = (exact_set.n_div() > 0).then(|| Set::from_basic(exact_set.clone()));
            let key = (
                sched.clone(),
                inst_levels.clone(),
                exact.as_ref().map(|s| format!("{s:?}")),
            );
            if !seen.insert(key) {
                continue;
            }
            e_lstreams.push(LStream { sched });
            e_streams.push(StreamMeta {
                entry: order,
                inst_levels,
                exact,
            });
        }
        // Tile-halo relations decompose into hundreds or thousands of
        // clip case-split disjuncts; kept as separate streams they make
        // per-point fiber and guard cost O(disjuncts). Collapse such an
        // entry into ONE stream whose levels are the union box of the
        // per-disjunct bounds (alternative groups, min-of-max /
        // max-of-min) with the full wrapped set as a runtime membership
        // test rejecting box points outside the union. Requires every
        // disjunct bounded on every level, or the box would be unbounded
        // where individual disjuncts are fine.
        const MERGE_THRESHOLD: usize = 8;
        let bounded = e_streams
            .iter()
            .zip(&e_lstreams)
            .all(|(sm, ls)| sm.inst_levels.iter().chain(&ls.sched).all(level_bounded));
        if e_streams.len() > MERGE_THRESHOLD && bounded {
            let sched: Vec<CLevel> = (0..n_sched)
                .map(|d| merge_levels(e_lstreams.iter().map(|ls| &ls.sched[d])))
                .collect();
            let inst_levels: Vec<CLevel> = (0..n_inst)
                .map(|k| merge_levels(e_streams.iter().map(|sm| &sm.inst_levels[k])))
                .collect();
            lstreams.push(LStream { sched });
            streams.push(StreamMeta {
                entry: order,
                inst_levels,
                exact: Some(ws.clone()),
            });
        } else {
            lstreams.extend(e_lstreams);
            streams.extend(e_streams);
        }
    }

    let mut em = Emitter {
        n_sched,
        par_ok: &par_ok,
        lstreams: &lstreams,
        streams: &streams,
        entry_body: &entry_body,
        scratch_scopes: scratch.iter().map(|s| s.scope).collect(),
        insts: Vec::new(),
        loops: Vec::new(),
        fused: Vec::new(),
        fibers: Vec::new(),
        bodies: &bodies,
    };
    let all: Vec<usize> = (0..streams.len()).collect();
    em.emit(&all, 0);

    Ok(CompiledProgram {
        name: program.name().to_owned(),
        insts: em.insts,
        loops: em.loops,
        fused: em.fused,
        fibers: em.fibers,
        streams,
        bodies,
        bufs,
        scratch,
        stmt_names,
        n_sched,
        max_inst,
        param_names: program.params().iter().map(|(n, _)| n.clone()).collect(),
        param_values: values,
        entry_labels,
    })
}

impl CompiledProgram {
    /// Deliberately corrupts the lowering: offsets the last coordinate of
    /// the first compiled load access by one. Used by the fuzz harness's
    /// `VmMisLower` fault injection to prove the VM differential check
    /// catches bad lowerings; returns `false` if no load exists to corrupt.
    pub fn inject_mis_lower(&mut self) -> bool {
        for body in &mut self.bodies {
            for acc in &mut body.accesses {
                if let Some(c) = acc.coords.last_mut() {
                    c.constant += 1;
                    return true;
                }
            }
        }
        false
    }
}
