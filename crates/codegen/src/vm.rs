//! The bytecode virtual machine: executes a [`CompiledProgram`]
//! bit-identically to the schedule-tree interpreter.
//!
//! Where the interpreter materializes and sorts the full `(schedule tuple,
//! instance)` work list and re-resolves names per instance, the VM walks
//! the compiled loop nest directly: integer dim registers drive compiled
//! affine bounds, statement bodies run as flat register programs, and
//! tile-local scratch is an epoch-stamped flat array — clearing a tile is
//! an epoch bump, not a `BTreeMap` sweep. Statistics (instances, loads,
//! stores, scratch hits) are counted at exactly the interpreter's points,
//! so [`ExecStats`] match bit-for-bit.
//!
//! Parallel execution mirrors [`crate::execute_tree_parallel`]: at the
//! outermost loop marked parallel the iterations fan out across OS
//! threads, each against a copy-on-write overlay and a private scratch;
//! write logs and statistics merge back in ascending iteration order, so
//! the result is independent of thread count and interleaving.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::bytecode::{BodyOp, CAccess, CLevel, CompiledProgram, FiberMeta, Inst};
use crate::error::{Error, Result};
use crate::interp::{default_threads, execute_tree_parallel, ExecContext, ExecStats};
use tilefuse_pir::{ArrayId, BinOp, Program, UnOp};
use tilefuse_schedtree::ScheduleTree;

/// Backing memory for a VM run: the top-level machine writes straight
/// through; each parallel worker logs into a copy-on-write overlay keyed
/// by `(buffer, flat index)`, merged back in chunk order.
enum Mem<'a> {
    Direct(&'a mut Vec<Vec<f64>>),
    Overlay {
        base: &'a [Vec<f64>],
        writes: BTreeMap<(usize, usize), f64>,
    },
}

impl Mem<'_> {
    #[inline]
    fn load(&self, buf: usize, idx: usize) -> f64 {
        match self {
            Mem::Direct(d) => d[buf][idx],
            Mem::Overlay { base, writes } => writes
                .get(&(buf, idx))
                .copied()
                .unwrap_or_else(|| base[buf][idx]),
        }
    }

    #[inline]
    fn store(&mut self, buf: usize, idx: usize, v: f64) {
        match self {
            Mem::Direct(d) => d[buf][idx] = v,
            Mem::Overlay { writes, .. } => {
                writes.insert((buf, idx), v);
            }
        }
    }
}

/// Counters in index form; converted to [`ExecStats`] once at the end.
#[derive(Clone)]
struct RawStats {
    instances: Vec<u64>,
    loads: u64,
    stores: u64,
    scratch_hits: u64,
}

impl RawStats {
    fn new(n_stmts: usize) -> Self {
        RawStats {
            instances: vec![0; n_stmts],
            loads: 0,
            stores: 0,
            scratch_hits: 0,
        }
    }

    fn merge(&mut self, other: &RawStats) {
        for (a, b) in self.instances.iter_mut().zip(&other.instances) {
            *a += b;
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.scratch_hits += other.scratch_hits;
    }

    fn into_stats(self, names: &[String]) -> ExecStats {
        let mut stats = ExecStats {
            loads: self.loads,
            stores: self.stores,
            scratch_hits: self.scratch_hits,
            ..ExecStats::default()
        };
        for (name, &n) in names.iter().zip(&self.instances) {
            if n > 0 {
                stats.instances.insert(name.clone(), n);
            }
        }
        stats
    }
}

/// Epoch-stamped tile-local storage: `clear` is an epoch bump; an element
/// is live iff its stamp equals the current epoch. Out-of-range or
/// wrong-arity coordinates — which the interpreter's `BTreeMap` scratch
/// accepts silently — spill to a side map so the semantics stay identical.
struct ScratchState {
    data: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    side: BTreeMap<Vec<i64>, (u32, f64)>,
}

impl ScratchState {
    fn new(len: usize) -> Self {
        ScratchState {
            data: vec![0.0; len],
            stamp: vec![0; len],
            epoch: 1,
            side: BTreeMap::new(),
        }
    }

    fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
            self.side.clear();
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> Option<f64> {
        (self.stamp[idx] == self.epoch).then(|| self.data[idx])
    }

    #[inline]
    fn put(&mut self, idx: usize, v: f64) {
        self.data[idx] = v;
        self.stamp[idx] = self.epoch;
    }

    fn get_side(&self, coords: &[i64]) -> Option<f64> {
        self.side
            .get(coords)
            .filter(|(e, _)| *e == self.epoch)
            .map(|&(_, v)| v)
    }

    fn put_side(&mut self, coords: Vec<i64>, v: f64) {
        self.side.insert(coords, (self.epoch, v));
    }
}

/// Per-loop iteration state. A loop id appears exactly once in the
/// instruction stream and loops never re-enter themselves, so one slot per
/// loop suffices — no runtime stack.
#[derive(Default, Clone)]
struct LoopState {
    cur: i64,
    hi: i64,
    /// Per-guard `[lo, hi]` under the current outer prefix.
    ranges: Vec<(i64, i64)>,
    /// Whether each guard's stream was active when the loop opened.
    entered: Vec<bool>,
}

/// What a parallel section executes per claimed iteration value.
enum ParJob<'a> {
    Loop {
        l: usize,
        ranges: &'a [(i64, i64)],
        entered: &'a [bool],
    },
    Fused(usize),
}

struct Machine<'p> {
    prog: &'p CompiledProgram,
    /// Shared integer register file: schedule dims `0..n_sched`, then the
    /// current fiber's instance dims.
    dims: Vec<i64>,
    active: Vec<bool>,
    lstate: Vec<LoopState>,
    scratch: Vec<ScratchState>,
    regs: Vec<f64>,
    stats: RawStats,
    n_threads: usize,
    /// Per-stream index of the disjunct that last accepted a membership
    /// query. Consecutive lexicographic points almost always fall in the
    /// same disjunct, so trying it first makes `in_exact` amortized O(1)
    /// even when the exact set has thousands of case-split branches.
    mru: Vec<usize>,
}

impl<'p> Machine<'p> {
    fn new(prog: &'p CompiledProgram, n_threads: usize) -> Self {
        let n_regs = prog.bodies.iter().map(|b| b.n_regs).max().unwrap_or(1);
        Machine {
            prog,
            dims: vec![0; prog.n_sched + prog.max_inst],
            active: vec![true; prog.streams.len()],
            lstate: vec![LoopState::default(); prog.loops.len()],
            scratch: prog
                .scratch
                .iter()
                .map(|s| ScratchState::new(prog.bufs[s.buf].len))
                .collect(),
            regs: vec![0.0; n_regs],
            stats: RawStats::new(prog.stmt_names.len()),
            n_threads,
            mru: vec![0; prog.streams.len()],
        }
    }

    /// Runs instructions `[from, to)`.
    fn run(&mut self, mem: &mut Mem, from: usize, to: usize) -> Result<()> {
        let prog = self.prog;
        let mut ip = from;
        while ip < to {
            match &prog.insts[ip] {
                Inst::SetDim { dim, value } => {
                    self.dims[*dim] = *value;
                    ip += 1;
                }
                Inst::Clear(list) => {
                    for &s in list {
                        self.scratch[s].clear();
                    }
                    ip += 1;
                }
                Inst::LoopOpen(l) => {
                    ip = self.loop_open(*l, mem)?;
                }
                Inst::LoopClose(l) => {
                    ip = self.loop_close(*l);
                }
                Inst::Fiber(f) => {
                    self.fiber(*f, mem)?;
                    ip += 1;
                }
                Inst::Fused(f) => {
                    self.fused(*f, mem)?;
                    ip += 1;
                }
            }
        }
        Ok(())
    }

    /// Evaluates the loop's guards and either enters the first populated
    /// iteration, dispatches the whole range in parallel, or skips the
    /// loop. Returns the next instruction pointer.
    fn loop_open(&mut self, l: usize, mem: &mut Mem) -> Result<usize> {
        let prog = self.prog;
        let meta = &prog.loops[l];
        let n_guards = meta.guards.len();
        let mut ranges = vec![(1i64, 0i64); n_guards];
        let mut entered = vec![false; n_guards];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for (gi, g) in meta.guards.iter().enumerate() {
            if !self.active[g.stream] {
                continue;
            }
            entered[gi] = true;
            let (Some(ls), Some(hs)) = (g.level.lo(&self.dims), g.level.hi(&self.dims)) else {
                return Err(Error::Exec(format!(
                    "unbounded schedule dimension {}",
                    meta.dim
                )));
            };
            ranges[gi] = (ls, hs);
            if ls <= hs {
                lo = lo.min(ls);
                hi = hi.max(hs);
            }
        }
        if lo > hi {
            return Ok(meta.close_ip + 1);
        }
        if meta.parallel && self.n_threads > 1 && hi > lo {
            let job = ParJob::Loop {
                l,
                ranges: &ranges,
                entered: &entered,
            };
            self.run_parallel(&job, lo, hi, mem)?;
            // The merged state is what sequential execution would leave
            // after the last iteration; the next instance's prefix differs
            // at most at this depth, so clear everything scoped deeper.
            for &s in &prog.loops[l].clears {
                self.scratch[s].clear();
            }
            return Ok(prog.loops[l].close_ip + 1);
        }
        self.dims[meta.dim] = lo;
        for (gi, g) in meta.guards.iter().enumerate() {
            self.active[g.stream] = entered[gi] && lo >= ranges[gi].0 && lo <= ranges[gi].1;
        }
        self.lstate[l] = LoopState {
            cur: lo,
            hi,
            ranges,
            entered,
        };
        Ok(meta.open_ip + 1)
    }

    /// Advances the loop: bumps deeper-scoped scratch epochs on every
    /// increment (the interpreter clears exactly these arrays when the
    /// schedule prefix changes at this depth), skips values where no
    /// stream is live, and either jumps back to the body or falls through.
    fn loop_close(&mut self, l: usize) -> usize {
        let prog = self.prog;
        let meta = &prog.loops[l];
        let hi = self.lstate[l].hi;
        let mut cur = self.lstate[l].cur;
        loop {
            cur += 1;
            if cur > hi {
                self.lstate[l].cur = cur;
                return meta.close_ip + 1;
            }
            for &s in &meta.clears {
                self.scratch[s].clear();
            }
            let mut any = false;
            for (gi, g) in meta.guards.iter().enumerate() {
                let (lo_s, hi_s) = self.lstate[l].ranges[gi];
                let a = self.lstate[l].entered[gi] && cur >= lo_s && cur <= hi_s;
                self.active[g.stream] = a;
                any |= a;
            }
            if any {
                self.dims[meta.dim] = cur;
                self.lstate[l].cur = cur;
                return meta.open_ip + 1;
            }
        }
    }

    /// Executes a specialized fused inner loop.
    fn fused(&mut self, fi: usize, mem: &mut Mem) -> Result<()> {
        let prog = self.prog;
        let meta = &prog.fused[fi];
        let fiber = &prog.fibers[meta.fiber];
        let s = fiber.streams[0];
        if !self.active[s] {
            return Ok(());
        }
        let (Some(lo), Some(hi)) = (meta.level.lo(&self.dims), meta.level.hi(&self.dims)) else {
            return Err(Error::Exec(format!(
                "unbounded schedule dimension {}",
                meta.dim
            )));
        };
        if lo > hi {
            return Ok(());
        }
        for &(d, v) in &meta.pins {
            self.dims[d] = v;
        }
        if meta.parallel && self.n_threads > 1 && hi > lo {
            return self.run_parallel(&ParJob::Fused(fi), lo, hi, mem);
        }
        for v in lo..=hi {
            self.dims[meta.dim] = v;
            self.walk_exec(s, 0, fiber, mem)?;
        }
        Ok(())
    }

    /// Executes one claimed iteration of a parallel section on a worker.
    fn run_chunk(&mut self, job: &ParJob, v: i64, mem: &mut Mem) -> Result<()> {
        let prog = self.prog;
        match *job {
            ParJob::Loop { l, ranges, entered } => {
                let meta = &prog.loops[l];
                self.dims[meta.dim] = v;
                let mut any = false;
                for (gi, g) in meta.guards.iter().enumerate() {
                    let a = entered[gi] && v >= ranges[gi].0 && v <= ranges[gi].1;
                    self.active[g.stream] = a;
                    any |= a;
                }
                if !any {
                    return Ok(());
                }
                self.run(mem, meta.open_ip + 1, meta.close_ip)
            }
            ParJob::Fused(fi) => {
                let meta = &prog.fused[fi];
                self.dims[meta.dim] = v;
                self.walk_exec(
                    prog.fibers[meta.fiber].streams[0],
                    0,
                    &prog.fibers[meta.fiber],
                    mem,
                )
            }
        }
    }

    /// Fans the iterations `lo..=hi` out across threads, mirroring the
    /// parallel interpreter: claims by atomic counter, copy-on-write
    /// overlays, private scratch, ascending merge.
    fn run_parallel(&mut self, job: &ParJob, lo: i64, hi: i64, mem: &mut Mem) -> Result<()> {
        let Mem::Direct(data) = mem else {
            // Workers run with n_threads == 1, so a nested parallel
            // section can only be reached from the top-level machine.
            return Err(Error::Exec("nested parallel VM section".into()));
        };
        let n = (hi - lo + 1) as usize;
        let threads = self.n_threads.min(n);
        type ChunkOut = (BTreeMap<(usize, usize), f64>, RawStats);
        let results: Vec<Mutex<Option<Result<ChunkOut>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let base: &[Vec<f64>] = data;
        let this: &Machine = self;
        std::thread::scope(|sc| {
            for _ in 0..threads {
                sc.spawn(|| {
                    let mut m = Machine::new(this.prog, 1);
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        let _ = tilefuse_trace::governor::checkpoint("codegen/vm-exec");
                        let v = lo + k as i64;
                        m.dims.copy_from_slice(&this.dims);
                        m.active.copy_from_slice(&this.active);
                        for sc_state in &mut m.scratch {
                            sc_state.clear();
                        }
                        m.stats = RawStats::new(this.prog.stmt_names.len());
                        let mut cmem = Mem::Overlay {
                            base,
                            writes: BTreeMap::new(),
                        };
                        let r = m.run_chunk(job, v, &mut cmem);
                        let writes = match cmem {
                            Mem::Overlay { writes, .. } => writes,
                            Mem::Direct(_) => unreachable!("worker memory is an overlay"),
                        };
                        let out = r.map(|()| (writes, m.stats.clone()));
                        *results[k].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                    }
                });
            }
        });
        for cell in results {
            let r = cell
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every chunk index was claimed by a worker");
            let (writes, chunk_stats) = r?;
            for ((buf, idx), v) in writes {
                data[buf][idx] = v;
            }
            self.stats.merge(&chunk_stats);
        }
        Ok(())
    }

    /// Runs a fiber: enumerates the owning entry's instance dims under the
    /// current schedule point and executes the body per instance, in
    /// lexicographic order. A single div-free stream walks its (exact)
    /// bounds directly; unions and divful streams collect candidates into
    /// an ordered set with the exact membership test, reproducing the
    /// scanner's dedup semantics.
    fn fiber(&mut self, f: usize, mem: &mut Mem) -> Result<()> {
        let prog = self.prog;
        let meta = &prog.fibers[f];
        // One walk per *group* whose members include an active stream: all
        // members share identical instance bounds, so any active member
        // makes the group's box live. This keeps the per-point cost at
        // O(groups), not O(streams) — crucial when a halo relation's case
        // splits produce thousands of coverage-only stream variants.
        let mut live = meta
            .groups
            .iter()
            .filter(|g| g.iter().any(|&s| self.active[s]))
            .map(|g| g[0]);
        let Some(first) = live.next() else {
            return Ok(());
        };
        if live.next().is_none() {
            // A single box enumerates in lexicographic order without
            // duplicates, and the membership filter inside `walk_exec`
            // preserves both, so no collection pass is needed.
            return self.walk_exec(first, 0, meta, mem);
        }
        let mut pts: BTreeSet<Vec<i64>> = BTreeSet::new();
        for g in &meta.groups {
            if g.iter().any(|&s| self.active[s]) {
                self.walk_collect(g[0], 0, meta.n_inst, &mut pts)?;
            }
        }
        for p in pts {
            self.dims[prog.n_sched..prog.n_sched + meta.n_inst].copy_from_slice(&p);
            self.exec_body(meta, mem)?;
        }
        Ok(())
    }

    /// Evaluates one instance level's `[lo, hi]` under the current dims.
    /// `None` means empty; an error mirrors the scanner's `Unbounded`.
    fn inst_range(&self, level: &CLevel, k: usize) -> Result<Option<(i64, i64)>> {
        let (Some(lo), Some(hi)) = (level.lo(&self.dims), level.hi(&self.dims)) else {
            return Err(Error::Exec(format!("unbounded instance dimension {k}")));
        };
        Ok((lo <= hi).then_some((lo, hi)))
    }

    /// Tests the current point (params + sched dims + first `n_inst`
    /// instance dims) against the stream's exact set, if any. Tries the
    /// most-recently-matching disjunct first (see [`Machine::mru`]).
    fn in_exact(&mut self, s: usize, n_inst: usize) -> Result<bool> {
        let prog = self.prog;
        let Some(exact) = &prog.streams[s].exact else {
            return Ok(true);
        };
        let full: Vec<i64> = prog
            .param_values
            .iter()
            .chain(&self.dims[..prog.n_sched + n_inst])
            .copied()
            .collect();
        let basics = exact.basics();
        let m = self.mru[s].min(basics.len().saturating_sub(1));
        if basics[m].contains(&full)? {
            return Ok(true);
        }
        for (i, b) in basics.iter().enumerate() {
            if i != m && b.contains(&full)? {
                self.mru[s] = i;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Direct execution walk for a single stream (or group of streams with
    /// identical bounds): enumerates the bounding box in lexicographic
    /// order, filtering through the exact set when the box over-covers.
    fn walk_exec(&mut self, s: usize, k: usize, meta: &FiberMeta, mem: &mut Mem) -> Result<()> {
        if k == meta.n_inst {
            if !self.in_exact(s, meta.n_inst)? {
                return Ok(());
            }
            return self.exec_body(meta, mem);
        }
        let prog = self.prog;
        let Some((lo, hi)) = self.inst_range(&prog.streams[s].inst_levels[k], k)? else {
            return Ok(());
        };
        for v in lo..=hi {
            self.dims[prog.n_sched + k] = v;
            self.walk_exec(s, k + 1, meta, mem)?;
        }
        Ok(())
    }

    /// Candidate-collection walk for unions / divful streams.
    fn walk_collect(
        &mut self,
        s: usize,
        k: usize,
        n_inst: usize,
        out: &mut BTreeSet<Vec<i64>>,
    ) -> Result<()> {
        let prog = self.prog;
        if k == n_inst {
            if !self.in_exact(s, n_inst)? {
                return Ok(());
            }
            out.insert(self.dims[prog.n_sched..prog.n_sched + n_inst].to_vec());
            return Ok(());
        }
        let Some((lo, hi)) = self.inst_range(&prog.streams[s].inst_levels[k], k)? else {
            return Ok(());
        };
        for v in lo..=hi {
            self.dims[prog.n_sched + k] = v;
            self.walk_collect(s, k + 1, n_inst, out)?;
        }
        Ok(())
    }

    /// Resolves an access to a flat index: `Ok(Some)` in bounds, `Ok(None)`
    /// out of bounds or wrong arity (with the evaluated coordinates for
    /// error text / scratch side storage).
    fn flat_idx(&self, acc: &CAccess, shape: &[i64]) -> (Option<usize>, Vec<i64>) {
        let coords: Vec<i64> = acc.coords.iter().map(|c| c.eval(&self.dims)).collect();
        if coords.len() != shape.len() {
            return (None, coords);
        }
        let mut idx = 0i64;
        for (c, s) in coords.iter().zip(shape) {
            if *c < 0 || c >= s {
                return (None, coords);
            }
            idx = idx * s + c;
        }
        (Some(idx as usize), coords)
    }

    /// Executes one statement instance: counters, loads (scratch first),
    /// register ops, then the store — in exactly the interpreter's order,
    /// including the continue-on-load-error-then-fail behavior.
    fn exec_body(&mut self, fmeta: &FiberMeta, mem: &mut Mem) -> Result<()> {
        let prog = self.prog;
        let body = &prog.bodies[fmeta.body];
        self.stats.instances[body.stmt] += 1;
        let mut loads = 0u64;
        let mut hits = 0u64;
        let mut err: Option<Error> = None;
        for op in &body.ops {
            match op {
                BodyOp::Const { dst, v } => self.regs[*dst] = *v,
                BodyOp::Iter { dst, reg } => self.regs[*dst] = self.dims[*reg] as f64,
                BodyOp::Load { dst, acc } => {
                    loads += 1;
                    let a = &body.accesses[*acc];
                    let bm = &prog.bufs[a.buf];
                    let (flat, coords) = self.flat_idx(a, &bm.shape);
                    let mut value = 0.0f64;
                    let mut served = false;
                    if let Some(sc) = bm.scratch {
                        let hit = match flat {
                            Some(idx) => self.scratch[sc].get(idx),
                            None => self.scratch[sc].get_side(&coords),
                        };
                        if let Some(v) = hit {
                            hits += 1;
                            value = v;
                            served = true;
                        }
                    }
                    if !served {
                        match flat {
                            Some(idx) => value = mem.load(a.buf, idx),
                            None => {
                                err = Some(oob_error(&coords, &bm.shape));
                            }
                        }
                    }
                    self.regs[*dst] = value;
                }
                BodyOp::Bin { op, dst, a, b } => {
                    let x = self.regs[*a];
                    let y = self.regs[*b];
                    self.regs[*dst] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Max => x.max(y),
                        BinOp::Min => x.min(y),
                    };
                }
                BodyOp::Un { op, dst, a } => {
                    let x = self.regs[*a];
                    self.regs[*dst] = match op {
                        UnOp::Neg => -x,
                        UnOp::Relu => x.max(0.0),
                        UnOp::Exp => x.exp(),
                        UnOp::Sqrt => x.sqrt(),
                        UnOp::Abs => x.abs(),
                        UnOp::Recip => 1.0 / x,
                    };
                }
            }
        }
        self.stats.loads += loads;
        self.stats.scratch_hits += hits;
        if let Some(e) = err {
            return Err(e);
        }
        let value = self.regs[body.result];
        let bm = &prog.bufs[body.store.buf];
        let (flat, coords) = self.flat_idx(&body.store, &bm.shape);
        self.stats.stores += 1;
        if let Some(sc) = bm.scratch {
            match flat {
                Some(idx) => self.scratch[sc].put(idx, value),
                None => self.scratch[sc].put_side(coords, value),
            }
        } else {
            match flat {
                Some(idx) => mem.store(body.store.buf, idx, value),
                None => return Err(oob_error(&coords, &bm.shape)),
            }
        }
        Ok(())
    }
}

fn oob_error(coords: &[i64], shape: &[i64]) -> Error {
    if coords.len() != shape.len() {
        Error::Exec(format!(
            "access with {} coords into {}-d buffer",
            coords.len(),
            shape.len()
        ))
    } else {
        Error::Exec(format!(
            "out-of-bounds access {coords:?} into shape {shape:?}"
        ))
    }
}

/// Executes a compiled program.
///
/// Buffers are initialized exactly as [`ExecContext::initialized`] does
/// for the interpreter (same deterministic pseudo-inputs), executed on the
/// VM, and returned as an ordinary [`ExecContext`]. `n_threads == 0` means
/// [`default_threads`]; `1` forces the sequential path; any other value
/// fans parallel loops out with copy-on-write overlays and an ascending
/// merge, so results and statistics are bit-identical across thread
/// counts — and to the interpreter.
///
/// # Errors
/// Returns an error on out-of-bounds accesses or unbounded dimensions
/// (the same conditions under which the interpreter fails). Worker panics
/// are caught and surfaced as [`Error::Exec`], tagged with the active
/// governor phase.
pub fn execute_compiled(
    program: &Program,
    compiled: &CompiledProgram,
    n_threads: usize,
) -> Result<(ExecContext, ExecStats)> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_compiled_inner(program, compiled, n_threads)
    }))
    .unwrap_or_else(|payload| {
        Err(Error::Exec(format!(
            "panic during VM execution (phase {}): {}",
            tilefuse_trace::governor::last_phase(),
            tilefuse_trace::governor::panic_message(payload.as_ref()),
        )))
    })
}

fn execute_compiled_inner(
    program: &Program,
    compiled: &CompiledProgram,
    n_threads: usize,
) -> Result<(ExecContext, ExecStats)> {
    let _span = tilefuse_trace::span!("codegen/vm-exec", "{}", program.name());
    tilefuse_trace::governor::checkpoint("codegen/vm-exec")
        .map_err(|e| Error::Presburger(tilefuse_presburger::Error::from(e)))?;
    let n_threads = if n_threads == 0 {
        default_threads()
    } else {
        n_threads
    };
    let overrides: Vec<(&str, i64)> = compiled
        .param_names
        .iter()
        .map(String::as_str)
        .zip(compiled.param_values.iter().copied())
        .collect();
    let mut ctx = ExecContext::initialized(program, &overrides);
    // Move the buffer data into the VM's flat arena, run, and move it back
    // (shapes agree: both sides derive them from the same binding).
    let mut data: Vec<Vec<f64>> = Vec::with_capacity(compiled.bufs.len());
    for b in &compiled.bufs {
        data.push(std::mem::take(ctx.buffer_mut(b.array).data_mut()));
    }
    let mut machine = Machine::new(compiled, n_threads);
    let mut mem = Mem::Direct(&mut data);
    let r = machine.run(&mut mem, 0, compiled.insts.len());
    for (b, d) in compiled.bufs.iter().zip(data) {
        *ctx.buffer_mut(b.array).data_mut() = d;
    }
    r?;
    Ok((ctx, machine.stats.into_stats(&compiled.stmt_names)))
}

/// Which engine executes an optimized schedule tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The tree-walking reference interpreter.
    #[default]
    Interp,
    /// The compiled bytecode VM (lower once, then run).
    Vm,
}

impl ExecBackend {
    /// Parses `"interp"` / `"vm"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(ExecBackend::Interp),
            "vm" | "bytecode" => Some(ExecBackend::Vm),
            _ => None,
        }
    }

    /// Stable lowercase name (matches [`ExecBackend::parse`] input).
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Interp => "interp",
            ExecBackend::Vm => "vm",
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Executes `tree` on the selected backend with identical semantics:
/// [`ExecBackend::Interp`] delegates to [`execute_tree_parallel`];
/// [`ExecBackend::Vm`] lowers to bytecode ([`crate::lower_tree`]) and runs
/// the compiled program. Outputs and [`ExecStats`] are bit-identical
/// between backends for any valid tree — that invariant is enforced by
/// the differential tests and the fuzz oracle's VM check.
///
/// # Errors
/// Propagates lowering and execution failures from either backend.
pub fn execute_tree_backend(
    program: &Program,
    tree: &ScheduleTree,
    overrides: &[(&str, i64)],
    scratch_scopes: &BTreeMap<ArrayId, usize>,
    n_threads: usize,
    backend: ExecBackend,
) -> Result<(ExecContext, ExecStats)> {
    match backend {
        ExecBackend::Interp => {
            execute_tree_parallel(program, tree, overrides, scratch_scopes, n_threads)
        }
        ExecBackend::Vm => {
            let compiled = crate::lower::lower_tree(program, tree, overrides, scratch_scopes)?;
            execute_compiled(program, &compiled, n_threads)
        }
    }
}
