//! Error type for code generation and interpretation.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from interpretation and AST generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Execution failed (out-of-bounds access, missing buffer, ...).
    Exec(String),
    /// An AST node had an unexpected shape (e.g. a statement where a loop
    /// was required). Produced by the typed [`crate::AstNode`] accessors
    /// instead of a panic, so malformed trees report rather than abort.
    Shape {
        /// The node kind the caller required.
        expected: &'static str,
        /// The node kind actually found.
        found: &'static str,
    },
    /// Underlying IR error.
    Pir(tilefuse_pir::Error),
    /// Underlying schedule-tree error.
    SchedTree(tilefuse_schedtree::Error),
    /// Underlying set/map error.
    Presburger(tilefuse_presburger::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Shape { expected, found } => {
                write!(f, "AST shape error: expected {expected}, found {found}")
            }
            Error::Pir(e) => write!(f, "IR error: {e}"),
            Error::SchedTree(e) => write!(f, "schedule tree error: {e}"),
            Error::Presburger(e) => write!(f, "set operation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pir(e) => Some(e),
            Error::SchedTree(e) => Some(e),
            Error::Presburger(e) => Some(e),
            Error::Exec(_) | Error::Shape { .. } => None,
        }
    }
}

impl From<tilefuse_pir::Error> for Error {
    fn from(e: tilefuse_pir::Error) -> Self {
        Error::Pir(e)
    }
}

impl From<tilefuse_schedtree::Error> for Error {
    fn from(e: tilefuse_schedtree::Error) -> Self {
        Error::SchedTree(e)
    }
}

impl From<tilefuse_presburger::Error> for Error {
    fn from(e: tilefuse_presburger::Error) -> Self {
        Error::Presburger(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::Exec("oob".into()).to_string().contains("oob"));
        let e = Error::from(tilefuse_presburger::Error::Overflow("mul"));
        assert!(e.to_string().contains("overflow"));
        let s = Error::Shape {
            expected: "for",
            found: "stmt",
        };
        assert!(s.to_string().contains("expected for, found stmt"));
        assert!(std::error::Error::source(&s).is_none());
    }
}
