//! The compiled executable form of a schedule tree: a register-based
//! bytecode program.
//!
//! The tree-walking interpreter in [`crate::interp`] enumerates every
//! (schedule tuple, instance) pair through the presburger [`Scanner`],
//! sorts the full work list, and re-resolves parameter names, index
//! expressions and scratch keys per instance. The bytecode backend pays
//! those costs **once, at lowering time** (see [`crate::lower`]): the
//! merged loop nest becomes explicit [`Inst::LoopOpen`]/[`Inst::LoopClose`]
//! instructions whose affine bounds are compiled rows over an integer
//! register file, statement bodies become flat register programs over
//! fused affine accesses with parameters folded in, and tile-local scratch
//! becomes epoch-stamped flat storage instead of a `BTreeMap` keyed by
//! coordinate vectors.
//!
//! The execution semantics are defined to be *bit-identical* to the
//! interpreter — same instance order, same float operation order, same
//! [`crate::ExecStats`] down to the scratch-hit count — which is what the
//! fuzz oracle's VM differential check enforces.
//!
//! [`Scanner`]: tilefuse_presburger::Scanner

use std::fmt::Write as _;

use tilefuse_pir::{ArrayId, BinOp, UnOp};
use tilefuse_presburger::Set;

/// A compiled affine bound for one loop level or fiber level:
/// `coeff * x` compared against `constant + Σ terms`, where each term reads
/// one integer register (schedule dims first, then the owning entry's
/// instance dims). Parameter contributions are folded into `constant` at
/// lowering time.
///
/// * as a lower bound: `x >= ceil(-eval / coeff)`
/// * as an upper bound: `x <= floor(eval / coeff)`
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CBound {
    /// Positive coefficient of the bounded variable.
    pub coeff: i64,
    /// `(register, coefficient)` terms over outer dims.
    pub terms: Vec<(usize, i64)>,
    /// Constant part (parameters already substituted).
    pub constant: i64,
}

impl CBound {
    /// Evaluates the affine part against the register file.
    #[inline]
    pub(crate) fn eval(&self, regs: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(r, c) in &self.terms {
            acc += c * regs[r];
        }
        acc
    }
}

/// The iteration range of one loop or fiber level, as a union box over
/// *alternative* bound groups:
///
/// * `lo = min over lower groups of max(rows)`
/// * `hi = max over upper groups of min(rows)`
///
/// A single-group level is an exact Fourier–Motzkin range (the common
/// case). Multiple groups arise when a many-disjunct union is collapsed
/// into one stream: each disjunct contributes its bound rows as one group,
/// so the level covers the union of the per-disjunct boxes (points in the
/// box but outside the union are rejected by the stream's exact membership
/// test). An empty outer vector — or any empty group — means the level is
/// unbounded in that direction.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CLevel {
    pub lowers: Vec<Vec<CBound>>,
    pub uppers: Vec<Vec<CBound>>,
}

impl CLevel {
    /// Effective lower bound under the register file; `None` if unbounded.
    pub(crate) fn lo(&self, regs: &[i64]) -> Option<i64> {
        let mut best: Option<i64> = None;
        for g in &self.lowers {
            if g.is_empty() {
                return None;
            }
            let mut m = i64::MIN;
            for b in g {
                m = m.max(crate::lower::cdiv(-b.eval(regs), b.coeff));
            }
            best = Some(best.map_or(m, |x| x.min(m)));
        }
        best
    }

    /// Effective upper bound under the register file; `None` if unbounded.
    pub(crate) fn hi(&self, regs: &[i64]) -> Option<i64> {
        let mut best: Option<i64> = None;
        for g in &self.uppers {
            if g.is_empty() {
                return None;
            }
            let mut m = i64::MAX;
            for b in g {
                m = m.min(crate::lower::fdiv(b.eval(regs), b.coeff));
            }
            best = Some(best.map_or(m, |x| x.max(m)));
        }
        best
    }
}

/// One disjunct of one flattened entry's schedule graph, viewed as a
/// scannable loop nest over `[sched dims..., instance dims...]`.
#[derive(Debug, Clone)]
pub(crate) struct StreamMeta {
    /// Index of the owning flattened entry (execution-order tiebreak).
    pub entry: usize,
    /// Per-instance-dim bounds (levels `n_sched..n_sched + n_inst`).
    pub inst_levels: Vec<CLevel>,
    /// Exact membership test over `[params | sched | inst]`. Present when
    /// the disjunct carries existential divs (the compiled per-level
    /// bounds are exact otherwise — see `Scanner::branch_exact`), or when
    /// this stream's levels are the union box of a many-disjunct union
    /// and must reject box points outside the union.
    pub exact: Option<Set>,
}

/// Per-stream guard of a merged loop: the stream participates in the
/// iterations of `level`'s range at this loop's dimension.
#[derive(Debug, Clone)]
pub(crate) struct StreamGuard {
    pub stream: usize,
    pub level: CLevel,
}

/// A merged runtime loop over one schedule dimension: iterates the union
/// of its streams' ranges in ascending order, keeping each stream's
/// active flag in sync with its guard.
#[derive(Debug, Clone)]
pub(crate) struct LoopMeta {
    /// The schedule dimension (register) this loop drives.
    pub dim: usize,
    /// Coincident at this depth and outside every scratch scope: the VM
    /// may fan iterations out across threads (copy-on-write overlays,
    /// merged back in ascending order — bit-identical to sequential).
    pub parallel: bool,
    /// Instruction index of the matching [`Inst::LoopOpen`].
    pub open_ip: usize,
    /// Instruction index of the matching [`Inst::LoopClose`].
    pub close_ip: usize,
    /// Per-stream iteration guards.
    pub guards: Vec<StreamGuard>,
    /// Scratch buffers (indices into [`CompiledProgram::scratch`]) whose
    /// scope is deeper than `dim`: cleared on every increment, exactly
    /// when the interpreter's prefix-change test would clear them.
    pub clears: Vec<usize>,
}

/// Kernel shape of a fused loop, for diagnostics and disassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelKind {
    /// Every instance dim is pinned to an affine function of the schedule
    /// dims and the accesses are pure translations: a pointwise kernel.
    Point,
    /// Instance dims pinned, but some load reads at a constant offset
    /// from the store: a stencil.
    Stencil,
    /// Some instance dim spans a range per schedule point (reduction /
    /// combine kernels).
    Combine,
}

impl KernelKind {
    pub(crate) fn name(self) -> &'static str {
        match self {
            KernelKind::Point => "point",
            KernelKind::Stencil => "stencil",
            KernelKind::Combine => "combine",
        }
    }
}

/// The specialized innermost-loop instruction: a single-stream loop over
/// the deepest non-constant schedule dimension, with any deeper constant
/// dims pre-pinned. The whole iteration — bounds, fiber walk, body — runs
/// inside one dispatch, which is where the VM's speedup over the tree
/// interpreter concentrates.
#[derive(Debug, Clone)]
pub(crate) struct FusedMeta {
    /// The schedule dimension iterated.
    pub dim: usize,
    /// See [`LoopMeta::parallel`].
    pub parallel: bool,
    /// Bounds of the single stream at `dim`.
    pub level: CLevel,
    /// Deeper schedule dims statically pinned for this stream.
    pub pins: Vec<(usize, i64)>,
    /// The fiber executed per iteration.
    pub fiber: usize,
    /// Shape classification (disassembly only).
    pub kind: KernelKind,
}

/// The leaf of the loop nest: for one flattened entry, enumerate the
/// instance dims under the current schedule point (in lexicographic
/// order, deduplicated across disjunct streams exactly like the
/// interpreter's Scanner) and run the compiled body per instance.
#[derive(Debug, Clone)]
pub(crate) struct FiberMeta {
    /// Owning flattened entry (index into [`CompiledProgram::entry_labels`]).
    pub entry: usize,
    /// Streams that may be active here (subset of the entry's streams).
    pub streams: Vec<usize>,
    /// Streams partitioned into *walk groups*: members of a group have
    /// identical instance-level bounds and exactness test, so their
    /// instance boxes coincide at every schedule point and one walk per
    /// group (if any member is active) covers them all. Disjunct
    /// case-splits of a tiled halo relation produce thousands of streams
    /// that differ only in schedule-dim coverage — this collapses the
    /// per-point fiber cost from O(streams) to O(groups).
    pub groups: Vec<Vec<usize>>,
    /// The compiled statement body.
    pub body: usize,
    /// Number of instance dimensions.
    pub n_inst: usize,
}

/// One bytecode instruction. Loop-carried state lives in per-loop frames
/// (a loop id appears at most once per program, so frames need no stack).
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Evaluate bounds/guards of `loops[i]`; enter the loop or jump past
    /// its close when no stream contributes.
    LoopOpen(usize),
    /// Increment `loops[i]`, clear deeper-scoped scratch, re-guard, and
    /// either jump back to the body or fall through.
    LoopClose(usize),
    /// Pin a schedule dimension to a compile-time constant (static
    /// sequence/padding dims — no runtime loop is spun).
    SetDim { dim: usize, value: i64 },
    /// Advance the epoch of the listed scratch buffers (emitted between
    /// static partitions, mirroring a prefix change at that depth).
    Clear(Vec<usize>),
    /// Run `fibers[i]` under the current schedule point.
    Fiber(usize),
    /// Run `fused[i]` (specialized innermost loop).
    Fused(usize),
}

/// A compiled affine index expression over the entry's instance-dim
/// registers; parameters folded into `constant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CAffine {
    pub terms: Vec<(usize, i64)>,
    pub constant: i64,
}

impl CAffine {
    /// Evaluates against the register file.
    #[inline]
    pub(crate) fn eval(&self, regs: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(r, c) in &self.terms {
            acc += c * regs[r];
        }
        acc
    }
}

/// A fused strided access: buffer + per-axis affine coordinates. The VM
/// folds the coordinates into a flat row-major offset with per-axis
/// bounds checks (same failure condition as `Buffer::index`).
#[derive(Debug, Clone)]
pub(crate) struct CAccess {
    pub buf: usize,
    pub coords: Vec<CAffine>,
}

/// One register operation of a compiled statement body. Value registers
/// are `f64`; index registers are the shared integer dim file.
#[derive(Debug, Clone)]
pub(crate) enum BodyOp {
    /// `r[dst] = v`
    Const { dst: usize, v: f64 },
    /// `r[dst] = dims[reg] as f64` (an `Iter` expression)
    Iter { dst: usize, reg: usize },
    /// `r[dst] = load(accesses[acc])` — scratch-first for tile-local
    /// buffers, falling back to global memory.
    Load { dst: usize, acc: usize },
    /// `r[dst] = op(r[a], r[b])`
    Bin {
        op: BinOp,
        dst: usize,
        a: usize,
        b: usize,
    },
    /// `r[dst] = op(r[a])`
    Un { op: UnOp, dst: usize, a: usize },
}

/// A statement body compiled to register form.
#[derive(Debug, Clone)]
pub(crate) struct CompiledBody {
    /// Index into [`CompiledProgram::stmt_names`] (stats attribution).
    pub stmt: usize,
    /// Ops in interpreter evaluation order (left-to-right tree walk), so
    /// loads, errors and float rounding are replayed identically.
    pub ops: Vec<BodyOp>,
    /// Load accesses referenced by [`BodyOp::Load`].
    pub accesses: Vec<CAccess>,
    /// The store target access.
    pub store: CAccess,
    /// Register holding the final rhs value.
    pub result: usize,
    /// Register file size.
    pub n_regs: usize,
}

/// A buffer as the VM sees it.
#[derive(Debug, Clone)]
pub(crate) struct BufMeta {
    pub array: ArrayId,
    pub name: String,
    pub shape: Vec<i64>,
    pub len: usize,
    /// `Some(index into scratch)` when the buffer is tile-local.
    pub scratch: Option<usize>,
}

/// Epoch-stamped tile-local storage descriptor.
#[derive(Debug, Clone)]
pub(crate) struct ScratchMeta {
    pub buf: usize,
    /// Schedule-prefix length identifying a tile (the interpreter's
    /// scratch scope).
    pub scope: usize,
}

/// A schedule tree lowered to executable bytecode for one concrete
/// parameter binding. Produced by [`crate::lower_tree`], executed by
/// [`crate::execute_compiled`], pretty-printed by [`disasm`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) name: String,
    pub(crate) insts: Vec<Inst>,
    pub(crate) loops: Vec<LoopMeta>,
    pub(crate) fused: Vec<FusedMeta>,
    pub(crate) fibers: Vec<FiberMeta>,
    pub(crate) streams: Vec<StreamMeta>,
    pub(crate) bodies: Vec<CompiledBody>,
    pub(crate) bufs: Vec<BufMeta>,
    pub(crate) scratch: Vec<ScratchMeta>,
    pub(crate) stmt_names: Vec<String>,
    /// Common schedule-tuple length; dim registers `0..n_sched` are the
    /// schedule dims, `n_sched..` the current fiber's instance dims.
    pub(crate) n_sched: usize,
    /// Widest instance-dim count across entries (register file sizing).
    pub(crate) max_inst: usize,
    pub(crate) param_names: Vec<String>,
    pub(crate) param_values: Vec<i64>,
    /// `"S2 (entry 3)"`-style labels, one per flattened entry.
    pub(crate) entry_labels: Vec<String>,
}

impl CompiledProgram {
    /// Number of bytecode instructions.
    pub fn n_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of merged runtime loops.
    pub fn n_loops(&self) -> usize {
        self.loops.len()
    }

    /// Number of specialized fused inner loops.
    pub fn n_fused(&self) -> usize {
        self.fused.len()
    }
}

fn render_affine(out: &mut String, terms: &[(usize, i64)], constant: i64, names: &Names) {
    let mut first = true;
    for &(r, c) in terms {
        if c == 0 {
            continue;
        }
        let v = names.reg(r);
        if first {
            match c {
                1 => {
                    let _ = write!(out, "{v}");
                }
                -1 => {
                    let _ = write!(out, "-{v}");
                }
                _ => {
                    let _ = write!(out, "{c}{v}");
                }
            }
            first = false;
        } else if c > 0 {
            if c == 1 {
                let _ = write!(out, " + {v}");
            } else {
                let _ = write!(out, " + {c}{v}");
            }
        } else if c == -1 {
            let _ = write!(out, " - {v}");
        } else {
            let _ = write!(out, " - {}{v}", -c);
        }
    }
    if first {
        let _ = write!(out, "{constant}");
    } else if constant > 0 {
        let _ = write!(out, " + {constant}");
    } else if constant < 0 {
        let _ = write!(out, " - {}", -constant);
    }
}

/// Register naming for the disassembler: schedule dims print as `d0..`,
/// instance dims as `i0..`.
struct Names {
    n_sched: usize,
}

impl Names {
    fn reg(&self, r: usize) -> String {
        if r < self.n_sched {
            format!("d{r}")
        } else {
            format!("i{}", r - self.n_sched)
        }
    }
}

fn render_group(lowers: &[CBound], uppers: &[CBound], var: &str, names: &Names) -> String {
    let mut parts = Vec::new();
    for b in lowers {
        let mut e = String::new();
        render_affine(&mut e, &b.terms, b.constant, names);
        if b.coeff == 1 {
            parts.push(format!("{var} >= -({e})"));
        } else {
            parts.push(format!("{} * {var} >= -({e})", b.coeff));
        }
    }
    for b in uppers {
        let mut e = String::new();
        render_affine(&mut e, &b.terms, b.constant, names);
        if b.coeff == 1 {
            parts.push(format!("{var} <= {e}"));
        } else {
            parts.push(format!("{} * {var} <= {e}", b.coeff));
        }
    }
    parts.join(", ")
}

fn render_range(level: &CLevel, var: &str, names: &Names) -> String {
    if level.lowers.len() <= 1 && level.uppers.len() <= 1 {
        let empty: &[CBound] = &[];
        return render_group(
            level.lowers.first().map_or(empty, Vec::as_slice),
            level.uppers.first().map_or(empty, Vec::as_slice),
            var,
            names,
        );
    }
    let lo: Vec<String> = level
        .lowers
        .iter()
        .map(|g| render_group(g, &[], var, names))
        .collect();
    let hi: Vec<String> = level
        .uppers
        .iter()
        .map(|g| render_group(&[], g, var, names))
        .collect();
    format!("min[{}] max[{}]", lo.join(" | "), hi.join(" | "))
}

fn render_access(prog: &CompiledProgram, acc: &CAccess, names: &Names) -> String {
    let mut s = prog.bufs[acc.buf].name.clone();
    s.push('[');
    for (k, c) in acc.coords.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        render_affine(&mut s, &c.terms, c.constant, names);
    }
    s.push(']');
    s
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Max => "max",
        BinOp::Min => "min",
    }
}

fn un_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Relu => "relu",
        UnOp::Exp => "exp",
        UnOp::Sqrt => "sqrt",
        UnOp::Abs => "abs",
        UnOp::Recip => "recip",
    }
}

/// Pretty-prints a compiled program as a stable textual listing: buffer
/// table, per-statement register bodies, and the instruction stream with
/// loop nesting shown by indentation. Golden-snapshot tests pin this
/// output, so the format is deliberately deterministic.
pub fn disasm(prog: &CompiledProgram) -> String {
    let names = Names {
        n_sched: prog.n_sched,
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        ";; {} — compiled schedule ({} sched dims, {} insts, {} loops, {} fused)",
        prog.name,
        prog.n_sched,
        prog.insts.len(),
        prog.loops.len(),
        prog.fused.len()
    );
    let params: Vec<String> = prog
        .param_names
        .iter()
        .zip(&prog.param_values)
        .map(|(n, v)| format!("{n}={v}"))
        .collect();
    let _ = writeln!(s, ";; params: {}", params.join(", "));
    let _ = writeln!(s, "buffers:");
    for (i, b) in prog.bufs.iter().enumerate() {
        let shape: Vec<String> = b.shape.iter().map(i64::to_string).collect();
        let scratch = match b.scratch {
            Some(sc) => format!("  scratch(scope {})", prog.scratch[sc].scope),
            None => String::new(),
        };
        let _ = writeln!(s, "  b{i} {}[{}]{}", b.name, shape.join(", "), scratch);
    }
    for (i, body) in prog.bodies.iter().enumerate() {
        let _ = writeln!(
            s,
            "body {i} ({}, {} regs):",
            prog.stmt_names[body.stmt], body.n_regs
        );
        for op in &body.ops {
            match op {
                BodyOp::Const { dst, v } => {
                    let _ = writeln!(s, "  r{dst} <- const {v}");
                }
                BodyOp::Iter { dst, reg } => {
                    let _ = writeln!(s, "  r{dst} <- iter {}", names.reg(*reg));
                }
                BodyOp::Load { dst, acc } => {
                    let _ = writeln!(
                        s,
                        "  r{dst} <- load {}",
                        render_access(prog, &body.accesses[*acc], &names)
                    );
                }
                BodyOp::Bin { op, dst, a, b } => {
                    let _ = writeln!(s, "  r{dst} <- {} r{a}, r{b}", bin_name(*op));
                }
                BodyOp::Un { op, dst, a } => {
                    let _ = writeln!(s, "  r{dst} <- {} r{a}", un_name(*op));
                }
            }
        }
        let _ = writeln!(
            s,
            "  store {} <- r{}",
            render_access(prog, &body.store, &names),
            body.result
        );
    }
    let _ = writeln!(s, "code:");
    let mut depth = 0usize;
    for (ip, inst) in prog.insts.iter().enumerate() {
        if matches!(inst, Inst::LoopClose(_)) {
            depth = depth.saturating_sub(1);
        }
        let pad = "  ".repeat(depth);
        match inst {
            Inst::LoopOpen(l) => {
                let m = &prog.loops[*l];
                let par = if m.parallel { " par" } else { "" };
                let guards: Vec<String> = m
                    .guards
                    .iter()
                    .map(|g| {
                        format!(
                            "s{}{{{}}}",
                            g.stream,
                            render_range(&g.level, &names.reg(m.dim), &names)
                        )
                    })
                    .collect();
                let _ = writeln!(
                    s,
                    "{ip:04} {pad}loop_open  L{l} {}{par}  {}",
                    names.reg(m.dim),
                    guards.join(" ")
                );
                depth += 1;
            }
            Inst::LoopClose(l) => {
                let m = &prog.loops[*l];
                let clears = if m.clears.is_empty() {
                    String::new()
                } else {
                    let list: Vec<String> = m.clears.iter().map(|c| format!("sc{c}")).collect();
                    format!("  clear[{}]", list.join(","))
                };
                let _ = writeln!(s, "{ip:04} {pad}loop_close L{l}{clears}");
            }
            Inst::SetDim { dim, value } => {
                let _ = writeln!(s, "{ip:04} {pad}set        {} = {value}", names.reg(*dim));
            }
            Inst::Clear(list) => {
                let items: Vec<String> = list.iter().map(|c| format!("sc{c}")).collect();
                let _ = writeln!(s, "{ip:04} {pad}clear      [{}]", items.join(","));
            }
            Inst::Fiber(f) => {
                let m = &prog.fibers[*f];
                let streams: Vec<String> = m.streams.iter().map(|st| format!("s{st}")).collect();
                let _ = writeln!(
                    s,
                    "{ip:04} {pad}fiber      {} body={} inst_dims={} groups={} streams={{{}}}",
                    prog.entry_labels[m.entry],
                    m.body,
                    m.n_inst,
                    m.groups.len(),
                    streams.join(",")
                );
            }
            Inst::Fused(f) => {
                let m = &prog.fused[*f];
                let fb = &prog.fibers[m.fiber];
                let par = if m.parallel { " par" } else { "" };
                let pins: Vec<String> = m
                    .pins
                    .iter()
                    .map(|(d, v)| format!("{}={v}", names.reg(*d)))
                    .collect();
                let pins = if pins.is_empty() {
                    String::new()
                } else {
                    format!("  pin[{}]", pins.join(","))
                };
                let _ = writeln!(
                    s,
                    "{ip:04} {pad}fused_loop {} kind={}{par} {}  {{{}}}{pins} body={}",
                    names.reg(m.dim),
                    m.kind.name(),
                    prog.entry_labels[fb.entry],
                    render_range(&m.level, &names.reg(m.dim), &names),
                    fb.body,
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caffine_eval() {
        let a = CAffine {
            terms: vec![(0, 2), (2, -1)],
            constant: 3,
        };
        assert_eq!(a.eval(&[5, 0, 4]), 2 * 5 - 4 + 3);
    }

    #[test]
    fn kernel_kind_names() {
        assert_eq!(KernelKind::Point.name(), "point");
        assert_eq!(KernelKind::Stencil.name(), "stencil");
        assert_eq!(KernelKind::Combine.name(), "combine");
    }
}
