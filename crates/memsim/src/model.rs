//! Machine models: the three platforms of the paper's evaluation.
//!
//! The models are deliberately simple — compute rate, memory levels with
//! capacity and bandwidth, parallel resources, launch overheads. The goal
//! is not absolute accuracy but preserving the *relative* effects the
//! paper measures: fused intermediates live in fast memory, lost
//! parallelism divides throughput, extra kernels pay launch latency, and
//! off-chip traffic dominates on the accelerator.

/// A CPU with a cache hierarchy and OpenMP-style parallelism
/// (the paper's dual-socket 32-core Xeon E5-2683 v4).
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Hardware threads available.
    pub threads: usize,
    /// Scalar operations per second per core.
    pub flops_per_core: f64,
    /// SIMD speedup when the innermost loop vectorizes.
    pub simd_width: f64,
    /// DRAM bandwidth (bytes/s, whole machine).
    pub dram_bw: f64,
    /// Shared last-level cache bandwidth (bytes/s).
    pub llc_bw: f64,
    /// Per-core private cache (scratchpad-like) bandwidth (bytes/s).
    pub l1_bw: f64,
    /// Per-core private cache capacity (bytes).
    pub l1_capacity: f64,
    /// Last-level cache capacity (bytes).
    pub llc_capacity: f64,
    /// Per-parallel-region overhead (s) — OpenMP fork/join.
    pub parallel_overhead: f64,
}

impl CpuModel {
    /// A model of the paper's evaluation platform: 2 × 16-core Xeon
    /// E5-2683 v4 at 2.1 GHz.
    pub fn xeon_e5_2683_v4() -> Self {
        CpuModel {
            threads: 32,
            flops_per_core: 2.1e9,
            simd_width: 4.0,
            dram_bw: 76.8e9,
            llc_bw: 400e9,
            l1_bw: 3000e9,
            l1_capacity: 32.0 * 1024.0,
            llc_capacity: 40.0 * 1024.0 * 1024.0,
            parallel_overhead: 5e-6,
        }
    }

    /// The same machine restricted to `threads` threads (Fig. 8 sweeps).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The same machine restricted to the *host's* effective thread count
    /// (see [`host_threads`]) — used when a simulation should mirror what
    /// the parallel interpreter on this machine actually runs with.
    #[must_use]
    pub fn with_host_threads(self) -> Self {
        let n = host_threads();
        self.with_threads(n)
    }
}

/// The effective worker-thread count on the host running the simulation:
/// the `TILEFUSE_JOBS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. This is the same
/// policy the parallel interpreter and the experiment driver use, so
/// simulated and executed thread counts agree.
pub fn host_threads() -> usize {
    if let Ok(s) = std::env::var("TILEFUSE_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A GPU with two-level parallelism, shared memory, and kernel launches
/// (the paper's Quadro P6000).
#[derive(Debug, Clone)]
pub struct GpuModel {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Resident threads per SM.
    pub threads_per_sm: usize,
    /// Scalar operations per second (whole device).
    pub flops: f64,
    /// Global memory bandwidth (bytes/s).
    pub global_bw: f64,
    /// Shared-memory bandwidth (bytes/s, whole device).
    pub shared_bw: f64,
    /// Shared memory per block (bytes).
    pub shared_capacity: f64,
    /// Kernel launch latency (s).
    pub kernel_launch: f64,
}

impl GpuModel {
    /// A model of the NVIDIA Quadro P6000 (30 SMs, 432 GB/s).
    pub fn quadro_p6000() -> Self {
        GpuModel {
            sms: 30,
            threads_per_sm: 2048,
            flops: 12.0e12,
            global_bw: 432e9,
            shared_bw: 8000e9,
            shared_capacity: 48.0 * 1024.0,
            kernel_launch: 8e-6,
        }
    }
}

/// The DaVinci-architecture accelerator (the paper's Ascend 910, Fig. 7):
/// a cube unit fed from L1/L0 buffers, vector/scalar units on a unified
/// buffer, expensive off-chip DDR.
#[derive(Debug, Clone)]
pub struct DavinciModel {
    /// Cube (matrix) unit rate (MACs/s).
    pub cube_rate: f64,
    /// Vector unit rate (ops/s).
    pub vector_rate: f64,
    /// Off-chip DDR bandwidth (bytes/s).
    pub ddr_bw: f64,
    /// Fixed off-chip transfer latency per tensor movement (s) — the
    /// paper: "the off-chip memory latency is very expensive on Ascend
    /// 910".
    pub ddr_latency: f64,
    /// Unified Buffer bandwidth (bytes/s).
    pub ub_bw: f64,
    /// L1 buffer capacity (bytes).
    pub l1_capacity: f64,
    /// Unified Buffer capacity (bytes).
    pub ub_capacity: f64,
}

impl DavinciModel {
    /// A model of the Ascend 910's DaVinci core.
    pub fn ascend_910() -> Self {
        DavinciModel {
            cube_rate: 256e12,
            vector_rate: 4e12,
            ddr_bw: 1200e9,
            ddr_latency: 2.0e-6,
            ub_bw: 20e12,
            l1_capacity: 1024.0 * 1024.0,
            ub_capacity: 256.0 * 1024.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let cpu = CpuModel::xeon_e5_2683_v4();
        assert_eq!(cpu.threads, 32);
        assert!(cpu.l1_bw > cpu.llc_bw && cpu.llc_bw > cpu.dram_bw);
        let gpu = GpuModel::quadro_p6000();
        assert!(gpu.shared_bw > gpu.global_bw);
        let npu = DavinciModel::ascend_910();
        assert!(npu.ub_bw > npu.ddr_bw);
    }

    #[test]
    fn with_threads_overrides() {
        let cpu = CpuModel::xeon_e5_2683_v4().with_threads(4);
        assert_eq!(cpu.threads, 4);
    }

    #[test]
    fn host_threads_is_positive() {
        assert!(host_threads() >= 1);
        let cpu = CpuModel::xeon_e5_2683_v4().with_host_threads();
        assert_eq!(cpu.threads, host_threads());
    }
}
