//! Analytic cost models: pricing execution groups on the three platforms.

use crate::error::Result;
use crate::model::{CpuModel, DavinciModel, GpuModel};
use crate::summary::{require_nonempty, ExecGroup};

/// A priced schedule: total time plus a per-group breakdown.
#[derive(Debug, Clone)]
pub struct CostBreakdown {
    /// Estimated execution time (seconds).
    pub total: f64,
    /// Per-group `(label, seconds)`.
    pub per_group: Vec<(String, f64)>,
}

/// Prices a schedule on a CPU: groups run one after another; within a
/// group, OpenMP parallelizes the outermost coincident loop, tile-local
/// arrays live in the private cache, and external arrays stream from DRAM.
///
/// # Errors
/// Returns an error on empty input.
pub fn cpu_time(model: &CpuModel, groups: &[ExecGroup]) -> Result<CostBreakdown> {
    require_nonempty(groups)?;
    let mut total = 0.0;
    let mut per_group = Vec::new();
    for g in groups {
        // OpenMP exposes one parallel dimension.
        let chunks = g.parallel_chunks.first().copied().unwrap_or(1.0);
        let par = chunks.min(model.threads as f64).max(1.0);
        // Load imbalance when chunks barely exceed threads.
        let balance = chunks / (par * (chunks / par).ceil()).max(1.0);
        let simd = if g.vectorizable {
            model.simd_width
        } else {
            1.0
        };
        let compute = g.ops / (model.flops_per_core * par * simd * balance.max(0.25));
        // Per-access traffic hits the level that holds the tile working
        // set.
        let level_bw = if g.tile_footprint_bytes <= model.l1_capacity {
            model.l1_bw
        } else if g.tile_footprint_bytes <= model.llc_capacity / par {
            model.llc_bw
        } else {
            model.dram_bw
        };
        let access_bytes = (g.loads + g.stores) * 4.0;
        let mem_fast = access_bytes / (level_bw * par.min(model.threads as f64)).max(1.0);
        let mem_dram = g.external_bytes() / model.dram_bw;
        let t = model.parallel_overhead + compute.max(mem_dram) + mem_fast;
        per_group.push((g.label.clone(), t));
        total += t;
    }
    Ok(CostBreakdown { total, per_group })
}

/// Prices a schedule on a GPU: one kernel per group; the first two
/// parallel chunk dimensions map to the grid, intra-tile points to
/// threads. Tile-local arrays use shared memory when they fit (else they
/// spill to global, like PPCG's box allocation falling back).
///
/// # Errors
/// Returns an error on empty input.
pub fn gpu_time(model: &GpuModel, groups: &[ExecGroup]) -> Result<CostBreakdown> {
    require_nonempty(groups)?;
    let mut total = 0.0;
    let mut per_group = Vec::new();
    for g in groups {
        let blocks: f64 = g.parallel_chunks.iter().take(2).product::<f64>().max(1.0);
        let points_per_tile = (g.total_instances() / g.n_tiles.max(1.0)).max(1.0);
        let threads_per_block = points_per_tile.min(1024.0);
        // Two-level parallelism requirement: with fewer than two parallel
        // dims, threads cannot be mapped and the device starves.
        let two_level = g.parallel_chunks.len() >= 2 || g.n_tiles > 1.0;
        let resident = if two_level {
            blocks * threads_per_block
        } else {
            blocks
        };
        let device_threads = (model.sms * 128) as f64;
        let utilization = (resident / device_threads)
            .min(1.0)
            .max(1.0 / device_threads);
        let compute = g.ops / (model.flops * utilization);
        // Shared-memory feasibility per tile.
        let local_per_tile: f64 = g.local_arrays.iter().map(|(_, b)| b).sum();
        let (shared_bytes, spilled_bytes) = if local_per_tile <= model.shared_capacity {
            (local_per_tile * g.n_tiles, 0.0)
        } else {
            (0.0, local_per_tile * g.n_tiles)
        };
        let global = g.external_bytes() + spilled_bytes;
        let mem = global / model.global_bw + shared_bytes / model.shared_bw;
        let t = model.kernel_launch + compute.max(mem);
        per_group.push((g.label.clone(), t));
        total += t;
    }
    Ok(CostBreakdown { total, per_group })
}

/// Prices a schedule on the DaVinci accelerator: each group is an
/// operator; every external tensor pays an off-chip transfer (bandwidth +
/// fixed latency), cube-unit statements run at matrix rate, the rest on
/// the vector unit; tile-local tensors stay in the unified buffer.
///
/// # Errors
/// Returns an error on empty input.
pub fn davinci_time(model: &DavinciModel, groups: &[ExecGroup]) -> Result<CostBreakdown> {
    require_nonempty(groups)?;
    let mut total = 0.0;
    let mut per_group = Vec::new();
    for g in groups {
        let mut transfer = 0.0;
        for (_, bytes) in &g.external_arrays {
            transfer += bytes / model.ddr_bw + model.ddr_latency;
        }
        let local_per_tile: f64 = g.local_arrays.iter().map(|(_, b)| b).sum();
        let ub_traffic = local_per_tile * g.n_tiles / model.ub_bw;
        // Buffer pressure: tiles larger than the unified buffer force
        // extra off-chip round trips.
        let spill = if local_per_tile > model.ub_capacity {
            local_per_tile * g.n_tiles / model.ddr_bw
        } else {
            0.0
        };
        let compute = g.ops_cube / model.cube_rate + g.ops_vector / model.vector_rate;
        let t = transfer + spill + compute.max(ub_traffic);
        per_group.push((g.label.clone(), t));
        total += t;
    }
    Ok(CostBreakdown { total, per_group })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tilefuse_pir::{ArrayId, StmtId};

    fn group(label: &str) -> ExecGroup {
        ExecGroup {
            label: label.into(),
            stmts: vec![StmtId(0)],
            instances: BTreeMap::from([(StmtId(0), 1_000_000.0)]),
            ops: 2_000_000.0,
            ops_cube: 0.0,
            ops_vector: 2_000_000.0,
            loads: 2_000_000.0,
            stores: 1_000_000.0,
            parallel_chunks: vec![64.0],
            n_tiles: 64.0,
            tile_footprint_bytes: 16.0 * 1024.0,
            local_arrays: vec![],
            external_arrays: vec![(ArrayId(0), 4_000_000.0)],
            vectorizable: true,
        }
    }

    #[test]
    fn cpu_time_scales_with_threads() {
        let g = vec![group("g")];
        let t32 = cpu_time(&CpuModel::xeon_e5_2683_v4(), &g).unwrap().total;
        let t1 = cpu_time(&CpuModel::xeon_e5_2683_v4().with_threads(1), &g)
            .unwrap()
            .total;
        assert!(t1 > t32, "t1={t1} t32={t32}");
    }

    #[test]
    fn cpu_serial_group_is_slower() {
        let mut sg = group("serial");
        sg.parallel_chunks = vec![];
        sg.vectorizable = false;
        let pt = cpu_time(&CpuModel::xeon_e5_2683_v4(), &[group("par")])
            .unwrap()
            .total;
        let st = cpu_time(&CpuModel::xeon_e5_2683_v4(), &[sg]).unwrap().total;
        assert!(st > pt);
    }

    #[test]
    fn gpu_fused_local_beats_global_roundtrip() {
        // Unfused: two groups, intermediate external in both.
        let mut a = group("producer");
        a.external_arrays = vec![(ArrayId(0), 8_000_000.0)];
        let mut b = group("consumer");
        b.external_arrays = vec![(ArrayId(0), 8_000_000.0), (ArrayId(1), 8_000_000.0)];
        let unfused = gpu_time(&GpuModel::quadro_p6000(), &[a, b]).unwrap().total;
        // Fused: one group, intermediate tile-local in shared memory.
        let mut f = group("fused");
        f.ops *= 2.0;
        f.local_arrays = vec![(ArrayId(0), 8.0 * 1024.0)];
        f.external_arrays = vec![(ArrayId(1), 8_000_000.0)];
        let fused = gpu_time(&GpuModel::quadro_p6000(), &[f]).unwrap().total;
        assert!(fused < unfused, "fused={fused} unfused={unfused}");
    }

    #[test]
    fn gpu_shared_spill_costs_global_bandwidth() {
        let mut small = group("fits");
        small.local_arrays = vec![(ArrayId(0), 8.0 * 1024.0)];
        let mut big = group("spills");
        big.local_arrays = vec![(ArrayId(0), 1024.0 * 1024.0)];
        let m = GpuModel::quadro_p6000();
        let ts = gpu_time(&m, &[small]).unwrap().total;
        let tb = gpu_time(&m, &[big]).unwrap().total;
        assert!(tb > ts);
    }

    #[test]
    fn davinci_fusion_saves_offchip_latency() {
        // conv -> bn unfused: intermediate crosses DDR twice.
        let mut conv = group("conv");
        conv.ops_cube = conv.ops;
        conv.ops_vector = 0.0;
        conv.external_arrays = vec![(ArrayId(0), 4_000_000.0), (ArrayId(1), 4_000_000.0)];
        let mut bn = group("bn");
        bn.external_arrays = vec![(ArrayId(1), 4_000_000.0), (ArrayId(2), 4_000_000.0)];
        let m = DavinciModel::ascend_910();
        let unfused = davinci_time(&m, &[conv.clone(), bn]).unwrap().total;
        let mut fused = group("conv+bn");
        fused.ops_cube = conv.ops;
        fused.local_arrays = vec![(ArrayId(1), 64.0 * 1024.0)];
        fused.external_arrays = vec![(ArrayId(0), 4_000_000.0), (ArrayId(2), 4_000_000.0)];
        let t_fused = davinci_time(&m, &[fused]).unwrap().total;
        assert!(t_fused < unfused, "fused={t_fused} unfused={unfused}");
    }

    #[test]
    fn cpu_capacity_levels_change_fast_memory_cost() {
        // Same work, bigger tile working set: traffic drops to a slower
        // level and the modeled time grows.
        let mut small = group("small");
        small.tile_footprint_bytes = 16.0 * 1024.0; // fits L1
        small.external_arrays = vec![];
        let mut big = small.clone();
        big.label = "big".into();
        big.tile_footprint_bytes = 512.0 * 1024.0 * 1024.0; // beyond LLC
        let m = CpuModel::xeon_e5_2683_v4();
        let ts = cpu_time(&m, &[small]).unwrap().total;
        let tb = cpu_time(&m, &[big]).unwrap().total;
        assert!(tb > ts, "big tiles {tb} must cost more than small {ts}");
    }

    #[test]
    fn cpu_vectorization_speeds_compute() {
        let mut v = group("vec");
        v.external_arrays = vec![];
        let mut nv = v.clone();
        nv.vectorizable = false;
        let m = CpuModel::xeon_e5_2683_v4();
        let tv = cpu_time(&m, &[v]).unwrap().total;
        let tn = cpu_time(&m, &[nv]).unwrap().total;
        assert!(tv < tn);
    }

    #[test]
    fn gpu_kernel_launch_charged_per_group() {
        let m = GpuModel::quadro_p6000();
        let one = gpu_time(&m, &[group("a")]).unwrap().total;
        let two = gpu_time(&m, &[group("a"), group("b")]).unwrap().total;
        assert!(two > one + m.kernel_launch * 0.9);
    }

    #[test]
    fn davinci_ub_capacity_spill() {
        let m = DavinciModel::ascend_910();
        let mut fits = group("fits");
        fits.local_arrays = vec![(ArrayId(0), 64.0 * 1024.0)];
        fits.external_arrays = vec![];
        let mut spills = fits.clone();
        spills.label = "spills".into();
        spills.local_arrays = vec![(ArrayId(0), 2048.0 * 1024.0)];
        let tf = davinci_time(&m, &[fits]).unwrap().total;
        let tsp = davinci_time(&m, &[spills]).unwrap().total;
        assert!(tsp > tf, "UB overflow must cost DDR traffic");
    }

    #[test]
    fn breakdown_labels_match_groups() {
        let m = CpuModel::xeon_e5_2683_v4();
        let b = cpu_time(&m, &[group("alpha"), group("beta")]).unwrap();
        let labels: Vec<&str> = b.per_group.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["alpha", "beta"]);
        let total: f64 = b.per_group.iter().map(|(_, t)| t).sum();
        assert!((total - b.total).abs() < 1e-12);
    }

    #[test]
    fn empty_summaries_rejected() {
        assert!(cpu_time(&CpuModel::xeon_e5_2683_v4(), &[]).is_err());
        assert!(gpu_time(&GpuModel::quadro_p6000(), &[]).is_err());
        assert!(davinci_time(&DavinciModel::ascend_910(), &[]).is_err());
    }
}
