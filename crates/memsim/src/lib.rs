//! Memory-hierarchy models for the tilefuse evaluation.
//!
//! The paper measured on a 32-core Xeon, an NVIDIA Quadro P6000, and a
//! Huawei Ascend 910 — none of which this reproduction can assume. This
//! crate substitutes analytic machine models whose *relative* behaviour
//! preserves what the evaluation measures:
//!
//! * [`summarize_groups`]/[`summarize_optimized`] reduce a schedule to
//!   per-group instance counts (including overlapped-tiling
//!   recomputation), surviving parallelism, tile-local arrays, and bytes
//!   per memory level — computed with the same polyhedral footprint
//!   machinery the optimizer itself uses;
//! * [`cpu_time`], [`gpu_time`], [`davinci_time`] price the summaries on
//!   [`CpuModel`], [`GpuModel`], [`DavinciModel`];
//! * [`CacheSim`] is a trace-driven set-associative LRU cache for
//!   cross-validating the analytic model on small sizes.

mod cachesim;
mod cost;
mod error;
mod model;
mod summary;

pub use cachesim::{AddressMap, CacheSim};
pub use cost::{cpu_time, davinci_time, gpu_time, CostBreakdown};
pub use error::{Error, Result};
pub use model::{host_threads, CpuModel, DavinciModel, GpuModel};
pub use summary::{card_box, summarize_groups, summarize_optimized, ExecGroup};
