//! Schedule summaries: the quantities the cost models price.
//!
//! A summary reduces an executed schedule to, per final fusion group: how
//! many instances run (including overlapped-tiling recomputation), how
//! much parallelism survives, which arrays are tile-local, and how many
//! bytes move at each memory level. Footprints are measured with the same
//! polyhedral machinery the optimizer uses (rectangular hulls of
//! tile-footprint images — exactly PPCG's over-approximated box for
//! shared-memory allocation).

use crate::error::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};
use tilefuse_core::Optimized;
use tilefuse_pir::{ArrayId, ArrayKind, Program, StmtId};
use tilefuse_presburger::{Map, Set};
use tilefuse_schedtree::Band;
use tilefuse_scheduler::{band_part, loop_vars, Group};

/// One final execution group (a kernel on GPU, a parallel loop nest on
/// CPU, an operator on the accelerator).
#[derive(Debug, Clone)]
pub struct ExecGroup {
    /// A label for diagnostics (the live-out statement names).
    pub label: String,
    /// Statements executed by this group (fused producers included).
    pub stmts: Vec<StmtId>,
    /// Instance counts per statement, *including* recomputation and the
    /// dynamic work multiplier.
    pub instances: BTreeMap<StmtId, f64>,
    /// Scalar operations executed.
    pub ops: f64,
    /// Element loads issued.
    pub loads: f64,
    /// Element stores issued.
    pub stores: f64,
    /// Iteration chunks available per leading parallel dimension
    /// (tiles if tiled, points otherwise).
    pub parallel_chunks: Vec<f64>,
    /// Number of tiles executed (1 when untiled).
    pub n_tiles: f64,
    /// Per-tile working set in bytes (rectangular-hull box, all arrays).
    pub tile_footprint_bytes: f64,
    /// Arrays that live tile-locally (scratchpad / shared memory):
    /// `(array, per-tile bytes)`.
    pub local_arrays: Vec<(ArrayId, f64)>,
    /// Arrays exchanged with backing memory: `(array, distinct bytes)`.
    pub external_arrays: Vec<(ArrayId, f64)>,
    /// Scalar operations attributable to tensor/matrix statements (≥ 4
    /// loop dims — the accelerator's cube unit).
    pub ops_cube: f64,
    /// Scalar operations attributable to vector/scalar statements.
    pub ops_vector: f64,
    /// Whether the innermost loop is parallel (vectorizable).
    pub vectorizable: bool,
}

impl ExecGroup {
    /// Total instances.
    pub fn total_instances(&self) -> f64 {
        self.instances.values().sum()
    }

    /// Total bytes exchanged with backing memory.
    pub fn external_bytes(&self) -> f64 {
        self.external_arrays.iter().map(|(_, b)| b).sum()
    }
}

/// Box cardinality of a set (exact for rectangular domains, an
/// over-approximation otherwise — the documented modeling choice).
pub fn card_box(set: &Set, params: &[i64]) -> Result<f64> {
    match set.rect_hull(params)? {
        None => Ok(0.0),
        Some(h) => Ok(h.iter().map(|(l, u)| (u - l + 1).max(0) as f64).product()),
    }
}

/// Per-tile footprint of `array` for a group tiled by `tile_maps`:
/// rectangular hull of the image of the first non-empty tile.
fn per_tile_array_bytes(
    program: &Program,
    stmts: &[StmtId],
    tile_maps: &[Map],
    array: ArrayId,
    params: &[i64],
) -> Result<f64> {
    let mut acc: Option<Map> = None;
    for (&s, tm) in stmts.iter().zip(tile_maps) {
        // Cheap structural check before building any relation.
        let body = program.stmt(s).body();
        let reads = body.rhs.loads().iter().any(|(arr, _)| *arr == array);
        let writes = body.target == array;
        if !reads && !writes {
            continue;
        }
        let mut maps = Vec::new();
        if reads {
            if let Some(r) = program.read_access_to(s, array)? {
                maps.push(r);
            }
        }
        if writes {
            maps.push(program.write_access(s)?);
        }
        for m in maps {
            let part = tm.reverse().compose(&m)?;
            acc = Some(match acc {
                None => part,
                Some(prev) => prev.union(&part)?,
            });
        }
    }
    let Some(fp) = acc else {
        return Ok(0.0);
    };
    // Representative tile: the lexicographically smallest tile coordinate.
    let k = fp.space().n_in();
    let dom = fp.domain()?;
    let Some(hull) = dom.rect_hull(params)? else {
        return Ok(0.0);
    };
    let rep: Vec<i64> = hull.iter().map(|(l, _)| *l).collect();
    debug_assert_eq!(rep.len(), k);
    let img = fp.image_of(&rep)?;
    let elem = f64::from(program.array(array).elem_bytes());
    Ok(card_box(&img, params)? * elem)
}

/// Summarizes a heuristic fusion result (tiling-after-fusion baseline):
/// each group is tiled by `tile_sizes` over its shared band prefix.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn summarize_groups(
    program: &Program,
    groups: &[Group],
    tile_sizes: &[i64],
    params: &[i64],
) -> Result<Vec<ExecGroup>> {
    let mut out = Vec::new();
    for g in groups {
        out.push(summarize_one_group(
            program,
            groups,
            g,
            tile_sizes,
            params,
            &[],
            &[],
        )?);
    }
    Ok(out)
}

/// Summarizes an optimizer result: fused producers join their live-out
/// group with recomputation factors; their arrays become tile-local.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn summarize_optimized(
    program: &Program,
    optimized: &Optimized,
    tile_sizes: &[i64],
    params: &[i64],
) -> Result<Vec<ExecGroup>> {
    let report = &optimized.report;
    let fused_all: BTreeSet<usize> = report
        .mixed
        .iter()
        .flat_map(|m| m.fused_groups.iter().copied())
        .collect();
    let mut out = Vec::new();
    for (gi, g) in report.groups.iter().enumerate() {
        if fused_all.contains(&gi) {
            continue; // executes inside its live-out's tiles
        }
        // Is gi a live-out group with fused producers?
        let mixed = report.mixed.iter().find(|m| m.liveout == gi);
        let (extra, exts): (Vec<StmtId>, Vec<&tilefuse_core::ExtensionPart>) = match mixed {
            Some(m) => (
                m.extensions.iter().map(|e| e.stmt).collect(),
                m.extensions.iter().collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        out.push(summarize_one_group(
            program,
            &report.groups,
            g,
            tile_sizes,
            params,
            &extra,
            &exts,
        )?);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn summarize_one_group(
    program: &Program,
    _all_groups: &[Group],
    g: &Group,
    tile_sizes: &[i64],
    params: &[i64],
    fused_stmts: &[StmtId],
    exts: &[&tilefuse_core::ExtensionPart],
) -> Result<ExecGroup> {
    let k = g.depth.min(tile_sizes.len());
    // Tile maps of the group's own statements.
    let mut stmts: Vec<StmtId> = g.stmts.clone();
    let mut tile_maps: Vec<Map> = Vec::new();
    for (idx, &s) in g.stmts.iter().enumerate() {
        let vars = loop_vars(program, s);
        let part = band_part(program, s, &vars[..k], &g.shifts[idx][..k])?;
        let tiled = if k > 0 {
            let band = Band::new(
                tilefuse_presburger::UnionMap::from_parts([part])?,
                true,
                vec![false; k],
            )?;
            let (tile, _) = band.tile(&tile_sizes[..k])?;
            tile.sched().parts()[0].clone()
        } else {
            part
        };
        tile_maps.push(tiled);
    }
    // Fused producers: their "tile map" is the reverse of the extension.
    for e in exts {
        stmts.push(e.stmt);
        tile_maps.push(e.ext.reverse());
    }

    // Parallel-extent bookkeeping first (tile counts feed the
    // recomputation estimates below).
    let rep_stmt = g.stmts[0];
    let rep_vars = loop_vars(program, rep_stmt);
    let rep_hull = program
        .stmt(rep_stmt)
        .domain()
        .rect_hull(params)?
        .unwrap_or_default();
    let mut n_tiles = 1.0;
    for (j, &ts) in tile_sizes.iter().take(k).enumerate() {
        let extent = rep_vars
            .get(j)
            .and_then(|&d| rep_hull.get(d))
            .map(|(l, u)| (u - l + 1).max(0) as f64)
            .unwrap_or(1.0);
        n_tiles *= (extent / ts as f64).ceil();
    }

    // Instance counts.
    let mut instances = BTreeMap::new();
    let mut ops = 0.0;
    let mut ops_cube = 0.0;
    let mut ops_vector = 0.0;
    let mut loads = 0.0;
    let mut stores = 0.0;
    for &s in &stmts {
        let stmt = program.stmt(s);
        let base = card_box(stmt.domain(), params)? * stmt.work_scale();
        let count = if fused_stmts.contains(&s) {
            // Recomputation: (tiles) × (per-tile extension instances,
            // sampled at the origin tile — domains start at zero).
            let e = exts
                .iter()
                .find(|e| e.stmt == s)
                .expect("fused stmt has ext");
            let kk = e.ext.space().n_in();
            let per_tile = card_box(&e.ext.image_of(&vec![0; kk])?, params)?;
            (n_tiles * per_tile * stmt.work_scale()).max(base)
        } else {
            base
        };
        instances.insert(s, count);
        let stmt_ops = count * (stmt.body().rhs.op_count() as f64 + 1.0);
        ops += stmt_ops;
        if stmt.n_dims() >= 4 {
            ops_cube += stmt_ops;
        } else {
            ops_vector += stmt_ops;
        }
        loads += count * stmt.body().rhs.loads().len() as f64;
        stores += count;
    }

    // Parallel chunks per leading coincident dim (tiles when tiled).
    let mut parallel_chunks = Vec::new();
    for (j, &coin) in g.coincident.iter().enumerate() {
        if !coin {
            break;
        }
        let extent = rep_vars
            .get(j)
            .and_then(|&d| rep_hull.get(d))
            .map(|(l, u)| (u - l + 1).max(0) as f64)
            .unwrap_or(1.0);
        let chunk = if j < k {
            (extent / tile_sizes[j] as f64).ceil()
        } else {
            extent
        };
        parallel_chunks.push(chunk);
    }

    // Array classification.
    let group_set: BTreeSet<StmtId> = stmts.iter().copied().collect();
    let mut touched: BTreeSet<ArrayId> = BTreeSet::new();
    for &s in &stmts {
        touched.insert(program.stmt(s).body().target);
        for (a, _) in program.stmt(s).body().rhs.loads() {
            touched.insert(a);
        }
    }
    let mut local_arrays = Vec::new();
    let mut external_arrays = Vec::new();
    let mut tile_footprint_bytes = 0.0;
    for &a in &touched {
        let decl = program.array(a);
        let writers: BTreeSet<StmtId> = program
            .stmts()
            .iter()
            .filter(|s| s.body().target == a)
            .map(|s| s.id())
            .collect();
        let readers: BTreeSet<StmtId> = program
            .stmts()
            .iter()
            .filter(|s| s.body().rhs.loads().iter().any(|(arr, _)| *arr == a))
            .map(|s| s.id())
            .collect();
        let internal = decl.kind() == ArrayKind::Temp
            && writers.is_subset(&group_set)
            && readers
                .iter()
                .all(|r| group_set.contains(r) || writers.contains(r));
        let fused_local = exts.iter().any(|e| program.stmt(e.stmt).body().target == a);
        let per_tile = per_tile_array_bytes(program, &stmts, &tile_maps, a, params)?;
        tile_footprint_bytes += per_tile;
        if (internal && group_set.len() > 1) || fused_local {
            local_arrays.push((a, per_tile));
        } else {
            // Distinct bytes of the array touched by this group.
            let bind = |name: &str| -> i64 {
                program
                    .params()
                    .iter()
                    .position(|(n, _)| n == name)
                    .map(|i| params[i])
                    .unwrap_or(0)
            };
            let bytes = decl.len(&bind).max(0) as f64 * f64::from(decl.elem_bytes());
            external_arrays.push((a, bytes));
        }
    }

    let vectorizable = g.innermost_parallel;

    let label = g
        .stmts
        .iter()
        .map(|&s| program.stmt(s).name().to_owned())
        .collect::<Vec<_>>()
        .join("+");
    Ok(ExecGroup {
        label,
        stmts,
        instances,
        ops,
        ops_cube,
        ops_vector,
        loads,
        stores,
        parallel_chunks,
        n_tiles,
        tile_footprint_bytes,
        local_arrays,
        external_arrays,
        vectorizable,
    })
}

/// Guards against summaries of empty programs.
pub(crate) fn require_nonempty(groups: &[ExecGroup]) -> Result<()> {
    if groups.is_empty() {
        return Err(Error::Model("no execution groups to price".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_pir::{Body, Expr, IdxExpr, SchedTerm};
    use tilefuse_scheduler::{schedule, FusionHeuristic};

    fn stencil_pair(n: i64) -> Program {
        let mut p = Program::new("st").with_param("N", n);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        p
    }

    #[test]
    fn minfuse_summary_pays_external_traffic_for_intermediate() {
        let p = stencil_pair(128);
        let s = schedule(&p, FusionHeuristic::MinFuse).unwrap();
        let sums = summarize_groups(&p, &s.fusion.groups, &[32], &[128]).unwrap();
        assert_eq!(sums.len(), 2);
        // Both groups see A as external: the producer writes it to memory,
        // the consumer reads it back.
        assert!(sums[0].external_bytes() > 0.0);
        assert!(sums[1].external_bytes() > 0.0);
        assert!(sums[0].local_arrays.is_empty());
        assert_eq!(sums[0].instances[&StmtId(0)], 128.0);
    }

    #[test]
    fn optimized_summary_localizes_intermediate_with_recompute() {
        let p = stencil_pair(128);
        let opts = tilefuse_core::Options {
            tile_sizes: vec![32],
            parallel_cap: None,
            startup: FusionHeuristic::MinFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&p, &opts).unwrap();
        let sums = summarize_optimized(&p, &o, &[32], &[128]).unwrap();
        assert_eq!(sums.len(), 1, "producer fused away");
        let g = &sums[0];
        assert_eq!(g.local_arrays.len(), 1, "A is tile-local");
        // Recomputation: 4 tiles × 34 producer instances = 136 > 128.
        let s0 = g.instances[&StmtId(0)];
        assert!(s0 > 128.0 && s0 <= 140.0, "recompute-inflated count {s0}");
        // Output B remains external.
        assert!(g.external_bytes() > 0.0);
        assert_eq!(g.parallel_chunks, vec![4.0]);
        assert_eq!(g.n_tiles, 4.0);
    }

    #[test]
    fn card_box_counts_rectangles_exactly() {
        let s: Set = "{ S[i, j] : 0 <= i <= 3 and 0 <= j <= 4 }".parse().unwrap();
        assert_eq!(card_box(&s, &[]).unwrap(), 20.0);
        let e: Set = "{ S[i] : 1 = 0 }".parse().unwrap();
        assert_eq!(card_box(&e, &[]).unwrap(), 0.0);
    }

    #[test]
    fn tile_footprint_includes_halo() {
        let p = stencil_pair(128);
        let s = schedule(&p, FusionHeuristic::MinFuse).unwrap();
        let sums = summarize_groups(&p, &s.fusion.groups, &[32], &[128]).unwrap();
        // Consumer tile reads 32 B elements and 34 A elements: 66 × 4 bytes.
        let consumer = &sums[1];
        assert_eq!(consumer.tile_footprint_bytes, (34.0 + 32.0) * 4.0);
    }
}
