//! A trace-driven set-associative LRU cache simulator.
//!
//! Used to cross-validate the analytic footprint model on small problem
//! sizes: replaying an interpreter-produced access trace through a
//! simulated cache must show the same qualitative effect the analytic
//! model predicts (fused schedules miss less).

/// A set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    n_sets: u64,
    ways: usize,
    /// Per set: tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Builds a cache of `capacity_bytes` with the given associativity and
    /// line size.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sizes or capacity not a
    /// multiple of `ways * line_bytes`).
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(line_bytes > 0 && ways > 0, "degenerate cache geometry");
        let n_sets = capacity_bytes / (ways as u64 * line_bytes);
        assert!(n_sets > 0, "capacity too small for geometry");
        CacheSim {
            line_bytes,
            n_sets,
            ways,
            sets: vec![Vec::new(); n_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// A 32 KiB, 8-way, 64-byte-line L1.
    pub fn l1_32k() -> Self {
        CacheSim::new(32 * 1024, 8, 64)
    }

    /// A 1 MiB, 16-way, 64-byte-line L2.
    pub fn l2_1m() -> Self {
        CacheSim::new(1024 * 1024, 16, 64)
    }

    /// Accesses a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.n_sets) as usize;
        let tags = &mut self.sets[set];
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            tags.remove(pos);
            tags.insert(0, line);
            self.hits += 1;
            true
        } else {
            tags.insert(0, line);
            if tags.len() > self.ways {
                tags.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Bytes transferred from the next level (misses × line size).
    pub fn traffic_bytes(&self) -> u64 {
        self.misses * self.line_bytes
    }

    /// Resets counters (keeps contents).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Assigns disjoint base addresses to arrays so interpreter coordinates
/// can be turned into flat addresses.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    bases: Vec<(usize, u64, Vec<i64>)>, // (array id, base, shape)
    next: u64,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an array of `shape` with 4-byte elements; returns its id.
    pub fn register(&mut self, array: usize, shape: &[i64]) {
        let len: i64 = shape.iter().product();
        self.bases.push((array, self.next, shape.to_vec()));
        // Pad to line size to avoid artificial conflicts.
        self.next += (len.max(0) as u64) * 4 + 64;
    }

    /// The byte address of `array[coords]`.
    ///
    /// # Panics
    /// Panics if the array was not registered or coords mismatch.
    pub fn addr(&self, array: usize, coords: &[i64]) -> u64 {
        let (_, base, shape) = self
            .bases
            .iter()
            .find(|(a, _, _)| *a == array)
            .expect("array registered");
        assert_eq!(coords.len(), shape.len());
        let mut idx = 0i64;
        for (c, s) in coords.iter().zip(shape) {
            idx = idx * s + c;
        }
        base + (idx as u64) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = CacheSim::new(1024, 2, 64);
        for addr in (0..640).step_by(4) {
            c.access(addr);
        }
        // 640 bytes = 10 lines -> 10 misses, 150 hits.
        assert_eq!(c.misses(), 10);
        assert_eq!(c.hits(), 150);
        assert_eq!(c.traffic_bytes(), 640);
    }

    #[test]
    fn reuse_within_capacity_hits() {
        let mut c = CacheSim::new(1024, 2, 64);
        for _ in 0..3 {
            for addr in (0..512).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 16);
    }

    #[test]
    fn capacity_eviction_causes_misses() {
        let mut c = CacheSim::new(1024, 2, 64); // 16 lines
                                                // Touch 32 distinct lines twice: LRU evicts everything between
                                                // rounds (same-set reuse distance exceeds associativity).
        for _ in 0..2 {
            for i in 0..32u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 64);
        assert_eq!(c.hits(), 0);
        assert!((c.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn associativity_preserves_hot_set() {
        // 4-way: 4 hot lines in one set survive round-robin of 4.
        let mut c = CacheSim::new(4 * 64, 4, 64); // 1 set, 4 ways
        for _ in 0..4 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 12);
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = CacheSim::l1_32k();
        c.access(0);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert!(c.access(0), "line should still be resident");
    }

    #[test]
    fn address_map_assigns_disjoint_ranges() {
        let mut m = AddressMap::new();
        m.register(0, &[4, 4]);
        m.register(1, &[8]);
        let a = m.addr(0, &[3, 3]);
        let b = m.addr(1, &[0]);
        assert!(b > a);
        assert_eq!(m.addr(0, &[1, 2]), m.addr(0, &[0, 0]) + (4 + 2) * 4);
    }
}
