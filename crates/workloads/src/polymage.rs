//! The six PolyMage image-processing pipelines of Table I.
//!
//! Each generator reproduces the *dependence structure* of the original
//! benchmark — stage count, stencil halos, pyramid depth, fan-out — using
//! the [`crate::pipeline::PipelineBuilder`]. Stage counts match Table I
//! (Bilateral Grid 7, Camera Pipeline 32, Harris 11, Local Laplacian 99,
//! Multiscale Interpolation 49, Unsharp Mask 4); the arithmetic inside a
//! stage is representative, not identical, which is irrelevant to the
//! fusion/tiling decisions under study.

use crate::pipeline::{PipelineBuilder, Stage};
use crate::Workload;
use tilefuse_pir::Result;

/// Counts pipeline *stages* (arrays produced), as the paper counts them.
fn count_stages(p: &tilefuse_pir::Program) -> usize {
    p.arrays()
        .iter()
        .filter(|a| a.kind() != tilefuse_pir::ArrayKind::Input)
        .count()
}

/// Unsharp Mask: blur_x → blur_y → sharpen(+input) → mask. 4 stages.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn unsharp_mask(h: i64, w: i64) -> Result<Workload> {
    let (mut b, input) = PipelineBuilder::new("unsharp_mask", h, w);
    let bx = b.stencil_x(input, 2)?; // 5-tap Gaussian blur
    let by = b.stencil_y(bx, 2)?;
    let sharp = b.combine(input, by)?;
    let program = b.output(sharp)?;
    Ok(Workload {
        name: "Unsharp Mask",
        stages: count_stages(&program),
        tile_sizes: vec![8, 512],
        gpu_grid: vec![8, 32, 3],
        program,
    })
}

/// Harris Corner Detection: gradients, products, box blurs, response.
/// 11 stages.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn harris(h: i64, w: i64) -> Result<Workload> {
    let (mut b, input) = PipelineBuilder::new("harris", h, w);
    let ix = b.stencil_x(input, 1)?; // Ix
    let iy = b.stencil_y(input, 1)?; // Iy
    let ixx = b.pointwise(ix)?; // Ix*Ix
    let iyy = b.pointwise(iy)?; // Iy*Iy
    let ixy = b.combine(ix, iy)?; // Ix*Iy
    let sxx = b.stencil_box(ixx, 1)?; // box(Ixx), one stage
    let syy = b.stencil_box(iyy, 1)?;
    let sxy = b.stencil_box(ixy, 1)?;
    let det = b.combine(sxx, syy)?; // det-ish
    let resp = b.combine(det, sxy)?; // response
    let program = b.output(resp)?;
    Ok(Workload {
        name: "Harris Corner Detection",
        stages: count_stages(&program),
        tile_sizes: vec![32, 256],
        gpu_grid: vec![16, 32],
        program,
    })
}

/// Bilateral Grid: grid build (downsample), 3 grid blurs, slice
/// (upsample), two pointwise stages. 7 main stages.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn bilateral_grid(h: i64, w: i64) -> Result<Workload> {
    let (mut b, input) = PipelineBuilder::new("bilateral_grid", h, w);
    let grid = b.downsample(input)?; // scatter into the grid
    let bx = b.stencil_x(grid, 1)?; // blur grid x
    let by = b.stencil_y(bx, 1)?; // blur grid y
    let bz = b.pointwise(by)?; // blur grid z (modelled pointwise)
    let sliced = b.upsample(bz)?; // slice
    let interp = b.combine(sliced, input)?; // trilinear interpolation
    let program = b.output(interp)?;
    Ok(Workload {
        name: "Bilateral Grid",
        stages: count_stages(&program),
        tile_sizes: vec![8, 128],
        gpu_grid: vec![8, 64],
        program,
    })
}

/// Camera Pipeline: denoise, demosaic (stencil-heavy), color correction
/// and tone mapping (pointwise-heavy). 32 stages.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn camera_pipeline(h: i64, w: i64) -> Result<Workload> {
    let (mut b, input) = PipelineBuilder::new("camera_pipeline", h, w);
    // Hot-pixel suppression + denoise: two stencils.
    let mut cur = b.stencil3x3(input)?; // 2 stages
    cur = b.pointwise(cur)?;
    // Demosaic: interpolate channels — a fan of stencils recombined.
    let g = b.stencil_x(cur, 1)?;
    let r = b.stencil_y(cur, 1)?;
    let bl = b.stencil3x3(cur)?; // 2 stages
    let rg = b.combine(r, g)?;
    let rgb = b.combine(rg, bl)?;
    cur = rgb;
    // Color correction: matrix multiply as 3 pointwise stages + combines.
    for _ in 0..6 {
        cur = b.pointwise(cur)?;
    }
    // Curve application (tone mapping) + gamma: pointwise chain.
    for _ in 0..8 {
        cur = b.pointwise(cur)?;
    }
    // Sharpen: blur + combine.
    let blur = b.stencil3x3(cur)?; // 2 stages
    cur = b.combine(cur, blur)?;
    // Final chroma denoise + dither.
    for _ in 0..5 {
        cur = b.pointwise(cur)?;
    }
    let program = b.output(cur)?;
    Ok(Workload {
        name: "Camera Pipeline",
        stages: count_stages(&program),
        tile_sizes: vec![64, 256],
        gpu_grid: vec![16, 32],
        program,
    })
}

/// Multiscale Interpolation: a 4-level pyramid — downsample chain,
/// per-level processing, upsample-and-combine chain. 49 stages.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn multiscale_interpolation(h: i64, w: i64) -> Result<Workload> {
    let (mut b, input) = PipelineBuilder::new("multiscale_interp", h, w);
    let levels = 4;
    // Downsample chain with pre-filters.
    let mut downs: Vec<Stage> = vec![input];
    let mut cur = input;
    for _ in 0..levels {
        cur = b.stencil_x(cur, 2)?; // separable pre-filter
        cur = b.stencil_y(cur, 2)?;
        cur = b.downsample(cur)?;
        downs.push(cur);
    }
    // Per-level processing (mask, interpolation weights, normalization).
    let mut processed = Vec::new();
    for &d in &downs {
        let mut s = b.pointwise(d)?;
        s = b.pointwise(s)?;
        s = b.pointwise(s)?;
        let m = b.combine(s, d)?;
        processed.push(m);
    }
    // Upsample-and-combine from coarsest to finest.
    let mut acc = processed[levels];
    for lvl in (0..levels).rev() {
        let up = b.upsample(acc)?; // 4 statements, 1 stage
        acc = b.combine(up, processed[lvl])?;
        acc = b.pointwise(acc)?;
        acc = b.pointwise(acc)?;
    }
    let program = b.output(acc)?;
    Ok(Workload {
        name: "Multiscale Interpolation",
        stages: count_stages(&program),
        tile_sizes: vec![32, 128],
        gpu_grid: vec![32, 16],
        program,
    })
}

/// Local Laplacian Filter: an 8-level Gaussian pyramid, per-level Laplacian
/// remapping, and collapse. 99 stages.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn local_laplacian(h: i64, w: i64) -> Result<Workload> {
    let (mut b, input) = PipelineBuilder::new("local_laplacian", h, w);
    let levels = 7;
    // Gaussian pyramid of the input.
    let mut gauss: Vec<Stage> = vec![input];
    let mut cur = input;
    for _ in 0..levels {
        cur = b.stencil_x(cur, 2)?; // 5-tap Gaussian pre-filter
        cur = b.downsample(cur)?;
        gauss.push(cur);
    }
    // Remapped (tone-adjusted) copies at each level: 3 pointwise stages
    // per level (the remapping function applied at several intensities).
    let mut remapped = Vec::new();
    for &g in gauss.iter().take(levels + 1) {
        let r0 = b.pointwise(g)?;
        let r1 = b.pointwise(r0)?;
        let r2 = b.pointwise(r1)?;
        let r3 = b.combine(r2, g)?;
        remapped.push(r3);
    }
    // Laplacian pyramid: difference between level and upsampled coarser,
    // then blend with the remapped copy.
    let mut lap = Vec::new();
    for lvl in 0..levels {
        let up = b.upsample(remapped[lvl + 1])?;
        let diff = b.combine(remapped[lvl], up)?;
        let weight = b.pointwise(gauss[lvl])?;
        let blend = b.combine(diff, weight)?;
        lap.push(blend);
    }
    // Collapse: from coarsest Laplacian back to full resolution.
    let mut acc = remapped[levels];
    for lvl in (0..levels).rev() {
        let up = b.upsample(acc)?;
        acc = b.combine(up, lap[lvl])?;
        acc = b.pointwise(acc)?;
    }
    // Final tone normalization.
    acc = b.pointwise(acc)?;
    acc = b.pointwise(acc)?;
    acc = b.pointwise(acc)?;
    let program = b.output(acc)?;
    Ok(Workload {
        name: "Local Laplacian Filter",
        stages: count_stages(&program),
        tile_sizes: vec![8, 256],
        gpu_grid: vec![8, 64],
        program,
    })
}

/// All six pipelines with default (simulation-friendly) sizes.
///
/// # Errors
/// Returns an error if any program fails to build.
pub fn all(h: i64, w: i64) -> Result<Vec<Workload>> {
    Ok(vec![
        bilateral_grid(h, w)?,
        camera_pipeline(h, w)?,
        harris(h, w)?,
        local_laplacian(h, w)?,
        multiscale_interpolation(h, w)?,
        unsharp_mask(h, w)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_match_table1() {
        assert_eq!(unsharp_mask(64, 64).unwrap().stages, 4);
        assert_eq!(harris(64, 64).unwrap().stages, 11);
        assert_eq!(bilateral_grid(64, 64).unwrap().stages, 7);
        assert_eq!(camera_pipeline(64, 64).unwrap().stages, 32);
        assert_eq!(multiscale_interpolation(256, 256).unwrap().stages, 49);
        assert_eq!(local_laplacian(256, 256).unwrap().stages, 99);
    }

    #[test]
    fn all_builds() {
        let ws = all(256, 256).unwrap();
        assert_eq!(ws.len(), 6);
        for w in &ws {
            assert!(w.program.stmts().len() >= w.stages, "{}", w.name);
            assert!(
                w.program
                    .stmts()
                    .iter()
                    .any(|s| w.program.is_live_out(s.id())),
                "{} has no live-out",
                w.name
            );
        }
    }

    #[test]
    fn unsharp_runs_correctly_under_all_heuristics() {
        let w = unsharp_mask(16, 16).unwrap();
        let (r, _) = tilefuse_codegen::reference_execute(&w.program, &[]).unwrap();
        for h in [
            tilefuse_scheduler::FusionHeuristic::MinFuse,
            tilefuse_scheduler::FusionHeuristic::SmartFuse,
            tilefuse_scheduler::FusionHeuristic::MaxFuse,
        ] {
            let s = tilefuse_scheduler::schedule(&w.program, h).unwrap();
            let (t, _) =
                tilefuse_codegen::execute_tree(&w.program, &s.tree, &[], &Default::default())
                    .unwrap();
            tilefuse_codegen::check_outputs_match(&w.program, &r, &t, 1e-10).unwrap();
        }
    }

    #[test]
    fn harris_post_tiling_fusion_correct() {
        let w = harris(18, 18).unwrap();
        let opts = tilefuse_core::Options {
            tile_sizes: vec![4, 4],
            parallel_cap: None,
            startup: tilefuse_scheduler::FusionHeuristic::MinFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&w.program, &opts).unwrap();
        let (r, _) = tilefuse_codegen::reference_execute(&w.program, &[]).unwrap();
        let (t, stats) =
            tilefuse_codegen::execute_tree(&w.program, &o.tree, &[], &o.report.scratch_scopes)
                .unwrap();
        tilefuse_codegen::check_outputs_match(&w.program, &r, &t, 1e-10).unwrap();
        assert!(stats.scratch_hits > 0);
        assert!(o.report.n_final_groups() < o.report.groups.len());
    }
}
