//! PolyBench kernels of Table II: `2mm`, `gemver`, `covariance`.

use crate::Workload;
use tilefuse_pir::{ArrayKind, Body, Expr, IdxExpr, Program, Result, SchedTerm};

/// `2mm`: `tmp = alpha·A·B`, `D = tmp·C + beta·D` — two chained
/// matrix-matrix products (4 statements: 2 inits, 2 reductions).
///
/// # Errors
/// Returns an error if program construction fails.
pub fn two_mm(n: i64) -> Result<Workload> {
    let mut p = Program::new("2mm")
        .with_param("NI", n)
        .with_param("NJ", n)
        .with_param("NK", n)
        .with_param("NL", n);
    let a = p.add_array("A", vec!["NI".into(), "NK".into()], ArrayKind::Input);
    let b = p.add_array("B", vec!["NK".into(), "NJ".into()], ArrayKind::Input);
    let c = p.add_array("C", vec!["NJ".into(), "NL".into()], ArrayKind::Input);
    let tmp = p.add_array("tmp", vec!["NI".into(), "NJ".into()], ArrayKind::Temp);
    let d = p.add_array("D", vec!["NI".into(), "NL".into()], ArrayKind::Output);
    let d2 = |k| IdxExpr::dim(2, k);
    let d3 = |k| IdxExpr::dim(3, k);
    // S0: tmp[i][j] = 0
    p.add_stmt(
        "{ S0[i, j] : 0 <= i < NI and 0 <= j < NJ }",
        vec![
            SchedTerm::Cst(0),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: tmp,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )?;
    // S1: tmp[i][j] += alpha * A[i][k] * B[k][j]
    p.add_stmt(
        "{ S1[i, j, k] : 0 <= i < NI and 0 <= j < NJ and 0 <= k < NK }",
        vec![
            SchedTerm::Cst(0),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
        ],
        Body {
            target: tmp,
            target_idx: vec![d3(0), d3(1)],
            rhs: Expr::add(
                Expr::load(tmp, vec![d3(0), d3(1)]),
                Expr::mul(
                    Expr::mul(Expr::Const(1.5), Expr::load(a, vec![d3(0), d3(2)])),
                    Expr::load(b, vec![d3(2), d3(1)]),
                ),
            ),
        },
    )?;
    // S2: D[i][l] *= beta
    p.add_stmt(
        "{ S2[i, l] : 0 <= i < NI and 0 <= l < NL }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: d,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::mul(Expr::load(d, vec![d2(0), d2(1)]), Expr::Const(1.2)),
        },
    )?;
    // S3: D[i][l] += tmp[i][j] * C[j][l]
    p.add_stmt(
        "{ S3[i, l, j] : 0 <= i < NI and 0 <= l < NL and 0 <= j < NJ }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
        ],
        Body {
            target: d,
            target_idx: vec![d3(0), d3(1)],
            rhs: Expr::add(
                Expr::load(d, vec![d3(0), d3(1)]),
                Expr::mul(
                    Expr::load(tmp, vec![d3(0), d3(2)]),
                    Expr::load(c, vec![d3(2), d3(1)]),
                ),
            ),
        },
    )?;
    Ok(Workload {
        name: "2mm",
        program: p,
        tile_sizes: vec![32, 32],
        gpu_grid: vec![32, 32],
        stages: 2,
    })
}

/// `gemver`: `A_hat = A + u1·v1ᵀ + u2·v2ᵀ; x = beta·A_hatᵀ·y + z;
/// w = alpha·A_hat·x` — four loop nests.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn gemver(n: i64) -> Result<Workload> {
    let mut p = Program::new("gemver").with_param("N", n);
    let a = p.add_array("A", vec!["N".into(), "N".into()], ArrayKind::Input);
    let u1 = p.add_array("u1", vec!["N".into()], ArrayKind::Input);
    let v1 = p.add_array("v1", vec!["N".into()], ArrayKind::Input);
    let u2 = p.add_array("u2", vec!["N".into()], ArrayKind::Input);
    let v2 = p.add_array("v2", vec!["N".into()], ArrayKind::Input);
    let y = p.add_array("y", vec!["N".into()], ArrayKind::Input);
    let z = p.add_array("z", vec!["N".into()], ArrayKind::Input);
    let ah = p.add_array("Ahat", vec!["N".into(), "N".into()], ArrayKind::Temp);
    let x = p.add_array("x", vec!["N".into()], ArrayKind::Output);
    let w = p.add_array("w", vec!["N".into()], ArrayKind::Output);
    let d1 = |k| IdxExpr::dim(1, k);
    let d2 = |k| IdxExpr::dim(2, k);
    // S0: Ahat[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j]
    p.add_stmt(
        "{ S0[i, j] : 0 <= i < N and 0 <= j < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: ah,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::add(
                Expr::load(a, vec![d2(0), d2(1)]),
                Expr::add(
                    Expr::mul(Expr::load(u1, vec![d2(0)]), Expr::load(v1, vec![d2(1)])),
                    Expr::mul(Expr::load(u2, vec![d2(0)]), Expr::load(v2, vec![d2(1)])),
                ),
            ),
        },
    )?;
    // S1: x[i] = z[i]
    p.add_stmt(
        "{ S1[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0), SchedTerm::Cst(0)],
        Body {
            target: x,
            target_idx: vec![d1(0)],
            rhs: Expr::load(z, vec![d1(0)]),
        },
    )?;
    // S2: x[i] += beta * Ahat[j][i] * y[j]
    p.add_stmt(
        "{ S2[i, j] : 0 <= i < N and 0 <= j < N }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Cst(1),
            SchedTerm::Var(1),
        ],
        Body {
            target: x,
            target_idx: vec![d2(0)],
            rhs: Expr::add(
                Expr::load(x, vec![d2(0)]),
                Expr::mul(
                    Expr::mul(Expr::Const(1.2), Expr::load(ah, vec![d2(1), d2(0)])),
                    Expr::load(y, vec![d2(1)]),
                ),
            ),
        },
    )?;
    // S3: w[i] = 0
    p.add_stmt(
        "{ S3[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Cst(0)],
        Body {
            target: w,
            target_idx: vec![d1(0)],
            rhs: Expr::Const(0.0),
        },
    )?;
    // S4: w[i] += alpha * Ahat[i][j] * x[j]
    p.add_stmt(
        "{ S4[i, j] : 0 <= i < N and 0 <= j < N }",
        vec![
            SchedTerm::Cst(2),
            SchedTerm::Var(0),
            SchedTerm::Cst(1),
            SchedTerm::Var(1),
        ],
        Body {
            target: w,
            target_idx: vec![d2(0)],
            rhs: Expr::add(
                Expr::load(w, vec![d2(0)]),
                Expr::mul(
                    Expr::mul(Expr::Const(1.5), Expr::load(ah, vec![d2(0), d2(1)])),
                    Expr::load(x, vec![d2(1)]),
                ),
            ),
        },
    )?;
    Ok(Workload {
        name: "gemver",
        program: p,
        tile_sizes: vec![32, 32],
        gpu_grid: vec![32, 32],
        stages: 4,
    })
}

/// `covariance`: column means, centering, and the triangular covariance
/// reduction (the non-rectangular domain that crashes hybridfuse —
/// Table II's ✗).
///
/// # Errors
/// Returns an error if program construction fails.
pub fn covariance(n: i64, m: i64) -> Result<Workload> {
    let mut p = Program::new("covariance")
        .with_param("N", n)
        .with_param("M", m);
    let data = p.add_array("data", vec!["N".into(), "M".into()], ArrayKind::Input);
    let centered = p.add_array("centered", vec!["N".into(), "M".into()], ArrayKind::Temp);
    let mean = p.add_array("mean", vec!["M".into()], ArrayKind::Temp);
    let cov = p.add_array("cov", vec!["M".into(), "M".into()], ArrayKind::Output);
    let d1 = |k| IdxExpr::dim(1, k);
    let d2 = |k| IdxExpr::dim(2, k);
    let d3 = |k| IdxExpr::dim(3, k);
    // S0: mean[j] = 0
    p.add_stmt(
        "{ S0[j] : 0 <= j < M }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Cst(0)],
        Body {
            target: mean,
            target_idx: vec![d1(0)],
            rhs: Expr::Const(0.0),
        },
    )?;
    // S1: mean[j] += data[i][j] / N
    p.add_stmt(
        "{ S1[j, i] : 0 <= j < M and 0 <= i < N }",
        vec![
            SchedTerm::Cst(0),
            SchedTerm::Var(0),
            SchedTerm::Cst(1),
            SchedTerm::Var(1),
        ],
        Body {
            target: mean,
            target_idx: vec![d2(0)],
            rhs: Expr::add(
                Expr::load(mean, vec![d2(0)]),
                Expr::mul(
                    Expr::load(data, vec![d2(1), d2(0)]),
                    Expr::Const(1.0 / 64.0),
                ),
            ),
        },
    )?;
    // S2: centered[i][j] = data[i][j] - mean[j]
    p.add_stmt(
        "{ S2[i, j] : 0 <= i < N and 0 <= j < M }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: centered,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::sub(
                Expr::load(data, vec![d2(0), d2(1)]),
                Expr::load(mean, vec![d2(1)]),
            ),
        },
    )?;
    // S3: cov[i][j] = 0 for the triangular j >= i
    p.add_stmt(
        "{ S3[i, j] : 0 <= i < M and i <= j < M }",
        vec![
            SchedTerm::Cst(2),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: cov,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )?;
    // S4: cov[i][j] += centered[k][i] * centered[k][j], j >= i
    p.add_stmt(
        "{ S4[i, j, k] : 0 <= i < M and i <= j < M and 0 <= k < N }",
        vec![
            SchedTerm::Cst(2),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
        ],
        Body {
            target: cov,
            target_idx: vec![d3(0), d3(1)],
            rhs: Expr::add(
                Expr::load(cov, vec![d3(0), d3(1)]),
                Expr::mul(
                    Expr::load(centered, vec![d3(2), d3(0)]),
                    Expr::load(centered, vec![d3(2), d3(1)]),
                ),
            ),
        },
    )?;
    Ok(Workload {
        name: "covariance",
        program: p,
        tile_sizes: vec![32, 32],
        gpu_grid: vec![32, 32],
        stages: 3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_codegen::{check_outputs_match, execute_tree, reference_execute};
    use tilefuse_scheduler::{schedule, FusionHeuristic};

    #[test]
    fn two_mm_all_heuristics_correct() {
        let w = two_mm(8).unwrap();
        let (r, _) = reference_execute(&w.program, &[]).unwrap();
        for h in [
            FusionHeuristic::MinFuse,
            FusionHeuristic::SmartFuse,
            FusionHeuristic::MaxFuse,
            FusionHeuristic::HybridFuse,
        ] {
            let s = schedule(&w.program, h).unwrap();
            let (t, _) = execute_tree(&w.program, &s.tree, &[], &Default::default()).unwrap();
            check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
        }
    }

    #[test]
    fn gemver_heuristics_correct() {
        let w = gemver(10).unwrap();
        let (r, _) = reference_execute(&w.program, &[]).unwrap();
        for h in [
            FusionHeuristic::MinFuse,
            FusionHeuristic::SmartFuse,
            FusionHeuristic::MaxFuse,
        ] {
            let s = schedule(&w.program, h).unwrap();
            let (t, _) = execute_tree(&w.program, &s.tree, &[], &Default::default()).unwrap();
            check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
        }
    }

    #[test]
    fn covariance_crashes_hybridfuse_only() {
        let w = covariance(8, 8).unwrap();
        let r = schedule(&w.program, FusionHeuristic::HybridFuse);
        assert!(matches!(r, Err(tilefuse_scheduler::Error::Unsupported(_))));
        // Other heuristics handle it.
        let (reference, _) = reference_execute(&w.program, &[]).unwrap();
        let s = schedule(&w.program, FusionHeuristic::SmartFuse).unwrap();
        let (t, _) = execute_tree(&w.program, &s.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&w.program, &reference, &t, 1e-9).unwrap();
    }

    #[test]
    fn two_mm_post_tiling_fusion_correct() {
        let w = two_mm(8).unwrap();
        let opts = tilefuse_core::Options {
            tile_sizes: vec![4, 4],
            parallel_cap: None,
            startup: FusionHeuristic::MinFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&w.program, &opts).unwrap();
        let (r, _) = reference_execute(&w.program, &[]).unwrap();
        let (t, _) = execute_tree(&w.program, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
    }

    #[test]
    fn gemver_post_tiling_fusion_correct() {
        let w = gemver(10).unwrap();
        let opts = tilefuse_core::Options {
            tile_sizes: vec![4, 4],
            parallel_cap: None,
            startup: FusionHeuristic::MinFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&w.program, &opts).unwrap();
        let (r, _) = reference_execute(&w.program, &[]).unwrap();
        let (t, _) = execute_tree(&w.program, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
    }
}
