//! A small builder for image-processing pipelines.
//!
//! PolyMage-style pipelines are chains and DAGs of stages over 2-D images:
//! pointwise maps, separable/2-D stencils, downsampling, and upsampling.
//! The builder produces a [`Program`] whose dependence structure matches
//! the real benchmarks (stencil halos, pyramid levels, stage fan-out), so
//! fusion heuristics and the post-tiling optimizer face the same decisions
//! the paper's compiler did.
//!
//! Upsampling is expressed polyhedrally (no integer division) with four
//! statements writing the (even/odd row) × (even/odd column) points:
//! `U[2i, 2j] = D[i, j]`, `U[2i, 2j+1] = D[i, j]`, and so on.

use tilefuse_pir::{ArrayId, ArrayKind, Body, Expr, IdxExpr, Program, Result, SchedTerm};

/// The extent of one image dimension, tracked per stage: `(param, offset,
/// divisor)` meaning `(param + offset) / divisor` with exact division
/// assumed (sizes are powers of two in the pyramids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    offset: i64,
    divisor: i64,
}

/// A stage: the array holding its result plus its extents.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// The stage's output array.
    pub array: ArrayId,
    h: Extent,
    w: Extent,
}

/// Builds pipelines stage by stage.
#[derive(Debug)]
pub struct PipelineBuilder {
    program: Program,
    counter: usize,
    h_param: String,
    w_param: String,
}

impl PipelineBuilder {
    /// Starts a pipeline over an `h × w` input image (defaults for the
    /// parameters `H` and `W`).
    pub fn new(name: &str, h: i64, w: i64) -> (Self, Stage) {
        let mut program = Program::new(name).with_param("H", h).with_param("W", w);
        let input = program.add_array(
            "in0",
            vec![("H", 0).into(), ("W", 0).into()],
            ArrayKind::Input,
        );
        let b = PipelineBuilder {
            program,
            counter: 0,
            h_param: "H".into(),
            w_param: "W".into(),
        };
        let stage = Stage {
            array: input,
            h: Extent {
                offset: 0,
                divisor: 1,
            },
            w: Extent {
                offset: 0,
                divisor: 1,
            },
        };
        (b, stage)
    }

    /// Adds a second full-size input image.
    pub fn input(&mut self) -> Stage {
        self.counter += 1;
        let arr = self.program.add_array(
            &format!("in{}", self.counter),
            vec![
                (self.h_param.as_str(), 0).into(),
                (self.w_param.as_str(), 0).into(),
            ],
            ArrayKind::Input,
        );
        Stage {
            array: arr,
            h: Extent {
                offset: 0,
                divisor: 1,
            },
            w: Extent {
                offset: 0,
                divisor: 1,
            },
        }
    }

    /// Number of *statements* added so far.
    pub fn n_stmts(&self) -> usize {
        self.program.stmts().len()
    }

    fn fresh_array(&mut self, h: Extent, w: Extent, kind: ArrayKind) -> ArrayId {
        self.counter += 1;
        let name = format!("t{}", self.counter);
        // Decimated stages logically have extent (H + offset)/divisor; the
        // buffer is sized generously at H + offset (iteration domains are
        // exact, so the surplus is merely unused memory in the simulator).
        let he: tilefuse_pir::Extent = match h.divisor {
            1 => (self.h_param.as_str(), h.offset).into(),
            _ => (self.h_param.as_str(), h.offset.max(0)).into(),
        };
        let we: tilefuse_pir::Extent = match w.divisor {
            1 => (self.w_param.as_str(), w.offset).into(),
            _ => (self.w_param.as_str(), w.offset.max(0)).into(),
        };
        self.program.add_array(&name, vec![he, we], kind)
    }

    fn domain_str(&self, name: &str, h: Extent, w: Extent) -> String {
        // 0 <= d*h' <= H + offset - d  (i.e. h' < (H + offset)/d)
        let hp = &self.h_param;
        let wp = &self.w_param;
        let hcond = if h.divisor == 1 {
            format!("0 <= h and h <= {hp} + {}", h.offset - 1)
        } else {
            format!(
                "0 <= h and {}h <= {hp} + {}",
                h.divisor,
                h.offset - h.divisor
            )
        };
        let wcond = if w.divisor == 1 {
            format!("0 <= w and w <= {wp} + {}", w.offset - 1)
        } else {
            format!(
                "0 <= w and {}w <= {wp} + {}",
                w.divisor,
                w.offset - w.divisor
            )
        };
        format!("{{ {name}[h, w] : {hcond} and {wcond} }}")
    }

    fn next_stmt_name(&self) -> String {
        format!("S{}", self.program.stmts().len())
    }

    fn add_stage_stmt(
        &mut self,
        domain_h: Extent,
        domain_w: Extent,
        target: ArrayId,
        target_idx: Vec<IdxExpr>,
        rhs: Expr,
        work_scale: f64,
    ) -> Result<()> {
        let name = self.next_stmt_name();
        let domain = self.domain_str(&name, domain_h, domain_w);
        let seq = self.program.stmts().len() as i64;
        self.program.add_stmt_full(
            &domain,
            vec![SchedTerm::Cst(seq), SchedTerm::Var(0), SchedTerm::Var(1)],
            Body {
                target,
                target_idx,
                rhs,
            },
            false,
            work_scale,
        )?;
        Ok(())
    }

    /// A pointwise stage: `out[h,w] = f(in[h,w])`.
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn pointwise(&mut self, src: Stage) -> Result<Stage> {
        let arr = self.fresh_array(src.h, src.w, ArrayKind::Temp);
        let d = |k| IdxExpr::dim(2, k);
        self.add_stage_stmt(
            src.h,
            src.w,
            arr,
            vec![d(0), d(1)],
            Expr::add(
                Expr::mul(Expr::load(src.array, vec![d(0), d(1)]), Expr::Const(0.75)),
                Expr::Const(0.125),
            ),
            1.0,
        )?;
        Ok(Stage { array: arr, ..src })
    }

    /// A binary pointwise stage combining two same-extent stages.
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn combine(&mut self, a: Stage, b: Stage) -> Result<Stage> {
        let h = Extent {
            offset: a.h.offset.min(b.h.offset),
            divisor: a.h.divisor,
        };
        let w = Extent {
            offset: a.w.offset.min(b.w.offset),
            divisor: a.w.divisor,
        };
        let arr = self.fresh_array(h, w, ArrayKind::Temp);
        let d = |k| IdxExpr::dim(2, k);
        self.add_stage_stmt(
            h,
            w,
            arr,
            vec![d(0), d(1)],
            Expr::add(
                Expr::mul(Expr::load(a.array, vec![d(0), d(1)]), Expr::Const(0.5)),
                Expr::mul(Expr::load(b.array, vec![d(0), d(1)]), Expr::Const(0.5)),
            ),
            1.0,
        )?;
        Ok(Stage { array: arr, h, w })
    }

    /// An `r`-radius horizontal stencil: shrinks `w` by `2r`.
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn stencil_x(&mut self, src: Stage, r: i64) -> Result<Stage> {
        let w = Extent {
            offset: src.w.offset - 2 * r * src.w.divisor,
            divisor: src.w.divisor,
        };
        let arr = self.fresh_array(src.h, w, ArrayKind::Temp);
        let d = |k| IdxExpr::dim(2, k);
        let mut rhs = Expr::load(src.array, vec![d(0), d(1)]);
        for o in 1..=r {
            rhs = Expr::add(
                rhs,
                Expr::add(
                    Expr::load(src.array, vec![d(0), d(1).offset(o)]),
                    Expr::load(src.array, vec![d(0), d(1).offset(2 * r - o)]),
                ),
            );
        }
        rhs = Expr::mul(rhs, Expr::Const(1.0 / (2.0 * r as f64 + 1.0)));
        self.add_stage_stmt(src.h, w, arr, vec![d(0), d(1)], rhs, 1.0)?;
        Ok(Stage {
            array: arr,
            h: src.h,
            w,
        })
    }

    /// An `r`-radius vertical stencil: shrinks `h` by `2r`.
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn stencil_y(&mut self, src: Stage, r: i64) -> Result<Stage> {
        let h = Extent {
            offset: src.h.offset - 2 * r * src.h.divisor,
            divisor: src.h.divisor,
        };
        let arr = self.fresh_array(h, src.w, ArrayKind::Temp);
        let d = |k| IdxExpr::dim(2, k);
        let mut rhs = Expr::load(src.array, vec![d(0), d(1)]);
        for o in 1..=r {
            rhs = Expr::add(
                rhs,
                Expr::add(
                    Expr::load(src.array, vec![d(0).offset(o), d(1)]),
                    Expr::load(src.array, vec![d(0).offset(2 * r - o), d(1)]),
                ),
            );
        }
        rhs = Expr::mul(rhs, Expr::Const(1.0 / (2.0 * r as f64 + 1.0)));
        self.add_stage_stmt(h, src.w, arr, vec![d(0), d(1)], rhs, 1.0)?;
        Ok(Stage {
            array: arr,
            h,
            w: src.w,
        })
    }

    /// A full 3×3 stencil as *two* separable stages (x then y).
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn stencil3x3(&mut self, src: Stage) -> Result<Stage> {
        let mid = self.stencil_x(src, 1)?;
        self.stencil_y(mid, 1)
    }

    /// A full `(2r+1)²` box stencil as a *single* stage (one statement
    /// reading the whole window).
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn stencil_box(&mut self, src: Stage, r: i64) -> Result<Stage> {
        let h = Extent {
            offset: src.h.offset - 2 * r * src.h.divisor,
            divisor: src.h.divisor,
        };
        let w = Extent {
            offset: src.w.offset - 2 * r * src.w.divisor,
            divisor: src.w.divisor,
        };
        let arr = self.fresh_array(h, w, ArrayKind::Temp);
        let d = |k| IdxExpr::dim(2, k);
        let mut rhs = Expr::Const(0.0);
        for oh in 0..=2 * r {
            for ow in 0..=2 * r {
                rhs = Expr::add(
                    rhs,
                    Expr::load(src.array, vec![d(0).offset(oh), d(1).offset(ow)]),
                );
            }
        }
        let win = (2 * r + 1) as f64;
        rhs = Expr::mul(rhs, Expr::Const(1.0 / (win * win)));
        self.add_stage_stmt(h, w, arr, vec![d(0), d(1)], rhs, 1.0)?;
        Ok(Stage { array: arr, h, w })
    }

    /// 2× decimation: `out[h,w] = in[2h, 2w]` (plus neighbour average).
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn downsample(&mut self, src: Stage) -> Result<Stage> {
        let h = Extent {
            offset: src.h.offset,
            divisor: src.h.divisor * 2,
        };
        let w = Extent {
            offset: src.w.offset,
            divisor: src.w.divisor * 2,
        };
        let arr = self.fresh_array(h, w, ArrayKind::Temp);
        let d = |k: usize| IdxExpr::dim(2, k);
        let rhs = Expr::mul(
            Expr::add(
                Expr::load(src.array, vec![d(0).scale(2), d(1).scale(2)]),
                Expr::load(
                    src.array,
                    vec![d(0).scale(2).offset(1), d(1).scale(2).offset(1)],
                ),
            ),
            Expr::Const(0.5),
        );
        self.add_stage_stmt(h, w, arr, vec![d(0), d(1)], rhs, 1.0)?;
        Ok(Stage { array: arr, h, w })
    }

    /// 2× upsampling, expressed with four polyhedral statements writing
    /// the (even/odd h) × (even/odd w) points of the result.
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn upsample(&mut self, src: Stage) -> Result<Stage> {
        let h = Extent {
            offset: src.h.offset,
            divisor: src.h.divisor / 2,
        };
        let w = Extent {
            offset: src.w.offset,
            divisor: src.w.divisor / 2,
        };
        debug_assert!(
            src.h.divisor >= 2 && src.w.divisor >= 2,
            "upsample below full size"
        );
        let arr = self.fresh_array(h, w, ArrayKind::Temp);
        let d = |k: usize| IdxExpr::dim(2, k);
        for (oh, ow) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            // Statement over the *source* coordinates.
            let rhs = Expr::load(src.array, vec![d(0), d(1)]);
            self.add_stage_stmt(
                src.h,
                src.w,
                arr,
                vec![d(0).scale(2).offset(oh), d(1).scale(2).offset(ow)],
                rhs,
                1.0,
            )?;
        }
        Ok(Stage { array: arr, h, w })
    }

    /// Finishes the pipeline: a final pointwise stage writing the live-out
    /// output image.
    ///
    /// # Errors
    /// Returns an error if program construction fails.
    pub fn output(mut self, src: Stage) -> Result<Program> {
        let arr = self.fresh_array(src.h, src.w, ArrayKind::Output);
        let d = |k| IdxExpr::dim(2, k);
        self.add_stage_stmt(
            src.h,
            src.w,
            arr,
            vec![d(0), d(1)],
            Expr::relu(Expr::load(src.array, vec![d(0), d(1)])),
            1.0,
        )?;
        Ok(self.program)
    }

    /// Access to the program under construction (for custom stages).
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_codegen::{check_outputs_match, execute_tree, reference_execute};
    use tilefuse_scheduler::{schedule, FusionHeuristic};

    #[test]
    fn chain_builds_and_runs() {
        let (mut b, s0) = PipelineBuilder::new("chain", 16, 16);
        let s1 = b.pointwise(s0).unwrap();
        let s2 = b.stencil3x3(s1).unwrap();
        let p = b.output(s2).unwrap();
        assert_eq!(p.stmts().len(), 4);
        let (r, _) = reference_execute(&p, &[]).unwrap();
        let sch = schedule(&p, FusionHeuristic::SmartFuse).unwrap();
        let (t, _) = execute_tree(&p, &sch.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    }

    #[test]
    fn pyramid_down_up_is_polyhedral_and_correct() {
        let (mut b, s0) = PipelineBuilder::new("pyr", 16, 16);
        let down = b.downsample(s0).unwrap();
        let mid = b.pointwise(down).unwrap();
        let up = b.upsample(mid).unwrap();
        let comb = b.combine(up, s0).unwrap();
        let p = b.output(comb).unwrap();
        let (r, _) = reference_execute(&p, &[]).unwrap();
        let sch = schedule(&p, FusionHeuristic::MinFuse).unwrap();
        let (t, _) = execute_tree(&p, &sch.tree, &[], &Default::default()).unwrap();
        check_outputs_match(&p, &r, &t, 1e-12).unwrap();
    }

    #[test]
    fn stencil_shrinks_domain() {
        let (mut b, s0) = PipelineBuilder::new("st", 16, 16);
        let s1 = b.stencil_x(s0, 2).unwrap();
        let p = b.output(s1).unwrap();
        // Stage 1 domain: w in [0, W-5].
        let st = p.stmt_named("S0").unwrap();
        let hull = st.domain().rect_hull(&[16, 16]).unwrap().unwrap();
        assert_eq!(hull[1], (0, 11));
    }

    #[test]
    fn second_input_allowed() {
        let (mut b, s0) = PipelineBuilder::new("two", 8, 8);
        let other = b.input();
        let c = b.combine(s0, other).unwrap();
        let p = b.output(c).unwrap();
        assert_eq!(
            p.arrays()
                .iter()
                .filter(|a| a.kind() == ArrayKind::Input)
                .count(),
            2
        );
        let (r, _) = reference_execute(&p, &[]).unwrap();
        assert!(r.buffer(p.array_named("t3").unwrap().id()).data().len() == 64);
    }

    #[test]
    fn post_tiling_fusion_on_pipeline_is_correct() {
        let (mut b, s0) = PipelineBuilder::new("ptf", 20, 20);
        let s1 = b.pointwise(s0).unwrap();
        let s2 = b.stencil3x3(s1).unwrap();
        let s3 = b.pointwise(s2).unwrap();
        let p = b.output(s3).unwrap();
        let opts = tilefuse_core::Options {
            tile_sizes: vec![4, 4],
            parallel_cap: None,
            startup: FusionHeuristic::SmartFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&p, &opts).unwrap();
        let (r, _) = reference_execute(&p, &[]).unwrap();
        let (t, stats) = execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        check_outputs_match(&p, &r, &t, 1e-12).unwrap();
        assert!(stats.scratch_hits > 0);
    }
}
