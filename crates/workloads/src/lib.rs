//! Benchmark programs for the tilefuse evaluation.
//!
//! Everything the paper's Section VI evaluates, re-expressed in the
//! polyhedral IR: the six PolyMage image pipelines (Table I, Figs. 8/10),
//! SPEC equake (Fig. 9), three PolyBench kernels (Table II), and the
//! ResNet-50 convolution blocks (Table III).

pub mod equake;
pub mod pipeline;
pub mod polybench;
pub mod polymage;
pub mod resnet;

use tilefuse_pir::Program;

/// A benchmark: a program plus the evaluation configuration the paper
/// used for it (auto-tuned tile sizes, GPU grid).
#[derive(Debug)]
pub struct Workload {
    /// The paper's benchmark name.
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Auto-tuned tile sizes from Table I (or the PolyBench default).
    pub tile_sizes: Vec<i64>,
    /// Auto-tuned GPU grid parameters from Table I (reporting only).
    pub gpu_grid: Vec<i64>,
    /// Pipeline stage count as the paper counts it.
    pub stages: usize,
}
