//! SPEC CPU2000 `equake` (Fig. 9): a finite-element method built around a
//! 3-D sparse matrix-vector product with a dynamic (`while`-loop) inner
//! dimension, followed by affine loop nests updating the global mesh.
//!
//! The sparse structure and the `while` loop are simulated per the
//! substitution rule: the irregular reduction becomes a banded SpMV
//! (`K[i][j]` for `j ∈ [i−B, i+B]`) whose statement carries
//! `dynamic = true` and a `work_scale` modeling the average trip count of
//! the data-dependent `while` loop. The paper's observation that PPCG's
//! heuristics need a locality-hurting manual permutation of the `while`
//! loop is modeled by [`equake`]'s `permuted` flag, which inflates the
//! reduction's work (strided accesses) exactly when the baseline
//! heuristics need it.

use crate::Workload;
use tilefuse_pir::{ArrayKind, Body, Expr, IdxExpr, Program, Result, SchedTerm};

/// Problem sizes matching SPEC's `test`/`train`/`ref` inputs (scaled to
/// simulation-friendly node counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquakeSize {
    /// Small validation input.
    Test,
    /// Medium input.
    Train,
    /// Full reference input.
    Ref,
}

impl EquakeSize {
    /// Mesh node count for the size class.
    pub fn nodes(self) -> i64 {
        match self {
            EquakeSize::Test => 4096,
            EquakeSize::Train => 16384,
            EquakeSize::Ref => 65536,
        }
    }

    /// All sizes, with their display names.
    pub fn all() -> [(EquakeSize, &'static str); 3] {
        [
            (EquakeSize::Test, "test"),
            (EquakeSize::Train, "train"),
            (EquakeSize::Ref, "ref"),
        ]
    }
}

/// Builds the equake program.
///
/// `permuted` models the manual `while`-loop permutation the baseline
/// heuristics require before they can fuse at all (Section VI-A): the
/// reduction's `work_scale` grows because the permuted loop order breaks
/// spatial locality.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn equake(size: EquakeSize, permuted: bool) -> Result<Workload> {
    let n = size.nodes();
    let band = 10i64;
    let mut p = Program::new("equake").with_param("N", n);
    let k = p.add_array(
        "K",
        vec!["N".into(), (2 * band + 1).into()],
        ArrayKind::Input,
    );
    let v = p.add_array("v", vec!["N".into()], ArrayKind::Input);
    let disp = p.add_array("disp", vec!["N".into()], ArrayKind::Temp);
    // The mesh is internal simulation state; the live-out results are the
    // updated velocities.
    let mesh = p.add_array("mesh", vec!["N".into()], ArrayKind::Temp);
    let vel = p.add_array("vel", vec!["N".into()], ArrayKind::Output);
    let d1 = |i| IdxExpr::dim(1, i);
    let d2 = |i| IdxExpr::dim(2, i);
    // S0: disp[i] = 0  (initialize the reduction array)
    p.add_stmt(
        "{ S0[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Cst(0)],
        Body {
            target: disp,
            target_idx: vec![d1(0)],
            rhs: Expr::Const(0.0),
        },
    )?;
    // S1: disp[i] += K[i][j+B] * v[i+j-B], j in [0, 2B]  — the banded SpMV
    // whose real counterpart iterates a data-dependent while loop.
    // The while loop iterates ~2.5x the nominal band on average; the
    // manual permutation additionally hurts spatial locality.
    let work = if permuted { 3.6 } else { 2.5 };
    p.add_stmt_full(
        &format!(
            "{{ S1[i, j] : {band} <= i < N - {band} and 0 <= j <= {} }}",
            2 * band
        ),
        vec![
            SchedTerm::Cst(0),
            SchedTerm::Var(0),
            SchedTerm::Cst(1),
            SchedTerm::Var(1),
        ],
        Body {
            target: disp,
            target_idx: vec![d2(0)],
            rhs: Expr::add(
                Expr::load(disp, vec![d2(0)]),
                Expr::mul(
                    Expr::load(k, vec![d2(0), d2(1)]),
                    Expr::load(v, vec![d2(0).plus(&d2(1)).offset(-band)]),
                ),
            ),
        },
        true, // the dynamic condition remains even after permutation
        work,
    )?;
    // S2: gather — mesh[i] = disp[i] * scale
    p.add_stmt(
        "{ S2[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: mesh,
            target_idx: vec![d1(0)],
            rhs: Expr::mul(Expr::load(disp, vec![d1(0)]), Expr::Const(0.98)),
        },
    )?;
    // S3..S4: follow-up elementary loop nests on the mesh (velocity and
    // smoothing updates).
    p.add_stmt(
        "{ S3[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
        Body {
            target: vel,
            target_idx: vec![d1(0)],
            rhs: Expr::add(
                Expr::mul(Expr::load(mesh, vec![d1(0)]), Expr::Const(0.5)),
                Expr::load(v, vec![d1(0)]),
            ),
        },
    )?;
    p.add_stmt(
        "{ S4[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(3), SchedTerm::Var(0)],
        Body {
            target: vel,
            target_idx: vec![d1(0)],
            rhs: Expr::relu(Expr::load(vel, vec![d1(0)])),
        },
    )?;
    Ok(Workload {
        name: "equake",
        program: p,
        tile_sizes: vec![], // only the outer loop is tilable: fusion-only
        gpu_grid: vec![],
        stages: 5,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_codegen::{check_outputs_match, execute_tree, reference_execute};
    use tilefuse_scheduler::{schedule, FusionHeuristic};

    #[test]
    fn sizes_scale() {
        assert!(EquakeSize::Test.nodes() < EquakeSize::Train.nodes());
        assert!(EquakeSize::Train.nodes() < EquakeSize::Ref.nodes());
        assert_eq!(EquakeSize::all().len(), 3);
    }

    #[test]
    fn dynamic_flag_and_permutation_penalty() {
        let w = equake(EquakeSize::Test, false).unwrap();
        assert!(w.program.stmt_named("S1").unwrap().is_dynamic());
        let wp = equake(EquakeSize::Test, true).unwrap();
        // The dynamic condition remains; permutation costs locality.
        assert!(wp.program.stmt_named("S1").unwrap().is_dynamic());
        assert!(
            wp.program.stmt_named("S1").unwrap().work_scale()
                > w.program.stmt_named("S1").unwrap().work_scale()
        );
    }

    #[test]
    fn heuristics_and_ours_compute_same_outputs() {
        let w = equake(EquakeSize::Test, true).unwrap();
        // Shrink N for interpretation.
        let overrides = [("N", 64)];
        let (r, _) = reference_execute(&w.program, &overrides).unwrap();
        for h in [
            FusionHeuristic::MinFuse,
            FusionHeuristic::SmartFuse,
            FusionHeuristic::MaxFuse,
        ] {
            let s = schedule(&w.program, h).unwrap();
            let (t, _) =
                execute_tree(&w.program, &s.tree, &overrides, &Default::default()).unwrap();
            check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
        }
    }

    #[test]
    fn fusion_without_tiling_matches_reference() {
        // Our approach on the unpermuted program: extension schedules with
        // zero tile dimensions (the paper's "empty domain" case).
        let w = equake(EquakeSize::Test, false).unwrap();
        let overrides = [("N", 64)];
        let opts = tilefuse_core::Options {
            tile_sizes: vec![],
            parallel_cap: Some(1),
            startup: FusionHeuristic::SmartFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&w.program, &opts).unwrap();
        let (r, _) = reference_execute(&w.program, &overrides).unwrap();
        let (t, _) =
            execute_tree(&w.program, &o.tree, &overrides, &o.report.scratch_scopes).unwrap();
        check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
    }
}
