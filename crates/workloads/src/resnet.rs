//! ResNet-50 forward convolution + batch-normalization blocks (Table III).
//!
//! Each block is one `conv → batchnorm → ReLU` triple as a polyhedral
//! program (NCHW, 6-D convolution statement). The layer table follows the
//! ResNet-50 architecture (He et al., CVPR'16): a 7×7 stem and four
//! bottleneck groups of 1×1/3×3/1×1 convolutions.

use crate::Workload;
use tilefuse_pir::{ArrayKind, Body, Expr, IdxExpr, Program, Result, SchedTerm};

/// One convolution layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvBlock {
    /// Human-readable layer name.
    pub name: &'static str,
    /// Input channels.
    pub c_in: i64,
    /// Output channels.
    pub c_out: i64,
    /// Input spatial size (square).
    pub hw: i64,
    /// Kernel size (square).
    pub k: i64,
    /// How many times this configuration occurs in ResNet-50.
    pub repeat: usize,
}

/// The distinct convolution configurations of ResNet-50's forward pass.
pub fn blocks() -> Vec<ConvBlock> {
    vec![
        ConvBlock {
            name: "conv1 7x7",
            c_in: 3,
            c_out: 64,
            hw: 224,
            k: 7,
            repeat: 1,
        },
        ConvBlock {
            name: "res2 1x1a",
            c_in: 64,
            c_out: 64,
            hw: 56,
            k: 1,
            repeat: 3,
        },
        ConvBlock {
            name: "res2 3x3",
            c_in: 64,
            c_out: 64,
            hw: 56,
            k: 3,
            repeat: 3,
        },
        ConvBlock {
            name: "res2 1x1b",
            c_in: 64,
            c_out: 256,
            hw: 56,
            k: 1,
            repeat: 3,
        },
        ConvBlock {
            name: "res3 1x1a",
            c_in: 256,
            c_out: 128,
            hw: 28,
            k: 1,
            repeat: 4,
        },
        ConvBlock {
            name: "res3 3x3",
            c_in: 128,
            c_out: 128,
            hw: 28,
            k: 3,
            repeat: 4,
        },
        ConvBlock {
            name: "res3 1x1b",
            c_in: 128,
            c_out: 512,
            hw: 28,
            k: 1,
            repeat: 4,
        },
        ConvBlock {
            name: "res4 1x1a",
            c_in: 512,
            c_out: 256,
            hw: 14,
            k: 1,
            repeat: 6,
        },
        ConvBlock {
            name: "res4 3x3",
            c_in: 256,
            c_out: 256,
            hw: 14,
            k: 3,
            repeat: 6,
        },
        ConvBlock {
            name: "res4 1x1b",
            c_in: 256,
            c_out: 1024,
            hw: 14,
            k: 1,
            repeat: 6,
        },
        ConvBlock {
            name: "res5 1x1a",
            c_in: 1024,
            c_out: 512,
            hw: 7,
            k: 1,
            repeat: 3,
        },
        ConvBlock {
            name: "res5 3x3",
            c_in: 512,
            c_out: 512,
            hw: 7,
            k: 3,
            repeat: 3,
        },
        ConvBlock {
            name: "res5 1x1b",
            c_in: 512,
            c_out: 2048,
            hw: 7,
            k: 1,
            repeat: 3,
        },
    ]
}

/// Builds the `conv → batchnorm → ReLU` program of one block.
///
/// # Errors
/// Returns an error if program construction fails.
pub fn conv_bn_program(b: &ConvBlock) -> Result<Workload> {
    let out_hw = b.hw - b.k + 1;
    let mut p = Program::new("conv_bn")
        .with_param("CO", b.c_out)
        .with_param("CI", b.c_in)
        .with_param("HW", b.hw)
        .with_param("K", b.k);
    let input = p.add_array(
        "input",
        vec![b.c_in.into(), b.hw.into(), b.hw.into()],
        ArrayKind::Input,
    );
    let weight = p.add_array(
        "weight",
        vec![b.c_out.into(), b.c_in.into(), b.k.into(), b.k.into()],
        ArrayKind::Input,
    );
    let gamma = p.add_array("gamma", vec![b.c_out.into()], ArrayKind::Input);
    let beta = p.add_array("beta", vec![b.c_out.into()], ArrayKind::Input);
    let conv = p.add_array(
        "conv",
        vec![b.c_out.into(), out_hw.into(), out_hw.into()],
        ArrayKind::Temp,
    );
    let bn = p.add_array(
        "bn",
        vec![b.c_out.into(), out_hw.into(), out_hw.into()],
        ArrayKind::Temp,
    );
    let out = p.add_array(
        "out",
        vec![b.c_out.into(), out_hw.into(), out_hw.into()],
        ArrayKind::Output,
    );
    let d3 = |k| IdxExpr::dim(3, k);
    let d6 = |k| IdxExpr::dim(6, k);
    // S0: conv[co][h][w] = 0
    p.add_stmt(
        &format!(
            "{{ S0[co, h, w] : 0 <= co < CO and 0 <= h <= {o} and 0 <= w <= {o} }}",
            o = out_hw - 1
        ),
        vec![
            SchedTerm::Cst(0),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Var(2),
            SchedTerm::Cst(0),
        ],
        Body {
            target: conv,
            target_idx: vec![d3(0), d3(1), d3(2)],
            rhs: Expr::Const(0.0),
        },
    )?;
    // S1: conv[co][h][w] += input[ci][h+kh][w+kw] * weight[co][ci][kh][kw]
    p.add_stmt(
        &format!(
            "{{ S1[co, h, w, ci, kh, kw] : 0 <= co < CO and 0 <= h <= {o} and 0 <= w <= {o} \
               and 0 <= ci < CI and 0 <= kh < K and 0 <= kw < K }}",
            o = out_hw - 1
        ),
        vec![
            SchedTerm::Cst(0),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Var(2),
            SchedTerm::Cst(1),
            SchedTerm::Var(3),
            SchedTerm::Var(4),
            SchedTerm::Var(5),
        ],
        Body {
            target: conv,
            target_idx: vec![d6(0), d6(1), d6(2)],
            rhs: Expr::add(
                Expr::load(conv, vec![d6(0), d6(1), d6(2)]),
                Expr::mul(
                    Expr::load(input, vec![d6(3), d6(1).plus(&d6(4)), d6(2).plus(&d6(5))]),
                    Expr::load(weight, vec![d6(0), d6(3), d6(4), d6(5)]),
                ),
            ),
        },
    )?;
    // S2: bn[co][h][w] = gamma[co] * conv[co][h][w] + beta[co]
    p.add_stmt(
        &format!(
            "{{ S2[co, h, w] : 0 <= co < CO and 0 <= h <= {o} and 0 <= w <= {o} }}",
            o = out_hw - 1
        ),
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Var(2),
        ],
        Body {
            target: bn,
            target_idx: vec![d3(0), d3(1), d3(2)],
            rhs: Expr::add(
                Expr::mul(
                    Expr::load(gamma, vec![d3(0)]),
                    Expr::load(conv, vec![d3(0), d3(1), d3(2)]),
                ),
                Expr::load(beta, vec![d3(0)]),
            ),
        },
    )?;
    // S3: out[co][h][w] = relu(bn[co][h][w])
    p.add_stmt(
        &format!(
            "{{ S3[co, h, w] : 0 <= co < CO and 0 <= h <= {o} and 0 <= w <= {o} }}",
            o = out_hw - 1
        ),
        vec![
            SchedTerm::Cst(2),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Var(2),
        ],
        Body {
            target: out,
            target_idx: vec![d3(0), d3(1), d3(2)],
            rhs: Expr::relu(Expr::load(bn, vec![d3(0), d3(1), d3(2)])),
        },
    )?;
    Ok(Workload {
        name: "resnet conv+bn",
        program: p,
        tile_sizes: vec![16, 14, 14],
        gpu_grid: vec![],
        stages: 3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_codegen::{check_outputs_match, execute_tree, reference_execute};
    use tilefuse_scheduler::{schedule, FusionHeuristic};

    #[test]
    fn table_covers_resnet50() {
        let bs = blocks();
        // 1 stem + 3×3 + 4×3 + 6×3 + 3×3 = 49 convs in the main path.
        let total: usize = bs.iter().map(|b| b.repeat).sum();
        assert_eq!(total, 49);
    }

    #[test]
    fn smartfuse_fails_to_fuse_conv_and_bn() {
        // The paper: "The smartfuse heuristic of isl failed to fuse
        // convolutions and batch normalizations."
        let b = ConvBlock {
            name: "t",
            c_in: 4,
            c_out: 4,
            hw: 8,
            k: 3,
            repeat: 1,
        };
        let w = conv_bn_program(&b).unwrap();
        let s = schedule(&w.program, FusionHeuristic::SmartFuse).unwrap();
        let conv_group = s
            .fusion
            .groups
            .iter()
            .find(|g| g.stmts.contains(&tilefuse_pir::StmtId(1)))
            .unwrap();
        assert!(
            !conv_group.stmts.contains(&tilefuse_pir::StmtId(2)),
            "smartfuse must keep bn out of the conv group: {:?}",
            s.fusion.groups.iter().map(|g| &g.stmts).collect::<Vec<_>>()
        );
    }

    #[test]
    fn post_tiling_fusion_fuses_conv_into_bn_tiles_correctly() {
        let b = ConvBlock {
            name: "t",
            c_in: 3,
            c_out: 4,
            hw: 8,
            k: 3,
            repeat: 1,
        };
        let w = conv_bn_program(&b).unwrap();
        let opts = tilefuse_core::Options {
            tile_sizes: vec![2, 3, 3],
            parallel_cap: None,
            startup: FusionHeuristic::SmartFuse,
            ..Default::default()
        };
        let o = tilefuse_core::optimize(&w.program, &opts).unwrap();
        assert!(
            !o.report.scratch_arrays.is_empty(),
            "conv output should become tile-local"
        );
        let (r, _) = reference_execute(&w.program, &[]).unwrap();
        let (t, _) = execute_tree(&w.program, &o.tree, &[], &o.report.scratch_scopes).unwrap();
        check_outputs_match(&w.program, &r, &t, 1e-9).unwrap();
    }
}
