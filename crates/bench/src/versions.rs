//! The compiler "versions" compared in the evaluation, and how each is
//! modeled.
//!
//! | version | modeling |
//! |---|---|
//! | Naive | minfuse grouping, no tiling (PolyMage's naïve output) |
//! | MinFuse/SmartFuse/MaxFuse/HybridFuse | the real heuristics from `tilefuse-scheduler`, tiling-after-fusion |
//! | PolyMage | our optimizer with *loosened* overlapped tiles: every fused stage recomputes with the group's **maximum** halo (PolyMage transforms computation spaces only, over-approximating recomputation — Section VI-A) |
//! | Halide | the published manual schedules' granularity: PolyMage-style looseness, but for Harris the manual schedule misses the inlining (no fusion at all), and on GPU Bilateral Grid / Unsharp Mask gain the paper-noted unrolling bonus |
//! | Ours | the post-tiling fusion optimizer (`tilefuse-core`) with tight per-stage footprints |

use std::collections::{BTreeMap, HashMap};
use std::sync::{LazyLock, Mutex, PoisonError};

use tilefuse_core::{optimize, Options};
use tilefuse_memsim::{card_box, summarize_groups, summarize_optimized, ExecGroup};
use tilefuse_scheduler::{schedule, FuseBudget, FusionHeuristic};
use tilefuse_trace::Budget;
use tilefuse_workloads::Workload;

/// Error alias for experiment code.
pub type BoxError = Box<dyn std::error::Error + Send + Sync>;

/// A compared compiler version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Untiled, unfused, sequential (the PolyMage naïve baseline).
    Naive,
    /// PPCG's minfuse (no fusion) with rectangular tiling.
    MinFuse,
    /// isl's default smartfuse, tiling after fusion.
    SmartFuse,
    /// Aggressive maxfuse (shifting allowed, parallelism lost).
    MaxFuse,
    /// Pluto's hybrid heuristic (✗ on non-rectangular domains).
    HybridFuse,
    /// PolyMage's overlapped tiling (loose, computation-space-only).
    PolyMage,
    /// Halide's manual expert schedules.
    Halide,
    /// The paper's post-tiling fusion (this repository's optimizer).
    Ours,
}

impl Version {
    /// Display name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Version::Naive => "naive",
            Version::MinFuse => "minfuse",
            Version::SmartFuse => "smartfuse",
            Version::MaxFuse => "maxfuse",
            Version::HybridFuse => "hybridfuse",
            Version::PolyMage => "PolyMage",
            Version::Halide => "Halide",
            Version::Ours => "Our work",
        }
    }
}

/// Target platform for summary construction (sets the parallelism cap the
/// optimizer exploits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// OpenMP CPU (one parallel dimension).
    Cpu,
    /// CUDA GPU (two-level parallelism).
    Gpu,
    /// DaVinci accelerator.
    Davinci,
}

/// Memo table for [`summaries`]: several artifacts evaluate the *same*
/// (workload, version, target) triple — Table I, Fig. 8 and Fig. 10 all
/// revisit the PolyMage pipelines — and the summary construction runs the
/// full polyhedral pipeline each time. The key captures every input the
/// result depends on: workload name, parameter values, tile sizes,
/// version, and target.
type SummaryKey = (String, Vec<i64>, Vec<i64>, Version, TargetKind, Budget);
static SUMMARY_MEMO: LazyLock<Mutex<HashMap<SummaryKey, Vec<ExecGroup>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Process-wide resource budget installed for every `optimize` call the
/// experiment pipeline makes (the `--deadline-ms`/`--max-omega-branches`
/// CLI flags land here). Defaults to unlimited.
static BUDGET: LazyLock<Mutex<Budget>> = LazyLock::new(|| Mutex::new(Budget::default()));

/// Sets the resource budget used by [`summaries`] and [`compile_time`]
/// for the optimizer versions. Call before generating artifacts.
pub fn set_budget(budget: Budget) {
    *BUDGET.lock().unwrap_or_else(PoisonError::into_inner) = budget;
}

/// The currently-configured experiment budget.
#[must_use]
pub fn current_budget() -> Budget {
    BUDGET
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Degradation outcome of the `Ours` optimizer on one workload, recorded
/// when its summaries were (re)built under the current budget.
#[derive(Debug, Clone)]
pub struct WorkloadDegradation {
    /// Ladder rung that produced the schedule (1 = no degradation).
    pub rung: u8,
    /// Budget trips absorbed on the way.
    pub trips: usize,
    /// Conservatively-approximated feasibility answers during the run.
    pub silent_feasible: u64,
    /// Omega operations charged to the governor.
    pub omega_ops: u64,
    /// Whether the start-up maxfuse shift solver hit its step budget.
    pub fusion_budget_exhausted: bool,
}

static DEGRADATIONS: LazyLock<Mutex<BTreeMap<String, WorkloadDegradation>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

/// Per-workload degradation outcomes of the `Ours` pipeline observed so
/// far in this process (workload name → outcome). Consumed by the
/// experiments JSON summary.
#[must_use]
pub fn degradations() -> BTreeMap<String, WorkloadDegradation> {
    DEGRADATIONS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

fn record_degradation(name: &str, report: &tilefuse_core::Report) {
    let d = &report.degradation;
    DEGRADATIONS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(
            name.to_string(),
            WorkloadDegradation {
                rung: d.rung,
                trips: d.trips.len(),
                silent_feasible: d.silent_feasible,
                omega_ops: d.omega_ops,
                fusion_budget_exhausted: d.fusion_budget_exhausted,
            },
        );
}

/// Builds the execution-group summaries of `version` for `workload`.
///
/// Results are memoized process-wide (the construction is deterministic in
/// the key), so artifacts sharing a configuration pay for it once.
///
/// # Errors
/// Returns an error if the heuristic rejects the program (hybridfuse ✗) or
/// a set operation fails.
pub fn summaries(
    workload: &Workload,
    version: Version,
    target: TargetKind,
) -> Result<Vec<ExecGroup>, BoxError> {
    let key: SummaryKey = (
        workload.name.to_string(),
        workload.program.param_values(&[]),
        workload.tile_sizes.clone(),
        version,
        target,
        current_budget(),
    );
    if let Some(hit) = SUMMARY_MEMO
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return Ok(hit.clone());
    }
    let result = summaries_uncached(workload, version, target)?;
    SUMMARY_MEMO
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, result.clone());
    Ok(result)
}

fn summaries_uncached(
    workload: &Workload,
    version: Version,
    target: TargetKind,
) -> Result<Vec<ExecGroup>, BoxError> {
    let program = &workload.program;
    let params = program.param_values(&[]);
    let tiles = &workload.tile_sizes;
    let cap = match target {
        TargetKind::Cpu => Some(1),
        TargetKind::Gpu => Some(2),
        TargetKind::Davinci => None,
    };
    match version {
        Version::Naive => {
            let s = schedule(program, FusionHeuristic::MinFuse)?;
            let mut gs = summarize_groups(program, &s.fusion.groups, &[], &params)?;
            for g in &mut gs {
                g.vectorizable = false;
            }
            Ok(gs)
        }
        Version::MinFuse => {
            let s = schedule(program, FusionHeuristic::MinFuse)?;
            Ok(summarize_groups(program, &s.fusion.groups, tiles, &params)?)
        }
        Version::SmartFuse => {
            let s = schedule(program, FusionHeuristic::SmartFuse)?;
            Ok(summarize_groups(program, &s.fusion.groups, tiles, &params)?)
        }
        Version::MaxFuse => {
            let s = schedule(program, FusionHeuristic::MaxFuse)?;
            Ok(summarize_groups(program, &s.fusion.groups, tiles, &params)?)
        }
        Version::HybridFuse => {
            let s = schedule(program, FusionHeuristic::HybridFuse)?;
            let mut gs = summarize_groups(program, &s.fusion.groups, tiles, &params)?;
            // Pluto's hybrid maximizes fusion at the innermost level,
            // which benefits auto-vectorization (the paper's 2mm note).
            for g in &mut gs {
                g.vectorizable = true;
            }
            Ok(gs)
        }
        Version::Ours => {
            let opts = Options {
                tile_sizes: tiles.clone(),
                parallel_cap: cap,
                startup: FusionHeuristic::MinFuse,
                budget: current_budget(),
                ..Default::default()
            };
            let o = optimize(program, &opts)?;
            record_degradation(workload.name, &o.report);
            Ok(summarize_optimized(program, &o, tiles, &params)?)
        }
        Version::PolyMage => {
            let opts = Options {
                tile_sizes: tiles.clone(),
                parallel_cap: cap,
                startup: FusionHeuristic::MinFuse,
                budget: current_budget(),
                ..Default::default()
            };
            let o = optimize(program, &opts)?;
            let mut gs = summarize_optimized(program, &o, tiles, &params)?;
            loosen_overlap(program, &mut gs, &params)?;
            Ok(gs)
        }
        Version::Halide => {
            if workload.name == "Harris Corner Detection" {
                // The manual schedule misses the inlining opportunity
                // (Section VI-A): only the pointwise chains fuse.
                let s = schedule(program, FusionHeuristic::SmartFuse)?;
                return Ok(summarize_groups(program, &s.fusion.groups, tiles, &params)?);
            }
            let opts = Options {
                tile_sizes: tiles.clone(),
                parallel_cap: cap,
                startup: FusionHeuristic::MinFuse,
                budget: current_budget(),
                ..Default::default()
            };
            let o = optimize(program, &opts)?;
            let mut gs = summarize_optimized(program, &o, tiles, &params)?;
            loosen_overlap(program, &mut gs, &params)?;
            if target == TargetKind::Gpu
                && matches!(workload.name, "Bilateral Grid" | "Unsharp Mask")
            {
                // Manual channel-dimension unrolling (paper, Section VI-B):
                // better ILP and fewer redundant loads.
                for g in &mut gs {
                    g.ops *= 0.80;
                    g.loads *= 0.85;
                    for (_, bytes) in &mut g.external_arrays {
                        *bytes *= 0.93;
                    }
                }
            }
            Ok(gs)
        }
    }
}

/// PolyMage-style looseness: overlapped tiling computed on computation
/// spaces only over-approximates the recomputation region. Modeled as a
/// multiplier on each fused stage's *excess* (its halo triples), capped —
/// PolyMage's own fusion cost model refuses groupings whose overlap blows
/// up past a bound.
fn loosen_overlap(
    program: &tilefuse_pir::Program,
    groups: &mut [ExecGroup],
    params: &[i64],
) -> Result<(), BoxError> {
    const LOOSE: f64 = 3.0;
    const CAP: f64 = 2.0;
    for g in groups.iter_mut() {
        let snapshot: Vec<(tilefuse_pir::StmtId, f64)> =
            g.instances.iter().map(|(&s, &c)| (s, c)).collect();
        for (s, count) in snapshot {
            let stmt = program.stmt(s);
            let base = card_box(stmt.domain(), params)?.max(1.0) * stmt.work_scale();
            let rf = (count / base).max(1.0);
            if rf <= 1.0 {
                continue;
            }
            let loose_rf = (1.0 + LOOSE * (rf - 1.0)).min(CAP.max(rf));
            let extra = base * (loose_rf - rf);
            if extra <= 0.0 {
                continue;
            }
            *g.instances.get_mut(&s).expect("present") += extra;
            let per_inst_ops = stmt.body().rhs.op_count() as f64 + 1.0;
            g.ops += extra * per_inst_ops;
            g.loads += extra * stmt.body().rhs.loads().len() as f64;
            g.stores += extra;
        }
    }
    Ok(())
}

/// Measured compile time of a version's scheduling pass, with maxfuse's
/// exhaustive search budget surfaced (`None` = exceeded budget, the
/// paper's `>24h`).
///
/// # Errors
/// Returns an error if the heuristic rejects the program.
pub fn compile_time(
    workload: &Workload,
    version: Version,
    budget: u64,
) -> Result<Option<f64>, BoxError> {
    let program = &workload.program;
    let start = std::time::Instant::now();
    match version {
        Version::MinFuse | Version::Naive => {
            schedule(program, FusionHeuristic::MinFuse)?;
        }
        Version::SmartFuse => {
            schedule(program, FusionHeuristic::SmartFuse)?;
        }
        Version::HybridFuse => {
            schedule(program, FusionHeuristic::HybridFuse)?;
        }
        Version::MaxFuse => {
            let deps = tilefuse_pir::compute_dependences(program)?;
            let mut b = FuseBudget::new(budget);
            let f = tilefuse_scheduler::fuse(program, &deps, FusionHeuristic::MaxFuse, &mut b)?;
            if f.budget_exhausted {
                return Ok(None);
            }
        }
        Version::Ours | Version::PolyMage | Version::Halide => {
            let opts = Options {
                tile_sizes: workload.tile_sizes.clone(),
                parallel_cap: Some(1),
                startup: FusionHeuristic::MinFuse,
                budget: current_budget(),
                ..Default::default()
            };
            optimize(program, &opts)?;
        }
    }
    Ok(Some(start.elapsed().as_secs_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_workloads::polymage::unsharp_mask;

    #[test]
    fn versions_have_labels() {
        assert_eq!(Version::Ours.label(), "Our work");
        assert_eq!(Version::MaxFuse.label(), "maxfuse");
    }

    #[test]
    fn ours_produces_fewer_groups_than_minfuse() {
        let w = unsharp_mask(64, 64).unwrap();
        let min = summaries(&w, Version::MinFuse, TargetKind::Cpu).unwrap();
        let ours = summaries(&w, Version::Ours, TargetKind::Cpu).unwrap();
        assert!(
            ours.len() < min.len(),
            "ours {} vs minfuse {}",
            ours.len(),
            min.len()
        );
    }

    #[test]
    fn polymage_recomputes_at_least_as_much_as_ours() {
        let w = unsharp_mask(64, 64).unwrap();
        let ours = summaries(&w, Version::Ours, TargetKind::Cpu).unwrap();
        let pm = summaries(&w, Version::PolyMage, TargetKind::Cpu).unwrap();
        let total = |gs: &[ExecGroup]| gs.iter().map(ExecGroup::total_instances).sum::<f64>();
        assert!(total(&pm) >= total(&ours));
    }

    #[test]
    fn compile_time_measures() {
        let w = unsharp_mask(32, 32).unwrap();
        let t = compile_time(&w, Version::Ours, 1000).unwrap();
        assert!(t.is_some());
        let t = compile_time(&w, Version::SmartFuse, 1000).unwrap();
        assert!(t.unwrap() >= 0.0);
    }
}
