//! Interpreter-vs-VM backend comparison (`experiments … --backend vm`).
//!
//! Unlike the modeled tables, this artifact *actually executes* every
//! PolyMage workload on both execution backends — the reference tree
//! interpreter and the register-based bytecode VM — at a real (small)
//! image size, times each, and verifies the VM is bit-exact against the
//! interpreter: every buffer compared by f64 bit pattern, plus full
//! execution-statistics equality.
//!
//! Two pyramid workloads (Local Laplacian, Multiscale Interpolation) hit
//! a pre-existing interpreter limitation on their *optimized* trees
//! (`Unbounded` during scanning); since the interpreter is the oracle,
//! those fall back to the minfuse-scheduled tree, which both backends
//! run. The `tree` field records which tree was compared.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::tables::ResultTable;
use crate::versions::BoxError;
use tilefuse_codegen::{execute_compiled, execute_tree_parallel, ExecContext, ExecStats};
use tilefuse_core::{optimize, Options};
use tilefuse_pir::Program;
use tilefuse_scheduler::FusionHeuristic;
use tilefuse_workloads::polymage;

/// Image size for the executed comparison. The interpreter is the slow
/// side (minutes per workload at benchmark sizes); 32×32 keeps the whole
/// artifact under a minute while still covering every loop structure.
pub const BACKEND_IMG: i64 = 32;

/// Tile sizes for the executed comparison (the auto-tuned Table I tiles
/// target 2048×2048 images and degenerate at 32×32).
pub const BACKEND_TILE: [i64; 2] = [4, 4];

/// One workload's measured interp-vs-VM comparison.
pub struct BackendRow {
    /// Workload name as the paper spells it.
    pub name: String,
    /// Which tree was compared: `"optimized"`, or `"scheduled"` when the
    /// interpreter cannot run the optimized tree (see module docs).
    pub tree: &'static str,
    /// Wall-clock of `lower_tree` (bytecode compilation), milliseconds.
    pub lower_ms: f64,
    /// Sequential interpreter execution, milliseconds.
    pub interp_ms: f64,
    /// Sequential VM execution (excluding lowering), milliseconds.
    pub vm_ms: f64,
    /// Whether every buffer bit and every statistic matched.
    pub bit_exact: bool,
}

impl BackendRow {
    /// Interpreter time over VM time (>1 means the VM is faster).
    pub fn speedup(&self) -> f64 {
        if self.vm_ms > 0.0 {
            self.interp_ms / self.vm_ms
        } else {
            f64::INFINITY
        }
    }
}

fn bit_exact(
    program: &Program,
    interp: &(ExecContext, ExecStats),
    vm: &(ExecContext, ExecStats),
) -> bool {
    for a in program.arrays() {
        let bi = interp.0.buffer(a.id()).data();
        let bv = vm.0.buffer(a.id()).data();
        if bi.len() != bv.len() {
            return false;
        }
        if bi.iter().zip(bv).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return false;
        }
    }
    interp.1 == vm.1
}

fn compare_one(program: &Program) -> Result<BackendRow, BoxError> {
    let opt = optimize(program, &Options::cpu(&BACKEND_TILE))?;

    // Interpreter is the oracle: if it cannot run the optimized tree,
    // compare on the scheduled tree instead (and say so).
    let (tree, scopes, kind) =
        match execute_tree_parallel(program, &opt.tree, &[], &opt.report.scratch_scopes, 1) {
            Ok(_) => (
                opt.tree.clone(),
                opt.report.scratch_scopes.clone(),
                "optimized",
            ),
            Err(_) => {
                let sched = tilefuse_scheduler::schedule(program, FusionHeuristic::MinFuse)?;
                (sched.tree, BTreeMap::new(), "scheduled")
            }
        };

    let t0 = Instant::now();
    let interp = execute_tree_parallel(program, &tree, &[], &scopes, 1)?;
    let interp_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let compiled = tilefuse_codegen::lower_tree(program, &tree, &[], &scopes)?;
    let lower_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let vm = execute_compiled(program, &compiled, 1)?;
    let vm_ms = t0.elapsed().as_secs_f64() * 1e3;

    Ok(BackendRow {
        name: program.name().to_string(),
        tree: kind,
        lower_ms,
        interp_ms,
        vm_ms,
        bit_exact: bit_exact(program, &interp, &vm),
    })
}

/// Executes every PolyMage workload on both backends sequentially (no
/// worker pool — these are wall-clock timings) and returns one row per
/// workload.
///
/// # Errors
/// Returns an error if a workload fails to build, optimize, lower, or
/// execute on either backend. A bit-exactness *mismatch* is not an error
/// here — it is reported in the row (the driver fails the run on it).
pub fn compare_backends(img: i64) -> Result<Vec<BackendRow>, BoxError> {
    let mut rows = Vec::new();
    for w in polymage::all(img, img)? {
        rows.push(compare_one(&w.program)?);
    }
    Ok(rows)
}

/// Renders the comparison as a printable table.
pub fn backend_table(rows: &[BackendRow]) -> ResultTable {
    ResultTable {
        title: format!(
            "Backends — interpreter vs. bytecode VM (measured, {BACKEND_IMG}x{BACKEND_IMG}, \
             tile {BACKEND_TILE:?}, 1 thread)"
        ),
        columns: [
            "tree",
            "lower (ms)",
            "interp (ms)",
            "VM (ms)",
            "speedup",
            "bit-exact",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect(),
        rows: rows
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    vec![
                        r.tree.to_string(),
                        format!("{:.1}", r.lower_ms),
                        format!("{:.1}", r.interp_ms),
                        format!("{:.1}", r.vm_ms),
                        format!("{:.2}x", r.speedup()),
                        if r.bit_exact { "yes" } else { "NO" }.to_string(),
                    ],
                )
            })
            .collect(),
    }
}
