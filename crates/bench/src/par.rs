//! A bounded worker pool for fanning independent experiment
//! configurations out over OS threads.
//!
//! [`par_map`] preserves input order in its output regardless of which
//! worker finishes first, so experiment output stays deterministic. The
//! pool is built on `std::thread::scope` — no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the number of worker threads to use.
///
/// Priority: an explicit `requested` count, then the `TILEFUSE_JOBS`
/// environment variable, then the machine's available parallelism.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("TILEFUSE_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on a pool of at most `jobs` threads,
/// returning results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index is claimed exactly once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker stored a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items.clone(), 8, |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_job_is_sequential() {
        let out = par_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_jobs_explicit_wins() {
        assert_eq!(effective_jobs(Some(7)), 7);
        assert_eq!(effective_jobs(Some(0)), 1);
        assert!(effective_jobs(None) >= 1);
    }
}
