//! Regeneration of every table and figure of the paper's Section VI.
//!
//! Each generator fans its per-workload work out over [`par_map`] with
//! [`effective_jobs`] workers; results are assembled in input order so
//! the emitted tables are identical to a sequential run.

use crate::par::{effective_jobs, par_map};
use crate::versions::{compile_time, summaries, BoxError, TargetKind, Version};
use tilefuse_memsim::{cpu_time, davinci_time, gpu_time, CpuModel, DavinciModel, GpuModel};
use tilefuse_workloads::equake::{equake, EquakeSize};
use tilefuse_workloads::{polybench, polymage, resnet, Workload};

/// A generic results table: row labels × column labels × cells.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, cells)`; cells are preformatted strings.
    pub rows: Vec<(String, Vec<String>)>,
}

impl ResultTable {
    /// Renders as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| | {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|---|{}\n", "---|".repeat(self.columns.len())));
        for (label, cells) in &self.rows {
            out.push_str(&format!("| {label} | {} |\n", cells.join(" | ")));
        }
        out
    }
}

fn ms(t: f64) -> String {
    let v = t * 1e3;
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

fn speedup(base: f64, t: f64) -> String {
    format!("{:.2}x", base / t)
}

/// The image size used by the simulation: full-HD class, like the paper's
/// inputs, so the auto-tuned tile sizes of Table I expose the intended
/// parallelism. The polyhedral analysis cost is size-independent.
pub const IMG: i64 = 2048;

/// Table I — PolyMage benchmarks: CPU execution time of
/// naïve(1)/PolyMage(32)/Halide(32)/ours(32), GPU execution time of
/// PPCG-minfuse/Halide/ours.
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn table1_exec() -> Result<ResultTable, BoxError> {
    table1_exec_at(IMG)
}

/// [`table1_exec`] at an explicit image size (for the benches).
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn table1_exec_at(img: i64) -> Result<ResultTable, BoxError> {
    let cpu32 = CpuModel::xeon_e5_2683_v4();
    let cpu1 = CpuModel::xeon_e5_2683_v4().with_threads(1);
    let gpu = GpuModel::quadro_p6000();
    let mut table = ResultTable {
        title: "Table I — PolyMage benchmarks (execution time, ms)".into(),
        columns: [
            "stages",
            "CPU naive (1)",
            "CPU PolyMage (32)",
            "CPU Halide (32)",
            "CPU Ours (32)",
            "GPU minfuse",
            "GPU Halide",
            "GPU Ours",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect(),
        rows: Vec::new(),
    };
    let rows = par_map(polymage::all(img, img)?, effective_jobs(None), |w| {
        let naive = cpu_time(&cpu1, &summaries(&w, Version::Naive, TargetKind::Cpu)?)?.total;
        let pm = cpu_time(&cpu32, &summaries(&w, Version::PolyMage, TargetKind::Cpu)?)?.total;
        let ha = cpu_time(&cpu32, &summaries(&w, Version::Halide, TargetKind::Cpu)?)?.total;
        let ours = cpu_time(&cpu32, &summaries(&w, Version::Ours, TargetKind::Cpu)?)?.total;
        let g_min = gpu_time(&gpu, &summaries(&w, Version::MinFuse, TargetKind::Gpu)?)?.total;
        let g_ha = gpu_time(&gpu, &summaries(&w, Version::Halide, TargetKind::Gpu)?)?.total;
        let g_ours = gpu_time(&gpu, &summaries(&w, Version::Ours, TargetKind::Gpu)?)?.total;
        Ok::<_, BoxError>((
            w.name.to_string(),
            vec![
                w.stages.to_string(),
                ms(naive),
                ms(pm),
                ms(ha),
                ms(ours),
                ms(g_min),
                ms(g_ha),
                ms(g_ours),
            ],
        ))
    });
    for r in rows {
        table.rows.push(r?);
    }
    Ok(table)
}

/// Table I — compilation-time columns (measured wall-clock; maxfuse runs
/// under a partition budget and reports `>budget` like the paper's
/// `>24h`).
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn table1_compile(maxfuse_budget: u64) -> Result<ResultTable, BoxError> {
    let mut table = ResultTable {
        title: "Table I — compilation time (s)".into(),
        columns: ["minfuse", "smartfuse", "maxfuse", "Ours"]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        rows: Vec::new(),
    };
    table.rows = par_map(polymage::all(128, 128)?, effective_jobs(None), |w| {
        let mut cells = Vec::new();
        for v in [
            Version::MinFuse,
            Version::SmartFuse,
            Version::MaxFuse,
            Version::Ours,
        ] {
            let cell = match compile_time(&w, v, maxfuse_budget) {
                Ok(Some(t)) => format!("{t:.3}"),
                Ok(None) => ">budget".to_string(),
                Err(e) => format!("✗ ({e})"),
            };
            cells.push(cell);
        }
        (w.name.to_string(), cells)
    });
    Ok(table)
}

/// Fig. 8 — CPU scaling: speedup over sequential naïve at 1/4/16/32
/// threads for PolyMage-naive/PolyMage/Halide/ours.
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn fig8() -> Result<Vec<ResultTable>, BoxError> {
    fig8_at(IMG)
}

/// [`fig8`] at an explicit image size (for the benches).
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn fig8_at(img: i64) -> Result<Vec<ResultTable>, BoxError> {
    let threads = [1usize, 4, 16, 32];
    let tables = par_map(polymage::all(img, img)?, effective_jobs(None), |w| {
        let base = cpu_time(
            &CpuModel::xeon_e5_2683_v4().with_threads(1),
            &summaries(&w, Version::Naive, TargetKind::Cpu)?,
        )?
        .total;
        let mut table = ResultTable {
            title: format!("Fig. 8 — {} (speedup over sequential naive)", w.name),
            columns: threads.iter().map(|t| format!("{t} threads")).collect(),
            rows: Vec::new(),
        };
        for v in [
            Version::Naive,
            Version::PolyMage,
            Version::Halide,
            Version::Ours,
        ] {
            let s = summaries(&w, v, TargetKind::Cpu)?;
            let mut cells = Vec::new();
            for &t in &threads {
                let time = cpu_time(&CpuModel::xeon_e5_2683_v4().with_threads(t), &s)?.total;
                cells.push(speedup(base, time));
            }
            table.rows.push((v.label().to_string(), cells));
        }
        Ok::<_, BoxError>(table)
    });
    tables.into_iter().collect()
}

/// Fig. 9 — equake: speedup over the baseline for
/// minfuse/smartfuse/maxfuse/ours at test/train/ref sizes.
///
/// The PPCG heuristics require the manually-permuted program (the
/// preprocessing the paper describes, which costs locality) and produce
/// the groupings the paper reports: smartfuse fuses the three SpMV
/// components; maxfuse additionally fuses the gather with the follow-up
/// affine loop nests. Ours runs on the original program and finds the
/// maxfuse-like fusion automatically, without tiling (extension schedules
/// over zero tile dimensions).
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn fig9() -> Result<ResultTable, BoxError> {
    use tilefuse_memsim::summarize_groups;
    use tilefuse_pir::{compute_dependences, StmtId};
    use tilefuse_scheduler::analyze_group;
    let cpu = CpuModel::xeon_e5_2683_v4();
    let mut table = ResultTable {
        title: "Fig. 9 — equake (speedup over baseline, 32 cores)".into(),
        columns: EquakeSize::all()
            .iter()
            .map(|(_, n)| (*n).to_string())
            .collect(),
        rows: Vec::new(),
    };
    let mut rows: Vec<(String, Vec<String>)> = vec![
        ("minfuse".into(), vec![]),
        ("smartfuse".into(), vec![]),
        ("maxfuse".into(), vec![]),
        ("Our work".into(), vec![]),
    ];
    // The paper-documented fusion results of the heuristics (Section VI-A).
    let partitions: [&[&[usize]]; 3] = [
        &[&[0], &[1], &[2], &[3], &[4]], // minfuse
        &[&[0, 1, 2], &[3], &[4]],       // smartfuse: SpMV fused
        &[&[0, 1], &[2, 3, 4]],          // maxfuse: gather + affine nests
    ];
    let sizes: Vec<_> = EquakeSize::all().iter().map(|(s, _)| *s).collect();
    let columns = par_map(sizes, effective_jobs(None), |size| {
        let permuted = equake(size, true)?;
        let deps = compute_dependences(&permuted.program)?;
        let params = permuted.program.param_values(&[]);
        let mut times = Vec::new();
        for part in partitions {
            let mut groups = Vec::new();
            for stmts in part.iter() {
                let ids: Vec<StmtId> = stmts.iter().map(|&s| StmtId(s)).collect();
                let g = analyze_group(&permuted.program, &deps, &ids, false)?
                    .ok_or("equake group has no band")?;
                groups.push(g);
            }
            let sums = summarize_groups(&permuted.program, &groups, &[], &params)?;
            times.push(cpu_time(&cpu, &sums)?.total);
        }
        let base = times[0];
        let mut cells: Vec<String> = times.iter().map(|&t| speedup(base, t)).collect();
        let original = equake(size, false)?;
        let t = cpu_time(&cpu, &summaries(&original, Version::Ours, TargetKind::Cpu)?)?.total;
        cells.push(speedup(base, t));
        Ok::<_, BoxError>(cells)
    });
    for col in columns {
        for (i, cell) in col?.into_iter().enumerate() {
            rows[i].1.push(cell);
        }
    }
    table.rows = rows;
    Ok(table)
}

/// Table II — PolyBench CPU execution times (ms) at 1/8/32 threads for
/// sequential/minfuse/smartfuse/maxfuse/hybridfuse/ours.
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn table2() -> Result<Vec<ResultTable>, BoxError> {
    let workloads: Vec<Workload> = vec![
        polybench::two_mm(1024)?,
        polybench::gemver(4096)?,
        polybench::covariance(1024, 1024)?,
    ];
    let tables = par_map(workloads, effective_jobs(None), |w| {
        let mut table = ResultTable {
            title: format!("Table II — {} (execution time, ms)", w.name),
            columns: ["1 thread", "8 threads", "32 threads"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            rows: Vec::new(),
        };
        for v in [
            Version::Naive,
            Version::MinFuse,
            Version::SmartFuse,
            Version::MaxFuse,
            Version::HybridFuse,
            Version::Ours,
        ] {
            let label = if v == Version::Naive {
                "sequential"
            } else {
                v.label()
            };
            match summaries(&w, v, TargetKind::Cpu) {
                Ok(s) => {
                    let mut cells = Vec::new();
                    for t in [1usize, 8, 32] {
                        let time =
                            cpu_time(&CpuModel::xeon_e5_2683_v4().with_threads(t), &s)?.total;
                        cells.push(ms(time));
                    }
                    table.rows.push((label.to_string(), cells));
                }
                Err(_) => {
                    table
                        .rows
                        .push((label.to_string(), vec!["✗".into(), "✗".into(), "✗".into()]));
                }
            }
        }
        Ok::<_, BoxError>(table)
    });
    tables.into_iter().collect()
}

/// Fig. 10 — GPU speedups over PPCG-minfuse for
/// smartfuse/maxfuse/Halide/ours on the PolyMage pipelines.
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn fig10() -> Result<ResultTable, BoxError> {
    fig10_at(IMG)
}

/// [`fig10`] at an explicit image size (for the benches).
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn fig10_at(img: i64) -> Result<ResultTable, BoxError> {
    let gpu = GpuModel::quadro_p6000();
    let mut table = ResultTable {
        title: "Fig. 10 — PolyMage benchmarks on GPU (speedup over minfuse)".into(),
        columns: ["smartfuse", "maxfuse", "Halide manual", "Our work"]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        rows: Vec::new(),
    };
    let rows = par_map(polymage::all(img, img)?, effective_jobs(None), |w| {
        let base = gpu_time(&gpu, &summaries(&w, Version::MinFuse, TargetKind::Gpu)?)?.total;
        let mut cells = Vec::new();
        for v in [
            Version::SmartFuse,
            Version::MaxFuse,
            Version::Halide,
            Version::Ours,
        ] {
            match summaries(&w, v, TargetKind::Gpu) {
                Ok(s) => cells.push(speedup(base, gpu_time(&gpu, &s)?.total)),
                Err(_) => cells.push("—".into()),
            }
        }
        Ok::<_, BoxError>((w.name.to_string(), cells))
    });
    for r in rows {
        table.rows.push(r?);
    }
    Ok(table)
}

/// Table III — ResNet-50 on the DaVinci accelerator: forward
/// conv+batchnorm time and the entire workload, smartfuse vs ours.
///
/// The "entire workload" adds the fixed remainder of a training step
/// (backward passes and optimizer ops — untouched by this optimization),
/// calibrated so smartfuse's split matches the paper's 11.50 / 35.03 ms.
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn table3() -> Result<ResultTable, BoxError> {
    let npu = DavinciModel::ascend_910();
    let mut fwd_smart = 0.0;
    let mut fwd_ours = 0.0;
    let per_block = par_map(resnet::blocks(), effective_jobs(None), |b| {
        let w = resnet::conv_bn_program(&b)?;
        let smart = davinci_time(
            &npu,
            &summaries(&w, Version::SmartFuse, TargetKind::Davinci)?,
        )?
        .total;
        let ours = davinci_time(&npu, &summaries(&w, Version::Ours, TargetKind::Davinci)?)?.total;
        Ok::<_, BoxError>((smart * b.repeat as f64, ours * b.repeat as f64))
    });
    for r in per_block {
        let (smart, ours) = r?;
        fwd_smart += smart;
        fwd_ours += ours;
    }
    // Remainder of the training step (constant across versions),
    // calibrated from the paper's smartfuse row: 35.03 − 11.50.
    let rest = fwd_smart * (35.03 - 11.50) / 11.50;
    let mut table = ResultTable {
        title: "Table III — ResNet-50 on the DaVinci accelerator (ms)".into(),
        columns: ["smartfuse", "Our work", "Speedup"]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        rows: Vec::new(),
    };
    table.rows.push((
        "fwd conv+batchnorm".into(),
        vec![ms(fwd_smart), ms(fwd_ours), speedup(fwd_smart, fwd_ours)],
    ));
    table.rows.push((
        "entire workload".into(),
        vec![
            ms(fwd_smart + rest),
            ms(fwd_ours + rest),
            speedup(fwd_smart + rest, fwd_ours + rest),
        ],
    ));
    Ok(table)
}

/// Table III — compilation time columns (measured).
///
/// # Errors
/// Returns an error if an experiment fails.
pub fn table3_compile() -> Result<ResultTable, BoxError> {
    let mut smart = 0.0;
    let mut ours = 0.0;
    let per_block = par_map(resnet::blocks(), effective_jobs(None), |b| {
        let w = resnet::conv_bn_program(&b)?;
        let s = compile_time(&w, Version::SmartFuse, 0)?.unwrap_or(0.0) * b.repeat as f64;
        let o = compile_time(&w, Version::Ours, 0)?.unwrap_or(0.0) * b.repeat as f64;
        Ok::<_, BoxError>((s, o))
    });
    for r in per_block {
        let (s, o) = r?;
        smart += s;
        ours += o;
    }
    Ok(ResultTable {
        title: "Table III — ResNet-50 compilation time (s)".into(),
        columns: ["smartfuse", "Our work"]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        rows: vec![(
            "entire workload".into(),
            vec![format!("{smart:.2}"), format!("{ours:.2}")],
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let t = ResultTable {
            title: "T".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("r".into(), vec!["1".into(), "2".into()])],
        };
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| r | 1 | 2 |"));
    }

    #[test]
    fn fig9_has_expected_shape() {
        let t = fig9().unwrap();
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.rows.len(), 4);
        // ours >= maxfuse >= smartfuse (all speedup strings "X.XXx").
        let val =
            |r: usize, c: usize| -> f64 { t.rows[r].1[c].trim_end_matches('x').parse().unwrap() };
        for c in 0..3 {
            assert!(val(3, c) >= val(1, c), "ours >= smartfuse: {t:?}");
            assert!(val(1, c) >= val(0, c), "smartfuse >= minfuse: {t:?}");
        }
    }
}
