//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section VI).
//!
//! * [`versions`] — the compared compiler versions (heuristics, PolyMage,
//!   Halide, ours) and how each is modeled;
//! * [`tables`] — one generator per table/figure (Table I/II/III,
//!   Figures 8/9/10), returning [`tables::ResultTable`]s;
//! * the `experiments` binary prints everything and can rewrite
//!   `EXPERIMENTS.md`;
//! * benches under `benches/` wrap the same generators plus
//!   micro-benchmarks of the polyhedral substrate, driven by the
//!   self-contained [`microbench`] harness;
//! * [`par`] — a bounded worker pool used to fan the experiment
//!   configurations out over OS threads;
//! * [`backends`] — the measured interpreter-vs-bytecode-VM comparison
//!   behind `experiments … --backend vm`.

pub mod backends;
pub mod microbench;
pub mod par;
pub mod tables;
pub mod tune;
pub mod versions;
