//! A tiny self-contained micro-benchmark harness.
//!
//! The container this repo builds in has no network access, so external
//! harnesses cannot be fetched; this module provides the small subset we
//! need: per-function warmup, automatic iteration-count calibration so a
//! sample lasts long enough to time reliably, and median/mean reporting.
//!
//! Benches are ordinary binaries (`harness = false`); pass a substring
//! as the first CLI argument to filter which functions run.

use std::time::{Duration, Instant};

/// Per-function measurement driver handed to the closure under test.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f` repeatedly; call exactly once per bench function.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration: grow the per-sample iteration count until
        // one sample takes at least ~1ms (or we hit a generous cap).
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

/// A named group of bench functions with shared configuration.
pub struct Harness {
    group: String,
    sample_size: usize,
    filter: Option<String>,
}

impl Harness {
    /// Creates a harness; the filter comes from the first CLI argument.
    pub fn new(group: &str) -> Self {
        let filter = std::env::args()
            .nth(1)
            .filter(|a| a != "--bench" && !a.starts_with('-'));
        Harness {
            group: group.to_owned(),
            sample_size: 10,
            filter,
        }
    }

    /// Sets how many timed samples each bench function collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one bench function and prints its timing line.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let full = format!("{}/{}", self.group, name);
        if let Some(flt) = &self.filter {
            if !full.contains(flt.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{full:<48} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{full:<48} median {:>12}  mean {:>12}  ({} iters x {} samples)",
            fmt_time(median),
            fmt_time(mean),
            b.iters_per_sample,
            per_iter.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: 3,
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert_eq!(b.samples.len(), 3);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn fmt_time_picks_unit() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
