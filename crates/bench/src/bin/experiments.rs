//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p tilefuse-bench --bin experiments            # print all
//! cargo run --release -p tilefuse-bench --bin experiments table1    # one artifact
//! cargo run --release -p tilefuse-bench --bin experiments all --trace out.json
//! ```
//! Artifacts: table1, table1-compile, fig8, fig9, table2, fig10,
//! table3, table3-compile, all.
//!
//! Independent artifacts are generated concurrently on a bounded worker
//! pool (`TILEFUSE_JOBS` workers, default: the machine's parallelism);
//! output is printed in the fixed artifact order regardless of which
//! worker finished first. A machine-readable summary — per-artifact and
//! total wall-clock plus presburger cache-hit counters — is written to
//! `BENCH_experiments.json` in the current directory.
//!
//! With `--trace FILE` the structured tracer is enabled for the run: a
//! Chrome-trace JSON (load it at `chrome://tracing` or in Perfetto) is
//! written to FILE and a plain-text phase table — per-span call counts,
//! total/self time, and per-span presburger cache hit/miss counters — is
//! printed to stderr after the artifacts.
//!
//! `--deadline-ms N` and `--max-omega-branches N` install a resource
//! budget for every `optimize` call in the run (see DESIGN.md §10): the
//! optimizer degrades through its ladder instead of blowing the limit,
//! and the JSON summary gains a `"degradation"` section recording the
//! rung and trip counts per workload.
//!
//! `--backend vm` additionally *executes* every PolyMage workload on both
//! execution backends — the reference interpreter and the register-based
//! bytecode VM — at a small real image size, prints the measured
//! comparison, verifies the VM bit-exact against the interpreter, and
//! records the timings in a `"backends"` section of the JSON summary.
//! Any bit mismatch fails the run. (`--backend interp`, the default,
//! skips the comparison.)

use std::time::Instant;

use tilefuse_bench::backends::{backend_table, compare_backends, BackendRow, BACKEND_IMG};
use tilefuse_bench::par::{effective_jobs, par_map};
use tilefuse_bench::tables::{self, ResultTable};
use tilefuse_bench::versions::{self, BoxError};
use tilefuse_presburger::stats;

type Generator = fn() -> Result<Vec<ResultTable>, BoxError>;

const ARTIFACTS: &[(&str, Generator)] = &[
    ("table1", || tables::table1_exec().map(|t| vec![t])),
    ("table1-compile", || {
        tables::table1_compile(2000).map(|t| vec![t])
    }),
    ("fig8", tables::fig8),
    ("fig9", || tables::fig9().map(|t| vec![t])),
    ("table2", tables::table2),
    ("fig10", || tables::fig10().map(|t| vec![t])),
    ("table3", || tables::table3().map(|t| vec![t])),
    ("table3-compile", || {
        tables::table3_compile().map(|t| vec![t])
    }),
];

/// `experiments all` must keep the `is_empty` memo effective: the 26%
/// hit-rate pathology (Rule 2 intersecting *projected* extension ranges,
/// which splinter into per-tile disjuncts and Omega-test the full cross
/// product as ~1M distinct systems) must not come back.
const MIN_IS_EMPTY_HIT_RATE: f64 = 0.60;

struct Outcome {
    name: &'static str,
    seconds: f64,
    result: Result<Vec<ResultTable>, BoxError>,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [ARTIFACT] [--trace FILE] [--deadline-ms N] \
         [--max-omega-branches N] [--backend interp|vm]"
    );
    eprintln!("artifacts:");
    for (name, _) in ARTIFACTS {
        eprintln!("  {name}");
    }
    eprintln!("  all");
    std::process::exit(2);
}

fn main() {
    let mut which = None;
    let mut trace_path: Option<String> = None;
    let mut backend_vm = false;
    let mut budget = tilefuse_trace::Budget::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            match args.next() {
                Some(p) => trace_path = Some(p),
                None => usage(),
            }
        } else if a == "--deadline-ms" {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget.deadline_ms = Some(ms),
                None => usage(),
            }
        } else if a == "--max-omega-branches" {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget.max_branches_per_call = Some(n),
                None => usage(),
            }
        } else if a == "--backend" {
            match args.next().as_deref() {
                Some("vm") => backend_vm = true,
                Some("interp") => backend_vm = false,
                _ => usage(),
            }
        } else if which.is_none() {
            which = Some(a);
        } else {
            usage();
        }
    }
    if !budget.is_unlimited() {
        eprintln!("resource budget: {budget:?}");
        versions::set_budget(budget);
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    let selected: Vec<(&'static str, Generator)> = ARTIFACTS
        .iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .copied()
        .collect();
    if selected.is_empty() {
        eprintln!("unknown artifact {which:?}");
        usage();
    }
    if trace_path.is_some() {
        tilefuse_trace::set_enabled(true);
    }
    let jobs = effective_jobs(None);
    let t0 = Instant::now();
    let outcomes = par_map(selected, jobs, |(name, gen)| {
        let start = Instant::now();
        let result = gen();
        Outcome {
            name,
            seconds: start.elapsed().as_secs_f64(),
            result,
        }
    });
    let total = t0.elapsed().as_secs_f64();

    let mut failures = 0;
    for o in &outcomes {
        match &o.result {
            Ok(ts) => {
                for t in ts {
                    println!("{}", t.to_markdown());
                }
            }
            Err(e) => {
                eprintln!("{} failed: {e}", o.name);
                failures += 1;
            }
        }
    }
    // The measured interp-vs-VM comparison runs after (not inside) the
    // worker pool: its rows are wall-clock timings.
    let mut backend_rows: Vec<BackendRow> = Vec::new();
    if backend_vm {
        match compare_backends(BACKEND_IMG) {
            Ok(rows) => {
                println!("{}", backend_table(&rows).to_markdown());
                for r in &rows {
                    if !r.bit_exact {
                        eprintln!("BACKEND MISMATCH: {} is not bit-exact on the VM", r.name);
                        failures += 1;
                    }
                }
                backend_rows = rows;
            }
            Err(e) => {
                eprintln!("backend comparison failed: {e}");
                failures += 1;
            }
        }
    }

    let cache = stats::snapshot();
    eprintln!(
        "generated {} artifact(s) in {total:.3}s on {jobs} worker(s)",
        outcomes.len()
    );
    eprintln!("presburger cache stats: {cache}");

    if let Some(path) = &trace_path {
        // SLOT_NAMES includes the silent_feasible counter slot, so the
        // phase table attributes capped-feasibility fallbacks to the
        // innermost span that incurred them.
        let slot_names = &stats::SLOT_NAMES[..];
        eprintln!();
        eprintln!(
            "{}",
            tilefuse_trace::phase_table(&tilefuse_trace::snapshot(), slot_names)
        );
        match std::fs::write(path, tilefuse_trace::chrome_trace_json(slot_names)) {
            Ok(()) => eprintln!("wrote Chrome trace to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                failures += 1;
            }
        }
    }

    let json = render_json(&which, jobs, total, &outcomes, &cache, &backend_rows);
    match std::fs::write("BENCH_experiments.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_experiments.json"),
        Err(e) => eprintln!("could not write BENCH_experiments.json: {e}"),
    }
    if which == "all" {
        let rate = hit_rate(&cache.is_empty);
        if rate < MIN_IS_EMPTY_HIT_RATE {
            eprintln!(
                "REGRESSION: is_empty cache hit rate {:.1}% below the {:.0}% floor \
                 (see presburger::bset::is_empty and the Rule 2 joint-relation \
                 disjointness test in core::optimize)",
                rate * 100.0,
                MIN_IS_EMPTY_HIT_RATE * 100.0
            );
            failures += 1;
        } else {
            eprintln!(
                "is_empty cache hit rate {:.1}% (floor {:.0}%)",
                rate * 100.0,
                MIN_IS_EMPTY_HIT_RATE * 100.0
            );
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn hit_rate(op: &stats::OpStats) -> f64 {
    let total = op.hits + op.misses;
    if total == 0 {
        1.0
    } else {
        op.hits as f64 / total as f64
    }
}

fn render_json(
    which: &str,
    jobs: usize,
    total: f64,
    outcomes: &[Outcome],
    cache: &stats::CacheStats,
    backend_rows: &[BackendRow],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"selection\": \"{which}\",\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    s.push_str("  \"artifacts\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 == outcomes.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"ok\": {} }}{comma}\n",
            o.name,
            o.seconds,
            o.result.is_ok()
        ));
    }
    s.push_str("  ],\n");
    if !backend_rows.is_empty() {
        s.push_str("  \"backends\": {\n");
        s.push_str("    \"backend\": \"vm\",\n");
        s.push_str(&format!(
            "    \"img\": {BACKEND_IMG},\n    \"workloads\": [\n"
        ));
        for (i, r) in backend_rows.iter().enumerate() {
            let comma = if i + 1 == backend_rows.len() { "" } else { "," };
            s.push_str(&format!(
                "      {{ \"name\": \"{}\", \"tree\": \"{}\", \"lower_ms\": {:.3}, \
                 \"interp_ms\": {:.3}, \"vm_ms\": {:.3}, \"speedup\": {:.3}, \
                 \"bit_exact\": {} }}{comma}\n",
                r.name,
                r.tree,
                r.lower_ms,
                r.interp_ms,
                r.vm_ms,
                r.speedup(),
                r.bit_exact
            ));
        }
        s.push_str("    ]\n  },\n");
    }
    s.push_str("  \"presburger_cache\": {\n");
    let ops = [
        ("is_empty", &cache.is_empty),
        ("project", &cache.project),
        ("intersect", &cache.intersect),
        ("apply", &cache.apply),
        ("reverse", &cache.reverse),
    ];
    for (name, op) in &ops {
        s.push_str(&format!(
            "    \"{name}\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},\n",
            op.hits,
            op.misses,
            hit_rate(op)
        ));
    }
    s.push_str(&format!(
        "    \"silent_feasible\": {}\n",
        cache.silent_feasible
    ));
    s.push_str("  },\n");
    s.push_str("  \"degradation\": {\n");
    let degr = versions::degradations();
    for (i, (name, d)) in degr.iter().enumerate() {
        let comma = if i + 1 == degr.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{name}\": {{ \"rung\": {}, \"trips\": {}, \"silent_feasible\": {}, \
             \"omega_ops\": {}, \"fusion_budget_exhausted\": {} }}{comma}\n",
            d.rung, d.trips, d.silent_feasible, d.omega_ops, d.fusion_budget_exhausted
        ));
    }
    s.push_str("  }\n}\n");
    s
}
