//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p tilefuse-bench --bin experiments            # print all
//! cargo run --release -p tilefuse-bench --bin experiments table1    # one artifact
//! ```
//! Artifacts: table1, table1-compile, fig8, fig9, table2, fig10,
//! table3, table3-compile, all.

use tilefuse_bench::tables;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run = |name: &str| which == "all" || which == name;
    let mut failures = 0;
    macro_rules! emit {
        ($name:expr, $gen:expr) => {
            if run($name) {
                match $gen {
                    Ok(t) => println!("{}", t.to_markdown()),
                    Err(e) => {
                        eprintln!("{} failed: {e}", $name);
                        failures += 1;
                    }
                }
            }
        };
    }
    macro_rules! emit_many {
        ($name:expr, $gen:expr) => {
            if run($name) {
                match $gen {
                    Ok(ts) => {
                        for t in ts {
                            println!("{}", t.to_markdown());
                        }
                    }
                    Err(e) => {
                        eprintln!("{} failed: {e}", $name);
                        failures += 1;
                    }
                }
            }
        };
    }
    emit!("table1", tables::table1_exec());
    emit!("table1-compile", tables::table1_compile(2000));
    emit_many!("fig8", tables::fig8());
    emit!("fig9", tables::fig9());
    emit_many!("table2", tables::table2());
    emit!("fig10", tables::fig10());
    emit!("table3", tables::table3());
    emit!("table3-compile", tables::table3_compile());
    if failures > 0 {
        std::process::exit(1);
    }
}
