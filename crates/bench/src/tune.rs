//! Tile-size auto-tuning.
//!
//! The paper uses auto-tuned tile sizes (Table I lists them) and notes that
//! auto-tuning tools "can be used as a complementary optimization for our
//! approach" (Section VII). This module implements that complement: it
//! sweeps the same candidate set the PolyMage auto-tuner used (7 sizes per
//! dimension — 8, 16, 32, 64, 128, 256, 512) and picks the configuration
//! the analytic cost model prices cheapest.

use crate::versions::BoxError;
use tilefuse_core::{optimize, Options};
use tilefuse_memsim::{cpu_time, gpu_time, summarize_optimized, CpuModel, GpuModel};
use tilefuse_scheduler::FusionHeuristic;
use tilefuse_workloads::Workload;

/// The candidate tile sizes of the PolyMage auto-tuner (Section VI).
pub const CANDIDATES: [i64; 7] = [8, 16, 32, 64, 128, 256, 512];

/// The tuning objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize modeled CPU time on the Xeon model.
    Cpu,
    /// Minimize modeled GPU time on the Quadro model.
    Gpu,
}

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// The tile sizes tried.
    pub tile_sizes: Vec<i64>,
    /// Modeled execution time in seconds.
    pub time: f64,
}

/// The result of a sweep: every evaluated point, best first.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Evaluated points, sorted by ascending time.
    pub points: Vec<TunePoint>,
}

impl TuneResult {
    /// The winning tile sizes.
    ///
    /// # Panics
    /// Panics if the sweep evaluated nothing.
    pub fn best(&self) -> &TunePoint {
        self.points
            .first()
            .expect("sweep evaluated at least one point")
    }
}

/// Sweeps 2-D tile sizes for `workload` under `objective`, optimizing with
/// post-tiling fusion at every point. `limit` caps the candidate set per
/// dimension (use a small limit for the deep pipelines — the sweep runs
/// the full optimizer per point).
///
/// # Errors
/// Returns an error if the optimizer fails at some configuration.
pub fn sweep_2d(
    workload: &Workload,
    objective: Objective,
    limit: usize,
) -> Result<TuneResult, BoxError> {
    let program = &workload.program;
    let params = program.param_values(&[]);
    let candidates = &CANDIDATES[..limit.min(CANDIDATES.len())];
    let mut points = Vec::new();
    for &t0 in candidates {
        for &t1 in candidates {
            let tiles = vec![t0, t1];
            let opts = Options {
                tile_sizes: tiles.clone(),
                parallel_cap: Some(match objective {
                    Objective::Cpu => 1,
                    Objective::Gpu => 2,
                }),
                startup: FusionHeuristic::MinFuse,
                ..Default::default()
            };
            let o = optimize(program, &opts)?;
            let sums = summarize_optimized(program, &o, &tiles, &params)?;
            let time = match objective {
                Objective::Cpu => cpu_time(&CpuModel::xeon_e5_2683_v4(), &sums)?.total,
                Objective::Gpu => gpu_time(&GpuModel::quadro_p6000(), &sums)?.total,
            };
            points.push(TunePoint {
                tile_sizes: tiles,
                time,
            });
        }
    }
    points.sort_by(|a, b| a.time.total_cmp(&b.time));
    Ok(TuneResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_workloads::polymage::unsharp_mask;

    #[test]
    fn sweep_orders_points_and_finds_a_best() {
        let w = unsharp_mask(512, 512).unwrap();
        let r = sweep_2d(&w, Objective::Cpu, 3).unwrap();
        assert_eq!(r.points.len(), 9);
        assert!(r.points.windows(2).all(|p| p[0].time <= p[1].time));
        let best = r.best();
        assert!(CANDIDATES.contains(&best.tile_sizes[0]));
        assert!(best.time > 0.0);
    }

    #[test]
    fn gpu_objective_also_works() {
        let w = unsharp_mask(512, 512).unwrap();
        let r = sweep_2d(&w, Objective::Gpu, 2).unwrap();
        assert_eq!(r.points.len(), 4);
    }
}
