//! Ablation: what each design choice buys.
//!
//! Compares, on the Harris pipeline: no fusion (minfuse), fusion with the
//! loose PolyMage-style overlap, and the paper's tight per-stage
//! footprints — isolating the contribution of exact upwards-exposed-data
//! footprints (DESIGN.md's "tighter overlap" claim).

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_memsim::{cpu_time, CpuModel};
use tilefuse_workloads::polymage::harris;

fn main() {
    let w = harris(128, 128).unwrap();
    let model = CpuModel::xeon_e5_2683_v4();
    println!("### Ablation — Harris, modeled CPU time (ms, 32 threads)\n");
    for v in [Version::MinFuse, Version::PolyMage, Version::Ours] {
        let s = summaries(&w, v, TargetKind::Cpu).unwrap();
        let t = cpu_time(&model, &s).unwrap();
        println!("{:>10}: {:.3}", v.label(), t.total * 1e3);
    }
    println!();
    let mut g = Harness::new("ablation");
    g.sample_size(10);
    g.bench("ours_summaries", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Cpu).unwrap()))
    });
}
