//! Fig. 10 — GPU speedups over PPCG-minfuse: prints the regenerated table
//! once, then benchmarks the GPU pricing unit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_memsim::{gpu_time, GpuModel};
use tilefuse_workloads::polymage::harris;

fn bench(c: &mut Criterion) {
    println!("{}", tables::fig10_at(256).expect("fig10 generates").to_markdown());
    let w = harris(256, 256).unwrap();
    let sums = summaries(&w, Version::Ours, TargetKind::Gpu).unwrap();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("price_harris_gpu", |b| {
        b.iter(|| black_box(gpu_time(&GpuModel::quadro_p6000(), &sums).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
