//! Fig. 10 — GPU speedups over PPCG-minfuse: prints the regenerated table
//! once, then benchmarks the GPU pricing unit.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_memsim::{gpu_time, GpuModel};
use tilefuse_workloads::polymage::harris;

fn main() {
    println!(
        "{}",
        tables::fig10_at(256)
            .expect("fig10 generates")
            .to_markdown()
    );
    let w = harris(256, 256).unwrap();
    let sums = summaries(&w, Version::Ours, TargetKind::Gpu).unwrap();
    let mut g = Harness::new("fig10");
    g.sample_size(10);
    g.bench("price_harris_gpu", |b| {
        b.iter(|| black_box(gpu_time(&GpuModel::quadro_p6000(), &sums).unwrap()))
    });
}
