//! Table II — PolyBench kernels across heuristics and thread counts:
//! prints the regenerated tables once, then benchmarks the 2mm analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_workloads::polybench::two_mm;

fn bench(c: &mut Criterion) {
    for t in tables::table2().expect("table2 generates") {
        println!("{}", t.to_markdown());
    }
    let w = two_mm(256).unwrap();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("ours_summaries_2mm", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Cpu).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
