//! Table II — PolyBench kernels across heuristics and thread counts:
//! prints the regenerated tables once, then benchmarks the 2mm analysis.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_workloads::polybench::two_mm;

fn main() {
    for t in tables::table2().expect("table2 generates") {
        println!("{}", t.to_markdown());
    }
    let w = two_mm(256).unwrap();
    let mut g = Harness::new("table2");
    g.sample_size(10);
    g.bench("ours_summaries_2mm", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Cpu).unwrap()))
    });
}
