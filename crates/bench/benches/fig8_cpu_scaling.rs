//! Fig. 8 — CPU thread scaling of the PolyMage pipelines: prints the
//! regenerated series once, then benchmarks the pricing unit.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_memsim::{cpu_time, CpuModel};
use tilefuse_workloads::polymage::harris;

fn main() {
    for t in tables::fig8_at(256).expect("fig8 generates") {
        println!("{}", t.to_markdown());
    }
    let w = harris(256, 256).unwrap();
    let sums = summaries(&w, Version::Ours, TargetKind::Cpu).unwrap();
    let mut g = Harness::new("fig8");
    g.sample_size(10);
    g.bench("price_harris_32t", |b| {
        b.iter(|| black_box(cpu_time(&CpuModel::xeon_e5_2683_v4(), &sums).unwrap()))
    });
}
