//! Table I compilation-time columns, genuinely measured: wall-clock of
//! each scheduling/optimization pass (compare the paper's minfuse /
//! smartfuse / maxfuse / ours columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilefuse_scheduler::{schedule, FusionHeuristic};
use tilefuse_workloads::polymage;

fn bench(c: &mut Criterion) {
    let workloads = vec![
        polymage::unsharp_mask(128, 128).unwrap(),
        polymage::harris(128, 128).unwrap(),
        polymage::bilateral_grid(128, 128).unwrap(),
    ];
    let mut g = c.benchmark_group("compile_time");
    g.sample_size(10);
    for w in &workloads {
        for h in [FusionHeuristic::MinFuse, FusionHeuristic::SmartFuse] {
            g.bench_with_input(
                BenchmarkId::new(format!("{h:?}"), w.name),
                &w.program,
                |b, p| b.iter(|| black_box(schedule(black_box(p), h).unwrap())),
            );
        }
        g.bench_with_input(BenchmarkId::new("Ours", w.name), w, |b, w| {
            b.iter(|| {
                let opts = tilefuse_core::Options {
                    tile_sizes: w.tile_sizes.clone(),
                    parallel_cap: Some(1),
                    startup: FusionHeuristic::MinFuse,
                ..Default::default()
            };
                black_box(tilefuse_core::optimize(black_box(&w.program), &opts).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
