//! Table I compilation-time columns, genuinely measured: wall-clock of
//! each scheduling/optimization pass (compare the paper's minfuse /
//! smartfuse / maxfuse / ours columns). Finishes by printing the
//! presburger cache counters so the memo's contribution to the measured
//! compile times is visible (maxfuse's exhaustive legality search is the
//! heaviest cache client).

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_pir::compute_dependences;
use tilefuse_presburger::stats;
use tilefuse_scheduler::{fuse, schedule, FuseBudget, FusionHeuristic};
use tilefuse_workloads::polymage;

fn main() {
    let workloads = vec![
        polymage::unsharp_mask(128, 128).unwrap(),
        polymage::harris(128, 128).unwrap(),
        polymage::bilateral_grid(128, 128).unwrap(),
    ];
    let mut g = Harness::new("compile_time");
    g.sample_size(10);
    for w in &workloads {
        for h in [FusionHeuristic::MinFuse, FusionHeuristic::SmartFuse] {
            g.bench(&format!("{h:?}/{}", w.name), |b| {
                b.iter(|| black_box(schedule(black_box(&w.program), h).unwrap()))
            });
        }
        g.bench(&format!("MaxFuse/{}", w.name), |b| {
            b.iter(|| {
                let deps = compute_dependences(black_box(&w.program)).unwrap();
                let mut budget = FuseBudget::new(20_000);
                black_box(
                    fuse(
                        black_box(&w.program),
                        &deps,
                        FusionHeuristic::MaxFuse,
                        &mut budget,
                    )
                    .unwrap(),
                )
            })
        });
        g.bench(&format!("Ours/{}", w.name), |b| {
            b.iter(|| {
                let opts = tilefuse_core::Options {
                    tile_sizes: w.tile_sizes.clone(),
                    parallel_cap: Some(1),
                    startup: FusionHeuristic::MinFuse,
                    ..Default::default()
                };
                black_box(tilefuse_core::optimize(black_box(&w.program), &opts).unwrap())
            })
        });
    }
    eprintln!("presburger cache stats: {}", stats::snapshot());
}
