//! Table III — ResNet-50 conv+batchnorm on the DaVinci accelerator:
//! prints the regenerated table once, then benchmarks one block's
//! optimization + pricing.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_workloads::resnet::{blocks, conv_bn_program};

fn main() {
    println!(
        "{}",
        tables::table3().expect("table3 generates").to_markdown()
    );
    println!(
        "{}",
        tables::table3_compile()
            .expect("table3-compile generates")
            .to_markdown()
    );
    let blk = blocks()[1];
    let w = conv_bn_program(&blk).unwrap();
    let mut g = Harness::new("table3");
    g.sample_size(10);
    g.bench("ours_block_res2_1x1", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Davinci).unwrap()))
    });
}
