//! Table I — PolyMage execution times (CPU + GPU): prints the regenerated
//! table once, then benchmarks the per-benchmark analysis unit.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_workloads::polymage::unsharp_mask;

fn main() {
    let table = tables::table1_exec_at(256).expect("table1 generates");
    println!("{}", table.to_markdown());
    let w = unsharp_mask(256, 256).unwrap();
    let mut g = Harness::new("table1");
    g.sample_size(10);
    g.bench("ours_summaries_unsharp", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Cpu).unwrap()))
    });
}
