//! Table I — PolyMage execution times (CPU + GPU): prints the regenerated
//! table once, then benchmarks the per-benchmark analysis unit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_workloads::polymage::unsharp_mask;

fn bench(c: &mut Criterion) {
    let table = tables::table1_exec_at(256).expect("table1 generates");
    println!("{}", table.to_markdown());
    let w = unsharp_mask(256, 256).unwrap();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("ours_summaries_unsharp", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Cpu).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
