//! Micro-benchmarks of the polyhedral substrate: the elementary set/map
//! operations Algorithms 1-3 are built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilefuse_presburger::{Map, Set};

fn bench(c: &mut Criterion) {
    let dom: Set = "[H, W] -> { S2[h,w,kh,kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 \
                    and 0 <= kh <= 2 and 0 <= kw <= 2 }"
        .parse()
        .unwrap();
    let read: Map = "[H, W] -> { S2[h,w,kh,kw] -> A[h+kh, w+kw] }".parse().unwrap();
    let tile: Map = "[H, W] -> { S2[h,w,kh,kw] -> [o0, o1] : 32o0 <= h <= 32o0 + 31 \
                     and 32o1 <= w <= 32o1 + 31 }"
        .parse()
        .unwrap();
    let write: Map = "[H, W] -> { S0[h, w] -> A[h, w] : 0 <= h < H and 0 <= w < W }"
        .parse()
        .unwrap();

    c.bench_function("parse_set", |b| {
        b.iter(|| {
            let s: Set = black_box("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
                .parse()
                .unwrap();
            black_box(s)
        })
    });
    c.bench_function("intersect_domain", |b| {
        b.iter(|| black_box(read.intersect_domain(black_box(&dom)).unwrap()))
    });
    c.bench_function("footprint_relation4", |b| {
        b.iter(|| {
            // reverse(tile) ∘ read — the paper's relation (4).
            black_box(tile.reverse().compose(black_box(&read)).unwrap())
        })
    });
    c.bench_function("extension_relation6", |b| {
        let fp = tile.reverse().compose(&read).unwrap();
        b.iter(|| black_box(fp.compose(&write.reverse()).unwrap()))
    });
    c.bench_function("emptiness_omega", |b| {
        let s: Set = "{ S[x, y] : 11x + 13y >= 27 and 11x + 13y <= 45 \
                        and 7x - 9y >= -10 and 7x - 9y <= 4 }"
            .parse()
            .unwrap();
        b.iter(|| black_box(s.is_empty().unwrap()))
    });
    c.bench_function("subtract_and_subset", |b| {
        let a: Set = "{ S[i] : 0 <= i <= 100 }".parse().unwrap();
        let c2: Set = "{ S[i] : 40 <= i <= 60 }".parse().unwrap();
        b.iter(|| black_box(a.subtract(black_box(&c2)).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
