//! Micro-benchmarks of the polyhedral substrate: the elementary set/map
//! operations Algorithms 1-3 are built from, plus cached-vs-uncached
//! comparisons of the memoized operations.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_presburger::{stats, Map, Set};

fn main() {
    let dom: Set = "[H, W] -> { S2[h,w,kh,kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 \
                    and 0 <= kh <= 2 and 0 <= kw <= 2 }"
        .parse()
        .unwrap();
    let read: Map = "[H, W] -> { S2[h,w,kh,kw] -> A[h+kh, w+kw] }"
        .parse()
        .unwrap();
    let tile: Map = "[H, W] -> { S2[h,w,kh,kw] -> [o0, o1] : 32o0 <= h <= 32o0 + 31 \
                     and 32o1 <= w <= 32o1 + 31 }"
        .parse()
        .unwrap();
    let write: Map = "[H, W] -> { S0[h, w] -> A[h, w] : 0 <= h < H and 0 <= w < W }"
        .parse()
        .unwrap();

    let mut h = Harness::new("presburger_ops");
    h.sample_size(10);

    h.bench("parse_set", |b| {
        b.iter(|| {
            let s: Set = black_box("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
                .parse()
                .unwrap();
            black_box(s)
        })
    });
    h.bench("intersect_domain", |b| {
        b.iter(|| black_box(read.intersect_domain(black_box(&dom)).unwrap()))
    });
    h.bench("footprint_relation4", |b| {
        b.iter(|| {
            // reverse(tile) ∘ read — the paper's relation (4).
            black_box(tile.reverse().compose(black_box(&read)).unwrap())
        })
    });
    {
        let fp = tile.reverse().compose(&read).unwrap();
        h.bench("extension_relation6", |b| {
            b.iter(|| black_box(fp.compose(&write.reverse()).unwrap()))
        });
    }
    {
        let s: Set = "{ S[x, y] : 11x + 13y >= 27 and 11x + 13y <= 45 \
                        and 7x - 9y >= -10 and 7x - 9y <= 4 }"
            .parse()
            .unwrap();
        h.bench("emptiness_omega", |b| {
            b.iter(|| black_box(s.is_empty().unwrap()))
        });
    }
    {
        let a: Set = "{ S[i] : 0 <= i <= 100 }".parse().unwrap();
        let c2: Set = "{ S[i] : 40 <= i <= 60 }".parse().unwrap();
        h.bench("subtract_and_subset", |b| {
            b.iter(|| black_box(a.subtract(black_box(&c2)).unwrap()))
        });
    }

    // Cached vs uncached: the same memoized operations with the memo
    // table cleared before every call versus left warm.
    let fat: Set = "[N] -> { S[i, j, k] : 0 <= i < N and 0 <= j <= i and \
                    3k >= j - 7 and 2k <= i + j and -20 <= k <= 20 }"
        .parse()
        .unwrap();
    h.bench("is_empty_uncached", |b| {
        b.iter(|| {
            stats::clear_cache();
            black_box(fat.is_empty().unwrap())
        })
    });
    h.bench("is_empty_cached", |b| {
        stats::clear_cache();
        let _ = fat.is_empty().unwrap();
        b.iter(|| black_box(fat.is_empty().unwrap()))
    });
    h.bench("project_out_uncached", |b| {
        b.iter(|| {
            stats::clear_cache();
            black_box(fat.project_out_dims(1, 2).unwrap())
        })
    });
    h.bench("project_out_cached", |b| {
        stats::clear_cache();
        let _ = fat.project_out_dims(1, 2).unwrap();
        b.iter(|| black_box(fat.project_out_dims(1, 2).unwrap()))
    });
    h.bench("apply_uncached", |b| {
        b.iter(|| {
            stats::clear_cache();
            black_box(read.apply(black_box(&dom)).unwrap())
        })
    });
    h.bench("apply_cached", |b| {
        stats::clear_cache();
        let _ = read.apply(&dom).unwrap();
        b.iter(|| black_box(read.apply(black_box(&dom)).unwrap()))
    });

    println!("\npresburger cache stats: {}", stats::snapshot());
}
