//! Fig. 9 — equake speedups across input sizes: prints the regenerated
//! table once, then benchmarks the fusion-without-tiling unit.

use std::hint::black_box;
use tilefuse_bench::microbench::Harness;
use tilefuse_bench::tables;
use tilefuse_bench::versions::{summaries, TargetKind, Version};
use tilefuse_workloads::equake::{equake, EquakeSize};

fn main() {
    println!("{}", tables::fig9().expect("fig9 generates").to_markdown());
    let w = equake(EquakeSize::Test, false).unwrap();
    let mut g = Harness::new("fig9");
    g.sample_size(10);
    g.bench("ours_summaries_equake_test", |b| {
        b.iter(|| black_box(summaries(&w, Version::Ours, TargetKind::Cpu).unwrap()))
    });
}
