//! Polyhedral intermediate representation.
//!
//! A [`Program`] declares parameters, arrays and statements. Each statement
//! carries its iteration domain (a [`tilefuse_presburger::Set`]), its
//! position in the *initial* multi-dimensional affine schedule, and an
//! executable [`Body`]. Access relations are derived from the body, so the
//! dependences used for legality and the values computed by the interpreter
//! can never disagree.
//!
//! # Example: the paper's running 2-D convolution (Fig. 1(a))
//!
//! ```
//! use tilefuse_pir::{Program, ArrayKind, SchedTerm, Body, Expr, IdxExpr};
//!
//! let mut p = Program::new("conv2d").with_param("H", 6).with_param("W", 6);
//! let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
//! let c = p.add_array("C", vec![("H", -2).into(), ("W", -2).into()], ArrayKind::Output);
//! // S0: A[h][w] = Quant(A[h][w])    — modelled here as A[h][w] * 0.5
//! let s0 = p.add_stmt(
//!     "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
//!     vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
//!     Body {
//!         target: a,
//!         target_idx: vec![IdxExpr::dim(2, 0), IdxExpr::dim(2, 1)],
//!         rhs: Expr::mul(
//!             Expr::load(a, vec![IdxExpr::dim(2, 0), IdxExpr::dim(2, 1)]),
//!             Expr::Const(0.5),
//!         ),
//!     },
//! )?;
//! assert_eq!(p.stmt(s0).name(), "S0");
//! assert!(!p.is_live_out(s0));
//! # let _ = c;
//! # Ok::<(), tilefuse_pir::Error>(())
//! ```

mod deps;
mod error;
mod expr;
mod graph;
mod program;

pub use deps::{compute_dependences, flow_edges, DepKind, Dependence};
pub use error::{Error, Result};
pub use expr::{ArrayId, BinOp, Body, Expr, IdxExpr, UnOp};
pub use graph::DepGraph;
pub use program::{ArrayDecl, ArrayKind, Extent, Program, SchedTerm, Statement, StmtId};
