//! Error type for the polyhedral IR.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from program construction and dependence analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Program construction failed (bad arity, duplicate name, ...).
    Build(String),
    /// An underlying set/map operation failed.
    Presburger(tilefuse_presburger::Error),
}

impl Error {
    /// Whether this error wraps a cooperative budget-exhaustion signal
    /// from the resource governor.
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        self.budget_info().is_some()
    }

    /// The `(limit, phase)` pair of a wrapped budget-exhaustion error.
    #[must_use]
    pub fn budget_info(&self) -> Option<(&'static str, &'static str)> {
        match self {
            Error::Presburger(e) => e.budget_info(),
            Error::Build(_) => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Build(msg) => write!(f, "program construction error: {msg}"),
            Error::Presburger(e) => write!(f, "set operation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Presburger(e) => Some(e),
            Error::Build(_) => None,
        }
    }
}

impl From<tilefuse_presburger::Error> for Error {
    fn from(e: tilefuse_presburger::Error) -> Self {
        Error::Presburger(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::Build("oops".into());
        assert_eq!(e.to_string(), "program construction error: oops");
        assert!(std::error::Error::source(&e).is_none());
        let p = Error::from(tilefuse_presburger::Error::Overflow("mul"));
        assert!(p.to_string().contains("overflow"));
        assert!(std::error::Error::source(&p).is_some());
    }
}
