//! Dependence analysis: which statement instances must stay ordered.
//!
//! Memory-based dependences are computed by composing access relations
//! through arrays and restricting to pairs ordered by the initial schedule:
//!
//! ```text
//! flow(S → T, A) = (W_S ∘ R_T⁻¹) ∩ prec(S, T)
//! ```
//!
//! Memory-based (rather than value-based/last-writer) dependences are a
//! safe over-approximation; every schedule that respects them is legal.

use crate::error::Result;
use crate::expr::ArrayId;
use crate::program::{Program, StmtId};
use tilefuse_presburger::Map;

/// The classical dependence kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write (true/producer-consumer dependence).
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
}

/// One dependence relation between two statements through one array.
#[derive(Debug, Clone)]
pub struct Dependence {
    /// Source statement (executes first).
    pub src: StmtId,
    /// Destination statement (executes later).
    pub dst: StmtId,
    /// The array carrying the dependence.
    pub array: ArrayId,
    /// Flow, anti or output.
    pub kind: DepKind,
    /// `{ src[i] -> dst[j] }` pairs that must keep their order.
    pub map: Map,
}

/// Computes all memory-based dependences of `program`.
///
/// The result is memoized on the program (the analysis depends only on its
/// structure), so scheduling the same program repeatedly — e.g. once per
/// fusion heuristic when comparing versions — pays for the presburger work
/// once. Mutating the program invalidates the memo.
///
/// # Errors
/// Returns an error if a set operation fails (overflow).
pub fn compute_dependences(program: &Program) -> Result<Vec<Dependence>> {
    if let Some(memo) = program.deps_memo() {
        return Ok(memo.as_ref().clone());
    }
    let out = compute_dependences_uncached(program)?;
    program.set_deps_memo(std::sync::Arc::new(out.clone()));
    Ok(out)
}

fn compute_dependences_uncached(program: &Program) -> Result<Vec<Dependence>> {
    let mut out = Vec::new();
    let n = program.stmts().len();
    for si in 0..n {
        let s = StmtId(si);
        let w_s = program.write_access(s)?;
        let s_writes = program.stmt(s).body().target;
        for ti in 0..n {
            let t = StmtId(ti);
            let prec = program.prec_map(s, t)?;
            if prec.is_empty()? {
                continue;
            }
            // Flow: s writes A, t reads A.
            if let Some(r_t) = program.read_access_to(t, s_writes)? {
                let rel = w_s.compose(&r_t.reverse())?.intersect(&prec)?;
                if !rel.is_empty()? {
                    out.push(Dependence {
                        src: s,
                        dst: t,
                        array: s_writes,
                        kind: DepKind::Flow,
                        map: rel,
                    });
                }
            }
            // Output: s writes A, t writes A.
            let t_writes = program.stmt(t).body().target;
            if t_writes == s_writes {
                let w_t = program.write_access(t)?;
                let rel = w_s.compose(&w_t.reverse())?.intersect(&prec)?;
                if !rel.is_empty()? {
                    out.push(Dependence {
                        src: s,
                        dst: t,
                        array: s_writes,
                        kind: DepKind::Output,
                        map: rel,
                    });
                }
            }
            // Anti: s reads A, t writes A.
            if let Some(r_s) = program.read_access_to(s, t_writes)? {
                let w_t = program.write_access(t)?;
                let rel = r_s.compose(&w_t.reverse())?.intersect(&prec)?;
                if !rel.is_empty()? {
                    out.push(Dependence {
                        src: s,
                        dst: t,
                        array: t_writes,
                        kind: DepKind::Anti,
                        map: rel,
                    });
                }
            }
        }
    }
    Ok(out)
}

/// Filters dependences to producer→consumer (flow) edges between *distinct*
/// statements — the edges that matter for fusion grouping.
pub fn flow_edges(deps: &[Dependence]) -> Vec<&Dependence> {
    deps.iter()
        .filter(|d| d.kind == DepKind::Flow && d.src != d.dst)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Body, Expr, IdxExpr};
    use crate::program::{ArrayKind, SchedTerm};

    /// S0: A[i] = i ; S1: B[i] = A[i] + A[i+1]; reduction S2: c[0] += B[i].
    fn pipeline() -> Program {
        let mut p = Program::new("t").with_param("N", 8);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -1).into()], ArrayKind::Temp);
        let c = p.add_array("C", vec![1.into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 1 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(1)]),
                ),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[i] : 0 <= i < N - 1 }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: c,
                target_idx: vec![IdxExpr::constant(1, 0)],
                rhs: Expr::add(
                    Expr::load(c, vec![IdxExpr::constant(1, 0)]),
                    Expr::load(b, vec![IdxExpr::dim(1, 0)]),
                ),
            },
        )
        .unwrap();
        p
    }

    #[test]
    fn flow_dependences_found() {
        let p = pipeline();
        let deps = compute_dependences(&p).unwrap();
        let flows: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .map(|d| (d.src.0, d.dst.0))
            .collect();
        assert!(flows.contains(&(0, 1)), "S0 -> S1 missing: {flows:?}");
        assert!(flows.contains(&(1, 2)), "S1 -> S2 missing: {flows:?}");
        // Reduction: S2 depends on itself through C.
        assert!(flows.contains(&(2, 2)), "S2 -> S2 missing: {flows:?}");
    }

    #[test]
    fn flow_relation_pairs_are_exact() {
        let p = pipeline();
        let deps = compute_dependences(&p).unwrap();
        let d01 = deps
            .iter()
            .find(|d| d.kind == DepKind::Flow && d.src == StmtId(0) && d.dst == StmtId(1))
            .unwrap();
        // S1[i] reads A[i] and A[i+1], produced by S0[i] and S0[i+1].
        // N = 8: S0[3] -> S1[3] (A[3]) and S0[3] -> S1[2] (A[3]).
        assert!(d01.map.contains_pair(&[8, 3, 3]).unwrap());
        assert!(d01.map.contains_pair(&[8, 3, 2]).unwrap());
        assert!(!d01.map.contains_pair(&[8, 3, 4]).unwrap());
    }

    #[test]
    fn output_dependence_on_reduction() {
        let p = pipeline();
        let deps = compute_dependences(&p).unwrap();
        assert!(deps
            .iter()
            .any(|d| d.kind == DepKind::Output && d.src == StmtId(2) && d.dst == StmtId(2)));
        // Anti dependence S2 -> S2 as well (reads then writes C[0]).
        assert!(deps
            .iter()
            .any(|d| d.kind == DepKind::Anti && d.src == StmtId(2) && d.dst == StmtId(2)));
    }

    #[test]
    fn no_spurious_backward_dependences() {
        let p = pipeline();
        let deps = compute_dependences(&p).unwrap();
        assert!(!deps.iter().any(|d| d.src.0 > d.dst.0), "{:?}", deps.len());
    }

    #[test]
    fn deps_memo_is_invalidated_by_mutation() {
        let mut p = pipeline();
        let before = compute_dependences(&p).unwrap();
        // Memoized: same structure, same answer.
        let again = compute_dependences(&p).unwrap();
        assert_eq!(before.len(), again.len());
        // Appending a consumer of B must surface new dependences.
        let b = p.array_named("B").unwrap().id();
        let d = p.add_array("D", vec![("N", -1).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S3[i] : 0 <= i < N - 1 }",
            vec![SchedTerm::Cst(3), SchedTerm::Var(0)],
            Body {
                target: d,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::load(b, vec![IdxExpr::dim(1, 0)]),
            },
        )
        .unwrap();
        let after = compute_dependences(&p).unwrap();
        assert!(
            after.len() > before.len(),
            "{} vs {}",
            after.len(),
            before.len()
        );
        assert!(after
            .iter()
            .any(|dep| dep.kind == DepKind::Flow && dep.src == StmtId(1) && dep.dst == StmtId(3)));
    }

    #[test]
    fn flow_edges_filters() {
        let p = pipeline();
        let deps = compute_dependences(&p).unwrap();
        let edges = flow_edges(&deps);
        assert!(edges
            .iter()
            .all(|d| d.kind == DepKind::Flow && d.src != d.dst));
        assert_eq!(edges.len(), 2);
    }
}
