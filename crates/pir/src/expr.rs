//! Executable statement bodies: affine index expressions and scalar
//! expression trees.
//!
//! Statement bodies serve two masters: the *interpreter* (in `codegen`)
//! evaluates them against real buffers to validate transformed schedules,
//! and the *dependence analysis* (in [`crate::deps`]) derives access
//! relations from the same [`IdxExpr`]s, so the two can never drift apart.

use std::fmt;

/// An affine index expression over a statement's iteration dimensions and
/// the program parameters: `Σ c_d · dim_d + Σ c_p · param_p + c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxExpr {
    dim_coeffs: Vec<i64>,
    param_terms: Vec<(String, i64)>,
    constant: i64,
}

impl IdxExpr {
    /// The constant index `c` for a statement with `n_dims` dimensions.
    pub fn constant(n_dims: usize, c: i64) -> Self {
        IdxExpr {
            dim_coeffs: vec![0; n_dims],
            param_terms: Vec::new(),
            constant: c,
        }
    }

    /// The index `dim_d` for a statement with `n_dims` dimensions.
    ///
    /// # Panics
    /// Panics if `d >= n_dims`.
    pub fn dim(n_dims: usize, d: usize) -> Self {
        assert!(d < n_dims, "dim {d} out of range for {n_dims} dims");
        let mut e = Self::constant(n_dims, 0);
        e.dim_coeffs[d] = 1;
        e
    }

    /// The index `param + offset`.
    pub fn param(n_dims: usize, name: &str, offset: i64) -> Self {
        IdxExpr {
            dim_coeffs: vec![0; n_dims],
            param_terms: vec![(name.to_owned(), 1)],
            constant: offset,
        }
    }

    /// Adds another index expression.
    ///
    /// # Panics
    /// Panics if the dimension counts differ.
    #[must_use]
    pub fn plus(&self, other: &IdxExpr) -> IdxExpr {
        assert_eq!(self.dim_coeffs.len(), other.dim_coeffs.len());
        let mut out = self.clone();
        for (a, b) in out.dim_coeffs.iter_mut().zip(&other.dim_coeffs) {
            *a += b;
        }
        for (n, c) in &other.param_terms {
            if let Some(t) = out.param_terms.iter_mut().find(|(m, _)| m == n) {
                t.1 += c;
            } else {
                out.param_terms.push((n.clone(), *c));
            }
        }
        out.constant += other.constant;
        out
    }

    /// Adds a constant offset.
    #[must_use]
    pub fn offset(&self, c: i64) -> IdxExpr {
        let mut out = self.clone();
        out.constant += c;
        out
    }

    /// Scales by a constant.
    #[must_use]
    pub fn scale(&self, k: i64) -> IdxExpr {
        IdxExpr {
            dim_coeffs: self.dim_coeffs.iter().map(|c| c * k).collect(),
            param_terms: self
                .param_terms
                .iter()
                .map(|(n, c)| (n.clone(), c * k))
                .collect(),
            constant: self.constant * k,
        }
    }

    /// Number of statement dimensions this index is defined over.
    pub fn n_dims(&self) -> usize {
        self.dim_coeffs.len()
    }

    /// Coefficient of dimension `d`.
    pub fn dim_coeff(&self, d: usize) -> i64 {
        self.dim_coeffs[d]
    }

    /// Parameter terms `(name, coeff)`.
    pub fn param_terms(&self) -> &[(String, i64)] {
        &self.param_terms
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Evaluates at concrete iteration-dimension values, resolving
    /// parameters through `params`.
    ///
    /// # Panics
    /// Panics if `dims` has the wrong length or a parameter is missing.
    pub fn eval(&self, dims: &[i64], params: &dyn Fn(&str) -> i64) -> i64 {
        assert_eq!(dims.len(), self.dim_coeffs.len(), "wrong dim count");
        let mut acc = self.constant;
        for (c, v) in self.dim_coeffs.iter().zip(dims) {
            acc += c * v;
        }
        for (n, c) in &self.param_terms {
            acc += c * params(n);
        }
        acc
    }
}

impl fmt::Display for IdxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, &c) in self.dim_coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            write_term(f, &mut first, c, &format!("i{d}"))?;
        }
        for (n, c) in &self.param_terms {
            if *c == 0 {
                continue;
            }
            write_term(f, &mut first, *c, n)?;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, first: &mut bool, c: i64, v: &str) -> fmt::Result {
    if *first {
        match c {
            1 => write!(f, "{v}")?,
            -1 => write!(f, "-{v}")?,
            _ => write!(f, "{c}{v}")?,
        }
        *first = false;
    } else if c > 0 {
        if c == 1 {
            write!(f, " + {v}")?;
        } else {
            write!(f, " + {c}{v}")?;
        }
    } else if c == -1 {
        write!(f, " - {v}")?;
    } else {
        write!(f, " - {}{v}", -c)?;
    }
    Ok(())
}

/// Identifies an array declared in a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Unary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// `max(x, 0)` — the ReLU activation.
    Relu,
    /// Exponential.
    Exp,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Reciprocal `1/x`.
    Recip,
}

/// A scalar expression tree evaluated per statement instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Load `array[idx...]`.
    Load(ArrayId, Vec<IdxExpr>),
    /// A floating-point literal.
    Const(f64),
    /// The value of iteration dimension `d` (as a float).
    Iter(usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // DSL constructors, deliberately named
impl Expr {
    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(a), Box::new(b))
    }

    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(a), Box::new(b))
    }

    /// `relu(a)`.
    pub fn relu(a: Expr) -> Expr {
        Expr::Un(UnOp::Relu, Box::new(a))
    }

    /// `load(array, indices)`.
    pub fn load(array: ArrayId, idx: Vec<IdxExpr>) -> Expr {
        Expr::Load(array, idx)
    }

    /// Collects every `(array, indices)` load in the tree.
    pub fn loads(&self) -> Vec<(ArrayId, &[IdxExpr])> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<(ArrayId, &'a [IdxExpr])>) {
        match self {
            Expr::Load(a, idx) => out.push((*a, idx.as_slice())),
            Expr::Bin(_, l, r) => {
                l.collect_loads(out);
                r.collect_loads(out);
            }
            Expr::Un(_, e) => e.collect_loads(out),
            Expr::Const(_) | Expr::Iter(_) => {}
        }
    }

    /// Evaluates the tree. `load` resolves array reads.
    ///
    /// # Panics
    /// May panic if an [`IdxExpr`] has the wrong arity for `dims`.
    pub fn eval(
        &self,
        dims: &[i64],
        params: &dyn Fn(&str) -> i64,
        load: &mut dyn FnMut(ArrayId, &[i64]) -> f64,
    ) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Iter(d) => dims[*d] as f64,
            Expr::Load(a, idx) => {
                let coords: Vec<i64> = idx.iter().map(|e| e.eval(dims, params)).collect();
                load(*a, &coords)
            }
            Expr::Bin(op, l, r) => {
                let x = l.eval(dims, params, load);
                let y = r.eval(dims, params, load);
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Max => x.max(y),
                    BinOp::Min => x.min(y),
                }
            }
            Expr::Un(op, e) => {
                let x = e.eval(dims, params, load);
                match op {
                    UnOp::Neg => -x,
                    UnOp::Relu => x.max(0.0),
                    UnOp::Exp => x.exp(),
                    UnOp::Sqrt => x.sqrt(),
                    UnOp::Abs => x.abs(),
                    UnOp::Recip => 1.0 / x,
                }
            }
        }
    }

    /// Number of scalar operations in the tree (loads count as zero; used
    /// by the cost model).
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Const(_) | Expr::Iter(_) | Expr::Load(..) => 0,
            Expr::Bin(_, l, r) => 1 + l.op_count() + r.op_count(),
            Expr::Un(_, e) => 1 + e.op_count(),
        }
    }
}

/// The effect of one statement instance: `target[idx...] = rhs`.
///
/// Reductions are expressed by making `rhs` read `target` (e.g.
/// `C[h,w] = C[h,w] + ...`), which also yields the correct dependences.
#[derive(Debug, Clone, PartialEq)]
pub struct Body {
    /// The array written.
    pub target: ArrayId,
    /// Index expressions of the write.
    pub target_idx: Vec<IdxExpr>,
    /// The value stored.
    pub rhs: Expr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_expr_eval() {
        // h + kh - 1 with params KH
        let e = IdxExpr::dim(4, 0).plus(&IdxExpr::dim(4, 2)).offset(-1);
        assert_eq!(e.eval(&[5, 0, 2, 0], &|_| unreachable!()), 6);
        let p = IdxExpr::param(1, "W", -1);
        assert_eq!(p.eval(&[0], &|n| if n == "W" { 10 } else { 0 }), 9);
    }

    #[test]
    fn idx_expr_algebra() {
        let e = IdxExpr::dim(2, 0).scale(2).plus(&IdxExpr::constant(2, 3));
        assert_eq!(e.eval(&[4, 0], &|_| 0), 11);
        assert_eq!(e.dim_coeff(0), 2);
        assert_eq!(e.constant_term(), 3);
        assert_eq!(e.n_dims(), 2);
    }

    #[test]
    fn idx_expr_display() {
        let e = IdxExpr::dim(2, 0)
            .plus(&IdxExpr::dim(2, 1).scale(-1))
            .offset(3);
        assert_eq!(e.to_string(), "i0 - i1 + 3");
        assert_eq!(IdxExpr::constant(2, 0).to_string(), "0");
    }

    #[test]
    fn expr_eval_conv_like() {
        // A[h+kh] * B[kh]
        let a = ArrayId(0);
        let b = ArrayId(1);
        let e = Expr::mul(
            Expr::load(a, vec![IdxExpr::dim(2, 0).plus(&IdxExpr::dim(2, 1))]),
            Expr::load(b, vec![IdxExpr::dim(2, 1)]),
        );
        let v = e.eval(&[3, 1], &|_| 0, &mut |arr, coords| {
            if arr == a {
                coords[0] as f64
            } else {
                2.0
            }
        });
        assert_eq!(v, 8.0);
        assert_eq!(e.op_count(), 1);
    }

    #[test]
    fn expr_unops() {
        let x = Expr::Const(-3.0);
        assert_eq!(
            Expr::relu(x.clone()).eval(&[], &|_| 0, &mut |_, _| 0.0),
            0.0
        );
        assert_eq!(
            Expr::Un(UnOp::Abs, Box::new(x.clone())).eval(&[], &|_| 0, &mut |_, _| 0.0),
            3.0
        );
        assert_eq!(
            Expr::Un(UnOp::Neg, Box::new(x)).eval(&[], &|_| 0, &mut |_, _| 0.0),
            3.0
        );
        let four = Expr::Const(4.0);
        assert_eq!(
            Expr::Un(UnOp::Sqrt, Box::new(four.clone())).eval(&[], &|_| 0, &mut |_, _| 0.0),
            2.0
        );
        assert_eq!(
            Expr::Un(UnOp::Recip, Box::new(four)).eval(&[], &|_| 0, &mut |_, _| 0.0),
            0.25
        );
    }

    #[test]
    fn expr_binops() {
        let two = || Expr::Const(2.0);
        let three = || Expr::Const(3.0);
        let ev = |e: Expr| e.eval(&[], &|_| 0, &mut |_, _| 0.0);
        assert_eq!(ev(Expr::add(two(), three())), 5.0);
        assert_eq!(ev(Expr::sub(two(), three())), -1.0);
        assert_eq!(ev(Expr::div(three(), two())), 1.5);
        assert_eq!(ev(Expr::max(two(), three())), 3.0);
        assert_eq!(ev(Expr::min(two(), three())), 2.0);
    }

    #[test]
    fn loads_collects_all() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let e = Expr::add(
            Expr::load(a, vec![IdxExpr::dim(1, 0)]),
            Expr::relu(Expr::load(b, vec![IdxExpr::dim(1, 0)])),
        );
        let ls = e.loads();
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0].0, a);
        assert_eq!(ls[1].0, b);
    }

    #[test]
    fn iter_expr_reads_dim() {
        let e = Expr::Iter(1);
        assert_eq!(e.eval(&[7, 9], &|_| 0, &mut |_, _| 0.0), 9.0);
    }
}
