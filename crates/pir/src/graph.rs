//! The statement-level dependence graph.
//!
//! Fusion heuristics cluster the strongly connected components of this
//! graph; its topological order gives the legal sequence of fusion groups.

use crate::deps::Dependence;
use crate::program::StmtId;
use std::collections::BTreeSet;

/// A directed graph over statements, one node per statement.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl DepGraph {
    /// Builds the graph for `n` statements from dependences (self-edges are
    /// kept; parallel edges collapse).
    pub fn new(n: usize, deps: &[Dependence]) -> Self {
        let edges = deps.iter().map(|d| (d.src.0, d.dst.0)).collect();
        DepGraph { n, edges }
    }

    /// Builds the graph from raw edges.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        DepGraph {
            n,
            edges: edges.into_iter().collect(),
        }
    }

    /// Number of statements.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Whether the edge `src -> dst` exists.
    pub fn has_edge(&self, src: StmtId, dst: StmtId) -> bool {
        self.edges.contains(&(src.0, dst.0))
    }

    /// Direct predecessors of `v` (excluding `v` itself).
    pub fn preds(&self, v: StmtId) -> Vec<StmtId> {
        self.edges
            .iter()
            .filter(|(s, d)| *d == v.0 && *s != v.0)
            .map(|(s, _)| StmtId(*s))
            .collect()
    }

    /// Direct successors of `v` (excluding `v` itself).
    pub fn succs(&self, v: StmtId) -> Vec<StmtId> {
        self.edges
            .iter()
            .filter(|(s, d)| *s == v.0 && *d != v.0)
            .map(|(_, d)| StmtId(*d))
            .collect()
    }

    /// All statements transitively reachable from `v` (excluding `v` unless
    /// it lies on a cycle through itself).
    pub fn reachable(&self, v: StmtId) -> BTreeSet<StmtId> {
        let mut seen = BTreeSet::new();
        let mut stack = self.succs(v);
        while let Some(u) = stack.pop() {
            if seen.insert(u) {
                stack.extend(self.succs(u));
            }
        }
        seen
    }

    /// Strongly connected components in reverse topological order
    /// (Tarjan). Each component is sorted by statement index.
    pub fn sccs(&self) -> Vec<Vec<StmtId>> {
        let mut state = Tarjan {
            graph: self,
            index: vec![None; self.n],
            low: vec![0; self.n],
            on_stack: vec![false; self.n],
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for v in 0..self.n {
            if state.index[v].is_none() {
                state.strongconnect(v);
            }
        }
        for c in &mut state.out {
            c.sort();
        }
        state.out
    }

    /// Strongly connected components in topological order (sources first).
    /// Independent components are ordered by their smallest statement id,
    /// so the result follows the original program order where the
    /// dependences allow.
    pub fn sccs_topological(&self) -> Vec<Vec<StmtId>> {
        let sccs = self.sccs();
        let comp_of: Vec<usize> = {
            let mut m = vec![0; self.n];
            for (c, comp) in sccs.iter().enumerate() {
                for s in comp {
                    m[s.0] = c;
                }
            }
            m
        };
        let k = sccs.len();
        let mut indeg = vec![0usize; k];
        let mut dag: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &(s, d) in &self.edges {
            let (cs, cd) = (comp_of[s], comp_of[d]);
            if cs != cd && dag.insert((cs, cd)) {
                indeg[cd] += 1;
            }
        }
        // Kahn with a min-heap keyed by the component's smallest stmt id.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = (0..k)
            .filter(|&c| indeg[c] == 0)
            .map(|c| std::cmp::Reverse((sccs[c][0].0, c)))
            .collect();
        let mut order = Vec::with_capacity(k);
        while let Some(std::cmp::Reverse((_, c))) = ready.pop() {
            order.push(sccs[c].clone());
            for &(cs, cd) in dag.iter().filter(|(cs, _)| *cs == c) {
                debug_assert_eq!(cs, c);
                indeg[cd] -= 1;
                if indeg[cd] == 0 {
                    ready.push(std::cmp::Reverse((sccs[cd][0].0, cd)));
                }
            }
        }
        debug_assert_eq!(order.len(), k);
        order
    }

    /// Whether grouping `group` (a set of statements) is *convex*: no path
    /// from inside the group leaves it and comes back. Non-convex groups
    /// cannot be fused without also fusing the statements in between.
    pub fn is_convex(&self, group: &BTreeSet<StmtId>) -> bool {
        for &g in group {
            for out in self.succs(g) {
                if group.contains(&out) {
                    continue;
                }
                // Path back into the group?
                let back = self.reachable(out);
                if back.iter().any(|r| group.contains(r)) {
                    return false;
                }
            }
        }
        true
    }
}

struct Tarjan<'a> {
    graph: &'a DepGraph,
    index: Vec<Option<usize>>,
    low: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next: usize,
    out: Vec<Vec<StmtId>>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, v: usize) {
        self.index[v] = Some(self.next);
        self.low[v] = self.next;
        self.next += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
        let succs: Vec<usize> = self
            .graph
            .edges
            .iter()
            .filter(|(s, _)| *s == v)
            .map(|(_, d)| *d)
            .collect();
        for w in succs {
            if self.index[w].is_none() {
                self.strongconnect(w);
                self.low[v] = self.low[v].min(self.low[w]);
            } else if self.on_stack[w] {
                self.low[v] = self.low[v].min(self.index[w].unwrap());
            }
        }
        if self.low[v] == self.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = self.stack.pop().unwrap();
                self.on_stack[w] = false;
                comp.push(StmtId(w));
                if w == v {
                    break;
                }
            }
            self.out.push(comp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_graph_topology() {
        let g = DepGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(g.has_edge(StmtId(0), StmtId(1)));
        assert!(!g.has_edge(StmtId(1), StmtId(0)));
        assert_eq!(g.succs(StmtId(0)), vec![StmtId(1)]);
        assert_eq!(g.preds(StmtId(2)), vec![StmtId(1)]);
        let topo = g.sccs_topological();
        assert_eq!(
            topo,
            vec![vec![StmtId(0)], vec![StmtId(1)], vec![StmtId(2)]]
        );
    }

    #[test]
    fn cycle_collapses_to_one_scc() {
        let g = DepGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let topo = g.sccs_topological();
        assert_eq!(topo.len(), 2);
        assert_eq!(topo[0], vec![StmtId(0), StmtId(1)]);
        assert_eq!(topo[1], vec![StmtId(2)]);
    }

    #[test]
    fn self_loop_is_singleton_scc() {
        let g = DepGraph::from_edges(2, [(0, 0), (0, 1)]);
        let topo = g.sccs_topological();
        assert_eq!(topo.len(), 2);
        assert_eq!(g.n_nodes(), 2);
    }

    #[test]
    fn reachable_transitive() {
        let g = DepGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = g.reachable(StmtId(0));
        assert_eq!(r, [StmtId(1), StmtId(2), StmtId(3)].into_iter().collect());
        assert!(g.reachable(StmtId(3)).is_empty());
    }

    #[test]
    fn convexity_detects_bypass_paths() {
        // 0 -> 1 -> 2 and 0 -> 2: grouping {0, 2} is non-convex (path
        // through 1 leaves and re-enters).
        let g = DepGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let bad: BTreeSet<StmtId> = [StmtId(0), StmtId(2)].into_iter().collect();
        assert!(!g.is_convex(&bad));
        let ok: BTreeSet<StmtId> = [StmtId(0), StmtId(1), StmtId(2)].into_iter().collect();
        assert!(g.is_convex(&ok));
        let pair: BTreeSet<StmtId> = [StmtId(1), StmtId(2)].into_iter().collect();
        assert!(g.is_convex(&pair));
    }

    #[test]
    fn diamond_is_two_middle_components() {
        let g = DepGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let topo = g.sccs_topological();
        assert_eq!(topo.len(), 4);
        assert_eq!(topo[0], vec![StmtId(0)]);
        assert_eq!(topo[3], vec![StmtId(3)]);
    }
}
