//! Programs: arrays, statements, iteration domains and initial schedules.

use std::sync::{Arc, OnceLock};

use crate::deps::Dependence;
use crate::error::{Error, Result};
use crate::expr::{ArrayId, Body, IdxExpr};
use tilefuse_presburger::{AffExpr, Map, Set, Space, Tuple};

/// Identifies a statement within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub usize);

/// How an array participates in the program's dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Read-only program input.
    Input,
    /// Intermediate values, dead after the program.
    Temp,
    /// Live-out: referenced after the program finishes.
    Output,
}

/// A symbolic array extent: `Σ c_p · param + c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extent {
    terms: Vec<(String, i64)>,
    constant: i64,
}

impl Extent {
    /// A constant extent.
    pub fn fixed(c: i64) -> Self {
        Extent {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The extent `param + offset`.
    pub fn param(name: &str, offset: i64) -> Self {
        Extent {
            terms: vec![(name.to_owned(), 1)],
            constant: offset,
        }
    }

    /// Evaluates with concrete parameter values.
    pub fn eval(&self, params: &dyn Fn(&str) -> i64) -> i64 {
        self.terms.iter().map(|(n, c)| c * params(n)).sum::<i64>() + self.constant
    }

    /// The symbolic terms `(parameter name, coefficient)`.
    pub fn terms(&self) -> &[(String, i64)] {
        &self.terms
    }
}

impl From<i64> for Extent {
    fn from(c: i64) -> Self {
        Extent::fixed(c)
    }
}

impl From<&str> for Extent {
    fn from(name: &str) -> Self {
        Extent::param(name, 0)
    }
}

impl From<(&str, i64)> for Extent {
    fn from((name, offset): (&str, i64)) -> Self {
        Extent::param(name, offset)
    }
}

/// An array declaration.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    id: ArrayId,
    name: String,
    extents: Vec<Extent>,
    kind: ArrayKind,
    elem_bytes: u32,
}

impl ArrayDecl {
    /// The array's id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// The array's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.extents.len()
    }

    /// The symbolic extents.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// The dataflow kind.
    pub fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// Element size in bytes (default 4, i.e. `f32`).
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Concrete shape under `params`.
    pub fn shape(&self, params: &dyn Fn(&str) -> i64) -> Vec<i64> {
        self.extents.iter().map(|e| e.eval(params)).collect()
    }

    /// Total element count under `params`.
    pub fn len(&self, params: &dyn Fn(&str) -> i64) -> i64 {
        self.shape(params).iter().product()
    }

    /// Whether the array has zero elements under `params`.
    pub fn is_empty(&self, params: &dyn Fn(&str) -> i64) -> bool {
        self.len(params) == 0
    }
}

/// One term of a multi-dimensional initial schedule: a scalar level or an
/// iteration variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedTerm {
    /// A constant (sequence) dimension.
    Cst(i64),
    /// Iteration dimension `d` of the statement.
    Var(usize),
}

/// A statement: iteration domain, initial schedule position, and body.
#[derive(Debug, Clone)]
pub struct Statement {
    id: StmtId,
    name: String,
    domain: Set,
    sched: Vec<SchedTerm>,
    body: Body,
    dynamic: bool,
    work_scale: f64,
}

impl Statement {
    /// The statement's id.
    pub fn id(&self) -> StmtId {
        self.id
    }

    /// The statement's name (its domain tuple name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The iteration domain.
    pub fn domain(&self) -> &Set {
        &self.domain
    }

    /// Number of iteration dimensions.
    pub fn n_dims(&self) -> usize {
        self.domain.space().n_dim()
    }

    /// The initial multi-dimensional schedule (unpadded).
    pub fn sched(&self) -> &[SchedTerm] {
        &self.sched
    }

    /// The executable body.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Whether the statement contains dynamic control flow (e.g. a `while`
    /// loop) that restricts what baseline schedulers may do with it.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Average dynamic work multiplier (models data-dependent trip counts;
    /// 1.0 for static statements).
    pub fn work_scale(&self) -> f64 {
        self.work_scale
    }
}

/// A static-control program: parameters, arrays and statements in their
/// original (pre-optimization) execution order.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    params: Vec<(String, i64)>,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
    /// Memoized result of [`crate::compute_dependences`]: the analysis is
    /// pure in the program structure, so it is computed once and shared by
    /// every schedule version derived from this program. Invalidated by
    /// every `&mut self` method; clones inherit the memo (same structure).
    deps_memo: OnceLock<Arc<Vec<Dependence>>>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: &str) -> Self {
        Program {
            name: name.to_owned(),
            params: Vec::new(),
            arrays: Vec::new(),
            stmts: Vec::new(),
            deps_memo: OnceLock::new(),
        }
    }

    pub(crate) fn deps_memo(&self) -> Option<&Arc<Vec<Dependence>>> {
        self.deps_memo.get()
    }

    pub(crate) fn set_deps_memo(&self, deps: Arc<Vec<Dependence>>) {
        let _ = self.deps_memo.set(deps);
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a parameter with a default value; returns `self` for
    /// chaining.
    #[must_use]
    pub fn with_param(mut self, name: &str, default: i64) -> Self {
        self.params.push((name.to_owned(), default));
        self.deps_memo = OnceLock::new();
        self
    }

    /// The parameters and their default values.
    pub fn params(&self) -> &[(String, i64)] {
        &self.params
    }

    /// Default value of parameter `name`.
    ///
    /// # Errors
    /// Returns an error if the parameter is not declared.
    pub fn param_default(&self, name: &str) -> Result<i64> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| Error::Build(format!("unknown parameter {name}")))
    }

    /// A resolver closure over the default parameter values.
    ///
    /// Undeclared names resolve to 0. They cannot occur for programs built
    /// through [`Program::add_array`] / [`Program::add_stmt`], which reject
    /// references to undeclared parameters at construction time; use
    /// [`Program::param_default`] directly when a typed error is needed.
    pub fn default_binding(&self) -> impl Fn(&str) -> i64 + '_ {
        move |name| self.param_default(name).unwrap_or(0)
    }

    /// Parameter values in declaration order (defaults overridden by
    /// `overrides`).
    pub fn param_values(&self, overrides: &[(&str, i64)]) -> Vec<i64> {
        self.params
            .iter()
            .map(|(n, v)| {
                overrides
                    .iter()
                    .find(|(on, _)| on == n)
                    .map(|(_, ov)| *ov)
                    .unwrap_or(*v)
            })
            .collect()
    }

    /// Declares an array.
    pub fn add_array(&mut self, name: &str, extents: Vec<Extent>, kind: ArrayKind) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        self.arrays.push(ArrayDecl {
            id,
            name: name.to_owned(),
            extents,
            kind,
            elem_bytes: 4,
        });
        self.deps_memo = OnceLock::new();
        id
    }

    /// The array declarations.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array by id.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Looks up an array by name.
    pub fn array_named(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Adds a statement.
    ///
    /// `domain` is parsed with the program's parameter list prepended, so
    /// write it without a `[..] ->` prefix, e.g.
    /// `"{ S0[h,w] : 0 <= h < H and 0 <= w < W }"`. The tuple name becomes
    /// the statement name. `sched` is the initial multi-dimensional affine
    /// schedule (see the running example: `S1(h,w) -> (1,h,w,0,0,0)` is
    /// `[Cst(1), Var(0), Var(1), Cst(0), Cst(0), Cst(0)]`).
    ///
    /// # Errors
    /// Returns an error if the domain fails to parse, the tuple is
    /// anonymous, a schedule term references a missing dimension, or the
    /// body indices have the wrong arity.
    pub fn add_stmt(&mut self, domain: &str, sched: Vec<SchedTerm>, body: Body) -> Result<StmtId> {
        self.add_stmt_full(domain, sched, body, false, 1.0)
    }

    /// [`Program::add_stmt`] with dynamic-control-flow attributes.
    ///
    /// # Errors
    /// See [`Program::add_stmt`].
    pub fn add_stmt_full(
        &mut self,
        domain: &str,
        sched: Vec<SchedTerm>,
        body: Body,
        dynamic: bool,
        work_scale: f64,
    ) -> Result<StmtId> {
        self.deps_memo = OnceLock::new();
        let text = if self.params.is_empty() {
            domain.to_owned()
        } else {
            let names: Vec<&str> = self.params.iter().map(|(n, _)| n.as_str()).collect();
            format!("[{}] -> {}", names.join(", "), domain)
        };
        let domain: Set = text.parse()?;
        let name = domain
            .space()
            .tuple()
            .name()
            .ok_or(Error::Build(
                "statement domains must have a named tuple".into(),
            ))?
            .to_owned();
        if self.stmts.iter().any(|s| s.name == name) {
            return Err(Error::Build(format!("duplicate statement name {name}")));
        }
        let n_dims = domain.space().n_dim();
        for t in &sched {
            if let SchedTerm::Var(d) = t {
                if *d >= n_dims {
                    return Err(Error::Build(format!(
                        "schedule references dim {d} but {name} has {n_dims} dims"
                    )));
                }
            }
        }
        let check_idx = |arr: ArrayId, idx: &[IdxExpr]| -> Result<()> {
            let decl = &self.arrays[arr.0];
            if idx.len() != decl.n_dims() {
                return Err(Error::Build(format!(
                    "access to {} has {} indices, array has {} dims",
                    decl.name,
                    idx.len(),
                    decl.n_dims()
                )));
            }
            for e in idx {
                if e.n_dims() != n_dims {
                    return Err(Error::Build(format!(
                        "index expression over {} dims used in statement {name} with {n_dims} dims",
                        e.n_dims()
                    )));
                }
                for (pname, _) in e.param_terms() {
                    if !self.params.iter().any(|(n, _)| n == pname) {
                        return Err(Error::Build(format!(
                            "unknown parameter {pname} in index of statement {name}"
                        )));
                    }
                }
            }
            Ok(())
        };
        check_idx(body.target, &body.target_idx)?;
        for (arr, idx) in body.rhs.loads() {
            check_idx(arr, idx)?;
        }
        let id = StmtId(self.stmts.len());
        self.stmts.push(Statement {
            id,
            name,
            domain,
            sched,
            body,
            dynamic,
            work_scale,
        });
        Ok(id)
    }

    /// Checks that every symbolic parameter referenced anywhere in the
    /// program — array extents and statement-body index expressions — is
    /// declared, so downstream consumers (the interpreter, cost models)
    /// can resolve parameter names without aborting.
    ///
    /// Statement bodies are already validated by [`Program::add_stmt`];
    /// this additionally covers array extents, which are accepted
    /// unchecked by [`Program::add_array`].
    ///
    /// # Errors
    /// Returns a [`Error::Build`] naming the first undeclared parameter.
    pub fn validate_params(&self) -> Result<()> {
        let declared = |name: &str| self.params.iter().any(|(n, _)| n == name);
        for a in &self.arrays {
            for e in &a.extents {
                for (pname, _) in e.terms() {
                    if !declared(pname) {
                        return Err(Error::Build(format!(
                            "unknown parameter {pname} in extent of array {}",
                            a.name
                        )));
                    }
                }
            }
        }
        for s in &self.stmts {
            let check = |idx: &[IdxExpr]| -> Result<()> {
                for e in idx {
                    for (pname, _) in e.param_terms() {
                        if !declared(pname) {
                            return Err(Error::Build(format!(
                                "unknown parameter {pname} in index of statement {}",
                                s.name
                            )));
                        }
                    }
                }
                Ok(())
            };
            check(&s.body.target_idx)?;
            for (_, idx) in s.body.rhs.loads() {
                check(idx)?;
            }
        }
        Ok(())
    }

    /// The statements in original order.
    pub fn stmts(&self) -> &[Statement] {
        &self.stmts
    }

    /// Looks up a statement by id.
    pub fn stmt(&self, id: StmtId) -> &Statement {
        &self.stmts[id.0]
    }

    /// Looks up a statement by name.
    pub fn stmt_named(&self, name: &str) -> Option<&Statement> {
        self.stmts.iter().find(|s| s.name == name)
    }

    /// Whether `stmt` is live-out: it writes an [`ArrayKind::Output`] array.
    pub fn is_live_out(&self, stmt: StmtId) -> bool {
        let s = &self.stmts[stmt.0];
        self.arrays[s.body.target.0].kind == ArrayKind::Output
    }

    /// Length all initial schedules are padded to for comparisons.
    pub fn sched_len(&self) -> usize {
        self.stmts.iter().map(|s| s.sched.len()).max().unwrap_or(0)
    }

    /// The set space of an array (`[params] -> { A[d0, ..] }`).
    pub fn array_space(&self, arr: ArrayId) -> Space {
        let decl = &self.arrays[arr.0];
        let names: Vec<&str> = self.params.iter().map(|(n, _)| n.as_str()).collect();
        Space::set(&names, Tuple::named(&decl.name, decl.n_dims()))
    }

    /// The single write access relation of a statement, restricted to its
    /// domain: `{ S[i] -> A[f(i)] : i ∈ domain }`.
    ///
    /// # Errors
    /// Returns an error on overflow during construction.
    pub fn write_access(&self, stmt: StmtId) -> Result<Map> {
        let s = &self.stmts[stmt.0];
        self.access_map(s, s.body.target, &s.body.target_idx)
    }

    /// All read access relations of a statement (one per load), restricted
    /// to its domain.
    ///
    /// # Errors
    /// Returns an error on overflow during construction.
    pub fn read_accesses(&self, stmt: StmtId) -> Result<Vec<(ArrayId, Map)>> {
        let s = &self.stmts[stmt.0];
        s.body
            .rhs
            .loads()
            .into_iter()
            .map(|(arr, idx)| Ok((arr, self.access_map(s, arr, idx)?)))
            .collect()
    }

    /// The union of a statement's reads of one array.
    ///
    /// # Errors
    /// Returns an error on overflow during construction.
    pub fn read_access_to(&self, stmt: StmtId, arr: ArrayId) -> Result<Option<Map>> {
        let mut acc: Option<Map> = None;
        for (a, m) in self.read_accesses(stmt)? {
            if a == arr {
                acc = Some(match acc {
                    None => m,
                    Some(prev) => prev.union(&m)?,
                });
            }
        }
        Ok(acc)
    }

    fn access_map(&self, s: &Statement, arr: ArrayId, idx: &[IdxExpr]) -> Result<Map> {
        let space = s.domain.space().join_map(&self.array_space(arr))?;
        let n_in = space.n_in();
        let exprs: Vec<AffExpr> =
            idx.iter()
                .map(|ix| {
                    let mut e = AffExpr::constant(&space, ix.constant_term());
                    for d in 0..n_in {
                        let c = ix.dim_coeff(d);
                        if c != 0 {
                            e = e.with_dim_coeff(d, c);
                        }
                    }
                    for (pname, c) in ix.param_terms() {
                        let p =
                            self.params.iter().position(|(n, _)| n == pname).ok_or(
                                Error::Build(format!("unknown parameter {pname} in index")),
                            )?;
                        e = e.with_param_coeff(p, *c);
                    }
                    Ok(e)
                })
                .collect::<Result<_>>()?;
        Ok(Map::from_affine(space, &exprs)?.intersect_domain(&s.domain)?)
    }

    /// The strict precedence relation between two statements under the
    /// *initial* schedule: `{ s[i] -> t[j] : sched_s(i) ≺ sched_t(j) }`.
    ///
    /// # Errors
    /// Returns an error on overflow during construction.
    pub fn prec_map(&self, src: StmtId, dst: StmtId) -> Result<Map> {
        let s = &self.stmts[src.0];
        let t = &self.stmts[dst.0];
        let space = s.domain.space().join_map(t.domain.space())?;
        let n_in = space.n_in();
        let len = self.sched_len();
        let term_expr = |term: Option<&SchedTerm>, in_side: bool| -> Result<AffExpr> {
            Ok(match term {
                None | Some(SchedTerm::Cst(_)) => {
                    let c = match term {
                        Some(SchedTerm::Cst(v)) => *v,
                        _ => 0,
                    };
                    AffExpr::constant(&space, c)
                }
                Some(SchedTerm::Var(d)) => {
                    AffExpr::dim(&space, if in_side { *d } else { n_in + d })?
                }
            })
        };
        let mut out = Map::empty(space.clone())?;
        for level in 0..len {
            let mut b = tilefuse_presburger::BasicSet::universe(space.clone());
            for k in 0..level {
                let a = term_expr(s.sched.get(k), true)?;
                let c = term_expr(t.sched.get(k), false)?;
                b.add_constraint(&a.eq(&c)?)?;
            }
            let a = term_expr(s.sched.get(level), true)?;
            let c = term_expr(t.sched.get(level), false)?;
            b.add_constraint(&a.lt(&c)?)?;
            out = out.union(&Map::from_basic(b)?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    /// A two-statement producer/consumer program:
    ///   S0: A[i] = i          for 0 <= i < N
    ///   S1: B[i] = A[i] + A[i+1]   for 0 <= i < N-1
    fn sample() -> (Program, ArrayId, ArrayId, StmtId, StmtId) {
        let mut p = Program::new("sample").with_param("N", 10);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -1).into()], ArrayKind::Output);
        let s0 = p
            .add_stmt(
                "{ S0[i] : 0 <= i < N }",
                vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
                Body {
                    target: a,
                    target_idx: vec![IdxExpr::dim(1, 0)],
                    rhs: Expr::Iter(0),
                },
            )
            .unwrap();
        let s1 = p
            .add_stmt(
                "{ S1[i] : 0 <= i < N - 1 }",
                vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
                Body {
                    target: b,
                    target_idx: vec![IdxExpr::dim(1, 0)],
                    rhs: Expr::add(
                        Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                        Expr::load(a, vec![IdxExpr::dim(1, 0).offset(1)]),
                    ),
                },
            )
            .unwrap();
        (p, a, b, s0, s1)
    }

    #[test]
    fn build_and_lookup() {
        let (p, a, b, s0, s1) = sample();
        assert_eq!(p.stmts().len(), 2);
        assert_eq!(p.stmt(s0).name(), "S0");
        assert_eq!(p.stmt_named("S1").unwrap().id(), s1);
        assert_eq!(p.array(a).name(), "A");
        assert_eq!(p.array_named("B").unwrap().id(), b);
        assert!(p.stmt_named("S9").is_none());
        assert!(p.array_named("Z").is_none());
    }

    #[test]
    fn live_out_classification() {
        let (p, _, _, s0, s1) = sample();
        assert!(!p.is_live_out(s0));
        assert!(p.is_live_out(s1));
    }

    #[test]
    fn array_shape_and_len() {
        let (p, a, b, ..) = sample();
        let bind = p.default_binding();
        assert_eq!(p.array(a).shape(&bind), vec![10]);
        assert_eq!(p.array(b).shape(&bind), vec![9]);
        assert_eq!(p.array(a).len(&bind), 10);
        assert!(!p.array(a).is_empty(&bind));
    }

    #[test]
    fn write_access_is_restricted_to_domain() {
        let (p, _, _, s0, _) = sample();
        let w = p.write_access(s0).unwrap();
        // S0[i] -> A[i], 0 <= i < N. With N=10: pair (i=3 -> a=3) in.
        assert!(w.contains_pair(&[10, 3, 3]).unwrap());
        assert!(!w.contains_pair(&[10, 3, 4]).unwrap());
        assert!(!w.contains_pair(&[10, 10, 10]).unwrap()); // outside domain
    }

    #[test]
    fn read_accesses_derived_from_body() {
        let (p, a, _, _, s1) = sample();
        let reads = p.read_accesses(s1).unwrap();
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().all(|(arr, _)| *arr == a));
        let union = p.read_access_to(s1, a).unwrap().unwrap();
        // S1[0] reads A[0] and A[1].
        assert!(union.contains_pair(&[10, 0, 0]).unwrap());
        assert!(union.contains_pair(&[10, 0, 1]).unwrap());
        assert!(!union.contains_pair(&[10, 0, 2]).unwrap());
    }

    #[test]
    fn prec_map_orders_statements() {
        let (p, _, _, s0, s1) = sample();
        let prec = p.prec_map(s0, s1).unwrap();
        // All of S0 precedes all of S1 (different scalar level).
        assert!(prec.contains_pair(&[10, 9, 0]).unwrap());
        assert!(prec.contains_pair(&[10, 0, 8]).unwrap());
        // Reverse direction is empty.
        let rev = p.prec_map(s1, s0).unwrap();
        assert!(rev.is_empty().unwrap());
    }

    #[test]
    fn prec_map_within_statement_level() {
        let (p, _, _, s0, _) = sample();
        let prec = p.prec_map(s0, s0).unwrap();
        assert!(prec.contains_pair(&[10, 2, 3]).unwrap());
        assert!(!prec.contains_pair(&[10, 3, 3]).unwrap());
        assert!(!prec.contains_pair(&[10, 4, 3]).unwrap());
    }

    #[test]
    fn duplicate_statement_name_rejected() {
        let (mut p, a, ..) = sample();
        let r = p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Const(0.0),
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn bad_schedule_dim_rejected() {
        let (mut p, a, ..) = sample();
        let r = p.add_stmt(
            "{ S9[i] : 0 <= i < N }",
            vec![SchedTerm::Var(3)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Const(0.0),
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn bad_access_arity_rejected() {
        let (mut p, a, ..) = sample();
        let r = p.add_stmt(
            "{ S9[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0), IdxExpr::dim(1, 0)],
                rhs: Expr::Const(0.0),
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn param_values_with_overrides() {
        let (p, ..) = sample();
        assert_eq!(p.param_values(&[]), vec![10]);
        assert_eq!(p.param_values(&[("N", 32)]), vec![32]);
    }

    #[test]
    fn sched_len_is_padded_max() {
        let (p, ..) = sample();
        assert_eq!(p.sched_len(), 2);
    }

    #[test]
    fn param_default_is_typed() {
        let (p, ..) = sample();
        assert_eq!(p.param_default("N").unwrap(), 10);
        let err = p.param_default("Z").unwrap_err();
        assert!(err.to_string().contains("unknown parameter Z"));
        // The binding closure resolves declared names and never aborts.
        let bind = p.default_binding();
        assert_eq!(bind("N"), 10);
        assert_eq!(bind("Z"), 0);
    }

    #[test]
    fn unknown_param_in_index_rejected_at_build() {
        let (mut p, a, ..) = sample();
        let r = p.add_stmt(
            "{ S9[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::param(1, "Q", 0)],
                rhs: Expr::Const(0.0),
            },
        );
        let err = r.unwrap_err();
        assert!(err.to_string().contains("unknown parameter Q"), "{err}");
    }

    #[test]
    fn validate_params_catches_undeclared_extent() {
        let (mut p, ..) = sample();
        p.add_array("Bad", vec!["M".into()], ArrayKind::Temp);
        let err = p.validate_params().unwrap_err();
        assert!(err.to_string().contains("unknown parameter M"), "{err}");
        let (q, ..) = sample();
        q.validate_params().unwrap();
    }

    #[test]
    fn extent_conversions() {
        let e: Extent = 5i64.into();
        assert_eq!(e.eval(&|_| 0), 5);
        let e: Extent = "N".into();
        assert_eq!(e.eval(&|_| 7), 7);
        let e: Extent = ("N", -2).into();
        assert_eq!(e.eval(&|_| 7), 5);
    }
}
