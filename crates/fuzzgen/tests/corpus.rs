//! Fixed-seed corpus: deterministic fuzzing in CI, plus the oracle's
//! self-test — a deliberately injected fusion-legality bug must be caught
//! and shrunk to a ≤3-statement reproducer.

use tilefuse_core::FaultInjection;
use tilefuse_fuzzgen::{
    build_program, describe, random_spec, run_oracle, shrink, OracleConfig, ProgramSpec, Rng,
    StageKind, StageSpec,
};

#[test]
fn fixed_seed_corpus_is_clean() {
    let cfg = OracleConfig::default();
    for seed in [11, 23, 47] {
        for i in 0..8u64 {
            let mut rng = Rng::new(seed * 1000 + i);
            let spec = random_spec(&mut rng);
            if let Err(f) = run_oracle(&spec, &cfg) {
                panic!("seed {seed} iter {i}: {f}\n{}", describe(&spec));
            }
        }
    }
}

/// Regression for a real bug the fuzzer found (seed 42, iteration 150,
/// shrunk by the greedy shrinker to this 3-statement diamond): a producer
/// read both directly by the live-out and through a fused stencil got its
/// extension slice finalized from the direct (point) footprint before the
/// stencil's chained halo was added, so the tile-local scratch lacked the
/// halo rows and the live-out combine read stale values.
#[test]
fn diamond_with_direct_and_stencil_reads_is_clean() {
    let spec = ProgramSpec {
        size: 8,
        tile: 2,
        smart_startup: false,
        parallel_cap: None,
        param_delta: 0,
        stages: vec![
            StageSpec {
                kind: StageKind::Point,
                src: 0,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::StencilY(1),
                src: 1,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::Combine { src2: 2 },
                src: 1,
                liveout: true,
            },
        ],
    };
    run_oracle(&spec, &OracleConfig::default()).unwrap();
}

/// Regression for the slice-index panics the unwrap audit converted to
/// typed errors: a generated program driven through `build_tree` with a
/// hand-corrupted fusion group (depth deeper than the members' shift
/// vectors — the shape the half-plane-slice stages can produce when a
/// caller reuses groups across re-fused programs) must yield
/// `Error::MalformedGroup`, not a panic.
#[test]
fn corrupted_group_is_rejected_not_panicking() {
    let spec = ProgramSpec {
        size: 8,
        tile: 2,
        smart_startup: false,
        parallel_cap: None,
        param_delta: 0,
        stages: vec![
            StageSpec {
                kind: StageKind::Point,
                src: 0,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::StencilX(1),
                src: 1,
                liveout: true,
            },
        ],
    };
    let p = build_program(&spec).unwrap();
    let deps = tilefuse_pir::compute_dependences(&p).unwrap();
    let mut fusion = tilefuse_scheduler::fuse(
        &p,
        &deps,
        tilefuse_scheduler::FusionHeuristic::SmartFuse,
        &mut tilefuse_scheduler::FuseBudget::default(),
    )
    .unwrap();
    // Sanity: the uncorrupted groups build fine.
    tilefuse_scheduler::build_tree(&p, &fusion.groups).unwrap();
    // Corrupt: deepen the band past the recorded shifts.
    for g in &mut fusion.groups {
        g.depth += 1;
        g.coincident.push(false);
    }
    let e = tilefuse_scheduler::build_tree(&p, &fusion.groups).unwrap_err();
    assert!(
        matches!(e, tilefuse_scheduler::Error::MalformedGroup(_)),
        "unexpected error: {e}"
    );
}

/// Producer chain plus two overlapping-slice live-out consumers of the
/// first stage — the Rule 2 conflict scenario, padded with extra stages
/// so the shrinker has real work to do.
fn shared_overlap_spec() -> ProgramSpec {
    ProgramSpec {
        size: 12,
        tile: 4,
        smart_startup: false,
        parallel_cap: None,
        param_delta: 0,
        stages: vec![
            StageSpec {
                kind: StageKind::Point,
                src: 0,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::StencilX(1),
                src: 1,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::Point,
                src: 2,
                liveout: true,
            },
            StageSpec {
                kind: StageKind::Slice {
                    lo: true,
                    overlap: true,
                },
                src: 1,
                liveout: true,
            },
            StageSpec {
                kind: StageKind::Slice {
                    lo: false,
                    overlap: true,
                },
                src: 1,
                liveout: true,
            },
        ],
    }
}

#[test]
fn injected_rule2_bug_is_caught_and_shrunk() {
    let spec = shared_overlap_spec();
    // Without the fault, Rule 2 excludes the shared producer and the
    // whole pipeline is clean.
    run_oracle(&spec, &OracleConfig::default()).unwrap();

    // With the fault injected, the oracle must object — either because
    // the recomputation corrupts a live-out buffer (bit-exact output
    // check) or, when recomputation happens to be idempotent, because the
    // independent Rule 2 disjointness re-verification fires.
    let cfg = OracleConfig {
        fault: FaultInjection::SkipSharedSliceCheck,
        ..Default::default()
    };
    let first = run_oracle(&spec, &cfg).unwrap_err();
    assert!(
        ["output-mismatch", "shared-slice-overlap"].contains(&first.check),
        "{first}"
    );

    // And the shrinker must reduce the reproducer to the essential
    // producer + two overlapping consumers.
    let (min_spec, min_fail) = shrink(&spec, &cfg);
    assert_eq!(min_fail.class(), "semantic");
    let p = build_program(&min_spec).unwrap();
    assert!(
        p.stmts().len() <= 3,
        "shrunk to {} statements:\n{}",
        p.stmts().len(),
        describe(&min_spec)
    );
    // The minimal program is clean without the injected fault: the
    // failure really is the deliberate bug, not a latent one.
    run_oracle(&min_spec, &OracleConfig::default()).unwrap();
}

#[test]
fn injected_vm_mislower_is_caught_and_shrunk() {
    let spec = shared_overlap_spec();
    // Clean without the fault (sanity — the VM differential passes).
    run_oracle(&spec, &OracleConfig::default()).unwrap();

    // VmMisLower is inert in the optimizer: every interpreter-side check
    // passes and only the oracle's VM differential can object, either as
    // a bit mismatch or as an out-of-bounds VM access.
    let cfg = OracleConfig {
        fault: FaultInjection::VmMisLower,
        ..Default::default()
    };
    let first = run_oracle(&spec, &cfg).unwrap_err();
    assert!(
        ["vm-mismatch", "vm-execute"].contains(&first.check),
        "{first}"
    );

    // The shrinker must reduce the reproducer within the same failure
    // class — down to (at most) a producer and one consumer, since any
    // statement with a load suffices to expose the corrupted access.
    let (min_spec, min_fail) = shrink(&spec, &cfg);
    assert_eq!(min_fail.class(), first.class());
    let p = build_program(&min_spec).unwrap();
    assert!(
        p.stmts().len() <= 2,
        "shrunk to {} statements:\n{}",
        p.stmts().len(),
        describe(&min_spec)
    );
    // And the minimal spec is clean without the fault: the failure is the
    // deliberate mis-lowering, not a latent VM bug.
    run_oracle(&min_spec, &OracleConfig::default()).unwrap();
}
