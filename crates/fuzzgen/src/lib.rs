//! Differential fuzzing for the tiling-then-fusion pipeline.
//!
//! This crate closes the loop on the optimizer's correctness story: a
//! seeded [generator](random_spec) draws random — but valid by
//! construction — affine producer/consumer programs (chains, diamonds,
//! shared intermediates, stencil/shifted/strided accesses, parametric
//! bounds), and a [differential oracle](run_oracle) pushes each through
//! the full pipeline (start-up fusion → live-out tiling → extension
//! schedules → Algorithm 2/3 grafting → interpretation), cross-checking
//! every result the repository can compute twice:
//!
//! * transformed vs. reference buffers, **bit-exactly**;
//! * sequential vs. parallel interpreter, buffers and statistics;
//! * Scanner-enumerated instance counts vs. symbolic `count_points`;
//! * presburger memoization enabled vs. disabled;
//! * the paper's shared-intermediate rules, re-verified independently of
//!   the optimizer's own bookkeeping.
//!
//! Failures [shrink](shrink) to a minimal spec with the same failing
//! check and pretty-print via [`describe`]. The `tilefuse-fuzz` binary
//! wraps the loop with seed/iteration/time-budget flags; fixed-seed
//! corpus runs live in `tests/corpus.rs` and CI.
//!
//! Everything is deterministic: randomness comes from the in-tree
//! xorshift64* [`Rng`], never the environment.

mod gen;
mod oracle;
mod rng;
mod shrink;
mod spec;

pub use gen::{random_budget, random_spec};
pub use oracle::{run_oracle, Failure, OracleConfig};
pub use rng::Rng;
pub use shrink::shrink;
pub use spec::{
    build_program, describe, kind_extents, spec_extents, Ext, Extents, ProgramSpec, StageKind,
    StageSpec,
};
