//! `tilefuse-fuzz` — drive the differential oracle over random programs.
//!
//! ```text
//! tilefuse-fuzz [--seed N] [--iters N] [--time-budget SECS]
//!               [--threads LIST] [--no-memo-diff] [--inject-bug]
//!               [--inject-vm-bug] [--budget-fuzz] [--artifacts-dir PATH]
//!               [--trace FILE]
//! ```
//!
//! Each iteration derives its own generator from `seed + i`, draws a
//! random spec, and runs every oracle cross-check. On the first failure
//! the spec is shrunk to a minimal reproducer, written to the artifacts
//! directory, printed, and the process exits 1. A clean run exits 0.
//!
//! `--inject-bug` enables `FaultInjection::SkipSharedSliceCheck` in the
//! optimizer — a deliberate Rule 2 legality bug — and is expected to make
//! the run *fail*: it is the oracle's self-test.
//!
//! `--inject-vm-bug` enables `FaultInjection::VmMisLower` — the bytecode
//! lowering of every optimized tree is deliberately corrupted (one load's
//! access offset by an element) — and is likewise expected to fail, at
//! the oracle's VM differential check: the self-test for the compiled
//! backend path.
//!
//! `--budget-fuzz` additionally draws a random — aggressively small —
//! resource budget per iteration (zero-op grants, 1 ms deadlines,
//! single-digit branch caps included) and installs it for the optimize
//! run: the soak mode for the degradation ladder. Whatever rung the
//! governor forces, the run must neither panic nor diverge from the
//! bit-exact reference. (The presburger memo differential is skipped
//! under a budget: memoization legitimately shifts which call trips
//! first.)
//!
//! `--trace FILE` enables the structured tracer for the whole run, writes
//! a Chrome-trace JSON to FILE on exit (clean or failing), and prints the
//! plain-text phase table to stderr — handy for seeing where oracle time
//! goes across thousands of optimize/interp cycles.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use tilefuse_fuzzgen::{
    describe, random_budget, random_spec, run_oracle, shrink, OracleConfig, Rng,
};

struct Args {
    seed: u64,
    iters: u64,
    time_budget: Option<Duration>,
    threads: Vec<usize>,
    memo_diff: bool,
    inject_bug: bool,
    inject_vm_bug: bool,
    budget_fuzz: bool,
    artifacts_dir: String,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tilefuse-fuzz [--seed N] [--iters N] [--time-budget SECS] \
         [--threads LIST] [--no-memo-diff] [--inject-bug] [--inject-vm-bug] \
         [--budget-fuzz] [--artifacts-dir PATH] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        iters: 500,
        time_budget: None,
        threads: vec![2, 5],
        memo_diff: true,
        inject_bug: false,
        inject_vm_bug: false,
        budget_fuzz: false,
        artifacts_dir: "fuzz-artifacts".into(),
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value("--iters").parse().unwrap_or_else(|_| usage()),
            "--time-budget" => {
                let secs: u64 = value("--time-budget").parse().unwrap_or_else(|_| usage());
                args.time_budget = Some(Duration::from_secs(secs));
            }
            "--threads" => {
                args.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--no-memo-diff" => args.memo_diff = false,
            "--inject-bug" => args.inject_bug = true,
            "--inject-vm-bug" => args.inject_vm_bug = true,
            "--budget-fuzz" => args.budget_fuzz = true,
            "--artifacts-dir" => args.artifacts_dir = value("--artifacts-dir"),
            "--trace" => args.trace = Some(value("--trace")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.trace.is_some() {
        tilefuse_trace::set_enabled(true);
    }
    let code = run(&args);
    if let Some(path) = &args.trace {
        let slot_names = &tilefuse_presburger::stats::OP_NAMES[..];
        eprintln!();
        eprintln!(
            "{}",
            tilefuse_trace::phase_table(&tilefuse_trace::snapshot(), slot_names)
        );
        match std::fs::write(path, tilefuse_trace::chrome_trace_json(slot_names)) {
            Ok(()) => eprintln!("wrote Chrome trace to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    code
}

fn run(args: &Args) -> ExitCode {
    let base_cfg = OracleConfig {
        threads: args.threads.clone(),
        memo_diff: args.memo_diff,
        fault: if args.inject_bug {
            tilefuse_core::FaultInjection::SkipSharedSliceCheck
        } else if args.inject_vm_bug {
            tilefuse_core::FaultInjection::VmMisLower
        } else {
            tilefuse_core::FaultInjection::None
        },
        budget: None,
    };
    let start = Instant::now();
    let mut ran = 0u64;
    for i in 0..args.iters {
        if let Some(budget) = args.time_budget {
            if start.elapsed() >= budget {
                println!("time budget reached after {ran} iterations");
                break;
            }
        }
        let mut rng = Rng::new(args.seed.wrapping_add(i));
        let spec = random_spec(&mut rng);
        let cfg = OracleConfig {
            budget: args.budget_fuzz.then(|| random_budget(&mut rng)),
            ..base_cfg.clone()
        };
        ran += 1;
        match run_oracle(&spec, &cfg) {
            Ok(()) => {
                if ran.is_multiple_of(50) {
                    println!(
                        "{ran} iterations clean ({:.1}s)",
                        start.elapsed().as_secs_f64()
                    );
                }
            }
            Err(first) => {
                eprintln!("seed {} iteration {i}: {first}", args.seed);
                eprintln!("shrinking...");
                let (min_spec, min_fail) = shrink(&spec, &cfg);
                let budget_line = match &cfg.budget {
                    Some(b) => format!("budget: {b:?}\n"),
                    None => String::new(),
                };
                let artifact = format!(
                    "tilefuse-fuzz failure\nseed: {}\niteration: {i}\n{budget_line}\
                     failure: {min_fail}\n\
                     \n== minimal reproducer ==\n{}\n== original spec ==\n{}",
                    args.seed,
                    describe(&min_spec),
                    describe(&spec),
                );
                eprint!("{artifact}");
                let dir = std::path::Path::new(&args.artifacts_dir);
                let path = dir.join(format!("repro-seed{}-iter{i}.txt", args.seed));
                match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &artifact)) {
                    Ok(()) => eprintln!("repro written to {}", path.display()),
                    Err(e) => eprintln!("could not write {}: {e}", path.display()),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "ok: {ran} iterations, 0 mismatches (seed {}, {:.1}s)",
        args.seed,
        start.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
