//! Greedy spec shrinking: once the oracle fails, reduce the spec while
//! the *same check* keeps failing, so repro artifacts are minimal.
//!
//! Candidates, tried cheapest-win-first each round:
//! stage removal (with source re-wiring), kind demotion to pointwise,
//! clearing extra live-out flags, and shrinking size/tile/knobs. The loop
//! re-runs the oracle on every candidate and accepts the first that still
//! fails in the original failure's *class* (see [`Failure::class`] — all
//! semantic violations are interchangeable, operational errors are not);
//! it stops at a fixpoint.

use crate::oracle::{run_oracle, Failure, OracleConfig};
use crate::spec::{ProgramSpec, StageKind, StageSpec};

/// Removes stage `i`, re-wiring readers of its output to its own source.
/// Returns `None` when the result would be empty.
fn remove_stage(spec: &ProgramSpec, i: usize) -> Option<ProgramSpec> {
    if spec.stages.len() <= 1 {
        return None;
    }
    let removed_src = spec.stages[i].src;
    let remap = |s: usize| -> usize {
        use std::cmp::Ordering;
        match s.cmp(&(i + 1)) {
            Ordering::Equal => removed_src,
            Ordering::Greater => s - 1,
            Ordering::Less => s,
        }
    };
    let mut stages = Vec::with_capacity(spec.stages.len() - 1);
    for (j, st) in spec.stages.iter().enumerate() {
        if j == i {
            continue;
        }
        let mut st = *st;
        st.src = remap(st.src);
        if let StageKind::Combine { src2 } = st.kind {
            st.kind = StageKind::Combine { src2: remap(src2) };
        }
        stages.push(st);
    }
    stages.last_mut()?.liveout = true;
    Some(ProgramSpec {
        stages,
        ..spec.clone()
    })
}

fn candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();
    for i in (0..spec.stages.len()).rev() {
        if let Some(c) = remove_stage(spec, i) {
            out.push(c);
        }
    }
    for (i, st) in spec.stages.iter().enumerate() {
        if st.kind != StageKind::Point {
            let mut c = spec.clone();
            c.stages[i] = StageSpec {
                kind: StageKind::Point,
                ..*st
            };
            out.push(c);
        }
        if st.liveout && i + 1 != spec.stages.len() {
            let mut c = spec.clone();
            c.stages[i].liveout = false;
            out.push(c);
        }
    }
    if spec.size > 8 {
        out.push(ProgramSpec {
            size: 8,
            ..spec.clone()
        });
    }
    if spec.tile > 2 {
        out.push(ProgramSpec {
            tile: 2,
            ..spec.clone()
        });
    }
    if spec.param_delta != 0 {
        out.push(ProgramSpec {
            param_delta: 0,
            ..spec.clone()
        });
    }
    if spec.smart_startup {
        out.push(ProgramSpec {
            smart_startup: false,
            ..spec.clone()
        });
    }
    if spec.parallel_cap.is_some() {
        out.push(ProgramSpec {
            parallel_cap: None,
            ..spec.clone()
        });
    }
    out
}

/// Shrinks a failing spec to a local minimum that still fails in the
/// same failure class, returning the minimal spec and its failure.
///
/// # Panics
/// Panics if `spec` does not fail under `cfg` (shrinking a passing spec
/// is a caller bug).
pub fn shrink(spec: &ProgramSpec, cfg: &OracleConfig) -> (ProgramSpec, Failure) {
    let mut cur = spec.clone();
    let mut cur_fail = run_oracle(&cur, cfg).expect_err("shrink requires a failing spec");
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if let Err(f) = run_oracle(&cand, cfg) {
                if f.class() == cur_fail.class() {
                    cur = cand;
                    cur_fail = f;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (cur, cur_fail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_program;

    fn point(src: usize, liveout: bool) -> StageSpec {
        StageSpec {
            kind: StageKind::Point,
            src,
            liveout,
        }
    }

    #[test]
    fn remove_stage_rewires_readers() {
        let spec = ProgramSpec {
            size: 10,
            tile: 2,
            smart_startup: false,
            parallel_cap: None,
            param_delta: 0,
            stages: vec![
                point(0, false),
                StageSpec {
                    kind: StageKind::StencilX(1),
                    src: 1,
                    liveout: false,
                },
                point(2, true),
            ],
        };
        // Dropping the middle stencil re-wires the consumer to stage 0.
        let c = remove_stage(&spec, 1).unwrap();
        assert_eq!(c.stages.len(), 2);
        assert_eq!(c.stages[1].src, 1);
        build_program(&c).unwrap();
        // Dropping the head re-wires the stencil to the input.
        let c = remove_stage(&spec, 0).unwrap();
        assert_eq!(c.stages[0].src, 0);
        assert_eq!(c.stages[1].src, 1);
        build_program(&c).unwrap();
    }

    #[test]
    fn remove_stage_keeps_a_liveout() {
        let spec = ProgramSpec {
            size: 10,
            tile: 2,
            smart_startup: false,
            parallel_cap: None,
            param_delta: 0,
            stages: vec![point(0, false), point(1, true)],
        };
        let c = remove_stage(&spec, 1).unwrap();
        assert!(c.stages.last().unwrap().liveout);
    }
}
