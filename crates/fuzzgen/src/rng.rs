//! Deterministic xorshift64* PRNG — the same generator the in-tree
//! property suites use, so fuzzing needs no external dependency and every
//! run is reproducible from its seed.

/// A seeded xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
