//! The differential oracle: one spec, every cross-check this repository
//! can make.
//!
//! A single oracle run drives the full pipeline — conservative start-up
//! fusion, live-out tiling, extension-schedule construction, Algorithm 2/3
//! grafting, interpretation — and fails on the *first* of:
//!
//! 1. a build/optimize/codegen error;
//! 2. the exact legality checker rejecting the transformed tree;
//! 3. live-out buffers differing **bit-exactly** (tolerance 0) from the
//!    reference interpretation of the original program;
//! 4. the parallel interpreter (2 and 5 threads) differing from the
//!    sequential one in any buffer or statistic;
//! 5. interpreter instance counts differing from the Presburger
//!    `count_points` of each flattened entry's schedule graph (a Scanner
//!    enumeration vs. symbolic counting differential);
//! 6. a live-out or unfused statement executing a different number of
//!    instances than the reference (fusion must not introduce
//!    recomputation there, and DCE may only drop *dead* instances —
//!    live-outs never shrink);
//! 7. a shared producer fused into several live-outs with per-live-out
//!    slices that intersect (an independent re-verification of
//!    Algorithm 3's Rule 2, which is what catches the deliberately
//!    injected `FaultInjection::SkipSharedSliceCheck` bug);
//! 8. any of the above differing when the presburger memo layers
//!    (structural cache, inline emptiness flags, interval pre-check) are
//!    disabled — memoization must be semantically invisible;
//! 9. the register-based bytecode VM (the optimized tree lowered via
//!    `lower_tree`, executed sequentially and at every parallel thread
//!    count) differing from the sequential interpreter in any buffer bit
//!    or statistic — `FaultInjection::VmMisLower` deliberately corrupts
//!    the lowering here to prove this check catches a miscompile.

use std::collections::{BTreeMap, BTreeSet};

use crate::spec::{build_program, ProgramSpec};
use tilefuse_codegen::{
    check_outputs_match, execute_compiled, execute_tree, execute_tree_parallel, lower_tree,
    reference_execute, ExecStats,
};
use tilefuse_core::{optimize, FaultInjection, Optimized, Options};
use tilefuse_pir::Program;
use tilefuse_presburger::stats as pstats;
use tilefuse_schedtree::flatten;
use tilefuse_scheduler::{check_schedule, FusionHeuristic};

/// What the oracle runs and compares.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Thread counts for the parallel-interpreter differential.
    pub threads: Vec<usize>,
    /// Re-run the pipeline with the presburger memo disabled and compare.
    /// Ignored (forced off) when `budget` is set: memoization legitimately
    /// shifts *which* call exhausts the budget first, so the two runs may
    /// settle on different (each individually bit-exact) ladder rungs.
    pub memo_diff: bool,
    /// Deliberate optimizer bug to inject (the oracle must catch it).
    pub fault: FaultInjection,
    /// Resource budget to install for the optimize run. Every other check
    /// still applies — whatever ladder rung the governor forces, the
    /// result must stay legal and bit-exact — plus the degradation-report
    /// coherence checks.
    pub budget: Option<tilefuse_trace::Budget>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            threads: vec![2, 5],
            memo_diff: true,
            fault: FaultInjection::None,
            budget: None,
        }
    }
}

/// One oracle failure: which check tripped, and the evidence.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Stable check identifier (the shrinker preserves it).
    pub check: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl Failure {
    /// The failure's equivalence class for shrinking. All *semantic*
    /// violations (wrong buffers, wrong counts, broken legality or
    /// disjointness) are one class — the same underlying optimizer bug
    /// routinely surfaces through different checks as a program shrinks —
    /// while operational errors (build/optimize/execute refusing to run)
    /// each keep their own identity so the shrinker never slides from a
    /// miscompile into a mere crash.
    pub fn class(&self) -> &'static str {
        match self.check {
            "legality"
            | "output-mismatch"
            | "parallel-mismatch"
            | "instance-count"
            | "liveout-count"
            | "unfused-count"
            | "shared-slice-overlap"
            | "memo-diff"
            | "vm-mismatch" => "semantic",
            other => other,
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

fn fail(check: &'static str, detail: impl std::fmt::Display) -> Failure {
    Failure {
        check,
        detail: detail.to_string(),
    }
}

/// Restores the presburger memo on drop, so an early `?` return cannot
/// leave the process with caching disabled.
struct MemoOff;

impl MemoOff {
    fn new() -> Self {
        pstats::set_memo_enabled(false);
        MemoOff
    }
}

impl Drop for MemoOff {
    fn drop(&mut self) {
        pstats::set_memo_enabled(true);
    }
}

fn options_for(spec: &ProgramSpec, cfg: &OracleConfig) -> Options {
    Options {
        tile_sizes: vec![spec.tile, spec.tile],
        parallel_cap: spec.parallel_cap,
        startup: if spec.smart_startup {
            FusionHeuristic::SmartFuse
        } else {
            FusionHeuristic::MinFuse
        },
        fault: cfg.fault,
        budget: cfg.budget.clone().unwrap_or_default(),
        ..Default::default()
    }
}

fn nonzero(counts: &BTreeMap<String, u64>) -> BTreeMap<&str, u64> {
    counts
        .iter()
        .filter(|(_, &n)| n > 0)
        .map(|(k, &n)| (k.as_str(), n))
        .collect()
}

/// One full pipeline run: optimize + sequential interpretation.
struct PipelineRun {
    optimized: Optimized,
    context: tilefuse_codegen::ExecContext,
    stats: ExecStats,
}

fn run_pipeline(
    program: &Program,
    opts: &Options,
    overrides: &[(&str, i64)],
) -> Result<PipelineRun, Failure> {
    let optimized = optimize(program, opts).map_err(|e| fail("optimize", e))?;
    let (context, stats) = execute_tree(
        program,
        &optimized.tree,
        overrides,
        &optimized.report.scratch_scopes,
    )
    .map_err(|e| fail("execute", e))?;
    Ok(PipelineRun {
        optimized,
        context,
        stats,
    })
}

/// Runs every cross-check on `spec`. `Ok(())` means the whole pipeline is
/// consistent; `Err` carries the first failed check.
///
/// # Errors
/// Returns the first [`Failure`] encountered (see the module docs for the
/// check list).
pub fn run_oracle(spec: &ProgramSpec, cfg: &OracleConfig) -> Result<(), Failure> {
    let program = build_program(spec).map_err(|e| fail("build", e))?;
    let ov_h = spec.size + spec.param_delta;
    let overrides: Vec<(&str, i64)> = vec![("H", ov_h), ("W", ov_h)];
    let opts = options_for(spec, cfg);

    let run = run_pipeline(&program, &opts, &overrides)?;
    let o = &run.optimized;

    // Degradation-report coherence: whichever ladder rung ran, the report
    // must explain it. (Bit-exactness of the degraded tree is proven by
    // the output/count checks below, which run unconditionally.)
    let deg = &o.report.degradation;
    if !(1..=4).contains(&deg.rung) {
        return Err(fail(
            "degradation-report",
            format!("rung {} out of range", deg.rung),
        ));
    }
    if deg.rung == 1 && !deg.trips.is_empty() {
        return Err(fail(
            "degradation-report",
            format!("rung 1 with budget trips: {:?}", deg.trips),
        ));
    }
    if deg.rung >= 2 && deg.trips.is_empty() {
        return Err(fail(
            "degradation-report",
            format!("rung {} without any recorded budget trip", deg.rung),
        ));
    }
    if deg.rung >= 3 && !o.report.mixed.is_empty() {
        return Err(fail(
            "degradation-report",
            format!(
                "rung {} but report still carries fusion schedules",
                deg.rung
            ),
        ));
    }
    if let Some(cap) = cfg.budget.as_ref().and_then(|b| b.max_disjuncts) {
        if deg.peak_disjuncts > cap {
            return Err(fail(
                "degradation-report",
                format!(
                    "peak disjunct count {} exceeds the configured cap {cap}",
                    deg.peak_disjuncts
                ),
            ));
        }
    }

    // Exact legality re-check of the transformed tree. Fused producers
    // carry multi-valued schedule relations (one instance recomputed in
    // several tiles, with tile-local scratch semantics) that the pairwise
    // lexicographic check cannot model — exactly the case
    // `LegalityReport::skipped` documents — so dependences touching them
    // are validated end-to-end by the buffer and count checks below
    // instead.
    let fused_ids: BTreeSet<tilefuse_pir::StmtId> = o
        .report
        .groups
        .iter()
        .enumerate()
        .filter(|(g, _)| o.report.is_fused(*g))
        .flat_map(|(_, grp)| grp.stmts.iter().copied())
        .collect();
    let checkable: Vec<tilefuse_pir::Dependence> = o
        .report
        .deps
        .iter()
        .filter(|d| !fused_ids.contains(&d.src) && !fused_ids.contains(&d.dst))
        .cloned()
        .collect();
    let entries = flatten(&o.tree).map_err(|e| fail("flatten", e))?;
    let legality = check_schedule(&checkable, &entries).map_err(|e| fail("legality", e))?;
    if !legality.legal {
        return Err(fail(
            "legality",
            format!("violations: {:?}", legality.violations),
        ));
    }

    // Bit-exact output comparison against the reference interpretation.
    let (reference, ref_stats) =
        reference_execute(&program, &overrides).map_err(|e| fail("reference", e))?;
    check_outputs_match(&program, &reference, &run.context, 0.0)
        .map_err(|e| fail("output-mismatch", e))?;

    // Sequential vs. parallel interpreter: buffers AND statistics.
    for &threads in &cfg.threads {
        let (par, par_stats) = execute_tree_parallel(
            &program,
            &o.tree,
            &overrides,
            &o.report.scratch_scopes,
            threads,
        )
        .map_err(|e| fail("parallel-execute", e))?;
        for a in program.arrays() {
            let d = run
                .context
                .max_diff(&par, a.id())
                .map_err(|e| fail("parallel-execute", e))?;
            if d != 0.0 {
                return Err(fail(
                    "parallel-mismatch",
                    format!("array {} differs by {d} with {threads} threads", a.name()),
                ));
            }
        }
        if par_stats != run.stats {
            return Err(fail(
                "parallel-mismatch",
                format!(
                    "stats differ with {threads} threads: {par_stats:?} vs {:?}",
                    run.stats
                ),
            ));
        }
    }

    // Scanner enumeration vs. symbolic point counting: the interpreter's
    // per-statement instance counts must equal the count_points of each
    // flattened entry's schedule graph.
    let values = program.param_values(&overrides);
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    for e in &entries {
        let n = e
            .schedule
            .intersect_domain(&e.domain)
            .and_then(|m| m.as_wrapped_set().fixed_params(&values))
            .and_then(|s| s.count_points(&values))
            .map_err(|e| fail("count-points", e))?;
        *expected.entry(e.stmt.clone()).or_insert(0) += n;
    }
    if nonzero(&expected) != nonzero(&run.stats.instances) {
        return Err(fail(
            "instance-count",
            format!(
                "interpreter {:?} vs count_points {:?}",
                nonzero(&run.stats.instances),
                nonzero(&expected)
            ),
        ));
    }

    // No recomputation where the paper forbids it, and DCE only ever
    // drops instances of producers that were fused (their originals are
    // legally skipped; outputs above prove nothing needed was lost).
    let fused_stmts: BTreeSet<&str> = fused_ids.iter().map(|&s| program.stmt(s).name()).collect();
    for s in program.stmts() {
        let got = run.stats.instances.get(s.name()).copied().unwrap_or(0);
        let want = ref_stats.instances.get(s.name()).copied().unwrap_or(0);
        if program.is_live_out(s.id()) && got != want {
            return Err(fail(
                "liveout-count",
                format!("{} executed {got} instances, reference {want}", s.name()),
            ));
        }
        if !fused_stmts.contains(s.name()) && got != want {
            return Err(fail(
                "unfused-count",
                format!(
                    "unfused {} executed {got} instances, reference {want}",
                    s.name()
                ),
            ));
        }
    }

    // Independent Rule 2 re-verification: a producer fused into several
    // live-outs must have pairwise-disjoint per-live-out slices, or
    // fusion has introduced recomputation across live-outs. This check
    // does not trust the optimizer's own conflict bookkeeping, so it
    // catches FaultInjection::SkipSharedSliceCheck.
    for (g, grp) in o.report.groups.iter().enumerate() {
        let fused_in: Vec<_> = o
            .report
            .mixed
            .iter()
            .filter(|m| m.fused_groups.contains(&g))
            .collect();
        if fused_in.len() < 2 {
            continue;
        }
        for &s in &grp.stmts {
            let mut slices = Vec::new();
            for m in &fused_in {
                if let Some(e) = m.extensions.iter().find(|e| e.stmt == s) {
                    slices.push((
                        m.liveout,
                        e.ext.range().map_err(|e| fail("shared-slice-overlap", e))?,
                    ));
                }
            }
            for i in 0..slices.len() {
                for j in i + 1..slices.len() {
                    let inter = slices[i]
                        .1
                        .intersect(&slices[j].1)
                        .and_then(|s| s.fixed_params(&values))
                        .map_err(|e| fail("shared-slice-overlap", e))?;
                    let n = inter
                        .count_points(&values)
                        .map_err(|e| fail("shared-slice-overlap", e))?;
                    if n > 0 {
                        return Err(fail(
                            "shared-slice-overlap",
                            format!(
                                "{} fused into live-out groups {} and {} with {n} \
                                 shared instance(s) — recomputation across live-outs",
                                program.stmt(s).name(),
                                slices[i].0,
                                slices[j].0
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Memo differential: the whole pipeline re-run with every presburger
    // memo layer disabled must produce the same tree semantics — same
    // dependences, bit-identical buffers, identical instance counts.
    if cfg.memo_diff && cfg.budget.is_none() {
        let p2 = build_program(spec).map_err(|e| fail("build", e))?;
        let _restore = MemoOff::new();
        let run2 = run_pipeline(&p2, &opts, &overrides)?;
        if run2.optimized.report.deps.len() != o.report.deps.len() {
            return Err(fail(
                "memo-diff",
                format!(
                    "{} dependences with memo off, {} with memo on",
                    run2.optimized.report.deps.len(),
                    o.report.deps.len()
                ),
            ));
        }
        for a in program.arrays() {
            let d = run
                .context
                .max_diff(&run2.context, a.id())
                .map_err(|e| fail("memo-diff", e))?;
            if d != 0.0 {
                return Err(fail(
                    "memo-diff",
                    format!("array {} differs by {d} with memo disabled", a.name()),
                ));
            }
        }
        if run2.stats != run.stats {
            return Err(fail(
                "memo-diff",
                format!(
                    "stats differ with memo disabled: {:?} vs {:?}",
                    run2.stats, run.stats
                ),
            ));
        }
    }

    // Compiled-backend differential: lower the optimized tree to bytecode
    // and run it on the register VM, sequentially and at every parallel
    // thread count. Buffers must be bit-identical and statistics equal to
    // the sequential interpreter's. `FaultInjection::VmMisLower` corrupts
    // the lowered program here (one load's access function offset by one
    // element) so a self-test can prove this check catches a miscompile
    // in the VM path — the interpreter checks above all pass under it.
    let mut compiled = lower_tree(&program, &o.tree, &overrides, &o.report.scratch_scopes)
        .map_err(|e| fail("vm-lower", e))?;
    if cfg.fault == FaultInjection::VmMisLower && !compiled.inject_mis_lower() {
        return Err(fail(
            "vm-lower",
            "VmMisLower requested but the lowered program has no load to corrupt",
        ));
    }
    for threads in std::iter::once(1).chain(cfg.threads.iter().copied()) {
        let (vm_ctx, vm_stats) =
            execute_compiled(&program, &compiled, threads).map_err(|e| fail("vm-execute", e))?;
        for a in program.arrays() {
            let d = run
                .context
                .max_diff(&vm_ctx, a.id())
                .map_err(|e| fail("vm-execute", e))?;
            if d != 0.0 {
                return Err(fail(
                    "vm-mismatch",
                    format!(
                        "array {} differs by {d} on the VM with {threads} thread(s)",
                        a.name()
                    ),
                ));
            }
        }
        if vm_stats != run.stats {
            return Err(fail(
                "vm-mismatch",
                format!(
                    "VM stats differ with {threads} thread(s): {vm_stats:?} vs {:?}",
                    run.stats
                ),
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{StageKind, StageSpec};

    fn chain_spec() -> ProgramSpec {
        ProgramSpec {
            size: 12,
            tile: 3,
            smart_startup: true,
            parallel_cap: None,
            param_delta: 0,
            stages: vec![
                StageSpec {
                    kind: StageKind::Point,
                    src: 0,
                    liveout: false,
                },
                StageSpec {
                    kind: StageKind::StencilX(1),
                    src: 1,
                    liveout: false,
                },
                StageSpec {
                    kind: StageKind::StencilY(1),
                    src: 2,
                    liveout: true,
                },
            ],
        }
    }

    #[test]
    fn clean_chain_passes_every_check() {
        run_oracle(&chain_spec(), &OracleConfig::default()).unwrap();
    }

    #[test]
    fn parametric_override_passes() {
        let spec = ProgramSpec {
            param_delta: 3,
            ..chain_spec()
        };
        run_oracle(&spec, &OracleConfig::default()).unwrap();
    }

    #[test]
    fn injected_budget_faults_prove_each_ladder_rung() {
        // Each fault forces budget exhaustion at a specific pipeline
        // phase; the full oracle must still pass — the degraded schedule
        // is bit-exact — and the report must land on the expected rung.
        for (fault, want_rung) in [
            (FaultInjection::BudgetExhaustExtension, 2),
            (FaultInjection::BudgetExhaustSurgery, 3),
            (FaultInjection::BudgetExhaustTiling, 4),
        ] {
            let cfg = OracleConfig {
                fault,
                ..OracleConfig::default()
            };
            run_oracle(&chain_spec(), &cfg)
                .unwrap_or_else(|e| panic!("{fault:?}: oracle failed: {e}"));
            let program = build_program(&chain_spec()).unwrap();
            let opts = options_for(&chain_spec(), &cfg);
            let o = optimize(&program, &opts).unwrap();
            assert_eq!(
                o.report.degradation.rung, want_rung,
                "{fault:?}: {:?}",
                o.report.degradation
            );
            assert!(!o.report.degradation.trips.is_empty());
        }
    }

    #[test]
    fn injected_vm_mislower_fails_the_vm_check() {
        // The fault is inert in the optimizer, so every interpreter-side
        // check passes; only the VM differential may object — either with
        // a bit mismatch or, when the offset access lands out of bounds,
        // a VM execution error.
        let cfg = OracleConfig {
            fault: FaultInjection::VmMisLower,
            ..OracleConfig::default()
        };
        let f = run_oracle(&chain_spec(), &cfg).unwrap_err();
        assert!(
            ["vm-mismatch", "vm-execute"].contains(&f.check),
            "expected the VM differential to fire, got: {f}"
        );
    }

    #[test]
    fn adversarial_budgets_degrade_but_stay_exact() {
        // A zero-op grant and a 1 ms deadline both force real (not
        // injected) exhaustion somewhere in the pipeline; the oracle's
        // bit-exactness and coherence checks must hold on whatever rung
        // the ladder settles on.
        for budget in [
            tilefuse_trace::Budget {
                max_omega_ops: Some(0),
                ..tilefuse_trace::Budget::default()
            },
            tilefuse_trace::Budget {
                deadline_ms: Some(0),
                ..tilefuse_trace::Budget::default()
            },
            tilefuse_trace::Budget {
                max_branches_per_call: Some(1),
                max_disjuncts: Some(2),
                ..tilefuse_trace::Budget::default()
            },
        ] {
            let cfg = OracleConfig {
                budget: Some(budget.clone()),
                ..OracleConfig::default()
            };
            run_oracle(&chain_spec(), &cfg)
                .unwrap_or_else(|e| panic!("budget {budget:?}: oracle failed: {e}"));
        }
    }

    #[test]
    fn memo_toggle_is_restored_after_failure() {
        // A spec that fails at build: the guard never engages, and a spec
        // failing later must still leave the memo enabled.
        let bad = ProgramSpec {
            stages: vec![],
            ..chain_spec()
        };
        assert_eq!(
            run_oracle(&bad, &OracleConfig::default())
                .unwrap_err()
                .check,
            "build"
        );
        assert!(pstats::memo_enabled());
    }
}
