//! Program specifications: a compact, shrinkable description of an affine
//! producer/consumer program, plus the lowering to a [`Program`].
//!
//! A spec is a list of stages over a parametric `H × W` input image. Each
//! stage reads one (or, for diamonds, two) earlier stage outputs through an
//! affine access — pointwise, stencil window, shifted, or strided — and
//! writes a fresh array; stages marked live-out write `Output` arrays. Slice
//! stages restrict their domain to the lower/upper half of the rows, which
//! is how shared-intermediate scenarios (paper Fig. 6, Algorithm 3's rules)
//! arise: one producer, several live-out consumers over (disjoint or
//! intersecting) slices.
//!
//! The shrinker operates on specs, not programs: removing a stage or
//! demoting its kind keeps the description well-formed by construction,
//! and [`build_program`] re-derives extents and domains from scratch.

use tilefuse_pir::{ArrayId, ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};

/// One image dimension's extent relative to the `H`/`W` parameter:
/// `(param + off) / div` rows, exactly as the workloads pipeline builder
/// tracks stencil shrinkage and decimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ext {
    /// Additive offset on the parameter (stencils and shifts make it
    /// negative).
    pub off: i64,
    /// Decimation divisor (strided stages double it).
    pub div: i64,
}

impl Ext {
    /// The full-size extent.
    pub fn id() -> Self {
        Ext { off: 0, div: 1 }
    }

    /// Number of valid indices at parameter value `size`.
    pub fn rows(&self, size: i64) -> i64 {
        (size + self.off).div_euclid(self.div)
    }
}

/// Both dimensions of a stage output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extents {
    /// Row extent.
    pub h: Ext,
    /// Column extent.
    pub w: Ext,
}

impl Extents {
    /// The full-size `H × W` extents (the input image).
    pub fn id() -> Self {
        Extents {
            h: Ext::id(),
            w: Ext::id(),
        }
    }

    /// The smaller of the two dimensions' index counts at `size`.
    pub fn min_rows(&self, size: i64) -> i64 {
        self.h.rows(size).min(self.w.rows(size))
    }
}

/// How a stage reads its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// `out[h,w] = f(src[h,w])`.
    Point,
    /// Horizontal window of radius `r`: reads `src[h, w..=w+2r]`.
    StencilX(i64),
    /// Vertical window of radius `r`: reads `src[h..=h+2r, w]`.
    StencilY(i64),
    /// Shifted access `src[h+dh, w+dw]`.
    Shift {
        /// Row shift (≥ 0).
        dh: i64,
        /// Column shift (≥ 0).
        dw: i64,
    },
    /// Strided (2× decimating) access: reads `src[2h, 2w]` and
    /// `src[2h+1, 2w+1]`.
    Stride2,
    /// Diamond join: combines `src` with a second earlier output.
    Combine {
        /// The second source (same encoding as [`StageSpec::src`]).
        src2: usize,
    },
    /// Pointwise consumer over a half-row slice of the source. `lo`
    /// selects the lower half; with `overlap` the two halves share a few
    /// rows (the Rule 2 conflict scenario), otherwise they are disjoint.
    Slice {
        /// Lower (true) or upper (false) half.
        lo: bool,
        /// Whether the halves intersect.
        overlap: bool,
    },
}

/// One stage of a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// The access pattern.
    pub kind: StageKind,
    /// Source: `0` is the input image, `k ≥ 1` is stage `k-1`'s output.
    pub src: usize,
    /// Whether this stage's array is live-out (`Output` kind). The last
    /// stage is always treated as live-out regardless of this flag.
    pub liveout: bool,
}

/// A complete program description plus the optimizer knobs to fuzz it
/// under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Default value of the `H` and `W` parameters.
    pub size: i64,
    /// Tile size (used for both dimensions).
    pub tile: i64,
    /// SmartFuse (true) or MinFuse start-up heuristic.
    pub smart_startup: bool,
    /// The target's parallelism cap (None / CPU / GPU).
    pub parallel_cap: Option<usize>,
    /// Added to `H` and `W` at execution time, exercising parametric
    /// bounds away from the compile-time defaults.
    pub param_delta: i64,
    /// The stages, in execution order.
    pub stages: Vec<StageSpec>,
}

/// The output extents a `kind` stage would have, or `None` when the kind
/// is not applicable to these sources (divisor mismatch on a combine,
/// slicing a decimated stage).
pub fn kind_extents(kind: &StageKind, srcs: &[Extents], src: usize) -> Option<Extents> {
    let s = srcs[src];
    Some(match *kind {
        StageKind::Point => s,
        StageKind::StencilX(r) => Extents {
            h: s.h,
            w: Ext {
                off: s.w.off - 2 * r * s.w.div,
                div: s.w.div,
            },
        },
        StageKind::StencilY(r) => Extents {
            h: Ext {
                off: s.h.off - 2 * r * s.h.div,
                div: s.h.div,
            },
            w: s.w,
        },
        StageKind::Shift { dh, dw } => Extents {
            h: Ext {
                off: s.h.off - dh * s.h.div,
                div: s.h.div,
            },
            w: Ext {
                off: s.w.off - dw * s.w.div,
                div: s.w.div,
            },
        },
        StageKind::Stride2 => Extents {
            h: Ext {
                off: s.h.off,
                div: s.h.div * 2,
            },
            w: Ext {
                off: s.w.off,
                div: s.w.div * 2,
            },
        },
        StageKind::Combine { src2 } => {
            let t = srcs[src2];
            if s.h.div != t.h.div || s.w.div != t.w.div {
                return None;
            }
            Extents {
                h: Ext {
                    off: s.h.off.min(t.h.off),
                    div: s.h.div,
                },
                w: Ext {
                    off: s.w.off.min(t.w.off),
                    div: s.w.div,
                },
            }
        }
        StageKind::Slice { .. } => {
            if s.h.div != 1 || s.w.div != 1 {
                return None;
            }
            s
        }
    })
}

/// Extents of every source index (`0` = input, `k` = stage `k-1`).
///
/// # Errors
/// Returns a message when a stage references a later/own output or its
/// kind does not apply to its sources.
pub fn spec_extents(spec: &ProgramSpec) -> Result<Vec<Extents>, String> {
    let mut exts = vec![Extents::id()];
    for (i, st) in spec.stages.iter().enumerate() {
        if st.src >= exts.len() {
            return Err(format!(
                "stage {i} reads source {} before it exists",
                st.src
            ));
        }
        if let StageKind::Combine { src2 } = st.kind {
            if src2 >= exts.len() {
                return Err(format!("stage {i} combines source {src2} before it exists"));
            }
        }
        let e = kind_extents(&st.kind, &exts, st.src)
            .ok_or_else(|| format!("stage {i}: {:?} not applicable to its sources", st.kind))?;
        exts.push(e);
    }
    Ok(exts)
}

fn dim_cond(var: &str, param: &str, e: Ext) -> String {
    if e.div == 1 {
        format!("0 <= {var} and {var} <= {param} + {}", e.off - 1)
    } else {
        format!(
            "0 <= {var} and {}{var} <= {param} + {}",
            e.div,
            e.off - e.div
        )
    }
}

/// Lowers a spec to a [`Program`] (parameters `H`, `W`; arrays `in0`,
/// `t1..tn`; statements `S0..Sn-1`).
///
/// # Errors
/// Returns a message for ill-formed specs (bad source references,
/// inapplicable kinds, or IR construction failures).
pub fn build_program(spec: &ProgramSpec) -> Result<Program, String> {
    if spec.stages.is_empty() {
        return Err("spec has no stages".into());
    }
    let exts = spec_extents(spec)?;
    let mut p = Program::new("fuzz")
        .with_param("H", spec.size)
        .with_param("W", spec.size);
    let mk_ext = |e: Ext, name: &str| -> tilefuse_pir::Extent {
        // Decimated buffers are sized generously at `param + off` (the
        // same convention as the workloads pipeline builder); domains are
        // exact, the surplus is unused.
        if e.div == 1 {
            tilefuse_pir::Extent::param(name, e.off)
        } else {
            tilefuse_pir::Extent::param(name, e.off.max(0))
        }
    };
    let mut arrays: Vec<ArrayId> = vec![p.add_array(
        "in0",
        vec![
            tilefuse_pir::Extent::param("H", 0),
            tilefuse_pir::Extent::param("W", 0),
        ],
        ArrayKind::Input,
    )];
    let last = spec.stages.len() - 1;
    for (i, st) in spec.stages.iter().enumerate() {
        let e = exts[i + 1];
        let kind = if st.liveout || i == last {
            ArrayKind::Output
        } else {
            ArrayKind::Temp
        };
        arrays.push(p.add_array(
            &format!("t{}", i + 1),
            vec![mk_ext(e.h, "H"), mk_ext(e.w, "W")],
            kind,
        ));
    }
    let d = |k: usize| IdxExpr::dim(2, k);
    for (i, st) in spec.stages.iter().enumerate() {
        let e = exts[i + 1];
        let name = format!("S{i}");
        let mut conds = vec![dim_cond("h", "H", e.h), dim_cond("w", "W", e.w)];
        if let StageKind::Slice { lo, overlap } = st.kind {
            // Halves of the valid row range [0, H + off - 1]: disjoint
            // splits at 2h < H + off vs 2h >= H + off; the overlapping
            // variants widen each side by a few rows so the slices
            // intersect (Rule 2's conflict case).
            let off = e.h.off;
            conds.push(match (lo, overlap) {
                (true, false) => format!("2h <= H + {}", off - 1),
                (false, false) => format!("2h >= H + {off}"),
                (true, true) => format!("2h <= H + {}", off + 3),
                (false, true) => format!("2h >= H + {}", off - 4),
            });
        }
        let domain = format!("{{ {name}[h, w] : {} }}", conds.join(" and "));
        let src = arrays[st.src];
        let rhs = match st.kind {
            StageKind::Point => Expr::add(
                Expr::mul(Expr::load(src, vec![d(0), d(1)]), Expr::Const(0.75)),
                Expr::Const(0.125),
            ),
            StageKind::StencilX(r) => {
                let mut sum = Expr::load(src, vec![d(0), d(1)]);
                for o in 1..=2 * r {
                    sum = Expr::add(sum, Expr::load(src, vec![d(0), d(1).offset(o)]));
                }
                Expr::mul(sum, Expr::Const(1.0 / (2.0 * r as f64 + 1.0)))
            }
            StageKind::StencilY(r) => {
                let mut sum = Expr::load(src, vec![d(0), d(1)]);
                for o in 1..=2 * r {
                    sum = Expr::add(sum, Expr::load(src, vec![d(0).offset(o), d(1)]));
                }
                Expr::mul(sum, Expr::Const(1.0 / (2.0 * r as f64 + 1.0)))
            }
            StageKind::Shift { dh, dw } => Expr::add(
                Expr::mul(
                    Expr::load(src, vec![d(0).offset(dh), d(1).offset(dw)]),
                    Expr::Const(0.9),
                ),
                Expr::Const(0.05),
            ),
            StageKind::Stride2 => Expr::mul(
                Expr::add(
                    Expr::load(src, vec![d(0).scale(2), d(1).scale(2)]),
                    Expr::load(src, vec![d(0).scale(2).offset(1), d(1).scale(2).offset(1)]),
                ),
                Expr::Const(0.5),
            ),
            StageKind::Combine { src2 } => Expr::add(
                Expr::mul(Expr::load(src, vec![d(0), d(1)]), Expr::Const(0.625)),
                Expr::mul(
                    Expr::load(arrays[src2], vec![d(0), d(1)]),
                    Expr::Const(0.375),
                ),
            ),
            StageKind::Slice { lo: true, .. } => {
                Expr::add(Expr::load(src, vec![d(0), d(1)]), Expr::Const(1.0))
            }
            StageKind::Slice { lo: false, .. } => Expr::sub(
                Expr::mul(Expr::load(src, vec![d(0), d(1)]), Expr::Const(1.25)),
                Expr::Const(0.25),
            ),
        };
        p.add_stmt(
            &domain,
            vec![
                SchedTerm::Cst(i as i64),
                SchedTerm::Var(0),
                SchedTerm::Var(1),
            ],
            Body {
                target: arrays[i + 1],
                target_idx: vec![d(0), d(1)],
                rhs,
            },
        )
        .map_err(|e| format!("stage {i}: {e}"))?;
    }
    Ok(p)
}

/// Human-readable rendering of a spec plus its lowered statements — what
/// goes into shrunk-repro artifacts.
pub fn describe(spec: &ProgramSpec) -> String {
    let mut s = format!(
        "spec: size={} tile={} startup={} parallel_cap={:?} param_delta={}\n",
        spec.size,
        spec.tile,
        if spec.smart_startup {
            "SmartFuse"
        } else {
            "MinFuse"
        },
        spec.parallel_cap,
        spec.param_delta,
    );
    for (i, st) in spec.stages.iter().enumerate() {
        s.push_str(&format!(
            "  stage {i}: {:?} src={}{}\n",
            st.kind,
            st.src,
            if st.liveout || i == spec.stages.len() - 1 {
                " (live-out)"
            } else {
                ""
            }
        ));
    }
    match build_program(spec) {
        Ok(p) => {
            s.push_str("statements:\n");
            for st in p.stmts() {
                s.push_str(&format!(
                    "  {}: {} writes {}\n",
                    st.name(),
                    st.domain(),
                    p.array(st.body().target).name()
                ));
            }
        }
        Err(e) => s.push_str(&format!("(build failed: {e})\n")),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(src: usize) -> StageSpec {
        StageSpec {
            kind: StageKind::Point,
            src,
            liveout: false,
        }
    }

    fn spec_of(stages: Vec<StageSpec>) -> ProgramSpec {
        ProgramSpec {
            size: 10,
            tile: 3,
            smart_startup: false,
            parallel_cap: None,
            param_delta: 0,
            stages,
        }
    }

    #[test]
    fn chain_lowers_and_last_stage_is_liveout() {
        let p = build_program(&spec_of(vec![point(0), point(1)])).unwrap();
        assert_eq!(p.stmts().len(), 2);
        assert_eq!(p.array_named("t1").unwrap().kind(), ArrayKind::Temp);
        assert_eq!(p.array_named("t2").unwrap().kind(), ArrayKind::Output);
    }

    #[test]
    fn stencil_and_shift_shrink_extents() {
        let spec = spec_of(vec![
            StageSpec {
                kind: StageKind::StencilX(2),
                src: 0,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::Shift { dh: 1, dw: 0 },
                src: 1,
                liveout: false,
            },
        ]);
        let exts = spec_extents(&spec).unwrap();
        assert_eq!(exts[1].w.off, -4);
        assert_eq!(exts[2].h.off, -1);
        let p = build_program(&spec).unwrap();
        let hull = p
            .stmt_named("S1")
            .unwrap()
            .domain()
            .rect_hull(&[10, 10])
            .unwrap()
            .unwrap();
        assert_eq!(hull[0], (0, 8));
        assert_eq!(hull[1], (0, 5));
    }

    #[test]
    fn stride_doubles_divisor_and_stays_in_bounds() {
        let spec = spec_of(vec![StageSpec {
            kind: StageKind::Stride2,
            src: 0,
            liveout: false,
        }]);
        let exts = spec_extents(&spec).unwrap();
        assert_eq!(exts[1].h.div, 2);
        let p = build_program(&spec).unwrap();
        let (_, stats) = tilefuse_codegen::reference_execute(&p, &[]).unwrap();
        assert_eq!(stats.instances["S0"], 25);
    }

    #[test]
    fn disjoint_slices_partition_overlapping_slices_intersect() {
        for (overlap, expect_overlap) in [(false, false), (true, true)] {
            let spec = spec_of(vec![
                point(0),
                StageSpec {
                    kind: StageKind::Slice { lo: true, overlap },
                    src: 1,
                    liveout: true,
                },
                StageSpec {
                    kind: StageKind::Slice { lo: false, overlap },
                    src: 1,
                    liveout: true,
                },
            ]);
            let p = build_program(&spec).unwrap();
            let lo = p.stmt_named("S1").unwrap().domain();
            let hi = p.stmt_named("S2").unwrap().domain();
            // Compare row coverage through the common array space: a
            // point [h, w] is in both slices iff the halves overlap.
            let lo_h = lo.rect_hull(&[10, 10]).unwrap().unwrap()[0];
            let hi_h = hi.rect_hull(&[10, 10]).unwrap().unwrap()[0];
            assert_eq!(
                lo_h.1 >= hi_h.0,
                expect_overlap,
                "lo={lo_h:?} hi={hi_h:?} overlap={overlap}"
            );
        }
    }

    #[test]
    fn combine_requires_matching_divisors() {
        // in0 (div 1) combined with a stride-2 stage (div 2) is rejected.
        let spec = spec_of(vec![
            StageSpec {
                kind: StageKind::Stride2,
                src: 0,
                liveout: false,
            },
            StageSpec {
                kind: StageKind::Combine { src2: 0 },
                src: 1,
                liveout: false,
            },
        ]);
        assert!(build_program(&spec).is_err());
    }

    #[test]
    fn forward_references_are_rejected() {
        let spec = spec_of(vec![point(2)]);
        assert!(build_program(&spec).is_err());
    }
}
