//! Seeded random generation of program specs.
//!
//! Programs are grown stage by stage: each stage picks a random earlier
//! output and a random access pattern (pointwise, stencil, shift, stride,
//! diamond combine), with fallbacks that keep every domain comfortably
//! non-empty at the default parameters. A third of the specs additionally
//! receive a *shared-intermediate scenario* — two live-out slice consumers
//! of one earlier temp — because that is where Algorithm 3's rules (and
//! historically their bugs) live.

use crate::rng::Rng;
use crate::spec::{kind_extents, Extents, ProgramSpec, StageKind, StageSpec};

/// Minimum rows/columns a generated stage may shrink the image to at the
/// default parameters; below this, stages degrade to pointwise.
const MIN_ROWS: i64 = 4;

fn pick_kind(rng: &mut Rng, exts: &[Extents], src: usize, size: i64) -> StageKind {
    for _ in 0..4 {
        let cand = match rng.range(0, 6) {
            0 => StageKind::Point,
            1 => StageKind::StencilX(rng.range(1, 3) as i64),
            2 => StageKind::StencilY(rng.range(1, 3) as i64),
            3 => {
                let dh = rng.range(0, 2) as i64;
                let dw = rng.range(0, 2) as i64;
                StageKind::Shift {
                    dh: if dh == 0 && dw == 0 { 1 } else { dh },
                    dw,
                }
            }
            4 => StageKind::Stride2,
            _ => StageKind::Combine {
                src2: rng.range(0, exts.len() as u64) as usize,
            },
        };
        if let Some(e) = kind_extents(&cand, exts, src) {
            if e.min_rows(size) >= MIN_ROWS {
                return cand;
            }
        }
    }
    StageKind::Point
}

/// Draws one random spec from `rng`. Same generator state → same spec.
pub fn random_spec(rng: &mut Rng) -> ProgramSpec {
    let size = *rng.pick(&[8, 10, 12, 14]);
    let mut spec = ProgramSpec {
        size,
        tile: rng.range(2, 7) as i64,
        smart_startup: rng.chance(1, 2),
        parallel_cap: *rng.pick(&[None, Some(1), Some(2)]),
        param_delta: if rng.chance(1, 3) { 2 } else { 0 },
        stages: Vec::new(),
    };
    let mut exts = vec![Extents::id()];
    let n = rng.range(1, 6) as usize;
    for _ in 0..n {
        let src = rng.range(0, exts.len() as u64) as usize;
        let kind = pick_kind(rng, &exts, src, size);
        let e = kind_extents(&kind, &exts, src).expect("picked kind is applicable");
        exts.push(e);
        spec.stages.push(StageSpec {
            kind,
            src,
            liveout: rng.chance(1, 8),
        });
    }
    if rng.chance(1, 3) {
        // Shared-intermediate scenario: two live-out slice consumers of
        // one non-live-out stage output (never the raw input — slicing an
        // input creates no producer to share).
        let cands: Vec<usize> = (1..exts.len())
            .filter(|&k| {
                !spec.stages[k - 1].liveout
                    && kind_extents(
                        &StageKind::Slice {
                            lo: true,
                            overlap: false,
                        },
                        &exts,
                        k,
                    )
                    .is_some_and(|e| e.min_rows(size) >= MIN_ROWS)
            })
            .collect();
        if !cands.is_empty() {
            let src = *rng.pick(&cands);
            let overlap = rng.chance(1, 2);
            for lo in [true, false] {
                spec.stages.push(StageSpec {
                    kind: StageKind::Slice { lo, overlap },
                    src,
                    liveout: true,
                });
                exts.push(exts[src]);
            }
        }
    }
    spec.stages.last_mut().expect("n >= 1").liveout = true;
    spec
}

/// Draws a random — deliberately aggressive — resource budget for the
/// `--budget-fuzz` soak mode. The distribution is skewed toward budgets
/// that WILL trip (zero-op grants, 1 ms deadlines, single-digit branch
/// caps) because the property under test is the degradation ladder, not
/// the happy path; `None` entries keep a share of effectively-unlimited
/// axes so rung-1 runs stay in the mix.
pub fn random_budget(rng: &mut Rng) -> tilefuse_trace::Budget {
    tilefuse_trace::Budget {
        deadline_ms: *rng.pick(&[None, None, Some(0), Some(1), Some(5), Some(50)]),
        max_omega_ops: *rng.pick(&[None, Some(0), Some(1), Some(100), Some(10_000)]),
        max_branches_per_call: *rng.pick(&[None, Some(1), Some(8), Some(64)]),
        max_disjuncts: *rng.pick(&[None, Some(1), Some(2), Some(6)]),
        max_interned_rows: *rng.pick(&[None, Some(256), Some(4096)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_program;

    #[test]
    fn generated_specs_always_lower() {
        for seed in 0..200 {
            let mut rng = Rng::new(seed);
            let spec = random_spec(&mut rng);
            let p = build_program(&spec)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", crate::spec::describe(&spec)));
            assert!(!p.stmts().is_empty());
            // Every statement's domain is non-empty at the defaults.
            for s in p.stmts() {
                let hull = s
                    .domain()
                    .rect_hull(&[spec.size, spec.size])
                    .unwrap()
                    .expect("non-empty domain");
                assert!(hull.iter().all(|(l, u)| l <= u), "{}: {hull:?}", s.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_spec(&mut Rng::new(99));
        let b = random_spec(&mut Rng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn shared_intermediate_scenarios_appear() {
        let mut with_slices = 0;
        for seed in 0..100 {
            let spec = random_spec(&mut Rng::new(seed));
            if spec
                .stages
                .iter()
                .any(|s| matches!(s.kind, StageKind::Slice { .. }))
            {
                with_slices += 1;
            }
        }
        assert!(with_slices > 10, "only {with_slices}/100 specs had slices");
    }
}
