//! Error type for the post-tiling fusion optimizer.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Optimizer invariant violated.
    Internal(String),
    /// Caller-supplied structure (group indices, group shapes) is
    /// inconsistent with the program; replaces what used to be index and
    /// slice panics on user-constructed inputs.
    InvalidInput(String),
    /// Underlying IR error.
    Pir(tilefuse_pir::Error),
    /// Underlying scheduler error.
    Scheduler(tilefuse_scheduler::Error),
    /// Underlying schedule-tree error.
    SchedTree(tilefuse_schedtree::Error),
    /// Underlying set/map error.
    Presburger(tilefuse_presburger::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Internal(msg) => write!(f, "optimizer invariant violated: {msg}"),
            Error::InvalidInput(msg) => write!(f, "invalid optimizer input: {msg}"),
            Error::Pir(e) => write!(f, "IR error: {e}"),
            Error::Scheduler(e) => write!(f, "scheduler error: {e}"),
            Error::SchedTree(e) => write!(f, "schedule tree error: {e}"),
            Error::Presburger(e) => write!(f, "set operation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pir(e) => Some(e),
            Error::Scheduler(e) => Some(e),
            Error::SchedTree(e) => Some(e),
            Error::Presburger(e) => Some(e),
            Error::Internal(_) | Error::InvalidInput(_) => None,
        }
    }
}

impl From<tilefuse_pir::Error> for Error {
    fn from(e: tilefuse_pir::Error) -> Self {
        Error::Pir(e)
    }
}

impl From<tilefuse_scheduler::Error> for Error {
    fn from(e: tilefuse_scheduler::Error) -> Self {
        Error::Scheduler(e)
    }
}

impl From<tilefuse_schedtree::Error> for Error {
    fn from(e: tilefuse_schedtree::Error) -> Self {
        Error::SchedTree(e)
    }
}

impl From<tilefuse_presburger::Error> for Error {
    fn from(e: tilefuse_presburger::Error) -> Self {
        Error::Presburger(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Internal("x".into())
            .to_string()
            .contains("invariant"));
        let e = Error::from(tilefuse_presburger::Error::Overflow("mul"));
        assert!(e.to_string().contains("overflow"));
    }
}
