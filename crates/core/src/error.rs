//! Error type for the post-tiling fusion optimizer.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Optimizer invariant violated.
    Internal(String),
    /// Caller-supplied structure (group indices, group shapes) is
    /// inconsistent with the program; replaces what used to be index and
    /// slice panics on user-constructed inputs.
    InvalidInput(String),
    /// Underlying IR error.
    Pir(tilefuse_pir::Error),
    /// Underlying scheduler error.
    Scheduler(tilefuse_scheduler::Error),
    /// Underlying schedule-tree error.
    SchedTree(tilefuse_schedtree::Error),
    /// Underlying set/map error.
    Presburger(tilefuse_presburger::Error),
}

impl Error {
    /// Whether this error (at any wrapping depth) is a cooperative
    /// budget-exhaustion signal from the resource governor. The
    /// degradation ladder in [`crate::optimize`] catches exactly these and
    /// falls back to a cheaper rung; every other error propagates.
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        self.budget_info().is_some()
    }

    /// The `(limit, phase)` pair of a wrapped budget-exhaustion error.
    #[must_use]
    pub fn budget_info(&self) -> Option<(&'static str, &'static str)> {
        match self {
            Error::Pir(e) => e.budget_info(),
            Error::Scheduler(e) => e.budget_info(),
            Error::SchedTree(e) => e.budget_info(),
            Error::Presburger(e) => e.budget_info(),
            Error::Internal(_) | Error::InvalidInput(_) => None,
        }
    }

    /// A synthetic budget-exhaustion error for fault injection (see
    /// [`crate::FaultInjection`]): lets the fuzz oracle force a specific
    /// ladder rung without a real budget race.
    pub(crate) fn injected_budget(phase: &'static str) -> Error {
        Error::Presburger(tilefuse_presburger::Error::BudgetExhausted {
            limit: "fault-injection",
            phase,
        })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Internal(msg) => write!(f, "optimizer invariant violated: {msg}"),
            Error::InvalidInput(msg) => write!(f, "invalid optimizer input: {msg}"),
            Error::Pir(e) => write!(f, "IR error: {e}"),
            Error::Scheduler(e) => write!(f, "scheduler error: {e}"),
            Error::SchedTree(e) => write!(f, "schedule tree error: {e}"),
            Error::Presburger(e) => write!(f, "set operation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pir(e) => Some(e),
            Error::Scheduler(e) => Some(e),
            Error::SchedTree(e) => Some(e),
            Error::Presburger(e) => Some(e),
            Error::Internal(_) | Error::InvalidInput(_) => None,
        }
    }
}

impl From<tilefuse_pir::Error> for Error {
    fn from(e: tilefuse_pir::Error) -> Self {
        Error::Pir(e)
    }
}

impl From<tilefuse_scheduler::Error> for Error {
    fn from(e: tilefuse_scheduler::Error) -> Self {
        Error::Scheduler(e)
    }
}

impl From<tilefuse_schedtree::Error> for Error {
    fn from(e: tilefuse_schedtree::Error) -> Self {
        Error::SchedTree(e)
    }
}

impl From<tilefuse_presburger::Error> for Error {
    fn from(e: tilefuse_presburger::Error) -> Self {
        Error::Presburger(e)
    }
}

/// Marks a governed phase and polls the resource budget (a no-op without
/// an installed governor), converting exhaustion into this crate's error.
/// Placed at the existing trace-span boundaries of the optimize pipeline.
pub(crate) fn checkpoint(phase: &'static str) -> Result<()> {
    tilefuse_trace::governor::checkpoint(phase)
        .map_err(|e| Error::Presburger(tilefuse_presburger::Error::from(e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Internal("x".into())
            .to_string()
            .contains("invariant"));
        let e = Error::from(tilefuse_presburger::Error::Overflow("mul"));
        assert!(e.to_string().contains("overflow"));
    }
}
