//! Algorithm 3: the complete composition — start-up fusion, per-live-out
//! tile-shape construction, shared-intermediate resolution, and post-tiling
//! fusion.

use crate::algo1::{algorithm1, BudgetTrip, FaultInjection, MixedSchedules, Options};
use crate::algo2::{algorithm2, plain_tile_group};
use crate::error::{checkpoint, Error, Result};
use std::collections::{BTreeMap, BTreeSet};
use tilefuse_pir::{ArrayId, DepKind, Dependence, Program};
use tilefuse_schedtree::ScheduleTree;
use tilefuse_scheduler::{schedule, Group};

/// The result of the post-tiling fusion optimizer.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The transformed schedule tree.
    pub tree: ScheduleTree,
    /// Diagnostics and metadata for execution and cost modeling.
    pub report: Report,
}

/// Metadata about an optimization run.
#[derive(Debug, Clone)]
pub struct Report {
    /// The start-up fusion groups.
    pub groups: Vec<Group>,
    /// Indices of live-out groups.
    pub liveouts: Vec<usize>,
    /// Algorithm 1 output per live-out group.
    pub mixed: Vec<MixedSchedules>,
    /// Arrays whose producers were fused into tiles: their values become
    /// tile-local (scratchpad/shared-memory candidates).
    pub scratch_arrays: BTreeSet<ArrayId>,
    /// Per tile-local array: the schedule-prefix length identifying its
    /// tile (the depth of the extension node that fused its producer).
    /// Consumed by the interpreter's scratch clearing.
    pub scratch_scopes: std::collections::BTreeMap<ArrayId, usize>,
    /// Producer groups excluded from fusion by the shared-intermediate
    /// rule (Algorithm 3 would otherwise introduce recomputation across
    /// live-outs, or the group has an unfusable consumer).
    pub shared_unfused: Vec<usize>,
    /// The dependences of the program (for legality re-checks).
    pub deps: Vec<Dependence>,
    /// Per-phase span times and presburger counters for *this* optimize
    /// call (the calling thread's span diff around the run). Empty unless
    /// tracing was enabled via `tilefuse_trace::set_enabled(true)`.
    pub phases: Vec<tilefuse_trace::PhaseStat>,
    /// Which rung of the degradation ladder produced the tree, and the
    /// resource accounting behind that decision.
    pub degradation: DegradationReport,
}

/// How far down the graceful-degradation ladder this run had to go, and
/// what the resource governor observed along the way.
///
/// Rungs (each one strictly cheaper and still bit-exact):
/// 1. full tiling-then-fusion (the paper's Algorithm 3);
/// 2. tiling-then-fusion with specific producers dropped from fusion
///    because *their* extension or footprint computation blew the budget
///    (see [`BudgetTrip`] entries);
/// 3. plain live-out tiling, no fusion surgery;
/// 4. untiled conservative schedule (start-up `minfuse` order only).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The rung that produced the final tree (1 = no degradation).
    pub rung: u8,
    /// Every budget exhaustion absorbed on the way down, in order: which
    /// phase tripped, which limit, and what was dropped in response.
    pub trips: Vec<BudgetTrip>,
    /// Capped Omega feasibility calls answered conservatively (`feasible`)
    /// during this run — the governor-scoped slice of
    /// `tilefuse_presburger::stats::silent_feasible`.
    pub silent_feasible: u64,
    /// Omega operations (branch pops + projection steps) charged to the
    /// governor during this run.
    pub omega_ops: u64,
    /// Wall-clock spent inside the governed region, in milliseconds.
    pub elapsed_ms: f64,
    /// Largest per-set disjunct count kept after footprint coalescing
    /// (never exceeds the configured disjunct cap).
    pub peak_disjuncts: usize,
    /// Whether the start-up `maxfuse` shift solver hit its step budget and
    /// fell back to a coarser grouping (sound, but less fusion).
    pub fusion_budget_exhausted: bool,
    /// Steps the `maxfuse` shift solver actually consumed.
    pub fusion_steps: u64,
}

impl Default for DegradationReport {
    fn default() -> Self {
        DegradationReport {
            rung: 1,
            trips: Vec::new(),
            silent_feasible: 0,
            omega_ops: 0,
            elapsed_ms: 0.0,
            peak_disjuncts: 0,
            fusion_budget_exhausted: false,
            fusion_steps: 0,
        }
    }
}

impl Report {
    /// Whether group `g` was fused into at least one live-out's tiles.
    pub fn is_fused(&self, g: usize) -> bool {
        self.mixed.iter().any(|m| m.fused_groups.contains(&g))
    }

    /// Total fusion groups in the final schedule (fused producers no
    /// longer count as separate groups).
    pub fn n_final_groups(&self) -> usize {
        let fused: BTreeSet<usize> = self
            .mixed
            .iter()
            .flat_map(|m| m.fused_groups.iter().copied())
            .collect();
        self.groups.len() - fused.len()
    }
}

/// Runs the full optimizer (Algorithm 3) on `program` under the resource
/// budget in `opts.budget`, degrading through the ladder described on
/// [`DegradationReport`] instead of failing when a limit trips.
///
/// # Errors
/// Returns an error if scheduling fails or the tree surgery meets an
/// unexpected shape. Budget exhaustion is *not* an error at this level:
/// it selects a cheaper rung. A panic anywhere in the pipeline is caught
/// and surfaced as [`Error::Internal`] tagged with the active phase.
pub fn optimize(program: &Program, opts: &Options) -> Result<Optimized> {
    // Snapshot the calling thread's span stats around the run so the
    // report carries exactly this call's phases, even when other threads
    // optimize concurrently.
    let before = tilefuse_trace::thread_snapshot();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _span = tilefuse_trace::span!("optimize");
        let _gov = tilefuse_trace::governor::install(&opts.budget);
        run_ladder(program, opts)
    }))
    .unwrap_or_else(|payload| {
        Err(Error::Internal(format!(
            "panic in optimize (phase {}): {}",
            tilefuse_trace::governor::last_phase(),
            tilefuse_trace::governor::panic_message(payload.as_ref()),
        )))
    });
    let mut optimized = result?;
    if tilefuse_trace::is_enabled() {
        optimized.report.phases =
            tilefuse_trace::diff_snapshots(&before, &tilefuse_trace::thread_snapshot());
    }
    Ok(optimized)
}

/// Whether `e` should be absorbed as a degradation step rather than
/// propagated: either a cooperative budget-exhaustion signal, or any error
/// produced after the governor's precision caps already forced a
/// conservative approximation (exact analysis never fails the ways
/// approximate analysis can — unbounded hulls, splintered projections —
/// so those failures are consequences of the cap, not bugs). With no
/// active governor, `approximated()` is always false and everything
/// propagates.
pub(crate) fn degradable(e: &Error) -> bool {
    e.is_budget_exhausted() || tilefuse_trace::governor::approximated()
}

/// The degradation ladder. Runs with a governor installed; each rung that
/// absorbs a budget trip re-arms (fresh grant) so one blown deadline does
/// not starve the fallback, and the last rung runs disarmed — it must
/// terminate and is polynomial, so accounting continues but enforcement
/// stops.
fn run_ladder(program: &Program, opts: &Options) -> Result<Optimized> {
    use tilefuse_trace::governor;
    let mut trips: Vec<BudgetTrip> = Vec::new();
    let mut optimized = match optimize_inner(program, opts) {
        Ok(o) => Some(o),
        Err(e) if degradable(&e) => {
            trips.push(BudgetTrip::from_error(
                &e,
                "optimize",
                "dropped fusion entirely: falling back to plain live-out tiling".into(),
            ));
            None
        }
        Err(e) => return Err(e),
    };
    if optimized.is_none() {
        governor::rearm();
        optimized = match plain_tiled(program, opts) {
            Ok(o) => Some(o),
            Err(e) if degradable(&e) => {
                trips.push(BudgetTrip::from_error(
                    &e,
                    "optimize/plain-tile",
                    "dropped tiling entirely: falling back to the untiled schedule".into(),
                ));
                None
            }
            Err(e) => return Err(e),
        };
    }
    let rung_from_trips = |t: &[BudgetTrip]| if t.is_empty() { 1 } else { 2 };
    let (mut optimized, rung) = match optimized {
        Some(o) => {
            let rung = if trips.is_empty() {
                rung_from_trips(&o.report.degradation.trips)
            } else {
                3
            };
            (o, rung)
        }
        None => {
            // Rung 4: the conservative schedule must not be subject to the
            // (already exhausted) budget; genuine errors still propagate.
            governor::disarm();
            (untiled_schedule(program)?, 4)
        }
    };
    let d = &mut optimized.report.degradation;
    d.rung = rung;
    // Ladder-level trips go first: they explain why lower rungs ran.
    trips.append(&mut d.trips);
    d.trips = trips;
    let consumed = governor::consumed();
    d.silent_feasible = consumed.silent_feasible;
    d.omega_ops = consumed.omega_ops;
    d.elapsed_ms = consumed.elapsed.as_secs_f64() * 1e3;
    d.peak_disjuncts = consumed.peak_disjuncts;
    Ok(optimized)
}

fn optimize_inner(program: &Program, opts: &Options) -> Result<Optimized> {
    let scheduled = schedule(program, opts.startup)?;
    // Satellite of the governor work: surface the maxfuse shift-solver
    // budget instead of silently dropping it with the Fusion struct.
    let fusion_budget_exhausted = scheduled.fusion.budget_exhausted;
    let fusion_steps = scheduled.fusion.steps;
    let groups = scheduled.fusion.groups;
    let deps = scheduled.deps;
    let mut tree = scheduled.tree;
    let has_top_sequence = groups.len() > 1;

    // Group-level flow DAG.
    let n = groups.len();
    let group_of = |s: tilefuse_pir::StmtId| -> Result<usize> {
        groups
            .iter()
            .position(|g| g.stmts.contains(&s))
            .ok_or_else(|| Error::InvalidInput(format!("statement {} belongs to no group", s.0)))
    };
    let mut gedges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for d in &deps {
        if d.kind != DepKind::Flow {
            continue;
        }
        let (a, b) = (group_of(d.src)?, group_of(d.dst)?);
        if a != b {
            gedges.insert((a, b));
        }
    }
    let liveouts: Vec<usize> = (0..n)
        .filter(|&g| groups[g].stmts.iter().any(|&s| program.is_live_out(s)))
        .collect();
    if liveouts.is_empty() {
        return Err(Error::Internal("program has no live-out statements".into()));
    }

    // Transitive producer sets per live-out (excluding other live-outs:
    // the paper does not fuse live-out spaces into each other).
    let producers_of = |l: usize, excluded: &BTreeSet<usize>| -> Vec<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![l];
        while let Some(g) = stack.pop() {
            for &(a, b) in &gedges {
                if b == g && !seen.contains(&a) && !liveouts.contains(&a) && !excluded.contains(&a)
                {
                    seen.insert(a);
                    stack.push(a);
                }
            }
        }
        seen.into_iter().collect()
    };

    // Fixpoint over shared-intermediate conflicts.
    let mut excluded: BTreeSet<usize> = BTreeSet::new();
    let mut rule2_trips: Vec<BudgetTrip> = Vec::new();
    let mut mixed: Vec<MixedSchedules>;
    loop {
        mixed = Vec::new();
        for &l in &liveouts {
            let producers = producers_of(l, &excluded);
            mixed.push(algorithm1(program, &deps, &groups, l, &producers, opts)?);
        }
        let mut new_conflicts: BTreeSet<usize> = BTreeSet::new();
        #[allow(clippy::needless_range_loop)] // index is the group id itself
        for g in 0..n {
            if excluded.contains(&g) || liveouts.contains(&g) {
                continue;
            }
            let fused_in: Vec<&MixedSchedules> = mixed
                .iter()
                .filter(|m| m.fused_groups.contains(&g))
                .collect();
            if fused_in.is_empty() {
                continue;
            }
            // Rule 1: fused into SOME but not ALL of its consuming
            // live-outs -> cannot skip the original -> prevent fusion.
            let consumer_liveouts: Vec<usize> = liveouts
                .iter()
                .copied()
                .filter(|&l| producers_of(l, &excluded).contains(&g))
                .collect();
            if fused_in.len() != consumer_liveouts.len() {
                new_conflicts.insert(g);
                continue;
            }
            // Rule 2: slices used by different live-outs must not
            // intersect (no recomputation across live-outs). Skippable
            // only via FaultInjection so the fuzz oracle can prove it
            // catches the resulting illegal fusion.
            if opts.fault != FaultInjection::SkipSharedSliceCheck && fused_in.len() >= 2 {
                let _span = tilefuse_trace::span!("algo3/rule2", "group {g}");
                checkpoint("algo3/rule2")?;
                'pairs: for i in 0..fused_in.len() {
                    for j in i + 1..fused_in.len() {
                        for &s in &groups[g].stmts {
                            let ei = ext_of(fused_in[i], s);
                            let ej = ext_of(fused_in[j], s);
                            if let (Some(ei), Some(ej)) = (ei, ej) {
                                // The slices intersect iff some instance x
                                // lies in both extension ranges. Testing the
                                // *joint* relation { S[x] -> (o, o') } keeps
                                // the tile dims existential in one Omega
                                // feasibility call per basic-map pair;
                                // projecting each range first (the old
                                // `range().intersect().is_empty()` chain)
                                // splintered the ranges into per-tile
                                // disjuncts and Omega-tested the full cross
                                // product — over a million emptiness calls
                                // on one Local Laplacian check, found via
                                // the algo3/rule2 span's counters.
                                let disjoint = ei
                                    .reverse()
                                    .flat_range_product(&ej.reverse())
                                    .and_then(|joint| joint.is_empty());
                                match disjoint {
                                    Ok(true) => {}
                                    Ok(false) => {
                                        new_conflicts.insert(g);
                                        break 'pairs;
                                    }
                                    Err(pe) => {
                                        let e = Error::from(pe);
                                        if !degradable(&e) {
                                            return Err(e);
                                        }
                                        // Budget blew mid-proof: assuming the
                                        // slices overlap (conflict) is the
                                        // sound direction — it only excludes
                                        // fusion. Re-arm so the rest of the
                                        // fixpoint gets a fresh grant.
                                        rule2_trips.push(BudgetTrip::from_error(
                                            &e,
                                            "algo3/rule2",
                                            format!(
                                                "assumed shared-slice overlap for group {g}: \
                                                 excluded from fusion"
                                            ),
                                        ));
                                        tilefuse_trace::governor::rearm();
                                        new_conflicts.insert(g);
                                        break 'pairs;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if new_conflicts.is_subset(&excluded) {
            break;
        }
        excluded.extend(new_conflicts);
    }

    // Surgery per live-out (in tree order so paths stay valid: each
    // surgery only touches its own group's child and marks producers).
    if matches!(
        opts.fault,
        FaultInjection::BudgetExhaustSurgery | FaultInjection::BudgetExhaustTiling
    ) {
        return Err(Error::injected_budget("algo2/graft"));
    }
    checkpoint("algo2/graft")?;
    for m in &mixed {
        algorithm2(&mut tree, program, &groups, m, has_top_sequence)?;
    }
    // Plain-tile groups that stayed out of fusion but are tilable:
    // excluded/untiled producers. (Fused groups' originals are skipped.)
    let fused_all: BTreeSet<usize> = mixed
        .iter()
        .flat_map(|m| m.fused_groups.iter().copied())
        .collect();
    let untiled_all: BTreeSet<usize> = mixed
        .iter()
        .flat_map(|m| m.untiled_groups.iter().copied())
        .chain(excluded.iter().copied())
        .collect();
    if has_top_sequence {
        for &g in &untiled_all {
            if !fused_all.contains(&g) {
                plain_tile_group(&mut tree, g, &opts.tile_sizes, has_top_sequence)?;
            }
        }
    }
    {
        let _span = tilefuse_trace::span!("optimize/validate");
        checkpoint("optimize/validate")?;
        tree.validate()?;
    }

    // Scratch arrays: targets of fused producer statements, each scoped to
    // the depth of its extension node (sequence position + tile dims).
    let mut scratch_arrays = BTreeSet::new();
    let mut scratch_scopes = std::collections::BTreeMap::new();
    for m in &mixed {
        let scope = m.k + usize::from(has_top_sequence);
        for e in &m.extensions {
            let arr = program.stmt(e.stmt).body().target;
            scratch_arrays.insert(arr);
            // An array fused under several live-outs keeps the smaller
            // scope (coarser clearing is safe: slices are disjoint).
            scratch_scopes
                .entry(arr)
                .and_modify(|s: &mut usize| *s = (*s).min(scope))
                .or_insert(scope);
        }
    }

    // Rung-2 trips: producer drops inside Algorithm 1 plus shared-slice
    // proofs abandoned above. An empty list means rung 1.
    let mut trips = rule2_trips;
    for m in &mut mixed {
        trips.append(&mut m.budget_trips);
    }
    Ok(Optimized {
        tree,
        report: Report {
            groups,
            liveouts,
            mixed,
            scratch_arrays,
            scratch_scopes,
            shared_unfused: excluded.into_iter().collect(),
            deps,
            phases: Vec::new(),
            degradation: DegradationReport {
                trips,
                fusion_budget_exhausted,
                fusion_steps,
                ..DegradationReport::default()
            },
        },
    })
}

/// Rung 3: start-up scheduling plus plain per-group tiling — no fusion
/// surgery, no footprint/extension presburger work.
fn plain_tiled(program: &Program, opts: &Options) -> Result<Optimized> {
    let _span = tilefuse_trace::span!("optimize/plain-tile");
    checkpoint("optimize/plain-tile")?;
    if opts.fault == FaultInjection::BudgetExhaustTiling {
        return Err(Error::injected_budget("optimize/plain-tile"));
    }
    let scheduled = schedule(program, opts.startup)?;
    let fusion_budget_exhausted = scheduled.fusion.budget_exhausted;
    let fusion_steps = scheduled.fusion.steps;
    let groups = scheduled.fusion.groups;
    let deps = scheduled.deps;
    let mut tree = scheduled.tree;
    let has_top_sequence = groups.len() > 1;
    for g in 0..groups.len() {
        plain_tile_group(&mut tree, g, &opts.tile_sizes, has_top_sequence)?;
    }
    tree.validate()?;
    bare_optimized(
        program,
        tree,
        groups,
        deps,
        DegradationReport {
            fusion_budget_exhausted,
            fusion_steps,
            ..DegradationReport::default()
        },
    )
}

/// Rung 4: the conservative untiled schedule in start-up `minfuse` order.
/// Runs with enforcement disarmed — it is the floor of the ladder and must
/// succeed whenever the program is schedulable at all.
fn untiled_schedule(program: &Program) -> Result<Optimized> {
    let _span = tilefuse_trace::span!("optimize/untiled");
    let scheduled = schedule(program, tilefuse_scheduler::FusionHeuristic::MinFuse)?;
    let fusion_steps = scheduled.fusion.steps;
    let tree = scheduled.tree;
    tree.validate()?;
    bare_optimized(
        program,
        tree,
        scheduled.fusion.groups,
        scheduled.deps,
        DegradationReport {
            fusion_steps,
            ..DegradationReport::default()
        },
    )
}

/// Shared tail of the degraded rungs: a report with no mixed schedules,
/// no scratch promotion and every group left unfused.
fn bare_optimized(
    program: &Program,
    tree: ScheduleTree,
    groups: Vec<Group>,
    deps: Vec<Dependence>,
    degradation: DegradationReport,
) -> Result<Optimized> {
    let liveouts: Vec<usize> = (0..groups.len())
        .filter(|&g| groups[g].stmts.iter().any(|&s| program.is_live_out(s)))
        .collect();
    if liveouts.is_empty() {
        return Err(Error::Internal("program has no live-out statements".into()));
    }
    Ok(Optimized {
        tree,
        report: Report {
            groups,
            liveouts,
            mixed: Vec::new(),
            scratch_arrays: BTreeSet::new(),
            scratch_scopes: std::collections::BTreeMap::new(),
            shared_unfused: Vec::new(),
            deps,
            phases: Vec::new(),
            degradation,
        },
    })
}

/// The extension schedule of statement `s` in `m` (its range is the
/// instance slice fused into `m`'s tiles), or `None` when not fused there.
fn ext_of(m: &MixedSchedules, s: tilefuse_pir::StmtId) -> Option<&tilefuse_presburger::Map> {
    m.extensions.iter().find(|e| e.stmt == s).map(|e| &e.ext)
}

/// Per-array count of fused producer instance executions vs. distinct
/// instances — quantifies overlapped-tiling recomputation for reporting.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn recomputation_factor(
    optimized: &Optimized,
    param_values: &[i64],
) -> Result<BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    for m in &optimized.report.mixed {
        for e in &m.extensions {
            let pairs = e
                .ext
                .as_wrapped_set()
                .fixed_params(param_values)?
                .count_points(param_values)?;
            let distinct = e
                .ext
                .range()?
                .fixed_params(param_values)?
                .count_points(param_values)?;
            if distinct > 0 {
                let name = crate::footprint::stmt_of_map(&e.ext)?;
                out.insert(name, pairs as f64 / distinct as f64);
            }
        }
    }
    Ok(out)
}
