//! Algorithm 3: the complete composition — start-up fusion, per-live-out
//! tile-shape construction, shared-intermediate resolution, and post-tiling
//! fusion.

use crate::algo1::{algorithm1, MixedSchedules, Options};
use crate::algo2::{algorithm2, plain_tile_group};
use crate::error::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};
use tilefuse_pir::{ArrayId, DepKind, Dependence, Program};
use tilefuse_schedtree::ScheduleTree;
use tilefuse_scheduler::{schedule, Group};

/// The result of the post-tiling fusion optimizer.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The transformed schedule tree.
    pub tree: ScheduleTree,
    /// Diagnostics and metadata for execution and cost modeling.
    pub report: Report,
}

/// Metadata about an optimization run.
#[derive(Debug, Clone)]
pub struct Report {
    /// The start-up fusion groups.
    pub groups: Vec<Group>,
    /// Indices of live-out groups.
    pub liveouts: Vec<usize>,
    /// Algorithm 1 output per live-out group.
    pub mixed: Vec<MixedSchedules>,
    /// Arrays whose producers were fused into tiles: their values become
    /// tile-local (scratchpad/shared-memory candidates).
    pub scratch_arrays: BTreeSet<ArrayId>,
    /// Per tile-local array: the schedule-prefix length identifying its
    /// tile (the depth of the extension node that fused its producer).
    /// Consumed by the interpreter's scratch clearing.
    pub scratch_scopes: std::collections::BTreeMap<ArrayId, usize>,
    /// Producer groups excluded from fusion by the shared-intermediate
    /// rule (Algorithm 3 would otherwise introduce recomputation across
    /// live-outs, or the group has an unfusable consumer).
    pub shared_unfused: Vec<usize>,
    /// The dependences of the program (for legality re-checks).
    pub deps: Vec<Dependence>,
    /// Per-phase span times and presburger counters for *this* optimize
    /// call (the calling thread's span diff around the run). Empty unless
    /// tracing was enabled via `tilefuse_trace::set_enabled(true)`.
    pub phases: Vec<tilefuse_trace::PhaseStat>,
}

impl Report {
    /// Whether group `g` was fused into at least one live-out's tiles.
    pub fn is_fused(&self, g: usize) -> bool {
        self.mixed.iter().any(|m| m.fused_groups.contains(&g))
    }

    /// Total fusion groups in the final schedule (fused producers no
    /// longer count as separate groups).
    pub fn n_final_groups(&self) -> usize {
        let fused: BTreeSet<usize> = self
            .mixed
            .iter()
            .flat_map(|m| m.fused_groups.iter().copied())
            .collect();
        self.groups.len() - fused.len()
    }
}

/// Runs the full optimizer (Algorithm 3) on `program`.
///
/// # Errors
/// Returns an error if scheduling fails or the tree surgery meets an
/// unexpected shape.
pub fn optimize(program: &Program, opts: &Options) -> Result<Optimized> {
    // Snapshot the calling thread's span stats around the run so the
    // report carries exactly this call's phases, even when other threads
    // optimize concurrently.
    let before = tilefuse_trace::thread_snapshot();
    let result = {
        let _span = tilefuse_trace::span!("optimize");
        optimize_inner(program, opts)
    };
    let mut optimized = result?;
    if tilefuse_trace::is_enabled() {
        optimized.report.phases =
            tilefuse_trace::diff_snapshots(&before, &tilefuse_trace::thread_snapshot());
    }
    Ok(optimized)
}

fn optimize_inner(program: &Program, opts: &Options) -> Result<Optimized> {
    let scheduled = schedule(program, opts.startup)?;
    let groups = scheduled.fusion.groups;
    let deps = scheduled.deps;
    let mut tree = scheduled.tree;
    let has_top_sequence = groups.len() > 1;

    // Group-level flow DAG.
    let n = groups.len();
    let group_of = |s: tilefuse_pir::StmtId| -> Result<usize> {
        groups
            .iter()
            .position(|g| g.stmts.contains(&s))
            .ok_or_else(|| Error::InvalidInput(format!("statement {} belongs to no group", s.0)))
    };
    let mut gedges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for d in &deps {
        if d.kind != DepKind::Flow {
            continue;
        }
        let (a, b) = (group_of(d.src)?, group_of(d.dst)?);
        if a != b {
            gedges.insert((a, b));
        }
    }
    let liveouts: Vec<usize> = (0..n)
        .filter(|&g| groups[g].stmts.iter().any(|&s| program.is_live_out(s)))
        .collect();
    if liveouts.is_empty() {
        return Err(Error::Internal("program has no live-out statements".into()));
    }

    // Transitive producer sets per live-out (excluding other live-outs:
    // the paper does not fuse live-out spaces into each other).
    let producers_of = |l: usize, excluded: &BTreeSet<usize>| -> Vec<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![l];
        while let Some(g) = stack.pop() {
            for &(a, b) in &gedges {
                if b == g && !seen.contains(&a) && !liveouts.contains(&a) && !excluded.contains(&a)
                {
                    seen.insert(a);
                    stack.push(a);
                }
            }
        }
        seen.into_iter().collect()
    };

    // Fixpoint over shared-intermediate conflicts.
    let mut excluded: BTreeSet<usize> = BTreeSet::new();
    let mut mixed: Vec<MixedSchedules>;
    loop {
        mixed = Vec::new();
        for &l in &liveouts {
            let producers = producers_of(l, &excluded);
            mixed.push(algorithm1(program, &deps, &groups, l, &producers, opts)?);
        }
        let mut new_conflicts: BTreeSet<usize> = BTreeSet::new();
        #[allow(clippy::needless_range_loop)] // index is the group id itself
        for g in 0..n {
            if excluded.contains(&g) || liveouts.contains(&g) {
                continue;
            }
            let fused_in: Vec<&MixedSchedules> = mixed
                .iter()
                .filter(|m| m.fused_groups.contains(&g))
                .collect();
            if fused_in.is_empty() {
                continue;
            }
            // Rule 1: fused into SOME but not ALL of its consuming
            // live-outs -> cannot skip the original -> prevent fusion.
            let consumer_liveouts: Vec<usize> = liveouts
                .iter()
                .copied()
                .filter(|&l| producers_of(l, &excluded).contains(&g))
                .collect();
            if fused_in.len() != consumer_liveouts.len() {
                new_conflicts.insert(g);
                continue;
            }
            // Rule 2: slices used by different live-outs must not
            // intersect (no recomputation across live-outs). Skippable
            // only via FaultInjection so the fuzz oracle can prove it
            // catches the resulting illegal fusion.
            if opts.fault != crate::FaultInjection::SkipSharedSliceCheck && fused_in.len() >= 2 {
                let _span = tilefuse_trace::span!("algo3/rule2", "group {g}");
                'pairs: for i in 0..fused_in.len() {
                    for j in i + 1..fused_in.len() {
                        for &s in &groups[g].stmts {
                            let ei = ext_of(fused_in[i], s);
                            let ej = ext_of(fused_in[j], s);
                            if let (Some(ei), Some(ej)) = (ei, ej) {
                                // The slices intersect iff some instance x
                                // lies in both extension ranges. Testing the
                                // *joint* relation { S[x] -> (o, o') } keeps
                                // the tile dims existential in one Omega
                                // feasibility call per basic-map pair;
                                // projecting each range first (the old
                                // `range().intersect().is_empty()` chain)
                                // splintered the ranges into per-tile
                                // disjuncts and Omega-tested the full cross
                                // product — over a million emptiness calls
                                // on one Local Laplacian check, found via
                                // the algo3/rule2 span's counters.
                                let joint = ei.reverse().flat_range_product(&ej.reverse())?;
                                if !joint.is_empty()? {
                                    new_conflicts.insert(g);
                                    break 'pairs;
                                }
                            }
                        }
                    }
                }
            }
        }
        if new_conflicts.is_subset(&excluded) {
            break;
        }
        excluded.extend(new_conflicts);
    }

    // Surgery per live-out (in tree order so paths stay valid: each
    // surgery only touches its own group's child and marks producers).
    for m in &mixed {
        algorithm2(&mut tree, program, &groups, m, has_top_sequence)?;
    }
    // Plain-tile groups that stayed out of fusion but are tilable:
    // excluded/untiled producers. (Fused groups' originals are skipped.)
    let fused_all: BTreeSet<usize> = mixed
        .iter()
        .flat_map(|m| m.fused_groups.iter().copied())
        .collect();
    let untiled_all: BTreeSet<usize> = mixed
        .iter()
        .flat_map(|m| m.untiled_groups.iter().copied())
        .chain(excluded.iter().copied())
        .collect();
    if has_top_sequence {
        for &g in &untiled_all {
            if !fused_all.contains(&g) {
                plain_tile_group(&mut tree, g, &opts.tile_sizes, has_top_sequence)?;
            }
        }
    }
    {
        let _span = tilefuse_trace::span!("optimize/validate");
        tree.validate()?;
    }

    // Scratch arrays: targets of fused producer statements, each scoped to
    // the depth of its extension node (sequence position + tile dims).
    let mut scratch_arrays = BTreeSet::new();
    let mut scratch_scopes = std::collections::BTreeMap::new();
    for m in &mixed {
        let scope = m.k + usize::from(has_top_sequence);
        for e in &m.extensions {
            let arr = program.stmt(e.stmt).body().target;
            scratch_arrays.insert(arr);
            // An array fused under several live-outs keeps the smaller
            // scope (coarser clearing is safe: slices are disjoint).
            scratch_scopes
                .entry(arr)
                .and_modify(|s: &mut usize| *s = (*s).min(scope))
                .or_insert(scope);
        }
    }

    Ok(Optimized {
        tree,
        report: Report {
            groups,
            liveouts,
            mixed,
            scratch_arrays,
            scratch_scopes,
            shared_unfused: excluded.into_iter().collect(),
            deps,
            phases: Vec::new(),
        },
    })
}

/// The extension schedule of statement `s` in `m` (its range is the
/// instance slice fused into `m`'s tiles), or `None` when not fused there.
fn ext_of(m: &MixedSchedules, s: tilefuse_pir::StmtId) -> Option<&tilefuse_presburger::Map> {
    m.extensions.iter().find(|e| e.stmt == s).map(|e| &e.ext)
}

/// Per-array count of fused producer instance executions vs. distinct
/// instances — quantifies overlapped-tiling recomputation for reporting.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn recomputation_factor(
    optimized: &Optimized,
    param_values: &[i64],
) -> Result<BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    for m in &optimized.report.mixed {
        for e in &m.extensions {
            let pairs = e
                .ext
                .as_wrapped_set()
                .fixed_params(param_values)?
                .count_points(param_values)?;
            let distinct = e
                .ext
                .range()?
                .fixed_params(param_values)?
                .count_points(param_values)?;
            if distinct > 0 {
                let name = crate::footprint::stmt_of_map(&e.ext)?;
                out.insert(name, pairs as f64 / distinct as f64);
            }
        }
    }
    Ok(out)
}
