//! Algorithm 1: construct arbitrary tile shapes.
//!
//! Rectangular tiling is applied *only to the live-out computation space*;
//! the tile shapes of intermediate spaces are then derived from the memory
//! footprints each live-out tile requires (upwards exposed data), walking
//! producer chains transitively (lines 9–16 of the paper's Algorithm 1).
//! The result is a set of *mixed schedules*: one tiling schedule for the
//! live-out group plus one extension schedule per fused producer statement.

use crate::error::{Error, Result};
use crate::footprint::{chained_footprint, exposed_footprint, extension_schedule};
use std::collections::{BTreeMap, BTreeSet};
use tilefuse_pir::{ArrayId, Dependence, Program, StmtId};
use tilefuse_presburger::Map;
use tilefuse_schedtree::Band;
use tilefuse_scheduler::{band_part, loop_vars, Group};

/// Deliberate legality bugs for validating external checkers.
///
/// The differential fuzzing oracle (`crates/fuzzgen`) proves it can catch
/// real fusion-legality regressions by injecting one on purpose and
/// demanding a detection. Production callers always use
/// [`FaultInjection::None`]; the other variants exist only so a test can
/// flip a known-correct guard off and watch the oracle object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No fault: the optimizer behaves as published.
    #[default]
    None,
    /// Skip Algorithm 3's Rule 2: fuse a shared producer even when the
    /// per-consumer slices intersect, silently introducing recomputation
    /// of the intersection (and, for accumulating consumers, wrong
    /// results).
    SkipSharedSliceCheck,
    /// Inject budget exhaustion into every producer's extension
    /// computation: Algorithm 1 must absorb it per producer (rung 2 —
    /// fusion dropped, group tiled independently) and the result must
    /// still be valid and bit-exact. Unlike [`Self::SkipSharedSliceCheck`]
    /// the oracle must *pass* under this fault.
    BudgetExhaustExtension,
    /// Inject budget exhaustion between the fusion fixpoint and the tree
    /// surgery: the ladder must fall to rung 3 (plain live-out tiling).
    BudgetExhaustSurgery,
    /// Inject budget exhaustion at surgery *and* at plain tiling: the
    /// ladder must fall through rung 3 to rung 4 (untiled conservative
    /// schedule).
    BudgetExhaustTiling,
    /// Corrupt the bytecode lowering of the optimized tree (one load's
    /// access function is offset by one element). Inert inside the
    /// optimizer — the fuzz oracle applies it after `optimize` via
    /// `CompiledProgram::inject_mis_lower` so its VM differential check
    /// can prove it catches a miscompiled backend.
    VmMisLower,
}

/// Optimizer options (the paper's target-specific knobs).
#[derive(Debug, Clone)]
pub struct Options {
    /// Tile sizes for the live-out bands (a prefix is used when a band is
    /// shallower). Empty = no tiling (fusion-only, the equake case).
    pub tile_sizes: Vec<i64>,
    /// Cap on exploitable outer parallelism: `Some(1)` when targeting
    /// OpenMP CPUs, `Some(2)` for CUDA GPUs (Section III-C), `None` for
    /// unlimited.
    pub parallel_cap: Option<usize>,
    /// The conservative start-up fusion heuristic.
    pub startup: tilefuse_scheduler::FusionHeuristic,
    /// Recomputation budget: a producer whose extension schedule would
    /// re-execute its instances more than this factor (evaluated at the
    /// program's default parameters) is not fused. Overlapped stencil
    /// halos stay well below this; fusing a matrix product into every
    /// consumer tile (re-running the whole producer per tile) blows past
    /// it — the storage-vs-recomputation judgement the akg cost model
    /// makes in the paper's Section V-A.
    pub max_recompute: f64,
    /// Deliberate legality bug to inject (testing only; see
    /// [`FaultInjection`]).
    pub fault: FaultInjection,
    /// Resource budget for the run (wall-clock deadline, Omega op/branch
    /// budget, disjunct and interned-row caps). Default: unlimited. On
    /// exhaustion `optimize` degrades along its ladder instead of failing —
    /// see [`crate::Report::degradation`].
    pub budget: tilefuse_trace::Budget,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            tile_sizes: vec![32, 32],
            parallel_cap: None,
            startup: tilefuse_scheduler::FusionHeuristic::MinFuse,
            max_recompute: 3.0,
            fault: FaultInjection::None,
            budget: tilefuse_trace::Budget::default(),
        }
    }
}

impl Options {
    /// CPU-targeted options (OpenMP: one parallel dimension).
    pub fn cpu(tile_sizes: &[i64]) -> Self {
        Options {
            tile_sizes: tile_sizes.to_vec(),
            parallel_cap: Some(1),
            ..Options::default()
        }
    }

    /// GPU-targeted options (two-level hardware parallelism).
    pub fn gpu(tile_sizes: &[i64]) -> Self {
        Options {
            tile_sizes: tile_sizes.to_vec(),
            parallel_cap: Some(2),
            ..Options::default()
        }
    }
}

/// One extension schedule: the producer instances each live-out tile
/// (re)computes.
#[derive(Debug, Clone)]
pub struct ExtensionPart {
    /// The producer statement.
    pub stmt: StmtId,
    /// The producer's fusion group (index into the start-up groups).
    pub group: usize,
    /// Relation (6): `{ [o...] -> Stmt[i] }` over the live-out tile dims.
    pub ext: Map,
}

/// One absorbed budget-exhaustion event: where the budget tripped and
/// what the optimizer gave up in response. Collected into
/// [`crate::optimize::DegradationReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetTrip {
    /// The governed phase that tripped (`"algo1/extension"`, ...).
    pub phase: &'static str,
    /// Which limit tripped (`"deadline"`, `"omega-ops"`, ...).
    pub limit: &'static str,
    /// What was dropped or degraded (human-readable).
    pub detail: String,
}

impl BudgetTrip {
    /// Builds a trip from an absorbed error. Non-budget errors absorbed
    /// under `governor::approximated()` (set algebra failing on a
    /// capped-feasibility artifact) record the `"approximation"` limit.
    pub(crate) fn from_error(e: &Error, fallback_phase: &'static str, detail: String) -> Self {
        let (limit, phase) = e.budget_info().unwrap_or(("approximation", fallback_phase));
        BudgetTrip {
            phase,
            limit,
            detail,
        }
    }
}

/// The output of Algorithm 1 for one live-out group.
#[derive(Debug, Clone)]
pub struct MixedSchedules {
    /// The live-out group index.
    pub liveout: usize,
    /// Number of tiled band dimensions (0 = fusion without tiling).
    pub k: usize,
    /// The tile band (present when `k > 0`).
    pub tile_band: Option<Band>,
    /// Parallel dimensions of the live-out tile band after the target cap
    /// — the `m` of the paper.
    pub m: usize,
    /// Extension schedules of fused producer statements, in statement
    /// order.
    pub extensions: Vec<ExtensionPart>,
    /// Producer groups fully fused into this live-out's tiles (topological
    /// order).
    pub fused_groups: Vec<usize>,
    /// Producer groups rejected by the `m > n` parallelism guard; they keep
    /// their own schedules (and are tiled independently — line 17).
    pub untiled_groups: Vec<usize>,
    /// Budget-exhaustion events absorbed while building this live-out's
    /// schedules (rung-2 degradations: each dropped one producer's fusion).
    pub budget_trips: Vec<BudgetTrip>,
}

/// Runs Algorithm 1 for the live-out group `liveout` over its producer
/// groups.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn algorithm1(
    program: &Program,
    deps: &[Dependence],
    groups: &[Group],
    liveout: usize,
    producers: &[usize],
    opts: &Options,
) -> Result<MixedSchedules> {
    let _span = tilefuse_trace::span!("algo1", "liveout group {liveout}");
    // Validate user-supplied group structure before any indexing; the rest
    // of the function slices `shifts[idx][..k]` / `coincident[..k]` freely.
    if liveout >= groups.len() {
        return Err(Error::InvalidInput(format!(
            "live-out group index {liveout} out of range ({} groups)",
            groups.len()
        )));
    }
    if let Some(&p) = producers.iter().find(|&&p| p >= groups.len()) {
        return Err(Error::InvalidInput(format!(
            "producer group index {p} out of range ({} groups)",
            groups.len()
        )));
    }
    for g in groups {
        tilefuse_scheduler::validate_group(program, g)?;
    }
    let lg = &groups[liveout];
    let k = lg.depth.min(opts.tile_sizes.len());
    // Build per-statement tile-dimension maps (relation (2)). Budget
    // exhaustion *here* propagates: the live-out band itself cannot be
    // degraded per producer, so the ladder in `optimize` handles it
    // (rung 3: plain tiling on a fresh grant).
    crate::error::checkpoint("algo1/tile-band")?;
    let band_span = tilefuse_trace::span!("algo1/tile-band");
    let mut tile_maps = Vec::new();
    let tile_band = if k > 0 {
        let mut parts = Vec::new();
        for (idx, &s) in lg.stmts.iter().enumerate() {
            let vars = loop_vars(program, s);
            parts.push(band_part(program, s, &vars[..k], &lg.shifts[idx][..k])?);
        }
        let prefix = Band::new(
            tilefuse_presburger::UnionMap::from_parts(parts)?,
            true,
            lg.coincident[..k].to_vec(),
        )?;
        let (tile, _) = prefix.tile(&opts.tile_sizes[..k])?;
        for &s in &lg.stmts {
            let name = program.stmt(s).name();
            let part = tile
                .sched()
                .parts()
                .iter()
                .find(|m| m.space().in_tuple().name() == Some(name))
                .ok_or_else(|| Error::Internal(format!("no tile part for {name}")))?;
            tile_maps.push(part.clone());
        }
        Some(tile)
    } else {
        for &s in &lg.stmts {
            tile_maps.push(band_part(program, s, &[], &[])?);
        }
        None
    };
    let m_raw = lg.coincident[..k].iter().take_while(|&&c| c).count();
    let m = match opts.parallel_cap {
        Some(cap) => m_raw.min(cap),
        None => m_raw,
    };
    // Tile count of the live-out space at the default parameters (for the
    // recomputation budget below).
    let params = program.param_values(&[]);
    let n_tiles = {
        let rep = lg.stmts[0];
        let vars = loop_vars(program, rep);
        let hull = program
            .stmt(rep)
            .domain()
            .rect_hull(&params)?
            .unwrap_or_default();
        let mut n = 1.0f64;
        for (j, &ts) in opts.tile_sizes.iter().take(k).enumerate() {
            let extent = vars
                .get(j)
                .and_then(|&d| hull.get(d))
                .map(|(l, u)| (u - l + 1).max(0) as f64)
                .unwrap_or(1.0);
            n *= (extent / ts as f64).ceil();
        }
        n
    };
    drop(band_span);

    // Upwards exposed data of the live-out group: arrays read by it but
    // written by producer groups (line 5).
    let producer_stmts: BTreeSet<StmtId> = producers
        .iter()
        .flat_map(|&g| groups[g].stmts.iter().copied())
        .collect();
    let producer_targets: BTreeSet<ArrayId> = producer_stmts
        .iter()
        .map(|&s| program.stmt(s).body().target)
        .collect();
    let mut budget_trips: Vec<BudgetTrip> = Vec::new();
    let mut needed: BTreeMap<ArrayId, Map> = BTreeMap::new();
    {
        let _s = tilefuse_trace::span!("algo1/exposed", "{} arrays", producer_targets.len());
        crate::error::checkpoint("algo1/exposed")?;
        for &arr in &producer_targets {
            let attempt: Result<Option<Map>> =
                (|| match exposed_footprint(program, &lg.stmts, &tile_maps, arr)? {
                    Some(fp) if !fp.is_empty()? => Ok(Some(fp)),
                    _ => Ok(None),
                })();
            match attempt {
                Ok(Some(fp)) => {
                    needed.insert(arr, fp);
                }
                Ok(None) => {}
                // Rung-2 absorption: no footprint demand is recorded for
                // this array, so its producers simply stay unfused (sound:
                // they keep their original schedules). A fresh grant keeps
                // one blown deadline from cascading into every remaining
                // array.
                Err(e) if crate::optimize::degradable(&e) => {
                    budget_trips.push(BudgetTrip::from_error(
                        &e,
                        "algo1/exposed",
                        format!("dropped exposed footprint of array {}", arr.0),
                    ));
                    tilefuse_trace::governor::rearm();
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Walk producer chains (lines 9–16).
    let mut extensions: Vec<ExtensionPart> = Vec::new();
    let mut untiled: BTreeSet<usize> = BTreeSet::new();
    let mut remaining: BTreeSet<StmtId> = producer_stmts.clone();
    let group_of = |s: StmtId| -> Result<usize> {
        groups
            .iter()
            .position(|g| g.stmts.contains(&s))
            .ok_or_else(|| Error::InvalidInput(format!("statement {} belongs to no group", s.0)))
    };
    let reads_array = |s: StmtId, arr: ArrayId| -> bool {
        program
            .stmt(s)
            .body()
            .rhs
            .loads()
            .iter()
            .any(|&(a, _)| a == arr)
    };
    loop {
        // Consumer-before-producer order: a statement's extension is
        // computed from the footprint of its target array, so every fused
        // reader of that array must have contributed its chained footprint
        // first. Otherwise a producer read both directly by the live-out
        // and by a fused stencil (a diamond) gets a slice missing the
        // stencil's halo rows. Fall back to any needed statement when no
        // reader-free one exists (cyclic array dataflow).
        let strict = remaining.iter().copied().find(|&s| {
            let t = program.stmt(s).body().target;
            needed.contains_key(&t) && !remaining.iter().any(|&o| o != s && reads_array(o, t))
        });
        let Some(s) = strict.or_else(|| {
            remaining
                .iter()
                .copied()
                .find(|&s| needed.contains_key(&program.stmt(s).body().target))
        }) else {
            break;
        };
        remaining.remove(&s);
        let g = group_of(s)?;
        if untiled.contains(&g) {
            continue;
        }
        // The m > n parallelism guard (line 8): a producer group with fewer
        // parallel loops than the live-out tile band must not be fused.
        let n = match opts.parallel_cap {
            Some(cap) => groups[g].n_outer_parallel().min(cap),
            None => groups[g].n_outer_parallel(),
        };
        if m > n {
            untiled.insert(g);
            for &other in &groups[g].stmts {
                remaining.remove(&other);
            }
            continue;
        }
        let target = program.stmt(s).body().target;
        let fp = needed
            .get(&target)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("no footprint for statement {}", s.0)))?;
        // The whole per-producer pipeline (extension schedule, recompute
        // estimate, chained footprints) runs as one fallible attempt so a
        // budget trip anywhere inside drops exactly this producer's fusion
        // (rung 2) without committing partial footprint updates.
        type Attempt = Result<Option<(Map, Vec<(ArrayId, Map)>)>>;
        let attempt: Attempt = (|| {
            if opts.fault == FaultInjection::BudgetExhaustExtension {
                return Err(Error::injected_budget("algo1/extension"));
            }
            crate::error::checkpoint("algo1/extension")?;
            let ext_span = tilefuse_trace::span!("algo1/extension", "stmt {}", s.0);
            let write = program.write_access(s)?;
            let ext = coalesced(&extension_schedule(&fp, &write)?)?;
            if tilefuse_trace::governor::approximated() {
                // Capped feasibility may have let an actually-empty piece
                // survive into the extension; such junk can project to an
                // unbounded hull only at *execution* time, far past any
                // absorption point. Probing the hull here forces that
                // failure now, where it degrades to dropping this one
                // producer instead of failing the interpreter.
                ext.as_wrapped_set().rect_hull(&params)?;
            }
            // Recomputation budget (see Options::max_recompute): estimate how
            // many times the producer would re-execute across tiles.
            let over_budget =
                recompute_estimate(program, &ext, s, n_tiles, &params)? > opts.max_recompute;
            drop(ext_span);
            if over_budget {
                return Ok(None);
            }
            // Extend the footprint demands through this statement's reads
            // (line 15) so transitive producers can be tiled too.
            let _chain_span = tilefuse_trace::span!("algo1/chain", "stmt {}", s.0);
            crate::error::checkpoint("algo1/chain")?;
            let mut updates: Vec<(ArrayId, Map)> = Vec::new();
            for &arr in &producer_targets {
                if arr == target {
                    continue;
                }
                if let Some(extra) = chained_footprint(program, s, &ext, arr)? {
                    if extra.is_empty()? {
                        continue;
                    }
                    // Coalesce after every union: deep multi-consumer DAGs
                    // (pyramids) otherwise snowball near-duplicate disjuncts —
                    // each level's point read is subsumed by its stencil
                    // sibling's halo read.
                    let merged = match needed.get(&arr) {
                        Some(m) => m.union(&extra)?,
                        None => extra,
                    };
                    updates.push((arr, coalesced(&merged)?));
                }
            }
            Ok(Some((ext, updates)))
        })();
        match attempt {
            Ok(Some((ext, updates))) => {
                for (arr, m) in updates {
                    needed.insert(arr, m);
                }
                extensions.push(ExtensionPart {
                    stmt: s,
                    group: g,
                    ext,
                });
            }
            // Over the recomputation budget: the group keeps its own
            // schedule (hull fallbacks are priced by max_recompute here).
            Ok(None) => {
                untiled.insert(g);
                for &other in &groups[g].stmts {
                    remaining.remove(&other);
                }
            }
            // Rung-2 absorption: drop fusion for exactly this producer's
            // group, rearm so the remaining producers get a fresh grant.
            Err(e) if crate::optimize::degradable(&e) => {
                budget_trips.push(BudgetTrip::from_error(
                    &e,
                    "algo1/extension",
                    format!("dropped fusion of statement {} (group {g})", s.0),
                ));
                untiled.insert(g);
                for &other in &groups[g].stmts {
                    remaining.remove(&other);
                }
                tilefuse_trace::governor::rearm();
            }
            Err(e) => return Err(e),
        }
    }

    // A group is fused only when every member received an extension
    // schedule; partial groups keep their original schedule.
    let mut fused_groups: Vec<usize> = Vec::new();
    for &g in producers {
        if untiled.contains(&g) {
            continue;
        }
        let covered = groups[g]
            .stmts
            .iter()
            .all(|&s| extensions.iter().any(|e| e.stmt == s));
        if covered {
            fused_groups.push(g);
        }
    }
    // Stale-read guard: skipping a fused group's original schedule is
    // only sound when every producer group reading its outputs is itself
    // fused (the live-out reads through the extension slices instead).
    // An unfused reader would consume an array nobody writes any more.
    // Dropping a group can strand new readers, so iterate to a fixpoint.
    loop {
        let stale = fused_groups.iter().copied().find(|&g| {
            let written: BTreeSet<ArrayId> = groups[g]
                .stmts
                .iter()
                .map(|&s| program.stmt(s).body().target)
                .collect();
            producers.iter().any(|&h| {
                h != g
                    && !fused_groups.contains(&h)
                    && groups[h]
                        .stmts
                        .iter()
                        .any(|&s| written.iter().any(|&a| reads_array(s, a)))
            })
        });
        match stale {
            Some(g) => fused_groups.retain(|&x| x != g),
            None => break,
        }
    }
    fused_groups.sort_unstable();
    extensions.retain(|e| fused_groups.contains(&e.group));
    extensions.sort_by_key(|e| e.stmt);
    let _ = deps; // dependences are implicit in the access-relation walk
    Ok(MixedSchedules {
        liveout,
        k,
        tile_band,
        m,
        extensions,
        fused_groups,
        untiled_groups: untiled.into_iter().collect(),
        budget_trips,
    })
}

/// Disjunct budget for footprints and extension schedules. Deep
/// multi-consumer DAGs (image pyramids with up/downsampling) produce
/// footprint unions whose parity-constrained pieces cannot be merged
/// exactly; past this budget the count compounds geometrically with
/// pipeline depth. Over-approximating the footprint is sound — the
/// extension is clipped to the producer's domain by composition with the
/// write access, so a looser footprint only adds recomputation (which the
/// `max_recompute` budget then prices in).
const FOOTPRINT_DISJUNCT_CAP: usize = 12;

/// Simplifies a map viewed as a wrapped set: exact coalescing first
/// (drop empty/subsumed disjuncts, merge adjacent ones), then a
/// single-disjunct hull over-approximation when still over budget.
fn coalesced(m: &Map) -> Result<Map> {
    // A governor disjunct cap can only *shrink* the built-in budget
    // (hulling earlier over-approximates more, which stays sound and is
    // priced by max_recompute); it never loosens it.
    let cap = FOOTPRINT_DISJUNCT_CAP.min(tilefuse_trace::governor::disjunct_cap());
    let mut s = m.as_wrapped_set().coalesce()?;
    if s.n_basic() > cap {
        s = s.simple_hull()?;
    }
    // Record the *kept* disjunct count (post-hull), so the report's peak
    // reflects what the pipeline actually carried forward.
    tilefuse_trace::governor::note_disjuncts(s.n_basic());
    Ok(Map::from_wrapped_set(s)?)
}

/// Estimated recomputation factor of fusing `stmt` via `ext`:
/// `(tiles × per-tile instances) / total instances`, with the per-tile
/// count sampled at the origin tile (box approximation).
fn recompute_estimate(
    program: &Program,
    ext: &Map,
    stmt: StmtId,
    n_tiles: f64,
    params: &[i64],
) -> Result<f64> {
    let card = |set: &tilefuse_presburger::Set| -> Result<f64> {
        Ok(match set.rect_hull(params)? {
            None => 0.0,
            Some(h) => h.iter().map(|(l, u)| (u - l + 1).max(0) as f64).product(),
        })
    };
    let k = ext.space().n_in();
    let per_tile = card(&ext.image_of(&vec![0; k])?)?;
    let base = card(program.stmt(stmt).domain())?.max(1.0);
    Ok((n_tiles * per_tile / base).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_pir::{compute_dependences, ArrayKind, Body, Expr, IdxExpr, SchedTerm};
    use tilefuse_scheduler::{fuse, FuseBudget, FusionHeuristic};

    /// The paper's conv2d with quantization (Fig. 1(a)), H = W = 6,
    /// KH = KW = 3.
    fn conv2d() -> Program {
        let mut p = Program::new("conv2d").with_param("H", 6).with_param("W", 6);
        let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![3.into(), 3.into()], ArrayKind::Input);
        let c = p.add_array(
            "C",
            vec![("H", -2).into(), ("W", -2).into()],
            ArrayKind::Output,
        );
        let d2 = |d| IdxExpr::dim(2, d);
        let d4 = |d| IdxExpr::dim(4, d);
        p.add_stmt(
            "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
            Body {
                target: a,
                target_idx: vec![d2(0), d2(1)],
                rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
            vec![
                SchedTerm::Cst(1),
                SchedTerm::Var(0),
                SchedTerm::Var(1),
                SchedTerm::Cst(0),
            ],
            Body {
                target: c,
                target_idx: vec![d2(0), d2(1)],
                rhs: Expr::Const(0.0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
            vec![
                SchedTerm::Cst(1),
                SchedTerm::Var(0),
                SchedTerm::Var(1),
                SchedTerm::Cst(1),
                SchedTerm::Var(2),
                SchedTerm::Var(3),
            ],
            Body {
                target: c,
                target_idx: vec![d4(0), d4(1)],
                rhs: Expr::add(
                    Expr::load(c, vec![d4(0), d4(1)]),
                    Expr::mul(
                        Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                        Expr::load(b, vec![d4(2), d4(3)]),
                    ),
                ),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S3[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Var(1)],
            Body {
                target: c,
                target_idx: vec![d2(0), d2(1)],
                rhs: Expr::relu(Expr::load(c, vec![d2(0), d2(1)])),
            },
        )
        .unwrap();
        p
    }

    fn setup() -> (Program, Vec<Dependence>, Vec<Group>) {
        let p = conv2d();
        let deps = compute_dependences(&p).unwrap();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::SmartFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        (p, deps, f.groups)
    }

    #[test]
    fn startup_matches_paper_grouping() {
        let (_, _, groups) = setup();
        // ({S0}, {S1, S2, S3}) — the conservative result of Section II.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].stmts, vec![StmtId(0)]);
        assert_eq!(groups[1].stmts, vec![StmtId(1), StmtId(2), StmtId(3)]);
        assert_eq!(groups[1].coincident, vec![true, true]);
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        let (p, deps, groups) = setup();
        let opts = Options {
            tile_sizes: vec![2, 2],
            ..Options::default()
        };
        // Live-out index out of range: used to panic on `groups[liveout]`.
        let e = algorithm1(&p, &deps, &groups, 7, &[0], &opts).unwrap_err();
        assert!(matches!(e, Error::InvalidInput(_)), "unexpected: {e}");
        // Producer index out of range.
        let e = algorithm1(&p, &deps, &groups, 1, &[9], &opts).unwrap_err();
        assert!(matches!(e, Error::InvalidInput(_)), "unexpected: {e}");
        // Group depth deeper than a member's shift vector: used to panic
        // slicing `shifts[idx][..k]`.
        let mut bad = groups.clone();
        bad[1].shifts = vec![vec![]; bad[1].stmts.len()];
        let e = algorithm1(&p, &deps, &bad, 1, &[0], &opts).unwrap_err();
        assert!(
            e.to_string().contains("malformed fusion group"),
            "unexpected: {e}"
        );
        // Empty group.
        let mut bad = groups.clone();
        bad[0].stmts.clear();
        bad[0].shifts.clear();
        assert!(algorithm1(&p, &deps, &bad, 1, &[0], &opts).is_err());
    }

    #[test]
    fn algorithm1_fuses_quantization_into_tiles() {
        let (p, deps, groups) = setup();
        let opts = Options {
            tile_sizes: vec![2, 2],
            ..Options::default()
        };
        let mixed = algorithm1(&p, &deps, &groups, 1, &[0], &opts).unwrap();
        assert_eq!(mixed.k, 2);
        assert_eq!(mixed.m, 2);
        assert_eq!(mixed.fused_groups, vec![0]);
        assert!(mixed.untiled_groups.is_empty());
        assert_eq!(mixed.extensions.len(), 1);
        // The extension schedule equals the paper's relation (6).
        let expected: Map = "[H, W] -> { [o0, o1] -> S0[h, w] : 0 <= o0 <= 1 and 0 <= o1 <= 1 \
               and 2o0 <= h <= 2o0 + 3 and 2o1 <= w <= 2o1 + 3 }"
            .parse()
            .unwrap();
        let got = mixed.extensions[0]
            .ext
            .fix_param(0, 6)
            .unwrap()
            .fix_param(1, 6)
            .unwrap();
        let want = expected.fix_param(0, 6).unwrap().fix_param(1, 6).unwrap();
        assert!(got.is_equal(&want).unwrap(), "got {got}");
    }

    #[test]
    fn parallelism_guard_rejects_serial_producers() {
        // If the cap says the live-out has 2 parallel dims but the producer
        // has fewer (simulate with cap): producer n capped below m.
        let (p, deps, groups) = setup();
        // Pretend the producer group has no parallelism by lowering its
        // coincident flags.
        let mut groups2 = groups.clone();
        groups2[0].coincident = vec![false, false];
        let opts = Options {
            tile_sizes: vec![2, 2],
            ..Options::default()
        };
        let mixed = algorithm1(&p, &deps, &groups2, 1, &[0], &opts).unwrap();
        assert_eq!(mixed.fused_groups, Vec::<usize>::new());
        assert_eq!(mixed.untiled_groups, vec![0]);
        assert!(mixed.extensions.is_empty());
    }

    #[test]
    fn fusion_without_tiling_when_no_sizes() {
        // The equake case: no tiling, extension over zero tile dims.
        let (p, deps, groups) = setup();
        let opts = Options {
            tile_sizes: vec![],
            ..Options::default()
        };
        let mixed = algorithm1(&p, &deps, &groups, 1, &[0], &opts).unwrap();
        assert_eq!(mixed.k, 0);
        assert!(mixed.tile_band.is_none());
        assert_eq!(mixed.m, 0);
        assert_eq!(mixed.fused_groups, vec![0]);
        let ext = &mixed.extensions[0].ext;
        assert_eq!(ext.space().n_in(), 0);
        // All S0 instances needed by the (single) whole-space "tile".
        let inst = ext.range().unwrap().fixed_params(&[6, 6]).unwrap();
        assert_eq!(inst.count_points(&[6, 6]).unwrap(), 36);
    }

    #[test]
    fn cpu_cap_reduces_m() {
        let (p, deps, groups) = setup();
        let opts = Options {
            tile_sizes: vec![2, 2],
            parallel_cap: Some(1),
            ..Options::default()
        };
        let mixed = algorithm1(&p, &deps, &groups, 1, &[0], &opts).unwrap();
        assert_eq!(mixed.m, 1);
        assert_eq!(mixed.fused_groups, vec![0]);
    }

    #[test]
    fn diamond_footprint_includes_fused_stencil_halo() {
        // The live-out reads A both directly and through a fused stencil:
        //   S0: A[i] = i            S1: B[i] = A[i] + A[i+2]
        //   S2 (live-out): C[i] = A[i] + B[i]
        // S0's slice must not be finalized from the live-out's direct
        // (point) read before S1's chained stencil footprint lands —
        // tile o needs A[4o .. 4o+5], not just A[4o .. 4o+3].
        let mut p = Program::new("diamond").with_param("N", 12);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Temp);
        let c = p.add_array("C", vec![("N", -2).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: c,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(b, vec![IdxExpr::dim(1, 0)]),
                ),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::MinFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        let opts = Options {
            tile_sizes: vec![4],
            ..Options::default()
        };
        let mixed = algorithm1(&p, &deps, &f.groups, 2, &[0, 1], &opts).unwrap();
        assert_eq!(mixed.fused_groups, vec![0, 1]);
        let e0 = mixed
            .extensions
            .iter()
            .find(|e| e.stmt == StmtId(0))
            .unwrap();
        let inst = e0.ext.image_of(&[0]).unwrap().fixed_params(&[12]).unwrap();
        // 4 tile points + the stencil's 2-element halo.
        assert_eq!(inst.count_points(&[12]).unwrap(), 6);
    }

    #[test]
    fn transitive_chain_is_followed() {
        // S0 -> S1 -> liveout: both producers get extension schedules.
        let mut p = Program::new("chain").with_param("N", 12);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Temp);
        let c = p.add_array("C", vec![("N", -4).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[i] : 0 <= i < N - 4 }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: c,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(b, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(b, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::SmartFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 3);
        let opts = Options {
            tile_sizes: vec![4],
            ..Options::default()
        };
        let mixed = algorithm1(&p, &deps, &f.groups, 2, &[0, 1], &opts).unwrap();
        assert_eq!(mixed.fused_groups, vec![0, 1]);
        assert_eq!(mixed.extensions.len(), 2);
        // S1's extension per tile covers the stencil halo: tile 0 of S2
        // needs B[0..5] (4 points + halo 2), so S1 instances 0..=5.
        let e1 = mixed
            .extensions
            .iter()
            .find(|e| e.stmt == StmtId(1))
            .unwrap();
        let inst = e1.ext.image_of(&[0]).unwrap().fixed_params(&[12]).unwrap();
        assert_eq!(inst.count_points(&[12]).unwrap(), 6);
        // And S0's extension covers S1's needs plus its own halo: A[0..7].
        let e0 = mixed
            .extensions
            .iter()
            .find(|e| e.stmt == StmtId(0))
            .unwrap();
        let inst0 = e0.ext.image_of(&[0]).unwrap().fixed_params(&[12]).unwrap();
        assert_eq!(inst0.count_points(&[12]).unwrap(), 8);
    }
}
