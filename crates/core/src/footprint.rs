//! Memory footprints and extension schedules — the paper's relations
//! (2)–(6).
//!
//! Given a tiled live-out computation space, this module computes:
//! * the *tile-dimension map* (relation (2)): `{ S[i] -> [o] }`;
//! * the *footprint of upwards exposed data* (relation (4)):
//!   `{ [o] -> A[x] }`, every element of `A` a tile needs;
//! * the *extension schedule* (relation (6)): `{ [o] -> S0[i] }`, the
//!   producer instances each tile must (re)compute, obtained by composing
//!   the footprint with the reverse of the producer's write access.
//!
//! The module's tests reproduce the paper's Section III example verbatim
//! (H = W = 6, KH = KW = 3, T2 = T3 = 2), including the blue/red tile
//! footprints `{A[h',w'] : 2 ≤ h' ≤ 5 ∧ 0 ≤ w' ≤ 3}` and
//! `{A[h',w'] : 2 ≤ h' ≤ 5 ∧ 2 ≤ w' ≤ 5}`.

use crate::error::{Error, Result};
use tilefuse_pir::{ArrayId, Program, StmtId};
use tilefuse_presburger::Map;

/// The footprint of `array` needed by each tile of a live-out group:
/// relation (4), `{ [o] -> A[x] }`.
///
/// `tile_maps` are the per-statement tile-dimension maps (relation (2),
/// `{ S[i] -> [o] }`) of the group's statements.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn exposed_footprint(
    program: &Program,
    stmts: &[StmtId],
    tile_maps: &[Map],
    array: ArrayId,
) -> Result<Option<Map>> {
    let mut acc: Option<Map> = None;
    for (&s, tile_map) in stmts.iter().zip(tile_maps) {
        let Some(read) = program.read_access_to(s, array)? else {
            continue;
        };
        // (reverse of (2)) ∘ (3): tiles -> statement instances -> data.
        let part = tile_map.reverse().compose(&read)?;
        acc = Some(match acc {
            None => part,
            Some(prev) => prev.union(&part)?,
        });
    }
    Ok(acc)
}

/// The extension schedule (relation (6)): composes a tile footprint
/// `{ [o] -> A[x] }` with the reverse of the producer's write access
/// (relation (5), `{ A[x] -> S0[i] }`), yielding `{ [o] -> S0[i] }`.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn extension_schedule(footprint: &Map, write: &Map) -> Result<Map> {
    Ok(footprint.compose(&write.reverse())?)
}

/// The footprint of `array` needed by already-fused producer instances:
/// used when walking producer chains (Algorithm 1, lines 9–16) — the
/// instances a tile recomputes have reads of their own.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn chained_footprint(
    program: &Program,
    stmt: StmtId,
    ext: &Map,
    array: ArrayId,
) -> Result<Option<Map>> {
    let Some(read) = program.read_access_to(stmt, array)? else {
        return Ok(None);
    };
    Ok(Some(ext.compose(&read)?))
}

/// Validates that an extension schedule covers everything the consumer
/// needs: every element of `footprint` must be written by some instance in
/// the extension's range (otherwise a tile would read an undefined value).
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn covers_footprint(ext: &Map, write: &Map, footprint: &Map) -> Result<bool> {
    // produced = { [o] -> A[x] : instance in ext writes x }
    let produced = ext.compose(write)?;
    Ok(footprint.is_subset(&produced)?)
}

/// Convenience: an upwards-exposed-data summary for one live-out group.
#[derive(Debug, Clone)]
pub struct ExposedData {
    /// The array.
    pub array: ArrayId,
    /// Relation (4) for this array.
    pub footprint: Map,
}

impl ExposedData {
    /// Renders as `A: { [o] -> A[...] ... }` for diagnostics.
    pub fn describe(&self, program: &Program) -> String {
        format!("{}: {}", program.array(self.array).name(), self.footprint)
    }
}

/// Internal helper: requires a named in-tuple.
pub(crate) fn stmt_of_map(m: &Map) -> Result<String> {
    m.space()
        .out_tuple()
        .name()
        .map(str::to_owned)
        .ok_or_else(|| Error::Internal("extension schedule target must be named".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_presburger::Set;

    /// The paper's Section III running example, with concrete sizes
    /// H = W = 6, KH = KW = 3 and tile sizes T2 = T3 = 2.
    /// Reduction space: S2[h,w,kh,kw], 0<=h,w<=3, 0<=kh,kw<=2.
    /// Tiling schedule (relation (2)): o = (h/2, w/2).
    fn paper_tile_map() -> Map {
        "{ S2[h,w,kh,kw] -> [o0, o1] : 2o0 <= h <= 2o0 + 1 and 2o1 <= w <= 2o1 + 1 \
           and 0 <= h <= 3 and 0 <= w <= 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }"
            .parse()
            .unwrap()
    }

    /// Relation (3): the read access of S2 to tensor A.
    fn paper_read() -> Map {
        "{ S2[h,w,kh,kw] -> A[h+kh, w+kw] : 0 <= h <= 3 and 0 <= w <= 3 \
           and 0 <= kh <= 2 and 0 <= kw <= 2 }"
            .parse()
            .unwrap()
    }

    /// Relation (5) reversed source: the write access of S0 to tensor A.
    fn paper_write() -> Map {
        "{ S0[h, w] -> A[h, w] : 0 <= h <= 5 and 0 <= w <= 5 }"
            .parse()
            .unwrap()
    }

    /// Relation (4) computed as reverse(2) ∘ (3).
    fn paper_footprint() -> Map {
        paper_tile_map().reverse().compose(&paper_read()).unwrap()
    }

    #[test]
    fn relation4_matches_paper_closed_form() {
        // (4): { (o0,o1) -> A[h',w'] : 0 <= o0 < 2 and 0 <= o1 < 2 and
        //        2 o0 <= h' < 2 o0 + 4 and 2 o1 <= w' < 2 o1 + 4 }
        // (ceil((6-3+1)/2) = 2 tiles per dim; KH + T2 - 1 = 4 extent).
        let got = paper_footprint();
        let expected: Map = "{ [o0, o1] -> A[h', w'] : 0 <= o0 <= 1 and 0 <= o1 <= 1 \
             and 2o0 <= h' <= 2o0 + 3 and 2o1 <= w' <= 2o1 + 3 }"
            .parse()
            .unwrap();
        assert!(got.is_equal(&expected).unwrap(), "got {got}");
    }

    #[test]
    fn blue_and_red_tile_footprints_match_paper() {
        let fp = paper_footprint();
        // Blue tile (o0, o1) = (1, 0): {A[h',w'] : 2<=h'<=5 and 0<=w'<=3}.
        let blue = fp.image_of(&[1, 0]).unwrap();
        let expected_blue: Set = "{ A[h', w'] : 2 <= h' <= 5 and 0 <= w' <= 3 }"
            .parse()
            .unwrap();
        assert!(blue.is_equal(&expected_blue).unwrap(), "blue = {blue}");
        // Red tile (1, 1): {A[h',w'] : 2<=h'<=5 and 2<=w'<=5}.
        let red = fp.image_of(&[1, 1]).unwrap();
        let expected_red: Set = "{ A[h', w'] : 2 <= h' <= 5 and 2 <= w' <= 5 }"
            .parse()
            .unwrap();
        assert!(red.is_equal(&expected_red).unwrap(), "red = {red}");
        // Their intersection is the interleaved region read by both tiles.
        let overlap = blue.intersect(&red).unwrap();
        assert_eq!(overlap.count_points(&[]).unwrap(), 4 * 2);
    }

    #[test]
    fn relation6_matches_paper_closed_form() {
        // (6): { (o0,o1) -> S0[h,w] : same box as (4) transported to S0 }.
        let ext = extension_schedule(&paper_footprint(), &paper_write()).unwrap();
        let expected: Map = "{ [o0, o1] -> S0[h, w] : 0 <= o0 <= 1 and 0 <= o1 <= 1 \
             and 2o0 <= h <= 2o0 + 3 and 2o1 <= w <= 2o1 + 3 }"
            .parse()
            .unwrap();
        assert!(ext.is_equal(&expected).unwrap(), "ext = {ext}");
        // Blue tile instances: { S0[h,w] : 2<=h<=5 and 0<=w<=3 } (paper).
        let blue = ext.image_of(&[1, 0]).unwrap();
        let expected_blue: Set = "{ S0[h, w] : 2 <= h <= 5 and 0 <= w <= 3 }"
            .parse()
            .unwrap();
        assert!(blue.is_equal(&expected_blue).unwrap());
    }

    #[test]
    fn extension_covers_consumer_footprint() {
        let fp = paper_footprint();
        let ext = extension_schedule(&fp, &paper_write()).unwrap();
        assert!(covers_footprint(&ext, &paper_write(), &fp).unwrap());
        // A producer writing only the left half of A cannot cover the
        // footprint (tiles at o1 = 1 need columns 2..=5).
        let partial: Map = "{ S0[h, w] -> A[h, w] : 0 <= h <= 5 and 0 <= w <= 3 }"
            .parse()
            .unwrap();
        let ext2 = extension_schedule(&fp, &partial).unwrap();
        assert!(!covers_footprint(&ext2, &partial, &fp).unwrap());
    }

    #[test]
    fn overlapped_tiles_recompute_instances() {
        // The same S0 instance appears in several tiles' extensions: count
        // total (tile, instance) pairs vs distinct instances.
        let ext = extension_schedule(&paper_footprint(), &paper_write()).unwrap();
        let total_pairs = ext.as_wrapped_set().count_points(&[]).unwrap();
        let distinct = ext.range().unwrap().count_points(&[]).unwrap();
        assert_eq!(total_pairs, 4 * 16); // 4 tiles × 4x4 footprint
        assert_eq!(distinct, 36); // whole 6x6 image
        assert!(total_pairs > distinct, "overlap implies recomputation");
    }

    #[test]
    fn matmul_like_access_yields_rectangular_tiles() {
        // Fine-tuning the kh/kw loops into a matmul-style access (paper,
        // end of Section III): pointwise access -> rectangular, no overlap.
        let tile: Map = "{ S2[i, j] -> [o] : 2o <= i <= 2o + 1 and 0 <= i <= 3 and 0 <= j <= 3 }"
            .parse()
            .unwrap();
        let read: Map = "{ S2[i, j] -> A[i] : 0 <= i <= 3 and 0 <= j <= 3 }"
            .parse()
            .unwrap();
        let fp = tile.reverse().compose(&read).unwrap();
        let t0 = fp.image_of(&[0]).unwrap();
        let t1 = fp.image_of(&[1]).unwrap();
        assert!(t0.intersect(&t1).unwrap().is_empty().unwrap(), "no overlap");
        assert_eq!(t0.count_points(&[]).unwrap(), 2);
    }
}
