//! Unit tests for the optimizer facade: tree shapes, single-group
//! programs, plain tiling of rejected producers, and option presets.

use crate::{optimize, Options};
use tilefuse_pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse_schedtree::Node;
use tilefuse_scheduler::FusionHeuristic;

fn opts(tiles: &[i64]) -> Options {
    Options {
        tile_sizes: tiles.to_vec(),
        parallel_cap: None,
        startup: FusionHeuristic::MinFuse,
        ..Default::default()
    }
}

/// Single live-out statement, nothing to fuse: plain tiling only.
fn single_stmt_program() -> Program {
    let mut p = Program::new("single").with_param("N", 32);
    let a = p.add_array("A", vec!["N".into(), "N".into()], ArrayKind::Output);
    let d2 = |k| IdxExpr::dim(2, k);
    p.add_stmt(
        "{ S0[i, j] : 0 <= i < N and 0 <= j < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: a,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::add(Expr::Iter(0), Expr::Iter(1)),
        },
    )
    .unwrap();
    p
}

#[test]
fn single_group_program_gets_plain_tiling() {
    let p = single_stmt_program();
    let o = optimize(&p, &opts(&[8, 8])).unwrap();
    // No extensions, no scratch; the tree has two nested bands (tile +
    // point).
    assert!(o.report.scratch_arrays.is_empty());
    assert_eq!(o.report.mixed.len(), 1);
    assert!(o.report.mixed[0].extensions.is_empty());
    assert_eq!(o.report.mixed[0].k, 2);
    let bands = o.tree.find_all(&|n| matches!(n, Node::Band { .. }));
    assert!(bands.len() >= 2, "tile + point bands expected");
    // Validate + execute.
    let (r, _) = tilefuse_codegen::reference_execute(&p, &[]).unwrap();
    let (t, _) =
        tilefuse_codegen::execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    tilefuse_codegen::check_outputs_match(&p, &r, &t, 0.0).unwrap();
}

#[test]
fn tile_sizes_longer_than_band_are_truncated() {
    let p = single_stmt_program();
    let o = optimize(&p, &opts(&[8, 8, 8, 8])).unwrap();
    assert_eq!(o.report.mixed[0].k, 2, "band depth caps the tile dims");
}

#[test]
fn no_tiling_when_sizes_empty() {
    let p = single_stmt_program();
    let o = optimize(&p, &opts(&[])).unwrap();
    assert_eq!(o.report.mixed[0].k, 0);
    assert!(o.report.mixed[0].tile_band.is_none());
}

#[test]
fn option_presets_set_caps() {
    let c = Options::cpu(&[16, 16]);
    assert_eq!(c.parallel_cap, Some(1));
    assert_eq!(c.tile_sizes, vec![16, 16]);
    let g = Options::gpu(&[16, 16]);
    assert_eq!(g.parallel_cap, Some(2));
    let d = Options::default();
    assert_eq!(d.parallel_cap, None);
}

#[test]
fn parallelism_guard_leaves_producer_plain_tiled() {
    // Producer is a serial scan (loop-carried): n = 0 < m -> untiled, but
    // still correct and still plain-tiled where possible.
    let mut p = Program::new("serial_prod").with_param("N", 24);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    // S0: A[i] = A[i-1] + 1 (prefix scan; serial).
    p.add_stmt(
        "{ S0[i] : 1 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::add(Expr::load(a, vec![i1(0).offset(-1)]), Expr::Const(1.0)),
        },
    )
    .unwrap();
    // S1: B[i] = A[i] * 2 (parallel consumer).
    p.add_stmt(
        "{ S1[i] : 1 <= i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: b,
            target_idx: vec![i1(0)],
            rhs: Expr::mul(Expr::load(a, vec![i1(0)]), Expr::Const(2.0)),
        },
    )
    .unwrap();
    let o = optimize(&p, &opts(&[6])).unwrap();
    // The serial producer must NOT be fused into parallel tiles (m=1 > n=0).
    assert!(!o.report.is_fused(0), "serial producer must stay unfused");
    assert!(o.report.mixed.iter().any(|m| m.untiled_groups.contains(&0)));
    let (r, _) = tilefuse_codegen::reference_execute(&p, &[]).unwrap();
    let (t, _) =
        tilefuse_codegen::execute_tree(&p, &o.tree, &[], &o.report.scratch_scopes).unwrap();
    tilefuse_codegen::check_outputs_match(&p, &r, &t, 0.0).unwrap();
}

#[test]
fn fig5_tree_contains_extension_between_tile_and_point_bands() {
    // Pointwise producer + tiled consumer: the extension node must sit
    // under the tile band and above the sequence of filters.
    let mut p = Program::new("shape").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ C[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: b,
            target_idx: vec![i1(0)],
            rhs: Expr::load(a, vec![i1(0)]),
        },
    )
    .unwrap();
    let o = optimize(&p, &opts(&[4])).unwrap();
    let ext_path = o
        .tree
        .find(&|n| matches!(n, Node::Extension { .. }))
        .expect("extension node present");
    // Parent chain: the node above the extension is the tile band.
    let parent = o.tree.node_at(&ext_path[..ext_path.len() - 1]).unwrap();
    assert!(
        matches!(parent, Node::Band { .. }),
        "extension under tile band"
    );
    // Below the extension: a sequence whose children are filters.
    let below = o.tree.node_at(&[&ext_path[..], &[0]].concat()).unwrap();
    assert!(matches!(below, Node::Sequence { .. }));
    // The skipped mark exists somewhere for the producer.
    assert!(o
        .tree
        .find(&|n| matches!(n, Node::Mark { mark, .. } if mark == tilefuse_schedtree::MARK_SKIPPED))
        .is_some());
    // Extension in-arity = sequence position + tile dims = 1 + 1.
    match o.tree.node_at(&ext_path).unwrap() {
        Node::Extension { extension, .. } => {
            assert_eq!(extension.parts()[0].space().n_in(), 2);
        }
        _ => unreachable!(),
    }
}

#[test]
fn recomputation_factor_is_one_for_pointwise_fusion() {
    let mut p = Program::new("pw").with_param("N", 16);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec!["N".into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ P[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: a,
            target_idx: vec![i1(0)],
            rhs: Expr::Iter(0),
        },
    )
    .unwrap();
    p.add_stmt(
        "{ C[i] : 0 <= i < N }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: b,
            target_idx: vec![i1(0)],
            rhs: Expr::load(a, vec![i1(0)]),
        },
    )
    .unwrap();
    let o = optimize(&p, &opts(&[4])).unwrap();
    let rf = crate::recomputation_factor(&o, &p.param_values(&[])).unwrap();
    assert_eq!(rf.len(), 1);
    assert!(
        (rf["P"] - 1.0).abs() < 1e-9,
        "pointwise fusion has no overlap"
    );
}
