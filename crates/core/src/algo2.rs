//! Algorithm 2: post-tiling fusion by schedule-tree manipulation.
//!
//! For each live-out group: replace its band with the tiling schedule,
//! split into tile and point bands, graft an extension node carrying the
//! producers' extension schedules under the tile band, introduce sequence
//! and filter nodes for tile-wise fusion, and mark the producers' original
//! subtrees `"skipped"` — reproducing the tree of the paper's Fig. 5.

use crate::algo1::MixedSchedules;
use crate::error::{Error, Result};
use tilefuse_pir::Program;
use tilefuse_presburger::{AffExpr, Map, Space, Tuple, UnionMap, UnionSet};
use tilefuse_schedtree::{band, extension, filter, sequence, Node, ScheduleTree, MARK_SKIPPED};

/// Applies the post-tiling fusion of `mixed` to `tree` (built by the
/// start-up heuristic with one top-level sequence child per group — the
/// output of [`tilefuse_scheduler::build_tree`]).
///
/// `has_top_sequence` says whether the tree has a top-level sequence (it
/// does whenever there are at least two groups).
///
/// # Errors
/// Returns an error if the tree does not have the expected shape.
pub fn algorithm2(
    tree: &mut ScheduleTree,
    program: &Program,
    groups: &[tilefuse_scheduler::Group],
    mixed: &MixedSchedules,
    has_top_sequence: bool,
) -> Result<()> {
    let _span = tilefuse_trace::span!("algo2/graft", "liveout group {}", mixed.liveout);
    let l = mixed.liveout;
    let liveout_path: Vec<usize> = if has_top_sequence {
        vec![0, l, 0]
    } else {
        vec![0]
    };
    // The live-out group's subtree starts with its shared band when the
    // group has one.
    let old = tree.node_at(&liveout_path)?.clone();
    let (point_band, old_child) = match old {
        Node::Band { band: b, child } => (Some(b), *child),
        other => (None, other),
    };

    // Build the live-out branch: point band over the original child.
    let liveout_branch_inner = match &point_band {
        Some(b) => band(b.clone(), old_child),
        None => old_child,
    };

    let new_node = if mixed.extensions.is_empty() {
        // Plain tiling (or nothing to do at all).
        match (&mixed.tile_band, point_band) {
            (Some(tb), Some(_)) => band(tb.clone(), liveout_branch_inner),
            _ => liveout_branch_inner,
        }
    } else {
        // Extension parts, with the sequence position prepended when the
        // extension sits below the top-level sequence.
        let mut parts = Vec::new();
        for e in &mixed.extensions {
            let m = if has_top_sequence {
                prepend_const_in_dim(&e.ext, l as i64)?
            } else {
                e.ext.clone()
            };
            parts.push(m);
        }
        let ext_map = UnionMap::from_parts(parts)?;
        // One filter per fused producer group (topological order), then the
        // live-out filter.
        let mut branches = Vec::new();
        for &g in &mixed.fused_groups {
            let sub = original_group_subtree(tree, g, has_top_sequence)?;
            let mut f = UnionSet::new();
            for &s in &groups[g].stmts {
                f.add(program.stmt(s).domain().clone())?;
            }
            branches.push(filter(f, sub));
        }
        let mut lf = UnionSet::new();
        for &s in &groups[l].stmts {
            f_add(&mut lf, program, s)?;
        }
        branches.push(filter(lf, liveout_branch_inner));
        let fused = extension(ext_map, sequence(branches));
        match &mixed.tile_band {
            Some(tb) => band(tb.clone(), fused),
            None => fused,
        }
    };
    tree.replace_at(&liveout_path, new_node)?;

    // Mark the fused producers' original subtrees as skipped (below their
    // filters so sequence/filter structure stays valid).
    for &g in &mixed.fused_groups {
        if has_top_sequence {
            tree.mark_at(&[0, g, 0], MARK_SKIPPED)?;
        }
    }
    Ok(())
}

fn f_add(us: &mut UnionSet, program: &Program, s: tilefuse_pir::StmtId) -> Result<()> {
    us.add(program.stmt(s).domain().clone())?;
    Ok(())
}

/// Plain-tiles the band of group `g` (the line-17 treatment of groups the
/// parallelism guard rejected from fusion).
///
/// # Errors
/// Returns an error if the tree does not have the expected shape.
pub fn plain_tile_group(
    tree: &mut ScheduleTree,
    g: usize,
    tile_sizes: &[i64],
    has_top_sequence: bool,
) -> Result<()> {
    let _span = tilefuse_trace::span!("algo2/plain-tile", "group {g}");
    let path: Vec<usize> = if has_top_sequence {
        vec![0, g, 0]
    } else {
        vec![0]
    };
    let old = tree.node_at(&path)?.clone();
    let Node::Band { band: b, child } = old else {
        return Ok(()); // no band to tile
    };
    let k = b.n_member().min(tile_sizes.len());
    if k == 0 || !b.permutable() {
        return Ok(());
    }
    let prefix = b.truncate_members(k)?;
    let (tile, _) = prefix.tile(&tile_sizes[..k])?;
    let new_node = band(tile, band(b, *child));
    tree.replace_at(&path, new_node)?;
    Ok(())
}

/// Fetches (a clone of) the subtree under group `g`'s top-level filter,
/// unwrapping a possible skip mark from an earlier surgery pass.
fn original_group_subtree(tree: &ScheduleTree, g: usize, has_top_sequence: bool) -> Result<Node> {
    let path: Vec<usize> = if has_top_sequence {
        vec![0, g, 0]
    } else {
        vec![0]
    };
    let node = tree.node_at(&path)?.clone();
    Ok(match node {
        Node::Mark { mark, child } if mark == MARK_SKIPPED => *child,
        other => other,
    })
}

/// `{ [o...] -> S[i] }` to `{ [c, o...] -> S[i] }` with a pinned constant
/// first input dimension.
fn prepend_const_in_dim(ext: &Map, value: i64) -> Result<Map> {
    let rev = ext.reverse();
    let dom_space = rev.space().domain_space();
    let params: Vec<&str> = dom_space.params().iter().map(String::as_str).collect();
    let cspace = dom_space.join_map(&Space::set(&params, Tuple::anonymous(1)))?;
    let cmap = Map::from_affine(cspace.clone(), &[AffExpr::constant(&cspace, value)])?;
    Ok(cmap.flat_range_product(&rev)?.reverse())
}

/// Internal sanity check used by tests: an extension node's in-arity.
#[allow(dead_code)]
pub(crate) fn extension_in_arity(node: &Node) -> Result<usize> {
    match node {
        Node::Extension { extension, .. } => Ok(extension
            .parts()
            .first()
            .map(|m| m.space().n_in())
            .ok_or_else(|| Error::Internal("empty extension".into()))?),
        _ => Err(Error::Internal("not an extension node".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_const_pins_first_dim() {
        let ext: Map = "{ [o] -> S[i] : 2o <= i <= 2o + 1 }".parse().unwrap();
        let p = prepend_const_in_dim(&ext, 7).unwrap();
        assert_eq!(p.space().n_in(), 2);
        assert!(p.contains_pair(&[7, 1, 3]).unwrap());
        assert!(!p.contains_pair(&[6, 1, 3]).unwrap());
        assert!(!p.contains_pair(&[7, 1, 4]).unwrap());
    }
}
