//! Post-tiling fusion: the MICRO 2020 composition of loop tiling and
//! fusion.
//!
//! This crate is the paper's primary contribution:
//!
//! 1. **Algorithm 1** ([`algorithm1`]): apply rectangular tiling *only* to
//!    live-out computation spaces, compute the memory footprints each tile
//!    requires (the `footprint` module — the paper's relations (2)–(6)), and derive
//!    *extension schedules* that tile intermediate computation spaces with
//!    arbitrary (possibly overlapped) shapes.
//! 2. **Algorithm 2** ([`algorithm2`]): post-tiling fusion as schedule-tree
//!    surgery — tile/point band splitting, extension-node grafting, and
//!    `"skipped"` marks, producing the tree of the paper's Fig. 5.
//! 3. **Algorithm 3** ([`optimize`]): the full composition over multiple
//!    live-out spaces, with the shared-intermediate rule that never
//!    introduces recomputation across live-outs, and fine-grained dead
//!    code elimination as a side effect.
//!
//! ```no_run
//! use tilefuse_core::{optimize, Options};
//! # fn conv2d_program() -> tilefuse_pir::Program { unimplemented!() }
//! let program = conv2d_program();
//! let optimized = optimize(&program, &Options::cpu(&[32, 32]))?;
//! println!("{}", tilefuse_schedtree::render(&optimized.tree));
//! # Ok::<(), tilefuse_core::Error>(())
//! ```

// Non-test code must not panic on Option/Result: budget exhaustion and
// malformed inputs are typed, recoverable events in this pipeline. CI runs
// clippy with `-D warnings`, so these warns are hard failures there;
// justified exceptions carry a local `#[allow]` with an invariant comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod algo1;
mod algo2;
mod error;
mod footprint;
mod optimize;
#[cfg(test)]
mod tests_optimize;

pub use algo1::{algorithm1, BudgetTrip, ExtensionPart, FaultInjection, MixedSchedules, Options};
pub use algo2::{algorithm2, plain_tile_group};
pub use error::{Error, Result};
pub use footprint::{
    chained_footprint, covers_footprint, exposed_footprint, extension_schedule, ExposedData,
};
pub use optimize::{optimize, recomputation_factor, DegradationReport, Optimized, Report};
