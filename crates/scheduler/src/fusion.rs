//! Fusion heuristics: minfuse, smartfuse, maxfuse, hybridfuse.
//!
//! These model the baseline strategies the paper compares against
//! (Section VI): isl/PPCG's `minfuse` (no fusion), `smartfuse` (maximize
//! fusion without hampering parallelism or tilability), `maxfuse`
//! (maximize fusion regardless, using shifting to restore legality), and
//! Pluto's `hybridfuse`. The post-tiling strategy of the paper itself lives
//! in `tilefuse-core` and *starts from* a conservative result produced
//! here.

use crate::checks::{dim_satisfies, distance_range, loop_vars, DimCheck};
use crate::error::{Error, Result};
use std::collections::BTreeSet;
use tilefuse_pir::{DepGraph, Dependence, Program, StmtId};

/// The fusion strategies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionHeuristic {
    /// No fusion: each strongly connected component is its own group.
    MinFuse,
    /// Fuse greedily while preserving outer parallelism and tilability
    /// (isl's default).
    SmartFuse,
    /// Fuse as much as legality allows, shifting statements to repair
    /// negative dependence distances; parallelism may be lost. Performs an
    /// exhaustive partition search (the source of the paper's compile-time
    /// explosion), subject to [`FuseBudget`].
    MaxFuse,
    /// Pluto's hybrid: conservative at outer levels, aggressive inside.
    /// Modeled after the paper's Table II, including its failure on
    /// non-rectangular (triangular) domains.
    HybridFuse,
}

/// A fusion group: statements sharing one outer band.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Member statements, in original program order.
    pub stmts: Vec<StmtId>,
    /// Shared (permutable) band depth.
    pub depth: usize,
    /// Per-statement, per-band-dim schedule shifts (all zero unless the
    /// heuristic applied shifting).
    pub shifts: Vec<Vec<i64>>,
    /// Per-band-dim parallelism.
    pub coincident: Vec<bool>,
    /// Whether every member's *innermost* loop is parallel (no
    /// self-dependence carried there) — the auto-vectorization criterion
    /// the cost model uses.
    pub innermost_parallel: bool,
}

impl Group {
    /// Number of leading parallel band dimensions.
    pub fn n_outer_parallel(&self) -> usize {
        self.coincident.iter().take_while(|&&c| c).count()
    }

    /// The shift vector of `stmt` within this group.
    pub fn shift_of(&self, stmt: StmtId) -> Option<&[i64]> {
        self.stmts
            .iter()
            .position(|&s| s == stmt)
            .map(|k| self.shifts[k].as_slice())
    }
}

/// Work budget for the exhaustive `maxfuse` search.
#[derive(Debug, Clone)]
pub struct FuseBudget {
    /// Maximum number of candidate partitions to evaluate.
    pub max_steps: u64,
    /// Steps consumed so far.
    pub steps: u64,
}

impl FuseBudget {
    /// A budget of `max_steps` partition evaluations.
    pub fn new(max_steps: u64) -> Self {
        FuseBudget {
            max_steps,
            steps: 0,
        }
    }

    fn tick(&mut self) -> bool {
        self.steps += 1;
        self.steps <= self.max_steps
    }
}

impl Default for FuseBudget {
    fn default() -> Self {
        FuseBudget::new(2_000)
    }
}

/// The result of running a fusion heuristic.
#[derive(Debug, Clone)]
pub struct Fusion {
    /// The fusion groups in execution order.
    pub groups: Vec<Group>,
    /// Whether the maxfuse search ran out of budget (reported like the
    /// paper's `>24h` entries).
    pub budget_exhausted: bool,
    /// Partition evaluations performed.
    pub steps: u64,
}

/// Runs `heuristic` on `program` given its dependences.
///
/// # Errors
/// Returns [`Error::Unsupported`] when hybridfuse meets a non-rectangular
/// domain (the modeled ✗ of Table II), or set-operation errors.
pub fn fuse(
    program: &Program,
    deps: &[Dependence],
    heuristic: FusionHeuristic,
    budget: &mut FuseBudget,
) -> Result<Fusion> {
    let graph = DepGraph::new(program.stmts().len(), deps);
    let sccs = graph.sccs_topological();
    match heuristic {
        FusionHeuristic::MinFuse => {
            let groups = sccs
                .iter()
                .map(|scc| analyze_group(program, deps, scc, false))
                .collect::<Result<Vec<_>>>()?
                .into_iter()
                .flatten()
                .collect();
            Ok(Fusion {
                groups,
                budget_exhausted: false,
                steps: 0,
            })
        }
        FusionHeuristic::SmartFuse => {
            let groups = greedy_fuse(program, deps, &graph, &sccs, false)?;
            Ok(Fusion {
                groups,
                budget_exhausted: false,
                steps: 0,
            })
        }
        FusionHeuristic::MaxFuse => maxfuse(program, deps, &graph, &sccs, budget),
        FusionHeuristic::HybridFuse => {
            reject_nonrectangular(program)?;
            let groups = greedy_fuse(program, deps, &graph, &sccs, false)?;
            Ok(Fusion {
                groups,
                budget_exhausted: false,
                steps: 0,
            })
        }
    }
}

/// Analyzes one candidate group: shared permutable band depth, shifts and
/// per-dim parallelism. Returns `None` if a multi-statement group has no
/// shared band at all.
pub fn analyze_group(
    program: &Program,
    deps: &[Dependence],
    stmts: &[StmtId],
    allow_shift: bool,
) -> Result<Option<Group>> {
    let members: BTreeSet<StmtId> = stmts.iter().copied().collect();
    let max_depth = stmts
        .iter()
        .map(|&s| loop_vars(program, s).len())
        .min()
        .unwrap_or(0);
    let deps_in: Vec<&Dependence> = deps
        .iter()
        .filter(|d| members.contains(&d.src) && members.contains(&d.dst))
        .collect();
    let param_values = program.param_values(&[]);
    let mut shifts: Vec<Vec<i64>> = vec![Vec::new(); stmts.len()];
    let mut coincident = Vec::new();
    let mut depth = 0;
    'dims: for j in 0..max_depth {
        // Solve for per-statement shifts at this dimension.
        let dim_shift = if allow_shift {
            match solve_shifts(program, &deps_in, stmts, j, &param_values)? {
                Some(s) => s,
                None => break 'dims,
            }
        } else {
            vec![0; stmts.len()]
        };
        // Legality: every intra-group dependence non-negative at j.
        for d in &deps_in {
            let si = stmt_index(stmts, d.src)?;
            let di = stmt_index(stmts, d.dst)?;
            if !dim_satisfies(
                program,
                d,
                j,
                dim_shift[si],
                dim_shift[di],
                DimCheck::NonNegative,
            )? {
                break 'dims;
            }
        }
        // Parallelism: distance identically zero.
        let mut coin = true;
        for d in &deps_in {
            let si = stmt_index(stmts, d.src)?;
            let di = stmt_index(stmts, d.dst)?;
            if !dim_satisfies(program, d, j, dim_shift[si], dim_shift[di], DimCheck::Zero)? {
                coin = false;
                break;
            }
        }
        coincident.push(coin);
        for (k, s) in shifts.iter_mut().enumerate() {
            s.push(dim_shift[k]);
        }
        depth = j + 1;
    }
    let innermost_parallel = innermost_parallel(program, &deps_in, stmts)?;
    if depth == 0 && stmts.len() > 1 {
        if !allow_shift {
            return Ok(None);
        }
        // maxfuse fuses even without a shared band: the loop nests are
        // merged serially (interchange/skewing in the real tool), losing
        // all parallelism — the degradation Table II shows for gemver and
        // covariance.
        return Ok(Some(Group {
            stmts: stmts.to_vec(),
            depth: 0,
            shifts: vec![Vec::new(); stmts.len()],
            coincident: Vec::new(),
            innermost_parallel: false,
        }));
    }
    Ok(Some(Group {
        stmts: stmts.to_vec(),
        depth,
        shifts,
        coincident,
        innermost_parallel,
    }))
}

/// Whether every member statement's innermost loop is free of carried
/// self-dependences (vectorizable).
fn innermost_parallel(
    program: &Program,
    deps_in: &[&Dependence],
    stmts: &[StmtId],
) -> Result<bool> {
    for &s in stmts {
        let n_levels = loop_vars(program, s).len();
        if n_levels == 0 {
            continue;
        }
        let level = n_levels - 1;
        for d in deps_in.iter().filter(|d| d.src == s && d.dst == s) {
            if !dim_satisfies(program, d, level, 0, 0, DimCheck::Zero)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Longest-path shift solving at band dimension `j`: find `δ` per statement
/// with `δ_dst − δ_src ≥ −min_distance(dep)` for every dependence; `None`
/// if infeasible (self-dependence with negative distance or positive
/// cycle).
/// Index of `s` within a group's statement list. Callers pre-filter their
/// dependences to in-group endpoints, so a miss is an internal invariant
/// violation — reported as a typed error, not a panic.
fn stmt_index(stmts: &[StmtId], s: StmtId) -> Result<usize> {
    stmts
        .iter()
        .position(|&x| x == s)
        .ok_or_else(|| Error::Internal(format!("dependence endpoint S{} not in fusion group", s.0)))
}

fn solve_shifts(
    program: &Program,
    deps_in: &[&Dependence],
    stmts: &[StmtId],
    j: usize,
    param_values: &[i64],
) -> Result<Option<Vec<i64>>> {
    let n = stmts.len();
    let mut edges: Vec<(usize, usize, i64)> = Vec::new(); // δ[d] >= δ[s] + w
    for d in deps_in {
        let Some((lo, _hi)) = distance_range(program, d, j, param_values)? else {
            continue;
        };
        let w = -lo;
        let si = stmt_index(stmts, d.src)?;
        let di = stmt_index(stmts, d.dst)?;
        if si == di {
            if w > 0 {
                return Ok(None); // self-dependence cannot be shifted away
            }
            continue;
        }
        // Every edge participates — zero-weight edges still propagate
        // shifts down producer chains (δ_dst ≥ δ_src).
        edges.push((si, di, w));
    }
    // Bellman-Ford longest path from implicit source (δ = 0 everywhere).
    let mut delta = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for &(s, d, w) in &edges {
            if delta[s] + w > delta[d] {
                delta[d] = delta[s] + w;
                changed = true;
            }
        }
        if !changed {
            return Ok(Some(delta));
        }
    }
    Ok(None) // positive cycle
}

/// Greedy chain fusion: walk SCCs in topological order, merging each into
/// the current group when legal and (for smartfuse semantics) parallelism-
/// preserving.
fn greedy_fuse(
    program: &Program,
    deps: &[Dependence],
    graph: &DepGraph,
    sccs: &[Vec<StmtId>],
    allow_shift: bool,
) -> Result<Vec<Group>> {
    let mut groups: Vec<Group> = Vec::new();
    for scc in sccs {
        let candidate_prev = groups.last();
        if let Some(prev) = candidate_prev {
            let mut merged: Vec<StmtId> = prev.stmts.clone();
            merged.extend(scc.iter().copied());
            merged.sort();
            // smartfuse only fuses along producer-consumer (proximity)
            // edges; fusing unrelated loop nests brings no locality.
            let connected = allow_shift
                || deps.iter().any(|d| {
                    prev.stmts.contains(&d.src) && scc.contains(&d.dst)
                        || prev.stmts.contains(&d.dst) && scc.contains(&d.src)
                });
            // smartfuse balks at deep band-depth mismatches (a 6-D
            // convolution vs. a 3-D batchnorm): the band split it would
            // need is beyond the heuristic — the paper's observation that
            // isl's smartfuse "failed to fuse convolutions and batch
            // normalizations" (Section VI-C).
            let depth_gap = {
                let max_prev = prev
                    .stmts
                    .iter()
                    .map(|&s| loop_vars(program, s).len())
                    .max()
                    .unwrap_or(0);
                let min_new = scc
                    .iter()
                    .map(|&s| loop_vars(program, s).len())
                    .min()
                    .unwrap_or(0);
                max_prev.saturating_sub(min_new)
            };
            let compatible_depth = allow_shift || depth_gap <= 2;
            let connected = connected && compatible_depth;
            let convex = graph.is_convex(&merged.iter().copied().collect());
            if connected && convex {
                if let Some(g) = analyze_group(program, deps, &merged, allow_shift)? {
                    let ok = if allow_shift {
                        true
                    } else {
                        // smartfuse: keep outer parallelism AND tilability
                        // (fusion must not shrink the shared permutable
                        // band below what the parts had).
                        let scc_depth =
                            analyze_group(program, deps, scc, false)?.map_or(0, |s| s.depth);
                        g.depth >= 1
                            && g.depth >= prev.depth.min(scc_depth)
                            && g.n_outer_parallel() >= 1
                            && g.n_outer_parallel() >= prev.n_outer_parallel().min(g.depth)
                    };
                    if ok {
                        *groups.last_mut().ok_or_else(|| {
                            Error::Internal("greedy merge with no current group".into())
                        })? = g;
                        continue;
                    }
                }
            }
        }
        let g = analyze_group(program, deps, scc, false)?
            .ok_or_else(|| Error::Internal("SCC group has no band".into()))?;
        groups.push(g);
    }
    Ok(groups)
}

/// maxfuse: exhaustive search over contiguous partitions of the SCC chain,
/// maximizing fusion (fewest groups), with shifting enabled. Exponential in
/// the number of SCCs — exactly the compile-time behaviour Table I reports
/// — so it runs under a [`FuseBudget`] and falls back to greedy when
/// exhausted.
fn maxfuse(
    program: &Program,
    deps: &[Dependence],
    graph: &DepGraph,
    sccs: &[Vec<StmtId>],
    budget: &mut FuseBudget,
) -> Result<Fusion> {
    let n = sccs.len();
    let mut best: Option<Vec<Group>> = None;
    let mut exhausted = false;
    // Enumerate partitions via binary cut masks (cut after SCC i when bit i
    // is set), in increasing cut count (fewest groups first). The masks are
    // streamed with Gosper's hack — the full space is 2^(n-1), which is
    // exactly the exponential exploration whose budget exhaustion the
    // paper's Table I reports as ">24h".
    if n <= 1 || n > 60 {
        let groups = greedy_fuse(program, deps, graph, sccs, true)?;
        return Ok(Fusion {
            groups,
            budget_exhausted: n > 60,
            steps: budget.steps,
        });
    }
    let bits = (n - 1) as u32;
    let limit = 1u64 << bits;
    let candidates = (0..=bits).flat_map(move |cuts| {
        // All masks with exactly `cuts` bits, in increasing value.
        let first: u64 = if cuts == 0 { 0 } else { (1u64 << cuts) - 1 };
        std::iter::successors(Some(first), move |&m| {
            if cuts == 0 {
                return None;
            }
            let c = m & m.wrapping_neg();
            let r = m + c;
            let next = (((r ^ m) >> 2) / c) | r;
            (next < limit).then_some(next)
        })
    });
    'search: for mask in candidates {
        if !budget.tick() {
            exhausted = true;
            break;
        }
        // Build the partition.
        let mut parts: Vec<Vec<StmtId>> = Vec::new();
        let mut cur: Vec<StmtId> = Vec::new();
        for (i, scc) in sccs.iter().enumerate() {
            cur.extend(scc.iter().copied());
            if i + 1 == n || (mask >> i) & 1 == 1 {
                parts.push(std::mem::take(&mut cur));
            }
        }
        if let Some(best_groups) = &best {
            if parts.len() >= best_groups.len() {
                continue;
            }
        }
        let mut groups = Vec::new();
        for p in &parts {
            let convex = graph.is_convex(&p.iter().copied().collect());
            if !convex {
                continue 'search;
            }
            match analyze_group(program, deps, p, true)? {
                Some(g) => groups.push(g),
                None => continue 'search,
            }
        }
        match &best {
            None => best = Some(groups),
            Some(b) if groups.len() < b.len() => best = Some(groups),
            _ => {}
        }
    }
    let groups = match best {
        Some(g) => g,
        None => greedy_fuse(program, deps, graph, sccs, true)?,
    };
    Ok(Fusion {
        groups,
        budget_exhausted: exhausted,
        steps: budget.steps,
    })
}

/// hybridfuse's modeled limitation: crashes (✗ in Table II) on programs
/// with non-rectangular iteration domains.
fn reject_nonrectangular(program: &Program) -> Result<()> {
    for s in program.stmts() {
        for b in s.domain().basics() {
            let np = s.domain().space().n_param();
            let nd = s.domain().space().n_dim();
            let coupled = b
                .eq_rows()
                .iter()
                .chain(b.ineq_rows())
                .any(|r| r[np..np + nd].iter().filter(|&&c| c != 0).count() >= 2);
            if coupled {
                return Err(Error::Unsupported(format!(
                    "hybridfuse: non-rectangular domain in {}",
                    s.name()
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_pir::{compute_dependences, ArrayKind, Body, Expr, IdxExpr, SchedTerm};

    /// Pointwise 3-stage pipeline: fully fusable with parallelism.
    fn pointwise3() -> (Program, Vec<Dependence>) {
        let mut p = Program::new("pw3").with_param("N", 16);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec!["N".into()], ArrayKind::Temp);
        let c = p.add_array("C", vec!["N".into()], ArrayKind::Output);
        let idx = || vec![IdxExpr::dim(1, 0)];
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: idx(),
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: idx(),
                rhs: Expr::load(a, idx()),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: c,
                target_idx: idx(),
                rhs: Expr::load(b, idx()),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        (p, deps)
    }

    /// Stencil pipeline: producer feeds a 3-point stencil consumer.
    fn stencil2() -> (Program, Vec<Dependence>) {
        let mut p = Program::new("st2").with_param("N", 16);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        (p, deps)
    }

    #[test]
    fn minfuse_keeps_statements_apart() {
        let (p, deps) = pointwise3();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::MinFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 3);
        assert!(f.groups.iter().all(|g| g.stmts.len() == 1));
        assert!(f.groups.iter().all(|g| g.coincident == vec![true]));
    }

    #[test]
    fn smartfuse_fuses_pointwise_chain() {
        let (p, deps) = pointwise3();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::SmartFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 1);
        assert_eq!(f.groups[0].stmts.len(), 3);
        assert_eq!(f.groups[0].coincident, vec![true]); // parallel preserved
    }

    #[test]
    fn smartfuse_refuses_stencil_fusion() {
        // Fusing would lose parallelism (distance -2..0), so smartfuse
        // keeps the stages apart — the Fig. 1(b) behaviour.
        let (p, deps) = stencil2();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::SmartFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 2);
    }

    #[test]
    fn maxfuse_fuses_stencil_with_shift() {
        let (p, deps) = stencil2();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::MaxFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 1, "maxfuse should fuse via shifting");
        let g = &f.groups[0];
        // Consumer shifted by +2 relative to producer.
        let s0 = g.shift_of(StmtId(0)).unwrap();
        let s1 = g.shift_of(StmtId(1)).unwrap();
        assert_eq!(s1[0] - s0[0], 2);
        // Parallelism lost: the fused dim is not coincident.
        assert_eq!(g.coincident, vec![false]);
    }

    #[test]
    fn shifts_propagate_down_chains() {
        // S0 -> S1 (stencil, needs +2) -> S2 (pointwise): the zero-distance
        // S1 -> S2 edge must carry S1's shift through to S2.
        let mut p = Program::new("chain").with_param("N", 16);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Temp);
        let c = p.add_array("C", vec![("N", -2).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(2), SchedTerm::Var(0)],
            Body {
                target: c,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::load(b, vec![IdxExpr::dim(1, 0)]),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        let g = analyze_group(&p, &deps, &[StmtId(0), StmtId(1), StmtId(2)], true)
            .unwrap()
            .unwrap();
        assert_eq!(g.depth, 1, "shifted fusion must find a band");
        let s0 = g.shift_of(StmtId(0)).unwrap()[0];
        let s1 = g.shift_of(StmtId(1)).unwrap()[0];
        let s2 = g.shift_of(StmtId(2)).unwrap()[0];
        assert_eq!(s1 - s0, 2);
        assert!(s2 >= s1, "zero-distance edge must propagate the shift");
    }

    #[test]
    fn maxfuse_counts_steps() {
        let (p, deps) = pointwise3();
        let mut budget = FuseBudget::default();
        let f = fuse(&p, &deps, FusionHeuristic::MaxFuse, &mut budget).unwrap();
        assert!(f.steps > 0);
        assert!(!f.budget_exhausted);
        assert_eq!(f.groups.len(), 1);
    }

    #[test]
    fn maxfuse_budget_exhaustion_falls_back() {
        let (p, deps) = pointwise3();
        let mut budget = FuseBudget::new(1);
        let f = fuse(&p, &deps, FusionHeuristic::MaxFuse, &mut budget).unwrap();
        assert!(f.budget_exhausted);
        assert!(!f.groups.is_empty());
    }

    #[test]
    fn hybridfuse_rejects_triangular_domains() {
        let mut p = Program::new("tri").with_param("N", 8);
        let a = p.add_array("A", vec!["N".into(), "N".into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i, j] : 0 <= i < N and 0 <= j <= i }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(2, 0), IdxExpr::dim(2, 1)],
                rhs: Expr::Const(1.0),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        let r = fuse(
            &p,
            &deps,
            FusionHeuristic::HybridFuse,
            &mut FuseBudget::default(),
        );
        assert!(matches!(r, Err(Error::Unsupported(_))));
    }

    #[test]
    fn hybridfuse_accepts_rectangular() {
        let (p, deps) = pointwise3();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::HybridFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 1);
    }

    #[test]
    fn analyze_group_reduction_keeps_outer_parallel() {
        // A reduction statement alone: C[i] += over j — i parallel, j not.
        let mut p = Program::new("red").with_param("N", 8);
        let c = p.add_array("C", vec!["N".into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i, j] : 0 <= i < N and 0 <= j < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
            Body {
                target: c,
                target_idx: vec![IdxExpr::dim(2, 0)],
                rhs: Expr::add(Expr::load(c, vec![IdxExpr::dim(2, 0)]), Expr::Iter(1)),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        let g = analyze_group(&p, &deps, &[StmtId(0)], false)
            .unwrap()
            .unwrap();
        assert!(g.depth >= 1);
        assert!(g.coincident[0], "outer dim of a row-reduction is parallel");
        if g.depth > 1 {
            assert!(!g.coincident[1], "reduction dim must not be parallel");
        }
    }
}
