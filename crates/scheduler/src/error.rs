//! Error type for the scheduler.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from scheduling and fusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The heuristic cannot handle this program shape (e.g. the modeled
    /// `hybridfuse` crash on triangular domains, reported as ✗ in the
    /// paper's Table II).
    Unsupported(String),
    /// Internal scheduling invariant violated.
    Internal(String),
    /// A user-constructed [`crate::Group`] is inconsistent (statement id
    /// out of range, `depth` deeper than a member's loop nest or shift
    /// vector, mismatched `shifts`/`coincident` lengths); replaces what
    /// used to be slice-index panics inside tree building.
    MalformedGroup(String),
    /// Underlying IR error.
    Pir(tilefuse_pir::Error),
    /// Underlying schedule-tree error.
    SchedTree(tilefuse_schedtree::Error),
    /// Underlying set/map error.
    Presburger(tilefuse_presburger::Error),
}

impl Error {
    /// Whether this error (at any wrapping depth) is a cooperative
    /// budget-exhaustion signal from the resource governor.
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        self.budget_info().is_some()
    }

    /// The `(limit, phase)` pair of a wrapped budget-exhaustion error.
    #[must_use]
    pub fn budget_info(&self) -> Option<(&'static str, &'static str)> {
        match self {
            Error::Pir(e) => e.budget_info(),
            Error::SchedTree(e) => e.budget_info(),
            Error::Presburger(e) => e.budget_info(),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unsupported(msg) => write!(f, "heuristic cannot handle program: {msg}"),
            Error::Internal(msg) => write!(f, "scheduler invariant violated: {msg}"),
            Error::MalformedGroup(msg) => write!(f, "malformed fusion group: {msg}"),
            Error::Pir(e) => write!(f, "IR error: {e}"),
            Error::SchedTree(e) => write!(f, "schedule tree error: {e}"),
            Error::Presburger(e) => write!(f, "set operation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pir(e) => Some(e),
            Error::SchedTree(e) => Some(e),
            Error::Presburger(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tilefuse_pir::Error> for Error {
    fn from(e: tilefuse_pir::Error) -> Self {
        Error::Pir(e)
    }
}

impl From<tilefuse_schedtree::Error> for Error {
    fn from(e: tilefuse_schedtree::Error) -> Self {
        Error::SchedTree(e)
    }
}

impl From<tilefuse_presburger::Error> for Error {
    fn from(e: tilefuse_presburger::Error) -> Self {
        Error::Presburger(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Unsupported("x".into())
            .to_string()
            .contains("cannot handle"));
        assert!(Error::Internal("y".into())
            .to_string()
            .contains("invariant"));
        assert!(Error::MalformedGroup("z".into())
            .to_string()
            .contains("malformed fusion group"));
        let e = Error::from(tilefuse_presburger::Error::Overflow("mul"));
        assert!(e.to_string().contains("overflow"));
    }
}
