//! Fusion heuristics and band construction for the tilefuse optimizer.
//!
//! This crate reproduces the *baseline* scheduling strategies the MICRO
//! 2020 paper evaluates against — isl/PPCG's `minfuse`, `smartfuse` and
//! `maxfuse` options and Pluto's `hybridfuse` — as dependence-graph
//! clustering with exact legality and parallelism analysis:
//!
//! * [`fuse`] runs a [`FusionHeuristic`] over a program's dependences and
//!   returns fusion [`Group`]s with shared band depth, per-dimension
//!   `coincident` (parallelism) flags and, for `maxfuse`, the shifts used
//!   to repair negative dependence distances;
//! * [`build_tree`] lowers fusion groups to a schedule tree (the shape of
//!   the paper's Fig. 2(b));
//! * [`check_schedule`] verifies any flattened schedule against the exact
//!   dependences — the safety net behind every transformation in this
//!   repository;
//! * [`schedule`] is the one-call façade combining all of the above.

// Non-test code must not panic on Option/Result: budget exhaustion and
// malformed inputs are typed, recoverable events in this pipeline. CI runs
// clippy with `-D warnings`, so these warns are hard failures there;
// justified exceptions carry a local `#[allow]` with an invariant comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod checks;
mod error;
mod fusion;
mod legality;
mod treebuild;

pub use checks::{dim_satisfies, distance_range, loop_vars, DimCheck};
pub use error::{Error, Result};
pub use fusion::{analyze_group, fuse, FuseBudget, Fusion, FusionHeuristic, Group};
pub use legality::{check_schedule, LegalityReport};
pub use treebuild::{band_part, build_tree, group_subtree, validate_group};

use tilefuse_pir::{compute_dependences, Dependence, Program};
use tilefuse_schedtree::ScheduleTree;

/// A scheduled program: fusion decision, schedule tree and the dependences
/// used to validate it.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// The fusion result.
    pub fusion: Fusion,
    /// The schedule tree (pre-tiling).
    pub tree: ScheduleTree,
    /// The program's dependences.
    pub deps: Vec<Dependence>,
}

/// Computes dependences, runs `heuristic`, and builds the schedule tree.
///
/// # Errors
/// Returns an error if the heuristic rejects the program (hybridfuse on
/// non-rectangular domains) or a set operation fails.
pub fn schedule(program: &Program, heuristic: FusionHeuristic) -> Result<Scheduled> {
    let _span = tilefuse_trace::span!("schedule");
    // Governor checkpoints piggyback on the existing span boundaries: each
    // marks the phase for exhaustion attribution and polls the deadline.
    checkpoint("schedule/deps")?;
    let deps = {
        let _s = tilefuse_trace::span!("schedule/deps");
        compute_dependences(program)?
    };
    checkpoint("schedule/fuse")?;
    let mut budget = FuseBudget::default();
    let fusion = {
        let _s = tilefuse_trace::span!("schedule/fuse", "{heuristic:?}");
        fuse(program, &deps, heuristic, &mut budget)?
    };
    checkpoint("schedule/treebuild")?;
    let tree = {
        let _s = tilefuse_trace::span!("schedule/treebuild");
        build_tree(program, &fusion.groups)?
    };
    Ok(Scheduled { fusion, tree, deps })
}

/// Marks a governed phase and polls the resource budget (no-op without an
/// installed governor), converting exhaustion into this crate's error.
fn checkpoint(phase: &'static str) -> Result<()> {
    tilefuse_trace::governor::checkpoint(phase)
        .map_err(|e| Error::Presburger(tilefuse_presburger::Error::from(e)))
}
