//! Dependence-distance analysis for band legality, parallelism and shifts.

use crate::error::{Error, Result};
use tilefuse_pir::{Dependence, Program, SchedTerm, StmtId};
use tilefuse_presburger::{AffExpr, Map, Set, Space, Tuple};

/// The ordered loop (variable) dimensions of a statement's initial
/// schedule — e.g. `S2(h,w,kh,kw) -> (1,h,w,1,kh,kw)` has loop vars
/// `[0, 1, 2, 3]`.
pub fn loop_vars(program: &Program, stmt: StmtId) -> Vec<usize> {
    program
        .stmt(stmt)
        .sched()
        .iter()
        .filter_map(|t| match t {
            SchedTerm::Var(d) => Some(*d),
            SchedTerm::Cst(_) => None,
        })
        .collect()
}

/// The comparison tested on one aligned band dimension of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimCheck {
    /// Violated when `dst_var < src_var` somewhere (breaks permutability).
    NonNegative,
    /// Violated when `dst_var != src_var` somewhere (breaks coincidence).
    Zero,
}

/// Whether dependence `dep`, aligned positionally at band level `j`
/// (the `j`-th loop var of source vs. destination, with optional constant
/// shifts), satisfies `check` for **all** pairs. Exact and parametric.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn dim_satisfies(
    program: &Program,
    dep: &Dependence,
    j: usize,
    src_shift: i64,
    dst_shift: i64,
    check: DimCheck,
) -> Result<bool> {
    let src_vars = loop_vars(program, dep.src);
    let dst_vars = loop_vars(program, dep.dst);
    let (Some(&sv), Some(&dv)) = (src_vars.get(j), dst_vars.get(j)) else {
        return Err(Error::Internal(format!(
            "band level {j} out of range for dependence"
        )));
    };
    let space = dep.map.space().clone();
    let n_in = space.n_in();
    let src = AffExpr::dim(&space, sv)?.checked_add(&AffExpr::constant(&space, src_shift))?;
    let dst =
        AffExpr::dim(&space, n_in + dv)?.checked_add(&AffExpr::constant(&space, dst_shift))?;
    let violating: Vec<tilefuse_presburger::Constraint> = match check {
        DimCheck::NonNegative => vec![dst.lt(&src)?],
        DimCheck::Zero => {
            // dst != src: two branches.
            let lt = dst.lt(&src)?;
            let gt = dst.gt(&src)?;
            // Check each branch separately below.
            for c in [lt, gt] {
                let mut any = Map::empty(space.clone())?;
                let b = tilefuse_presburger::BasicSet::universe(space.clone()).constrain(&c)?;
                any = any.union(&Map::from_basic(b)?)?;
                if !dep.map.intersect(&any)?.is_empty()? {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
    };
    for c in violating {
        let b = tilefuse_presburger::BasicSet::universe(space.clone()).constrain(&c)?;
        let bad = dep.map.intersect(&Map::from_basic(b)?)?;
        if !bad.is_empty()? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The numeric range of `dst_var − src_var` over all pairs of `dep` at band
/// level `j`, with parameters fixed to `param_values`. Returns `None` when
/// the dependence is empty under those parameters.
///
/// # Errors
/// Returns an error if the range is unbounded or on overflow.
pub fn distance_range(
    program: &Program,
    dep: &Dependence,
    j: usize,
    param_values: &[i64],
) -> Result<Option<(i64, i64)>> {
    let src_vars = loop_vars(program, dep.src);
    let dst_vars = loop_vars(program, dep.dst);
    let (Some(&sv), Some(&dv)) = (src_vars.get(j), dst_vars.get(j)) else {
        return Err(Error::Internal(format!(
            "band level {j} out of range for dependence"
        )));
    };
    let map_space = dep.map.space();
    let n_in = map_space.n_in();
    let n_all = map_space.n_dim();
    // View the relation as a set over one flat anonymous tuple, then map it
    // through [pair] -> [dst_var - src_var].
    let params: Vec<&str> = map_space.params().iter().map(String::as_str).collect();
    let flat_space = Space::set(&params, Tuple::anonymous(n_all));
    let wrapped = dep.map.as_wrapped_set().cast(flat_space.clone())?;
    let delta_space = flat_space.join_map(&Space::set(&params, Tuple::anonymous(1)))?;
    let expr =
        AffExpr::dim(&delta_space, n_in + dv)?.checked_sub(&AffExpr::dim(&delta_space, sv)?)?;
    let delta_map = Map::from_affine(delta_space, &[expr])?;
    let deltas: Set = delta_map.apply(&wrapped)?;
    let hull = deltas.rect_hull(param_values)?;
    Ok(hull.map(|h| h[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_pir::{compute_dependences, ArrayKind, Body, DepKind, Expr, IdxExpr, Program};

    /// S0: A[i] = i ; S1: B[i] = A[i] + A[i+2]  (stencil offset 0..2).
    fn stencil_program() -> (Program, Vec<Dependence>) {
        let mut p = Program::new("t").with_param("N", 16);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        (p, deps)
    }

    fn flow01(deps: &[Dependence]) -> &Dependence {
        deps.iter()
            .find(|d| d.kind == DepKind::Flow && d.src == StmtId(0) && d.dst == StmtId(1))
            .unwrap()
    }

    #[test]
    fn loop_vars_extracted_in_order() {
        let (p, _) = stencil_program();
        assert_eq!(loop_vars(&p, StmtId(0)), vec![0]);
        assert_eq!(loop_vars(&p, StmtId(1)), vec![0]);
    }

    #[test]
    fn stencil_dep_is_not_nonnegative_unshifted() {
        // Producer S0[i+2] feeds consumer S1[i]: distance i - (i+2) = -2..0.
        let (p, deps) = stencil_program();
        let d = flow01(&deps);
        assert!(!dim_satisfies(&p, d, 0, 0, 0, DimCheck::NonNegative).unwrap());
        assert!(!dim_satisfies(&p, d, 0, 0, 0, DimCheck::Zero).unwrap());
    }

    #[test]
    fn shifting_consumer_restores_legality() {
        let (p, deps) = stencil_program();
        let d = flow01(&deps);
        // Shift the destination by +2: distances become 0..2 >= 0.
        assert!(dim_satisfies(&p, d, 0, 0, 2, DimCheck::NonNegative).unwrap());
        // Still not coincident (distance not identically zero).
        assert!(!dim_satisfies(&p, d, 0, 0, 2, DimCheck::Zero).unwrap());
    }

    #[test]
    fn pointwise_dep_is_coincident() {
        // B[i] = A[i] only: distance identically zero.
        let mut p = Program::new("pw").with_param("N", 8);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec!["N".into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::load(a, vec![IdxExpr::dim(1, 0)]),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        let d = flow01(&deps);
        assert!(dim_satisfies(&p, d, 0, 0, 0, DimCheck::NonNegative).unwrap());
        assert!(dim_satisfies(&p, d, 0, 0, 0, DimCheck::Zero).unwrap());
    }

    #[test]
    fn distance_range_of_stencil() {
        let (p, deps) = stencil_program();
        let d = flow01(&deps);
        let r = distance_range(&p, d, 0, &[16]).unwrap().unwrap();
        assert_eq!(r, (-2, 0));
    }

    #[test]
    fn distance_range_empty_dep_under_params() {
        let (p, deps) = stencil_program();
        let d = flow01(&deps);
        // With N = 2 the consumer domain 0 <= i < N-2 is empty.
        let r = distance_range(&p, d, 0, &[2]).unwrap();
        assert_eq!(r, None);
    }
}
