//! Building schedule trees from fusion groups.

use crate::checks::loop_vars;
use crate::error::{Error, Result};
use crate::fusion::Group;
use tilefuse_pir::{Program, StmtId};
use tilefuse_presburger::{AffExpr, Map, Space, Tuple, UnionMap, UnionSet};
use tilefuse_schedtree::{band, filter, sequence, Band, Node, ScheduleTree};

/// The partial-schedule part `{ S[i] -> [vars + shifts] }` of one statement,
/// restricted to its domain.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn band_part(program: &Program, stmt: StmtId, vars: &[usize], shifts: &[i64]) -> Result<Map> {
    let s = program.stmt(stmt);
    let dom_space = s.domain().space();
    let params: Vec<&str> = dom_space.params().iter().map(String::as_str).collect();
    let out_space = Space::set(&params, Tuple::anonymous(vars.len()));
    let space = dom_space.join_map(&out_space)?;
    let exprs: Vec<AffExpr> = vars
        .iter()
        .enumerate()
        .map(|(k, &v)| {
            let shift = shifts.get(k).copied().unwrap_or(0);
            Ok(AffExpr::dim(&space, v)?.checked_add(&AffExpr::constant(&space, shift))?)
        })
        .collect::<Result<_>>()?;
    Ok(Map::from_affine(space, &exprs)?.intersect_domain(s.domain())?)
}

/// Checks a (possibly user-constructed) fusion group against the program
/// it will be scheduled in, so downstream slicing like `shifts[k][..depth]`
/// cannot panic.
///
/// # Errors
/// Returns [`Error::MalformedGroup`] describing the first inconsistency.
pub fn validate_group(program: &Program, group: &Group) -> Result<()> {
    if group.stmts.is_empty() {
        return Err(Error::MalformedGroup("group has no statements".into()));
    }
    if group.shifts.len() != group.stmts.len() {
        return Err(Error::MalformedGroup(format!(
            "{} shift vectors for {} statements",
            group.shifts.len(),
            group.stmts.len()
        )));
    }
    if group.coincident.len() < group.depth {
        return Err(Error::MalformedGroup(format!(
            "coincident has {} entries but group depth is {}",
            group.coincident.len(),
            group.depth
        )));
    }
    for (k, &s) in group.stmts.iter().enumerate() {
        if s.0 >= program.stmts().len() {
            return Err(Error::MalformedGroup(format!(
                "statement id {} out of range ({} statements)",
                s.0,
                program.stmts().len()
            )));
        }
        let n_vars = loop_vars(program, s).len();
        if n_vars < group.depth {
            return Err(Error::MalformedGroup(format!(
                "statement {} has {} loop dims but group depth is {}",
                program.stmt(s).name(),
                n_vars,
                group.depth
            )));
        }
        if group.shifts[k].len() < group.depth {
            return Err(Error::MalformedGroup(format!(
                "shift vector for statement {} has {} entries but group depth is {}",
                program.stmt(s).name(),
                group.shifts[k].len(),
                group.depth
            )));
        }
    }
    Ok(())
}

/// Builds the subtree of one fusion group (band over the shared dims, then
/// per-statement inner bands for the private dims).
///
/// # Errors
/// Returns an error on set-operation failure or a malformed group.
pub fn group_subtree(program: &Program, group: &Group) -> Result<Node> {
    validate_group(program, group)?;
    let inner = |stmt: StmtId, from: usize| -> Result<Node> {
        let vars = loop_vars(program, stmt);
        let rest = &vars[from.min(vars.len())..];
        if rest.is_empty() {
            return Ok(Node::Leaf);
        }
        let part = band_part(program, stmt, rest, &vec![0; rest.len()])?;
        let b = Band::new(
            UnionMap::from_parts([part])?,
            false,
            vec![false; rest.len()],
        )?;
        Ok(band(b, Node::Leaf))
    };
    let child = if group.stmts.len() == 1 {
        inner(group.stmts[0], group.depth)?
    } else {
        let mut kids = Vec::new();
        for &s in &group.stmts {
            let f = UnionSet::from_parts([program.stmt(s).domain().clone()])?;
            kids.push(filter(f, inner(s, group.depth)?));
        }
        sequence(kids)
    };
    if group.depth == 0 {
        // No shared band: a singleton gets its private dims directly; a
        // maxfuse serial merge becomes a plain sequence of the members'
        // own loop nests (all parallelism lost).
        if group.stmts.len() == 1 {
            return inner(group.stmts[0], 0);
        }
        let mut kids = Vec::new();
        for &s in &group.stmts {
            let f = UnionSet::from_parts([program.stmt(s).domain().clone()])?;
            kids.push(filter(f, inner(s, 0)?));
        }
        return Ok(sequence(kids));
    }
    let mut parts = Vec::new();
    for (k, &s) in group.stmts.iter().enumerate() {
        let vars = loop_vars(program, s);
        let shifts = &group.shifts[k];
        parts.push(band_part(
            program,
            s,
            &vars[..group.depth],
            &shifts[..group.depth],
        )?);
    }
    let b = Band::new(UnionMap::from_parts(parts)?, true, group.coincident.clone())?;
    Ok(band(b, child))
}

/// Builds the schedule tree for a fusion result: a top-level sequence over
/// group subtrees (the shape of the paper's Fig. 2(b)).
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn build_tree(program: &Program, groups: &[Group]) -> Result<ScheduleTree> {
    // Validate up front: the filter loop below indexes statements before
    // `group_subtree` would get a chance to object.
    for g in groups {
        validate_group(program, g)?;
    }
    let mut domain = UnionSet::new();
    for s in program.stmts() {
        domain.add(s.domain().clone())?;
    }
    let mut kids = Vec::new();
    for g in groups {
        let mut f = UnionSet::new();
        for &s in &g.stmts {
            f.add(program.stmt(s).domain().clone())?;
        }
        kids.push(filter(f, group_subtree(program, g)?));
    }
    let child = if kids.len() == 1 {
        // Single group: no ordering needed.
        let only = kids
            .pop()
            .ok_or_else(|| Error::Internal("no fusion groups to build a tree from".into()))?;
        match only {
            Node::Filter { child, .. } => *child,
            other => other,
        }
    } else {
        sequence(kids)
    };
    let tree = ScheduleTree::new(domain, child);
    tree.validate()?;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{fuse, FuseBudget, FusionHeuristic};
    use tilefuse_pir::{compute_dependences, ArrayKind, Body, Expr, IdxExpr, SchedTerm};
    use tilefuse_schedtree::flatten;

    fn conv_like() -> Program {
        let mut p = Program::new("conv").with_param("H", 6).with_param("W", 6);
        let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
        let c = p.add_array(
            "C",
            vec![("H", -2).into(), ("W", -2).into()],
            ArrayKind::Output,
        );
        let d2 = |d| IdxExpr::dim(2, d);
        let d4 = |d| IdxExpr::dim(4, d);
        p.add_stmt(
            "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
            Body {
                target: a,
                target_idx: vec![d2(0), d2(1)],
                rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
            vec![
                SchedTerm::Cst(1),
                SchedTerm::Var(0),
                SchedTerm::Var(1),
                SchedTerm::Cst(0),
            ],
            Body {
                target: c,
                target_idx: vec![d2(0), d2(1)],
                rhs: Expr::Const(0.0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
            vec![
                SchedTerm::Cst(1),
                SchedTerm::Var(0),
                SchedTerm::Var(1),
                SchedTerm::Cst(1),
                SchedTerm::Var(2),
                SchedTerm::Var(3),
            ],
            Body {
                target: c,
                target_idx: vec![d4(0), d4(1)],
                rhs: Expr::add(
                    Expr::load(c, vec![d4(0), d4(1)]),
                    Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                ),
            },
        )
        .unwrap();
        p
    }

    #[test]
    fn smartfuse_tree_matches_fig2b_shape() {
        let p = conv_like();
        let deps = compute_dependences(&p).unwrap();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::SmartFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        // Conservative heuristic: ({S0}, {S1, S2}) as in the paper.
        assert_eq!(f.groups.len(), 2);
        assert_eq!(f.groups[1].stmts, vec![StmtId(1), StmtId(2)]);
        assert_eq!(f.groups[1].depth, 2);
        assert_eq!(f.groups[1].coincident, vec![true, true]);
        let tree = build_tree(&p, &f.groups).unwrap();
        tree.validate().unwrap();
        let text = tilefuse_schedtree::render(&tree);
        assert!(text.contains("sequence"), "{text}");
        // S2's private (kh, kw) dims form an inner band.
        assert_eq!(text.matches("band:").count(), 3, "{text}");
    }

    #[test]
    fn flattened_tree_orders_execution_correctly() {
        let p = conv_like();
        let deps = compute_dependences(&p).unwrap();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::SmartFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        let tree = build_tree(&p, &f.groups).unwrap();
        let flat = flatten(&tree).unwrap();
        assert_eq!(flat.len(), 3);
        let s0 = flat.iter().find(|e| e.stmt == "S0").unwrap();
        let s2 = flat.iter().find(|e| e.stmt == "S2").unwrap();
        // S0 scheduled in sequence slot 0, S2 in slot 1.
        // params (6,6), S0[0,0] -> [0, 0, 0, pad...]
        let l = s0.schedule.space().n_out();
        let probe: Vec<i64> = [6, 6, 0, 0, 0, 0, 0]
            .iter()
            .copied()
            .chain(std::iter::repeat(0))
            .take(2 + 2 + l)
            .collect();
        assert!(s0.schedule.contains_pair(&probe).unwrap());
        assert_eq!(s0.schedule.space().n_out(), s2.schedule.space().n_out());
    }

    #[test]
    fn band_part_applies_shift() {
        let p = conv_like();
        let m = band_part(&p, StmtId(0), &[0, 1], &[2, 0]).unwrap();
        // S0[1, 3] -> [3, 3]
        assert!(m.contains_pair(&[6, 6, 1, 3, 3, 3]).unwrap());
        assert!(!m.contains_pair(&[6, 6, 1, 3, 1, 3]).unwrap());
    }

    #[test]
    fn malformed_groups_error_instead_of_panicking() {
        let p = conv_like();
        // Depth deeper than the shift vectors: used to panic slicing
        // `shifts[k][..depth]`.
        let g = Group {
            stmts: vec![StmtId(0)],
            depth: 2,
            shifts: vec![vec![]],
            coincident: vec![true, true],
            innermost_parallel: false,
        };
        let e = build_tree(&p, &[g]).unwrap_err();
        assert!(
            e.to_string().contains("malformed fusion group"),
            "unexpected error: {e}"
        );
        // Statement id out of range: used to panic indexing the program.
        let g = Group {
            stmts: vec![StmtId(99)],
            depth: 0,
            shifts: vec![vec![]],
            coincident: vec![],
            innermost_parallel: false,
        };
        assert!(build_tree(&p, &[g]).is_err());
        // Depth deeper than a member's loop nest: `vars[..depth]` slice.
        let g = Group {
            stmts: vec![StmtId(0)],
            depth: 5,
            shifts: vec![vec![0; 5]],
            coincident: vec![true; 5],
            innermost_parallel: false,
        };
        let e = build_tree(&p, &[g]).unwrap_err();
        assert!(e.to_string().contains("loop dims"), "unexpected error: {e}");
        // Empty group.
        let g = Group {
            stmts: vec![],
            depth: 0,
            shifts: vec![],
            coincident: vec![],
            innermost_parallel: false,
        };
        assert!(build_tree(&p, &[g]).is_err());
    }

    #[test]
    fn minfuse_tree_has_three_groups() {
        let p = conv_like();
        let deps = compute_dependences(&p).unwrap();
        let f = fuse(
            &p,
            &deps,
            FusionHeuristic::MinFuse,
            &mut FuseBudget::default(),
        )
        .unwrap();
        assert_eq!(f.groups.len(), 3);
        let tree = build_tree(&p, &f.groups).unwrap();
        tree.validate().unwrap();
        let flat = flatten(&tree).unwrap();
        assert_eq!(flat.len(), 3);
    }
}
