//! Full-schedule legality verification.
//!
//! Given the flattened schedule relations of a tree, checks that every
//! dependence pair executes in order. This is the safety net behind all
//! heuristics: a fusion decision that slipped through the per-dimension
//! analysis is caught here.

use crate::error::Result;
use tilefuse_pir::Dependence;
use tilefuse_presburger::{Map, Space, Tuple};
use tilefuse_schedtree::FlatEntry;

/// The outcome of checking a schedule against the dependences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalityReport {
    /// Whether all checked dependences are respected.
    pub legal: bool,
    /// Dependences verified exactly.
    pub checked: usize,
    /// Dependences skipped because a statement has several schedule
    /// occurrences (extension-node recomputation); those are validated
    /// end-to-end by the interpreter instead.
    pub skipped: usize,
    /// Human-readable descriptions of violations found.
    pub violations: Vec<String>,
}

/// Checks that `entries` (a flattened schedule) respects `deps`.
///
/// # Errors
/// Returns an error on set-operation failure.
pub fn check_schedule(deps: &[Dependence], entries: &[FlatEntry]) -> Result<LegalityReport> {
    let _span = tilefuse_trace::span!("schedule/legality", "{} deps", deps.len());
    let mut report = LegalityReport {
        legal: true,
        checked: 0,
        skipped: 0,
        violations: Vec::new(),
    };
    for dep in deps {
        let src_name = dep
            .map
            .space()
            .in_tuple()
            .name()
            .unwrap_or_default()
            .to_owned();
        let dst_name = dep
            .map
            .space()
            .out_tuple()
            .name()
            .unwrap_or_default()
            .to_owned();
        let src_entries: Vec<&FlatEntry> = entries.iter().filter(|e| e.stmt == src_name).collect();
        let dst_entries: Vec<&FlatEntry> = entries.iter().filter(|e| e.stmt == dst_name).collect();
        if src_entries.len() != 1 || dst_entries.len() != 1 {
            report.skipped += 1;
            continue;
        }
        let src = src_entries[0];
        let dst = dst_entries[0];
        // Restrict the dependence to instances that actually execute.
        let active = dep
            .map
            .intersect_domain(&src.domain)?
            .intersect_range(&dst.domain)?;
        if active.is_empty()? {
            report.checked += 1;
            continue;
        }
        let l = src.schedule.space().n_out();
        let params: Vec<&str> = src
            .schedule
            .space()
            .params()
            .iter()
            .map(String::as_str)
            .collect();
        let sched_space = Space::map(&params, Tuple::anonymous(l), Tuple::anonymous(l));
        let lex_lt = Map::lex_lt(sched_space.clone())?;
        let ident = {
            let set_sp = Space::set(&params, Tuple::anonymous(l));
            Map::identity(&set_sp)?
        };
        let lex_ge = lex_lt.reverse().union(&ident.cast(sched_space)?)?;
        // Violating pairs: src scheduled at-or-after dst.
        let bad = src
            .schedule
            .compose(&lex_ge)?
            .compose(&dst.schedule.reverse())?
            .intersect(&active)?;
        report.checked += 1;
        if !bad.is_empty()? {
            report.legal = false;
            report.violations.push(format!(
                "dependence {src_name} -> {dst_name} violated: {bad}"
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{fuse, FuseBudget, FusionHeuristic};
    use crate::treebuild::build_tree;
    use tilefuse_pir::{compute_dependences, ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
    use tilefuse_schedtree::flatten;

    fn stencil2() -> (Program, Vec<Dependence>) {
        let mut p = Program::new("st2").with_param("N", 12);
        let a = p.add_array("A", vec!["N".into()], ArrayKind::Temp);
        let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Output);
        p.add_stmt(
            "{ S0[i] : 0 <= i < N }",
            vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
            Body {
                target: a,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::Iter(0),
            },
        )
        .unwrap();
        p.add_stmt(
            "{ S1[i] : 0 <= i < N - 2 }",
            vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
            Body {
                target: b,
                target_idx: vec![IdxExpr::dim(1, 0)],
                rhs: Expr::add(
                    Expr::load(a, vec![IdxExpr::dim(1, 0)]),
                    Expr::load(a, vec![IdxExpr::dim(1, 0).offset(2)]),
                ),
            },
        )
        .unwrap();
        let deps = compute_dependences(&p).unwrap();
        (p, deps)
    }

    #[test]
    fn every_heuristic_produces_legal_schedules() {
        let (p, deps) = stencil2();
        for h in [
            FusionHeuristic::MinFuse,
            FusionHeuristic::SmartFuse,
            FusionHeuristic::MaxFuse,
        ] {
            let f = fuse(&p, &deps, h, &mut FuseBudget::default()).unwrap();
            let tree = build_tree(&p, &f.groups).unwrap();
            let flat = flatten(&tree).unwrap();
            let report = check_schedule(&deps, &flat).unwrap();
            assert!(report.legal, "{h:?}: {:?}", report.violations);
            assert!(report.checked > 0);
        }
    }

    #[test]
    fn illegal_fusion_is_detected() {
        // Force an (illegal) unshifted fusion of the stencil pair.
        let (p, deps) = stencil2();
        let g = crate::fusion::Group {
            stmts: vec![tilefuse_pir::StmtId(0), tilefuse_pir::StmtId(1)],
            depth: 1,
            shifts: vec![vec![0], vec![0]],
            coincident: vec![false],
            innermost_parallel: false,
        };
        let tree = build_tree(&p, &[g]).unwrap();
        let flat = flatten(&tree).unwrap();
        let report = check_schedule(&deps, &flat).unwrap();
        assert!(!report.legal);
        assert!(!report.violations.is_empty());
    }

    #[test]
    fn shifted_fusion_is_legal() {
        let (p, deps) = stencil2();
        let g = crate::fusion::Group {
            stmts: vec![tilefuse_pir::StmtId(0), tilefuse_pir::StmtId(1)],
            depth: 1,
            shifts: vec![vec![0], vec![2]],
            coincident: vec![false],
            innermost_parallel: false,
        };
        let tree = build_tree(&p, &[g]).unwrap();
        let flat = flatten(&tree).unwrap();
        let report = check_schedule(&deps, &flat).unwrap();
        assert!(report.legal, "{:?}", report.violations);
    }
}
