//! Minimal JSON support: an escaper for the emitter in `lib.rs` and a
//! recursive-descent parser for the `trace-check` validator. Covers the
//! full JSON grammar except `\u` surrogate pairs outside the BMP (escaped
//! code points decode individually), which the tracer never emits.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects keep insertion-independent (sorted) order
/// via `BTreeMap`; duplicate keys keep the last occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.get(key)
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => {
                            return Err(self.err(format!("invalid escape '\\{}'", c as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": "x\n\"yA", "c": true, "d": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse(" {} ").unwrap(), Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\\path\" \u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"abc", "1 2", "{1: 2}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
