//! Validates a trace file written by `--trace`: checks the Chrome trace
//! JSON shape (well-formed JSON, `traceEvents` of complete events with the
//! required fields) and enforces the attribution budget — any span with
//! children whose self ("untracked") time exceeds the threshold fails the
//! check. Used by CI after `experiments table1 --trace trace.json`.
//!
//! `--require-span NAME` (repeatable) additionally fails the check unless
//! a span with that exact name was recorded with nonzero total time —
//! CI's VM-differential job uses it to prove a `--backend vm` trace
//! really exercised the bytecode path (`codegen/lower`,
//! `codegen/vm-exec`), not just the interpreter.
//!
//! Usage: trace-check FILE [--max-untracked PCT] [--require-span NAME]...

use std::process::ExitCode;

use tilefuse_trace::json::{self, Value};

const DEFAULT_MAX_UNTRACKED: f64 = 5.0;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut max_untracked = DEFAULT_MAX_UNTRACKED;
    let mut required: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-untracked" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("trace-check: --max-untracked needs a percentage");
                    return ExitCode::from(2);
                };
                max_untracked = v;
            }
            "--require-span" => {
                let Some(name) = args.next() else {
                    eprintln!("trace-check: --require-span needs a span name");
                    return ExitCode::from(2);
                };
                required.push(name);
            }
            "--help" | "-h" => {
                eprintln!("usage: trace-check FILE [--max-untracked PCT] [--require-span NAME]...");
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() => file = Some(arg),
            other => {
                eprintln!("trace-check: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: trace-check FILE [--max-untracked PCT] [--require-span NAME]...");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-check: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    match check(&text, max_untracked, &required) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("trace-check: {e}");
            }
            eprintln!("trace-check: {file} FAILED ({} error(s))", errors.len());
            ExitCode::FAILURE
        }
    }
}

fn check(text: &str, max_untracked_pct: f64, required: &[String]) -> Result<String, Vec<String>> {
    let root = json::parse(text).map_err(|e| vec![e.to_string()])?;
    let mut errors = Vec::new();

    let events = match root.get("traceEvents").and_then(Value::as_arr) {
        Some(a) => a,
        None => {
            errors.push("missing 'traceEvents' array".into());
            &[]
        }
    };
    for (i, e) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        if e.get("name")
            .and_then(Value::as_str)
            .is_none_or(str::is_empty)
        {
            errors.push(ctx("missing or empty 'name'"));
        }
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            errors.push(ctx("'ph' must be \"X\" (complete event)"));
        }
        for field in ["ts", "dur", "pid", "tid"] {
            match e.get(field).and_then(Value::as_num) {
                Some(v) if v >= 0.0 => {}
                Some(_) => errors.push(ctx(&format!("'{field}' is negative"))),
                None => errors.push(ctx(&format!("missing numeric '{field}'"))),
            }
        }
        if errors.len() > 20 {
            errors.push(format!("... stopping after {i} events"));
            break;
        }
    }

    let dropped = root
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(Value::as_num)
        .unwrap_or(0.0);

    let spans = match root.get("spans").and_then(Value::as_arr) {
        Some(a) => a,
        None => {
            errors.push("missing 'spans' summary array".into());
            &[]
        }
    };
    let mut worst: Option<(String, f64)> = None;
    let mut seen: Vec<(String, f64)> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let name = s
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        let (Some(total), Some(self_ns)) = (
            s.get("totalNs").and_then(Value::as_num),
            s.get("selfNs").and_then(Value::as_num),
        ) else {
            errors.push(format!("spans[{i}] '{name}': missing totalNs/selfNs"));
            continue;
        };
        seen.push((name.clone(), total));
        let has_children = s
            .get("hasChildren")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        if !has_children || total <= 0.0 {
            continue;
        }
        let pct = 100.0 * self_ns / total;
        if worst.as_ref().is_none_or(|(_, w)| pct > *w) {
            worst = Some((name.clone(), pct));
        }
        if pct > max_untracked_pct {
            errors.push(format!(
                "span '{name}' has {pct:.1}% untracked time (self {self_ns:.0}ns of \
                 {total:.0}ns total, budget {max_untracked_pct}%)"
            ));
        }
    }

    for want in required {
        if !seen.iter().any(|(n, total)| n == want && *total > 0.0) {
            errors.push(format!(
                "required span '{want}' missing (or zero total time) — the traced run \
                 never entered that phase"
            ));
        }
    }

    if errors.is_empty() {
        let worst_line = match worst {
            Some((name, pct)) => format!("; worst untracked: {pct:.1}% in '{name}'"),
            None => String::new(),
        };
        Ok(format!(
            "trace-check: OK ({} events, {} spans, {dropped:.0} dropped{worst_line})",
            events.len(),
            spans.len(),
        ))
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(self_ns: u64) -> String {
        format!(
            r#"{{
  "traceEvents": [
    {{ "name": "a/b", "cat": "t", "ph": "X", "ts": 1.5, "dur": 10.0, "pid": 1, "tid": 1 }}
  ],
  "otherData": {{ "droppedEvents": 0 }},
  "spans": [
    {{ "name": "a", "count": 1, "totalNs": 1000, "selfNs": {self_ns},
       "hasChildren": true, "slots": {{}} }},
    {{ "name": "a/b", "count": 1, "totalNs": 960, "selfNs": 960,
       "hasChildren": false, "slots": {{}} }}
  ]
}}"#
        )
    }

    #[test]
    fn accepts_within_budget_rejects_over() {
        assert!(check(&doc(40), 5.0, &[]).is_ok());
        let errs = check(&doc(400), 5.0, &[]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("40.0% untracked")),
            "{errs:?}"
        );
        // Leaf spans are exempt: a/b is 100% self time but has no children.
        assert!(check(&doc(0), 5.0, &[]).is_ok());
    }

    #[test]
    fn required_spans_must_be_present_with_time() {
        // 'a/b' was recorded with time: satisfied. 'codegen/vm-exec' was
        // never entered: the check must fail and say which span.
        assert!(check(&doc(40), 5.0, &["a/b".into()]).is_ok());
        let errs = check(&doc(40), 5.0, &["codegen/vm-exec".into()]).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("required span 'codegen/vm-exec' missing")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_malformed_shapes() {
        assert!(check("not json", 5.0, &[]).is_err());
        assert!(check("{}", 5.0, &[]).is_err());
        let bad_event = r#"{ "traceEvents": [ { "ph": "B" } ], "spans": [] }"#;
        let errs = check(bad_event, 5.0, &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("'ph' must be")), "{errs:?}");
    }
}
