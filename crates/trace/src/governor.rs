//! Cooperative resource governor: budgets, accounting, and cancellation.
//!
//! The governor is a thread-local accounting context installed around an
//! `optimize` call. Hot paths (the Omega core's elimination loop) charge it
//! with [`tick_omega`]; phase boundaries (the existing trace spans) poll it
//! with [`checkpoint`]. Both return `Err(Exhausted)` once a limit is hit, and
//! callers convert that into their own typed error — exhaustion is a value,
//! never a panic.
//!
//! Design constraints:
//! - **Near-free when idle.** All state lives in plain thread-local `Cell`s;
//!   an inactive governor costs one `Cell::get` per tick. No atomics, no
//!   locks, no `RefCell` borrow flags on the hot path.
//! - **Sound degradation only.** The governor never changes *answers*; it
//!   only stops work. Precision caps (branch/disjunct) are exposed as
//!   [`branch_cap`]/[`disjunct_cap`] hints that shrink existing conservative
//!   fallbacks, whose approximation direction is already sound everywhere in
//!   this codebase (capped feasibility reports "maybe satisfiable", which
//!   keeps dependences and excludes fusion — pessimistic, never wrong).
//! - **Ladder liveness.** A blown deadline would poison every subsequent
//!   governed operation, so fallback rungs call [`rearm`] (fresh grant) and
//!   the final rung runs [`disarm`]ed (accounting continues, enforcement
//!   stops). Total work is bounded by rungs × budget + one polynomial
//!   fallback pass.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// Resource limits for one optimizer run. `Default` is unlimited.
///
/// All limits are cooperative: they are polled at operation granularity, so
/// overshoot is bounded by one operation (plus up to [`DEADLINE_STRIDE`]
/// Omega steps for the deadline, which is polled with a stride to keep
/// `Instant::now` off the hot path).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Wall-clock deadline for the run, in milliseconds. `0` is legal and
    /// exhausts at the first poll.
    pub deadline_ms: Option<u64>,
    /// Total Omega elimination steps across the run.
    pub max_omega_ops: Option<u64>,
    /// Branch cap for a *single* `omega::feasible` call; shrinks the
    /// built-in `MAX_BRANCHES` conservative fallback (never enlarges it).
    pub max_branches_per_call: Option<usize>,
    /// Peak disjunct (basic-set) count tolerated in footprint/extension
    /// sets; shrinks the built-in coalescing cap (never enlarges it).
    pub max_disjuncts: Option<usize>,
    /// Cap on the presburger row interner; crossing it triggers a wholesale
    /// cache clear (a memory bound, not an error).
    pub max_interned_rows: Option<usize>,
}

impl Budget {
    /// An explicitly unlimited budget (same as `Default`).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether no limit is set at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

/// A budget limit was hit. Carries which limit and the innermost phase
/// (trace-span path) active when it tripped — both static so the error is
/// `Copy` and allocation-free on the cancellation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Which limit tripped: `"deadline"`, `"omega-ops"`, or an injected name.
    pub limit: &'static str,
    /// The innermost [`checkpoint`] phase active when it tripped.
    pub phase: &'static str,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted ({} limit) in phase {}",
            self.limit, self.phase
        )
    }
}

/// Resources consumed so far by the installed governor (or since install).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Consumed {
    /// Omega elimination steps charged via [`tick_omega`].
    pub omega_ops: u64,
    /// Times a feasibility call hit its branch cap and fell back to the
    /// conservative "feasible" answer.
    pub silent_feasible: u64,
    /// Peak disjunct count observed via [`note_disjuncts`].
    pub peak_disjuncts: usize,
    /// Wall-clock time since [`install`] (or the last [`rearm`]'s epoch
    /// does not reset this: it is total elapsed, not grant-relative).
    pub elapsed: Duration,
}

/// Deadline is polled once per this many Omega ticks (power of two).
pub const DEADLINE_STRIDE: u64 = 256;

const UNSET: &str = "";

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static ENFORCING: Cell<bool> = const { Cell::new(false) };
    static OMEGA_OPS: Cell<u64> = const { Cell::new(0) };
    static OMEGA_CAP: Cell<u64> = const { Cell::new(u64::MAX) };
    static BRANCH_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
    static DISJUNCT_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
    static INTERN_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
    static PEAK_DISJUNCTS: Cell<usize> = const { Cell::new(0) };
    static SILENT: Cell<u64> = const { Cell::new(0) };
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    static GRANT: Cell<Option<Duration>> = const { Cell::new(None) };
    static START: Cell<Option<Instant>> = const { Cell::new(None) };
    // Survives guard drop on purpose: a panic unwinds span guards before any
    // catch_unwind handler runs, so the last phase is the only attribution
    // left by the time the panic is converted to an error.
    static PHASE: Cell<&'static str> = const { Cell::new(UNSET) };
}

/// RAII guard returned by [`install`]; restores the previous governor state
/// (normally "none") on drop, including during unwinding. The last phase is
/// deliberately left behind for panic attribution.
#[derive(Debug)]
pub struct GovernorGuard {
    prev: Saved,
}

#[derive(Debug)]
struct Saved {
    active: bool,
    enforcing: bool,
    omega_ops: u64,
    omega_cap: u64,
    branch_cap: usize,
    disjunct_cap: usize,
    intern_cap: usize,
    peak_disjuncts: usize,
    silent: u64,
    deadline: Option<Instant>,
    grant: Option<Duration>,
    start: Option<Instant>,
}

impl Drop for GovernorGuard {
    fn drop(&mut self) {
        ACTIVE.with(|c| c.set(self.prev.active));
        ENFORCING.with(|c| c.set(self.prev.enforcing));
        OMEGA_OPS.with(|c| c.set(self.prev.omega_ops));
        OMEGA_CAP.with(|c| c.set(self.prev.omega_cap));
        BRANCH_CAP.with(|c| c.set(self.prev.branch_cap));
        DISJUNCT_CAP.with(|c| c.set(self.prev.disjunct_cap));
        INTERN_CAP.with(|c| c.set(self.prev.intern_cap));
        PEAK_DISJUNCTS.with(|c| c.set(self.prev.peak_disjuncts));
        SILENT.with(|c| c.set(self.prev.silent));
        DEADLINE.with(|c| c.set(self.prev.deadline));
        GRANT.with(|c| c.set(self.prev.grant));
        START.with(|c| c.set(self.prev.start));
    }
}

/// Installs `budget` as this thread's governor until the guard drops.
///
/// Installation happens even for an unlimited budget so accounting
/// (op counts, silent-feasible, peak disjuncts, elapsed) is collected;
/// enforcement is enabled only when some limit is set. Nested installs
/// save and restore the outer state.
#[must_use]
pub fn install(budget: &Budget) -> GovernorGuard {
    let prev = Saved {
        active: ACTIVE.with(Cell::get),
        enforcing: ENFORCING.with(Cell::get),
        omega_ops: OMEGA_OPS.with(Cell::get),
        omega_cap: OMEGA_CAP.with(Cell::get),
        branch_cap: BRANCH_CAP.with(Cell::get),
        disjunct_cap: DISJUNCT_CAP.with(Cell::get),
        intern_cap: INTERN_CAP.with(Cell::get),
        peak_disjuncts: PEAK_DISJUNCTS.with(Cell::get),
        silent: SILENT.with(Cell::get),
        deadline: DEADLINE.with(Cell::get),
        grant: GRANT.with(Cell::get),
        start: START.with(Cell::get),
    };
    let now = Instant::now();
    let grant = budget.deadline_ms.map(Duration::from_millis);
    ACTIVE.with(|c| c.set(true));
    ENFORCING.with(|c| c.set(!budget.is_unlimited()));
    OMEGA_OPS.with(|c| c.set(0));
    OMEGA_CAP.with(|c| c.set(budget.max_omega_ops.unwrap_or(u64::MAX)));
    BRANCH_CAP.with(|c| c.set(budget.max_branches_per_call.unwrap_or(usize::MAX)));
    DISJUNCT_CAP.with(|c| c.set(budget.max_disjuncts.unwrap_or(usize::MAX)));
    INTERN_CAP.with(|c| c.set(budget.max_interned_rows.unwrap_or(usize::MAX)));
    PEAK_DISJUNCTS.with(|c| c.set(0));
    SILENT.with(|c| c.set(0));
    DEADLINE.with(|c| c.set(grant.map(|d| now + d)));
    GRANT.with(|c| c.set(grant));
    START.with(|c| c.set(Some(now)));
    GovernorGuard { prev }
}

/// Whether a governor is installed on this thread (even unlimited).
#[must_use]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Charges `n` Omega elimination steps. Errors once the op budget or the
/// deadline (polled every [`DEADLINE_STRIDE`] ops) is exhausted.
///
/// # Errors
/// Returns [`Exhausted`] when a limit is hit and the governor is enforcing.
pub fn tick_omega(n: u64) -> Result<(), Exhausted> {
    if !ACTIVE.with(Cell::get) {
        return Ok(());
    }
    let ops = OMEGA_OPS.with(Cell::get).saturating_add(n);
    OMEGA_OPS.with(|c| c.set(ops));
    if !ENFORCING.with(Cell::get) {
        return Ok(());
    }
    if ops > OMEGA_CAP.with(Cell::get) {
        return Err(exhausted("omega-ops"));
    }
    if ops % DEADLINE_STRIDE < n {
        check_deadline()?;
    }
    Ok(())
}

/// Marks the innermost phase and polls every limit. Call at span boundaries.
///
/// # Errors
/// Returns [`Exhausted`] when a limit is hit and the governor is enforcing.
pub fn checkpoint(phase: &'static str) -> Result<(), Exhausted> {
    if !ACTIVE.with(Cell::get) {
        return Ok(());
    }
    PHASE.with(|c| c.set(phase));
    if !ENFORCING.with(Cell::get) {
        return Ok(());
    }
    if OMEGA_OPS.with(Cell::get) > OMEGA_CAP.with(Cell::get) {
        return Err(exhausted("omega-ops"));
    }
    check_deadline()
}

fn check_deadline() -> Result<(), Exhausted> {
    if let Some(deadline) = DEADLINE.with(Cell::get) {
        if Instant::now() >= deadline {
            return Err(exhausted("deadline"));
        }
    }
    Ok(())
}

fn exhausted(limit: &'static str) -> Exhausted {
    Exhausted {
        limit,
        phase: PHASE.with(Cell::get),
    }
}

/// Grants a fresh op budget and deadline window (same sizes as installed)
/// so a fallback rung is not poisoned by the exhaustion that triggered it.
pub fn rearm() {
    if !ACTIVE.with(Cell::get) {
        return;
    }
    OMEGA_OPS.with(|c| c.set(0));
    let grant = GRANT.with(Cell::get);
    DEADLINE.with(|c| c.set(grant.map(|d| Instant::now() + d)));
}

/// Stops enforcement (accounting continues) and lifts the precision caps.
/// The last ladder rung runs disarmed so it always completes — and with
/// exact set algebra, so no capped approximation can fail it either.
pub fn disarm() {
    ENFORCING.with(|c| c.set(false));
    BRANCH_CAP.with(|c| c.set(usize::MAX));
    DISJUNCT_CAP.with(|c| c.set(usize::MAX));
    INTERN_CAP.with(|c| c.set(usize::MAX));
}

/// Whether the installed governor's precision caps have forced at least
/// one conservatively-approximated feasibility answer in this region.
///
/// Downstream set algebra may then fail in ways exact analysis never does
/// (a kept-but-actually-empty piece projecting to an unbounded hull, say):
/// the degradation ladder treats *any* error as a budget trip while this
/// is true, because the analysis result was already best-effort. Without
/// an active governor this is always `false`, so genuine bugs in
/// ungoverned runs propagate unchanged.
#[must_use]
pub fn approximated() -> bool {
    ACTIVE.with(Cell::get) && SILENT.with(Cell::get) > 0
}

/// Effective per-call branch cap for `omega::feasible` (`usize::MAX` when
/// uncapped). Callers must `min` this with their built-in cap.
#[must_use]
pub fn branch_cap() -> usize {
    if ACTIVE.with(Cell::get) {
        BRANCH_CAP.with(Cell::get)
    } else {
        usize::MAX
    }
}

/// Effective disjunct cap for footprint coalescing (`usize::MAX` when
/// uncapped). Callers must `min` this with their built-in cap.
#[must_use]
pub fn disjunct_cap() -> usize {
    if ACTIVE.with(Cell::get) {
        DISJUNCT_CAP.with(Cell::get)
    } else {
        usize::MAX
    }
}

/// Effective interned-row cap (`usize::MAX` when uncapped).
#[must_use]
pub fn intern_cap() -> usize {
    if ACTIVE.with(Cell::get) {
        INTERN_CAP.with(Cell::get)
    } else {
        usize::MAX
    }
}

/// Records one silent conservative feasibility fallback.
pub fn note_silent_feasible() {
    if ACTIVE.with(Cell::get) {
        SILENT.with(|c| c.set(c.get() + 1));
    }
}

/// Records an observed disjunct count; the governor keeps the peak.
pub fn note_disjuncts(n: usize) {
    if ACTIVE.with(Cell::get) {
        PEAK_DISJUNCTS.with(|c| c.set(c.get().max(n)));
    }
}

/// Resources consumed since [`install`]. Zeroes when no governor is active.
#[must_use]
pub fn consumed() -> Consumed {
    Consumed {
        omega_ops: OMEGA_OPS.with(Cell::get),
        silent_feasible: SILENT.with(Cell::get),
        peak_disjuncts: PEAK_DISJUNCTS.with(Cell::get),
        elapsed: START
            .with(Cell::get)
            .map_or(Duration::ZERO, |s| s.elapsed()),
    }
}

/// The innermost phase last marked by [`checkpoint`] on this thread.
/// Survives guard drop so panic handlers can attribute the failure.
#[must_use]
pub fn last_phase() -> &'static str {
    PHASE.with(Cell::get)
}

/// Best-effort extraction of a panic payload's message (`&str` or `String`
/// payloads; anything else renders as a placeholder).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_governor_is_a_no_op() {
        assert!(!active());
        assert!(tick_omega(1_000_000).is_ok());
        assert!(checkpoint("anything").is_ok());
        assert_eq!(branch_cap(), usize::MAX);
        assert_eq!(disjunct_cap(), usize::MAX);
        assert_eq!(intern_cap(), usize::MAX);
    }

    #[test]
    fn unlimited_budget_accounts_without_enforcing() {
        let _g = install(&Budget::unlimited());
        assert!(active());
        assert!(tick_omega(10).is_ok());
        assert!(tick_omega(5).is_ok());
        note_silent_feasible();
        note_disjuncts(7);
        note_disjuncts(3);
        let c = consumed();
        assert_eq!(c.omega_ops, 15);
        assert_eq!(c.silent_feasible, 1);
        assert_eq!(c.peak_disjuncts, 7);
    }

    #[test]
    fn omega_op_cap_trips_and_names_phase() {
        let budget = Budget {
            max_omega_ops: Some(3),
            ..Budget::default()
        };
        let _g = install(&budget);
        checkpoint("test/phase").unwrap();
        assert!(tick_omega(3).is_ok());
        let err = tick_omega(1).unwrap_err();
        assert_eq!(err.limit, "omega-ops");
        assert_eq!(err.phase, "test/phase");
        assert_eq!(
            err.to_string(),
            "budget exhausted (omega-ops limit) in phase test/phase"
        );
    }

    #[test]
    fn zero_deadline_trips_at_first_checkpoint() {
        let budget = Budget {
            deadline_ms: Some(0),
            ..Budget::default()
        };
        let _g = install(&budget);
        let err = checkpoint("early").unwrap_err();
        assert_eq!(err.limit, "deadline");
    }

    #[test]
    fn rearm_grants_fresh_ops_and_disarm_stops_enforcement() {
        let budget = Budget {
            max_omega_ops: Some(2),
            ..Budget::default()
        };
        let _g = install(&budget);
        assert!(tick_omega(2).is_ok());
        assert!(tick_omega(1).is_err());
        rearm();
        assert!(tick_omega(2).is_ok());
        assert!(tick_omega(1).is_err());
        disarm();
        assert!(tick_omega(100).is_ok());
        // Accounting continued through exhaustion and disarm.
        assert!(consumed().omega_ops >= 100);
    }

    #[test]
    fn caps_are_visible_while_installed_and_restored_after() {
        let budget = Budget {
            max_branches_per_call: Some(8),
            max_disjuncts: Some(2),
            max_interned_rows: Some(64),
            ..Budget::default()
        };
        {
            let _g = install(&budget);
            assert_eq!(branch_cap(), 8);
            assert_eq!(disjunct_cap(), 2);
            assert_eq!(intern_cap(), 64);
        }
        assert!(!active());
        assert_eq!(branch_cap(), usize::MAX);
    }

    #[test]
    fn nested_install_restores_outer_budget() {
        let outer = Budget {
            max_omega_ops: Some(100),
            ..Budget::default()
        };
        let _g = install(&outer);
        tick_omega(10).unwrap();
        {
            let inner = Budget {
                max_omega_ops: Some(1),
                ..Budget::default()
            };
            let _g2 = install(&inner);
            assert!(tick_omega(2).is_err());
        }
        // Outer counter and cap are back.
        assert_eq!(consumed().omega_ops, 10);
        assert!(tick_omega(50).is_ok());
    }

    #[test]
    fn last_phase_survives_guard_drop() {
        {
            let _g = install(&Budget::unlimited());
            checkpoint("doomed/phase").unwrap();
        }
        assert_eq!(last_phase(), "doomed/phase");
    }

    #[test]
    fn deadline_polled_on_stride() {
        let budget = Budget {
            deadline_ms: Some(0),
            max_omega_ops: None,
            ..Budget::default()
        };
        let _g = install(&budget);
        // Below the stride no deadline poll happens...
        assert!(tick_omega(1).is_ok());
        // ...but a bulk charge crossing the stride boundary polls it.
        assert!(tick_omega(DEADLINE_STRIDE).is_err());
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(s.as_ref()), "kaboom");
        let s: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(s.as_ref()), "<non-string panic payload>");
    }
}
