//! Structured tracing for the optimize pipeline.
//!
//! A zero-dependency, thread-aware span tracer. Instrumented code opens
//! RAII spans with [`span!`]; while a span is open, any counter events
//! reported through [`note_counter`] / [`note_counter_ns`] (the presburger
//! crate reports its memo hits, misses and uncached compute time this way)
//! are attributed to the *innermost* open span on the reporting thread —
//! per-phase attribution instead of process-global totals.
//!
//! Everything is off by default: a disabled [`span!`] costs one relaxed
//! atomic load and a branch, takes no timestamps and allocates nothing, so
//! instrumentation can stay in hot paths permanently. When enabled via
//! [`set_enabled`], each span end updates two aggregate registries (one
//! process-global, one thread-local — the latter lets a single-threaded
//! caller like `optimize` collect its own phase summary without seeing
//! concurrent threads' work) and appends a Chrome-trace event.
//!
//! Outputs:
//! * [`snapshot`] / [`thread_snapshot`] — aggregated [`PhaseStat`]s;
//! * [`phase_table`] — a plain-text per-phase table;
//! * [`chrome_trace_json`] — `chrome://tracing` / Perfetto JSON, with a
//!   non-standard `"spans"` summary key (ignored by viewers, consumed by
//!   the `trace-check` binary).
//!
//! Span names are `/`-separated static paths (`"algo1/footprint"`); the
//! optional format arguments of [`span!`] become the event's `detail` and
//! do not split aggregation. Self time (`self_ns`) is a span's total time
//! minus the time spent in child spans that ended while it was open — for
//! a span with children this is its *untracked* time. Recursive spans
//! (a name nested under itself) would double-count `total_ns`; the
//! instrumentation avoids them.

pub mod governor;
pub mod json;

pub use governor::Budget;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex, MutexGuard};
use std::time::Instant;

/// Number of generic per-span counter slots (the presburger crate uses the
/// first five for is_empty/project/intersect/apply/reverse).
pub const N_SLOTS: usize = 8;

/// Hit/miss/time counters for one slot of one span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStat {
    /// Memo hits attributed to the span.
    pub hits: u64,
    /// Memo misses attributed to the span.
    pub misses: u64,
    /// Nanoseconds of uncached compute attributed to the span.
    pub ns: u64,
}

impl SlotStat {
    /// Whether any field is non-zero.
    pub fn is_zero(&self) -> bool {
        self.hits == 0 && self.misses == 0 && self.ns == 0
    }

    fn merge(&mut self, o: &SlotStat) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.ns += o.ns;
    }

    fn sub(&self, o: &SlotStat) -> SlotStat {
        SlotStat {
            hits: self.hits.saturating_sub(o.hits),
            misses: self.misses.saturating_sub(o.misses),
            ns: self.ns.saturating_sub(o.ns),
        }
    }
}

/// Aggregated metrics of one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// The span name (a `/`-separated path).
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total wall time inside the span.
    pub total_ns: u64,
    /// Time not covered by child spans. For spans with children this is
    /// the *untracked* remainder.
    pub self_ns: u64,
    /// Whether any child span ended under this one.
    pub has_children: bool,
    /// Counter slots (presburger ops in slots 0..5).
    pub slots: [SlotStat; N_SLOTS],
}

impl PhaseStat {
    /// Fraction of this span's time not attributed to any child span.
    /// Zero for leaf spans (everything they do is their own work).
    pub fn untracked_fraction(&self) -> f64 {
        if !self.has_children || self.total_ns == 0 {
            0.0
        } else {
            self.self_ns as f64 / self.total_ns as f64
        }
    }
}

#[derive(Default, Clone)]
struct PhaseRec {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    has_children: bool,
    slots: [SlotStat; N_SLOTS],
}

struct Frame {
    name: Cow<'static, str>,
    detail: Option<String>,
    start: Instant,
    child_ns: u64,
    has_child: bool,
    slots: [SlotStat; N_SLOTS],
}

/// One completed Chrome-trace event.
struct Event {
    name: String,
    detail: Option<String>,
    ts_ns: u64,
    dur_ns: u64,
    tid: u64,
}

/// Cap on buffered Chrome events; ends past the cap are dropped (and
/// counted) so a long run cannot exhaust memory.
const EVENT_CAP: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);
static GLOBAL: LazyLock<Mutex<HashMap<String, PhaseRec>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));
static EVENTS: LazyLock<Mutex<Vec<Event>>> = LazyLock::new(|| Mutex::new(Vec::new()));
static DROPPED_EVENTS: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Counter events arriving on a thread with no open span.
static ORPHAN_HITS: [AtomicU64; N_SLOTS] = [const { AtomicU64::new(0) }; N_SLOTS];
static ORPHAN_MISSES: [AtomicU64; N_SLOTS] = [const { AtomicU64::new(0) }; N_SLOTS];
static ORPHAN_NS: [AtomicU64; N_SLOTS] = [const { AtomicU64::new(0) }; N_SLOTS];

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static MIRROR: RefCell<HashMap<String, PhaseRec>> = RefCell::new(HashMap::new());
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Globally enables or disables span collection. Disabled is the default;
/// a disabled [`span!`] is a single atomic load.
pub fn set_enabled(enabled: bool) {
    if enabled {
        LazyLock::force(&EPOCH);
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span collection is on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops all aggregated spans, events and orphan counters. The calling
/// thread's span stack and mirror are cleared too; other threads' mirrors
/// survive until those threads next report (their `thread_snapshot` deltas
/// stay consistent because callers diff two snapshots).
pub fn reset() {
    lock(&GLOBAL).clear();
    lock(&EVENTS).clear();
    DROPPED_EVENTS.store(0, Ordering::Relaxed);
    for i in 0..N_SLOTS {
        ORPHAN_HITS[i].store(0, Ordering::Relaxed);
        ORPHAN_MISSES[i].store(0, Ordering::Relaxed);
        ORPHAN_NS[i].store(0, Ordering::Relaxed);
    }
    STACK.with(|s| s.borrow_mut().clear());
    MIRROR.with(|m| m.borrow_mut().clear());
}

/// RAII span guard: created by [`span`] / [`span!`], closes the span on
/// drop. Inert (and free) when tracing was disabled at creation.
#[must_use = "a span guard must be held for the span's duration"]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            end_span();
        }
    }
}

/// Opens a span. Prefer the [`span!`] macro.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: false };
    }
    begin_span(name.into(), None)
}

/// Opens a span with a lazily-built detail string (only evaluated when
/// tracing is enabled). The detail goes to the Chrome event's `args`, not
/// into aggregation.
pub fn span_detail(
    name: impl Into<Cow<'static, str>>,
    detail: impl FnOnce() -> String,
) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: false };
    }
    begin_span(name.into(), Some(detail()))
}

fn begin_span(name: Cow<'static, str>, detail: Option<String>) -> SpanGuard {
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name,
            detail,
            start: Instant::now(),
            child_ns: 0,
            has_child: false,
            slots: [SlotStat::default(); N_SLOTS],
        });
    });
    SpanGuard { active: true }
}

fn end_span() {
    let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
        return; // reset() cleared the stack under an open guard
    };
    let dur_ns = frame.start.elapsed().as_nanos() as u64;
    STACK.with(|s| {
        if let Some(parent) = s.borrow_mut().last_mut() {
            parent.child_ns += dur_ns;
            parent.has_child = true;
        }
    });
    let self_ns = dur_ns.saturating_sub(frame.child_ns);
    let update = |rec: &mut PhaseRec| {
        rec.count += 1;
        rec.total_ns += dur_ns;
        rec.self_ns += self_ns;
        rec.has_children |= frame.has_child;
        for (dst, src) in rec.slots.iter_mut().zip(frame.slots.iter()) {
            dst.merge(src);
        }
    };
    MIRROR.with(|m| update(m.borrow_mut().entry(frame.name.to_string()).or_default()));
    update(lock(&GLOBAL).entry(frame.name.to_string()).or_default());
    let mut events = lock(&EVENTS);
    if events.len() < EVENT_CAP {
        events.push(Event {
            name: frame.name.into_owned(),
            detail: frame.detail,
            ts_ns: frame.start.saturating_duration_since(*EPOCH).as_nanos() as u64,
            dur_ns,
            tid: tid(),
        });
    } else {
        DROPPED_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records a memo hit or miss in `slot`, attributed to the calling
/// thread's innermost open span (or the orphan bucket when none is open).
/// No-op while tracing is disabled.
#[inline]
pub fn note_counter(slot: usize, hit: bool) {
    if !is_enabled() || slot >= N_SLOTS {
        return;
    }
    let attributed = STACK.with(|s| match s.borrow_mut().last_mut() {
        Some(top) => {
            if hit {
                top.slots[slot].hits += 1;
            } else {
                top.slots[slot].misses += 1;
            }
            true
        }
        None => false,
    });
    if !attributed {
        let bucket = if hit { &ORPHAN_HITS } else { &ORPHAN_MISSES };
        bucket[slot].fetch_add(1, Ordering::Relaxed);
    }
}

/// Attributes `ns` nanoseconds of uncached compute in `slot` to the
/// calling thread's innermost open span. No-op while tracing is disabled.
#[inline]
pub fn note_counter_ns(slot: usize, ns: u64) {
    if !is_enabled() || slot >= N_SLOTS {
        return;
    }
    let attributed = STACK.with(|s| match s.borrow_mut().last_mut() {
        Some(top) => {
            top.slots[slot].ns += ns;
            true
        }
        None => false,
    });
    if !attributed {
        ORPHAN_NS[slot].fetch_add(1, Ordering::Relaxed);
    }
}

/// Counter events that arrived with no open span, per slot.
pub fn orphan_slots() -> [SlotStat; N_SLOTS] {
    std::array::from_fn(|i| SlotStat {
        hits: ORPHAN_HITS[i].load(Ordering::Relaxed),
        misses: ORPHAN_MISSES[i].load(Ordering::Relaxed),
        ns: ORPHAN_NS[i].load(Ordering::Relaxed),
    })
}

fn stats_of(map: &HashMap<String, PhaseRec>) -> Vec<PhaseStat> {
    let mut out: Vec<PhaseStat> = map
        .iter()
        .map(|(name, r)| PhaseStat {
            name: name.clone(),
            count: r.count,
            total_ns: r.total_ns,
            self_ns: r.self_ns,
            has_children: r.has_children,
            slots: r.slots,
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Aggregated stats of every completed span, process-wide.
pub fn snapshot() -> Vec<PhaseStat> {
    stats_of(&lock(&GLOBAL))
}

/// Aggregated stats of spans completed on the *calling thread*.
pub fn thread_snapshot() -> Vec<PhaseStat> {
    MIRROR.with(|m| stats_of(&m.borrow()))
}

/// `after - before`, by span name; rows with zero count are dropped.
/// Use with two [`thread_snapshot`]s to isolate one call's phases.
pub fn diff_snapshots(before: &[PhaseStat], after: &[PhaseStat]) -> Vec<PhaseStat> {
    let base: HashMap<&str, &PhaseStat> = before.iter().map(|p| (p.name.as_str(), p)).collect();
    after
        .iter()
        .filter_map(|a| {
            let d = match base.get(a.name.as_str()) {
                Some(b) => PhaseStat {
                    name: a.name.clone(),
                    count: a.count.saturating_sub(b.count),
                    total_ns: a.total_ns.saturating_sub(b.total_ns),
                    self_ns: a.self_ns.saturating_sub(b.self_ns),
                    has_children: a.has_children,
                    slots: std::array::from_fn(|i| a.slots[i].sub(&b.slots[i])),
                },
                None => a.clone(),
            };
            (d.count > 0).then_some(d)
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Renders a plain-text phase table. `slot_names` label the counter slots
/// (shorter than [`N_SLOTS`] is fine); slots with no activity anywhere are
/// omitted. Includes an `(orphan)` row when counter events arrived outside
/// any span.
pub fn phase_table(stats: &[PhaseStat], slot_names: &[&str]) -> String {
    let orphans = orphan_slots();
    let live_slots: Vec<usize> = (0..slot_names.len().min(N_SLOTS))
        .filter(|&i| stats.iter().any(|p| !p.slots[i].is_zero()) || !orphans[i].is_zero())
        .collect();
    let name_w = stats
        .iter()
        .map(|p| p.name.len())
        .chain([12])
        .max()
        .unwrap_or(12);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$} {:>8} {:>10} {:>10} {:>6}",
        "phase", "count", "total", "self", "untrk"
    ));
    for &i in &live_slots {
        out.push_str(&format!(" {:>18}", format!("{} h/m", slot_names[i])));
    }
    out.push('\n');
    for p in stats {
        let untrk = if p.has_children {
            format!("{:.0}%", p.untracked_fraction() * 100.0)
        } else {
            "-".into()
        };
        out.push_str(&format!(
            "{:<name_w$} {:>8} {:>10} {:>10} {:>6}",
            p.name,
            p.count,
            fmt_ns(p.total_ns),
            fmt_ns(p.self_ns),
            untrk
        ));
        for &i in &live_slots {
            let s = &p.slots[i];
            out.push_str(&format!(" {:>18}", format!("{}/{}", s.hits, s.misses)));
        }
        out.push('\n');
    }
    if orphans.iter().any(|s| !s.is_zero()) {
        out.push_str(&format!(
            "{:<name_w$} {:>8} {:>10} {:>10} {:>6}",
            "(orphan)", "-", "-", "-", "-"
        ));
        for &i in &live_slots {
            let s = &orphans[i];
            out.push_str(&format!(" {:>18}", format!("{}/{}", s.hits, s.misses)));
        }
        out.push('\n');
    }
    out
}

/// Serializes everything recorded so far as Chrome trace JSON (the
/// `chrome://tracing` "JSON object format"): a `traceEvents` array of
/// complete (`"ph": "X"`) events plus a non-standard `spans` summary used
/// by `trace-check` and the tests.
pub fn chrome_trace_json(slot_names: &[&str]) -> String {
    let events = lock(&EVENTS);
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let args = match &e.detail {
            Some(d) => format!(", \"args\": {{ \"detail\": \"{}\" }}", json::escape(d)),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"cat\": \"tilefuse\", \"ph\": \"X\", \"ts\": {:.3}, \
             \"dur\": {:.3}, \"pid\": 1, \"tid\": {}{args} }}{comma}\n",
            json::escape(&e.name),
            e.ts_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid,
        ));
    }
    drop(events);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"otherData\": {{ \"droppedEvents\": {} }},\n",
        DROPPED_EVENTS.load(Ordering::Relaxed)
    ));
    out.push_str("  \"spans\": [\n");
    let stats = snapshot();
    for (i, p) in stats.iter().enumerate() {
        let comma = if i + 1 == stats.len() { "" } else { "," };
        let mut slots = String::new();
        for (j, s) in p.slots.iter().enumerate() {
            if s.is_zero() {
                continue;
            }
            let name = slot_names.get(j).copied().unwrap_or("slot");
            if !slots.is_empty() {
                slots.push_str(", ");
            }
            slots.push_str(&format!(
                "\"{}\": {{ \"hits\": {}, \"misses\": {}, \"ns\": {} }}",
                json::escape(name),
                s.hits,
                s.misses,
                s.ns
            ));
        }
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"count\": {}, \"totalNs\": {}, \"selfNs\": {}, \
             \"hasChildren\": {}, \"slots\": {{ {slots} }} }}{comma}\n",
            json::escape(&p.name),
            p.count,
            p.total_ns,
            p.self_ns,
            p.has_children,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Opens a named span, returning an RAII guard closing it on drop.
///
/// ```
/// let _s = tilefuse_trace::span!("algo1/footprint");
/// let stmt = 3;
/// let _t = tilefuse_trace::span!("algo1/extension", "stmt {stmt}");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($arg:tt)+) => {
        $crate::span_detail($name, || ::std::format!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registries are process-global, so the unit tests run as one
    /// sequential body.
    #[test]
    fn spans_aggregate_and_attribute() {
        reset();
        set_enabled(true);
        {
            let _outer = span!("t/outer");
            note_counter(0, true);
            {
                let _inner = span!("t/inner", "iteration {}", 7);
                note_counter(0, false);
                note_counter_ns(0, 500);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner = span!("t/inner");
            }
        }
        set_enabled(false);
        let stats = snapshot();
        let by = |n: &str| stats.iter().find(|p| p.name == n).expect(n).clone();
        let outer = by("t/outer");
        let inner = by("t/inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(outer.has_children);
        assert!(!inner.has_children);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1);
        // Counters landed on the innermost span.
        assert_eq!(outer.slots[0].hits, 1);
        assert_eq!(outer.slots[0].misses, 0);
        assert_eq!(inner.slots[0].misses, 1);
        assert_eq!(inner.slots[0].ns, 500);
        // Thread mirror agrees (same thread did all the work).
        assert_eq!(thread_snapshot(), stats);

        // Chrome export mentions both spans and parses as JSON.
        let j = chrome_trace_json(&["is_empty"]);
        let v = json::parse(&j).expect("valid json");
        let obj = v.as_obj().unwrap();
        let events = obj.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        let table = phase_table(&stats, &["is_empty"]);
        assert!(table.contains("t/outer"), "{table}");
        assert!(table.contains("is_empty h/m"), "{table}");

        // Disabled spans are inert and record nothing.
        reset();
        {
            let _g = span!("t/disabled");
            note_counter(0, true);
        }
        assert!(snapshot().is_empty());
        assert!(orphan_slots()[0].is_zero());

        // Orphan counters (enabled, no open span) land in the bucket.
        set_enabled(true);
        note_counter(1, false);
        set_enabled(false);
        assert_eq!(orphan_slots()[1].misses, 1);
        reset();
    }

    #[test]
    fn diff_isolates_a_window() {
        let a = vec![PhaseStat {
            name: "x".into(),
            count: 2,
            total_ns: 100,
            self_ns: 60,
            has_children: true,
            slots: Default::default(),
        }];
        let mut b = a.clone();
        b[0].count = 5;
        b[0].total_ns = 400;
        b[0].self_ns = 100;
        let d = diff_snapshots(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].count, 3);
        assert_eq!(d[0].total_ns, 300);
        assert_eq!(d[0].self_ns, 40);
        // Unchanged rows vanish.
        assert!(diff_snapshots(&a, &a).is_empty());
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(900), "0.9us");
    }
}
