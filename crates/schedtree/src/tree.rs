//! Schedule trees: nodes, navigation, and the structural transformations
//! used by the post-tiling fusion pass.

use crate::band::Band;
use crate::error::{Error, Result};
use tilefuse_presburger::{UnionMap, UnionSet};

/// The mark string that instructs code generation to bypass a subtree
/// (Section IV-A: the fused statement's original schedule is skipped).
pub const MARK_SKIPPED: &str = "skipped";

/// A schedule-tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Root: all statement instances.
    Domain {
        /// The iteration domains of every statement.
        domain: UnionSet,
        /// The scheduled child.
        child: Box<Node>,
    },
    /// A loop nest (partial schedule).
    Band {
        /// The band payload.
        band: Band,
        /// The child scheduled within each band point.
        child: Box<Node>,
    },
    /// Ordered composition; children are (conventionally) filters.
    Sequence {
        /// The ordered children.
        children: Vec<Node>,
    },
    /// Restricts the statement instances that reach the subtree.
    Filter {
        /// The kept instances.
        filter: UnionSet,
        /// The child.
        child: Box<Node>,
    },
    /// Attaches information for code generation (e.g. `"skipped"`,
    /// `"kernel"`, `"thread"`).
    Mark {
        /// The mark string.
        mark: String,
        /// The child.
        child: Box<Node>,
    },
    /// Introduces additional statement instances as a function of the outer
    /// schedule dimensions — the paper's key device for post-tiling fusion.
    Extension {
        /// `{ [outer sched dims] -> Stmt[instance] }`.
        extension: UnionMap,
        /// The child, which schedules both original and added statements.
        child: Box<Node>,
    },
    /// End of schedule: instances reaching here execute in an unspecified
    /// (parallel) order relative to each other.
    Leaf,
}

impl Node {
    /// The children of this node (0 or 1 for most kinds).
    pub fn children(&self) -> Vec<&Node> {
        match self {
            Node::Domain { child, .. }
            | Node::Band { child, .. }
            | Node::Filter { child, .. }
            | Node::Mark { child, .. }
            | Node::Extension { child, .. } => vec![child],
            Node::Sequence { children } => children.iter().collect(),
            Node::Leaf => Vec::new(),
        }
    }

    /// Mutable child access by index.
    pub fn child_mut(&mut self, i: usize) -> Result<&mut Node> {
        match self {
            Node::Domain { child, .. }
            | Node::Band { child, .. }
            | Node::Filter { child, .. }
            | Node::Mark { child, .. }
            | Node::Extension { child, .. } => {
                if i == 0 {
                    Ok(child)
                } else {
                    Err(Error::Structure(format!(
                        "node has one child, asked for {i}"
                    )))
                }
            }
            Node::Sequence { children } => children
                .get_mut(i)
                .ok_or_else(|| Error::Structure(format!("sequence child {i} out of range"))),
            Node::Leaf => Err(Error::Structure("leaf has no children".into())),
        }
    }

    /// Views this node as a mark, returning the mark string and child.
    ///
    /// # Errors
    /// Returns [`Error::KindMismatch`] when the node is not a mark —
    /// callers that "know" a node's kind after a transformation should use
    /// this instead of pattern-matching with a panicking fallback arm.
    pub fn as_mark(&self) -> Result<(&str, &Node)> {
        match self {
            Node::Mark { mark, child } => Ok((mark, child)),
            other => Err(Error::KindMismatch {
                expected: "mark",
                found: other.kind(),
            }),
        }
    }

    /// Views this node as a sequence, returning its children.
    ///
    /// # Errors
    /// Returns [`Error::KindMismatch`] when the node is not a sequence.
    pub fn as_sequence(&self) -> Result<&[Node]> {
        match self {
            Node::Sequence { children } => Ok(children),
            other => Err(Error::KindMismatch {
                expected: "sequence",
                found: other.kind(),
            }),
        }
    }

    /// Views this node as a filter, returning the filter set and child.
    ///
    /// # Errors
    /// Returns [`Error::KindMismatch`] when the node is not a filter.
    pub fn as_filter(&self) -> Result<(&UnionSet, &Node)> {
        match self {
            Node::Filter { filter, child } => Ok((filter, child)),
            other => Err(Error::KindMismatch {
                expected: "filter",
                found: other.kind(),
            }),
        }
    }

    /// A short label for rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            Node::Domain { .. } => "domain",
            Node::Band { .. } => "band",
            Node::Sequence { .. } => "sequence",
            Node::Filter { .. } => "filter",
            Node::Mark { .. } => "mark",
            Node::Extension { .. } => "extension",
            Node::Leaf => "leaf",
        }
    }
}

/// A complete schedule tree (a [`Node::Domain`] root).
#[derive(Debug, Clone)]
pub struct ScheduleTree {
    root: Node,
}

impl ScheduleTree {
    /// Creates a tree from the iteration domain and the scheduled child.
    pub fn new(domain: UnionSet, child: Node) -> Self {
        ScheduleTree {
            root: Node::Domain {
                domain,
                child: Box::new(child),
            },
        }
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// The root's domain.
    pub fn domain(&self) -> &UnionSet {
        match &self.root {
            Node::Domain { domain, .. } => domain,
            _ => unreachable!("root is always a domain node"),
        }
    }

    /// The node at `path` (a sequence of child indices from the root).
    ///
    /// # Errors
    /// Returns an error if the path is invalid.
    pub fn node_at(&self, path: &[usize]) -> Result<&Node> {
        let mut cur = &self.root;
        for &i in path {
            cur = *cur
                .children()
                .get(i)
                .ok_or_else(|| Error::Structure(format!("bad path step {i}")))?;
        }
        Ok(cur)
    }

    /// Mutable access to the node at `path`.
    ///
    /// # Errors
    /// Returns an error if the path is invalid.
    pub fn node_at_mut(&mut self, path: &[usize]) -> Result<&mut Node> {
        let mut cur = &mut self.root;
        for &i in path {
            cur = cur.child_mut(i)?;
        }
        Ok(cur)
    }

    /// Replaces the node at `path`, returning the old node.
    ///
    /// # Errors
    /// Returns an error if the path is invalid.
    pub fn replace_at(&mut self, path: &[usize], new: Node) -> Result<Node> {
        let slot = self.node_at_mut(path)?;
        Ok(std::mem::replace(slot, new))
    }

    /// Wraps the node at `path` in a mark node.
    ///
    /// # Errors
    /// Returns an error if the path is invalid.
    pub fn mark_at(&mut self, path: &[usize], mark: &str) -> Result<()> {
        let slot = self.node_at_mut(path)?;
        let old = std::mem::replace(slot, Node::Leaf);
        *slot = Node::Mark {
            mark: mark.to_owned(),
            child: Box::new(old),
        };
        Ok(())
    }

    /// Finds the path of the first node satisfying `pred` (pre-order).
    pub fn find(&self, pred: &dyn Fn(&Node) -> bool) -> Option<Vec<usize>> {
        fn walk(node: &Node, pred: &dyn Fn(&Node) -> bool, path: &mut Vec<usize>) -> bool {
            if pred(node) {
                return true;
            }
            for (i, c) in node.children().into_iter().enumerate() {
                path.push(i);
                if walk(c, pred, path) {
                    return true;
                }
                path.pop();
            }
            false
        }
        let mut path = Vec::new();
        if walk(&self.root, pred, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    /// All paths of nodes satisfying `pred` (pre-order).
    pub fn find_all(&self, pred: &dyn Fn(&Node) -> bool) -> Vec<Vec<usize>> {
        fn walk(
            node: &Node,
            pred: &dyn Fn(&Node) -> bool,
            path: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if pred(node) {
                out.push(path.clone());
            }
            for (i, c) in node.children().into_iter().enumerate() {
                path.push(i);
                walk(c, pred, path, out);
                path.pop();
            }
        }
        let mut out = Vec::new();
        walk(&self.root, pred, &mut Vec::new(), &mut out);
        out
    }

    /// Structural sanity checks: sequence children are filters, domain is
    /// the root only, bands are non-empty.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        fn walk(node: &Node, is_root: bool) -> Result<()> {
            match node {
                Node::Domain { child, .. } => {
                    if !is_root {
                        return Err(Error::Structure("domain node below the root".into()));
                    }
                    walk(child, false)
                }
                Node::Sequence { children } => {
                    if children.is_empty() {
                        return Err(Error::Structure("empty sequence".into()));
                    }
                    for c in children {
                        if !matches!(c, Node::Filter { .. }) {
                            return Err(Error::Structure(format!(
                                "sequence child is a {} node, expected filter",
                                c.kind()
                            )));
                        }
                        walk(c, false)?;
                    }
                    Ok(())
                }
                Node::Band { band, child } => {
                    if band.n_member() == 0 {
                        return Err(Error::Structure("zero-member band".into()));
                    }
                    walk(child, false)
                }
                Node::Filter { child, .. }
                | Node::Mark { child, .. }
                | Node::Extension { child, .. } => walk(child, false),
                Node::Leaf => Ok(()),
            }
        }
        walk(&self.root, true)
    }
}

/// Builds a filter node.
pub fn filter(filter: UnionSet, child: Node) -> Node {
    Node::Filter {
        filter,
        child: Box::new(child),
    }
}

/// Builds a band node.
pub fn band(band: Band, child: Node) -> Node {
    Node::Band {
        band,
        child: Box::new(child),
    }
}

/// Builds a sequence node.
pub fn sequence(children: Vec<Node>) -> Node {
    Node::Sequence { children }
}

/// Builds a mark node.
pub fn mark(mark: &str, child: Node) -> Node {
    Node::Mark {
        mark: mark.to_owned(),
        child: Box::new(child),
    }
}

/// Builds an extension node.
pub fn extension(extension: UnionMap, child: Node) -> Node {
    Node::Extension {
        extension,
        child: Box::new(child),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilefuse_presburger::{Map, Set, UnionMap, UnionSet};

    fn uset(s: &str) -> UnionSet {
        UnionSet::from_parts([s.parse::<Set>().unwrap()]).unwrap()
    }

    fn simple_band() -> Band {
        let m: Map = "{ S[i] -> [i] }".parse().unwrap();
        Band::new(UnionMap::from_parts([m]).unwrap(), true, vec![true]).unwrap()
    }

    fn simple_tree() -> ScheduleTree {
        ScheduleTree::new(
            uset("{ S[i] : 0 <= i <= 9 }"),
            sequence(vec![
                filter(uset("{ S[i] : i <= 4 }"), band(simple_band(), Node::Leaf)),
                filter(uset("{ S[i] : i >= 5 }"), Node::Leaf),
            ]),
        )
    }

    #[test]
    fn navigation_by_path() {
        let t = simple_tree();
        assert_eq!(t.root().kind(), "domain");
        assert_eq!(t.node_at(&[0]).unwrap().kind(), "sequence");
        assert_eq!(t.node_at(&[0, 0]).unwrap().kind(), "filter");
        assert_eq!(t.node_at(&[0, 0, 0]).unwrap().kind(), "band");
        assert_eq!(t.node_at(&[0, 1, 0]).unwrap().kind(), "leaf");
        assert!(t.node_at(&[0, 2]).is_err());
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(simple_tree().validate().is_ok());
    }

    #[test]
    fn validate_rejects_nonfilter_sequence_child() {
        let t = ScheduleTree::new(
            uset("{ S[i] }"),
            sequence(vec![band(simple_band(), Node::Leaf)]),
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_sequence() {
        let t = ScheduleTree::new(uset("{ S[i] }"), sequence(vec![]));
        assert!(t.validate().is_err());
    }

    #[test]
    fn mark_at_wraps_subtree() {
        let mut t = simple_tree();
        t.mark_at(&[0, 0], MARK_SKIPPED).unwrap();
        let (mark, child) = t.node_at(&[0, 0]).unwrap().as_mark().unwrap();
        assert_eq!(mark, MARK_SKIPPED);
        assert_eq!(child.kind(), "filter");
        assert!(t.validate().is_err()); // mark between sequence and filter
    }

    /// The typed accessors surface a wrong node kind as a structured error
    /// (formerly a `panic!("expected mark, got {kind}")` in consumers).
    #[test]
    fn typed_accessors_report_kind_mismatch() {
        let t = simple_tree();
        let seq = t.node_at(&[0]).unwrap();
        assert_eq!(seq.as_sequence().unwrap().len(), 2);
        assert_eq!(
            seq.as_mark().unwrap_err(),
            Error::KindMismatch {
                expected: "mark",
                found: "sequence"
            }
        );
        assert_eq!(
            Node::Leaf.as_filter().unwrap_err(),
            Error::KindMismatch {
                expected: "filter",
                found: "leaf"
            }
        );
        let err = seq.as_mark().unwrap_err().to_string();
        assert!(err.contains("expected mark node, got sequence"), "{err}");
    }

    #[test]
    fn replace_at_swaps_node() {
        let mut t = simple_tree();
        let old = t
            .replace_at(&[0, 1, 0], band(simple_band(), Node::Leaf))
            .unwrap();
        assert_eq!(old.kind(), "leaf");
        assert_eq!(t.node_at(&[0, 1, 0]).unwrap().kind(), "band");
    }

    #[test]
    fn find_locates_first_band() {
        let t = simple_tree();
        let p = t.find(&|n| matches!(n, Node::Band { .. })).unwrap();
        assert_eq!(p, vec![0, 0, 0]);
        assert!(t.find(&|n| matches!(n, Node::Extension { .. })).is_none());
    }

    #[test]
    fn find_all_locates_filters() {
        let t = simple_tree();
        let ps = t.find_all(&|n| matches!(n, Node::Filter { .. }));
        assert_eq!(ps, vec![vec![0, 0], vec![0, 1]]);
    }

    #[test]
    fn domain_accessor() {
        let t = simple_tree();
        assert!(t.domain().part_named("S").is_some());
    }
}
