//! Error type for schedule trees.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from schedule-tree construction and transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Structural problem (bad path, arity mismatch).
    Structure(String),
    /// A node of one kind was found where another was required (typed
    /// accessors like [`crate::Node::as_mark`]); replaces what used to be
    /// a panic in code pattern-matching a node it "knew" the kind of.
    KindMismatch {
        /// The node kind the caller required.
        expected: &'static str,
        /// The kind actually found.
        found: &'static str,
    },
    /// An underlying set/map operation failed.
    Presburger(tilefuse_presburger::Error),
}

impl Error {
    /// Whether this error wraps a cooperative budget-exhaustion signal
    /// from the resource governor.
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        self.budget_info().is_some()
    }

    /// The `(limit, phase)` pair of a wrapped budget-exhaustion error.
    #[must_use]
    pub fn budget_info(&self) -> Option<(&'static str, &'static str)> {
        match self {
            Error::Presburger(e) => e.budget_info(),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Structure(msg) => write!(f, "schedule tree error: {msg}"),
            Error::KindMismatch { expected, found } => {
                write!(
                    f,
                    "schedule tree error: expected {expected} node, got {found}"
                )
            }
            Error::Presburger(e) => write!(f, "set operation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Presburger(e) => Some(e),
            Error::Structure(_) | Error::KindMismatch { .. } => None,
        }
    }
}

impl From<tilefuse_presburger::Error> for Error {
    fn from(e: tilefuse_presburger::Error) -> Self {
        Error::Presburger(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            Error::Structure("bad path".into()).to_string(),
            "schedule tree error: bad path"
        );
        let p = Error::from(tilefuse_presburger::Error::Overflow("add"));
        assert!(p.to_string().contains("overflow"));
    }
}
