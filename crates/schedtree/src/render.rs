//! ASCII rendering of schedule trees (for examples and debugging; compare
//! with the paper's Fig. 2 and Fig. 5).

use crate::band::Band;
use crate::tree::{Node, ScheduleTree};
use std::fmt::Write;

/// Renders the tree as indented ASCII, one node per line.
pub fn render(tree: &ScheduleTree) -> String {
    let mut out = String::new();
    render_node(tree.root(), "", true, &mut out);
    out
}

fn band_label(b: &Band) -> String {
    let parts: Vec<String> = b.sched().parts().iter().map(|m| m.to_string()).collect();
    let coincident: Vec<&str> = b
        .coincident()
        .iter()
        .map(|&c| if c { "1" } else { "0" })
        .collect();
    format!(
        "band: {} permutable={} coincident=[{}]",
        parts.join(" ∪ "),
        u8::from(b.permutable()),
        coincident.join(", ")
    )
}

fn node_label(node: &Node) -> String {
    match node {
        Node::Domain { domain, .. } => format!("domain: {domain}"),
        Node::Band { band, .. } => band_label(band),
        Node::Sequence { .. } => "sequence".to_owned(),
        Node::Filter { filter, .. } => format!("filter: {filter}"),
        Node::Mark { mark, .. } => format!("mark: \"{mark}\""),
        Node::Extension { extension, .. } => format!("extension: {extension}"),
        Node::Leaf => "leaf".to_owned(),
    }
}

fn render_node(node: &Node, prefix: &str, is_last: bool, out: &mut String) {
    let connector = if prefix.is_empty() {
        ""
    } else if is_last {
        "└─ "
    } else {
        "├─ "
    };
    let _ = writeln!(out, "{prefix}{connector}{}", node_label(node));
    let children = node.children();
    let child_prefix = if prefix.is_empty() {
        String::new()
    } else if is_last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    };
    // Skip rendering bare leaves to keep output close to the paper's
    // figures (leaves are implicit).
    let visible: Vec<&Node> = children.into_iter().collect();
    for (i, c) in visible.iter().enumerate() {
        if matches!(c, Node::Leaf) {
            continue;
        }
        let last =
            i == visible.len() - 1 || visible[i + 1..].iter().all(|n| matches!(n, Node::Leaf));
        let p = if prefix.is_empty() {
            "  ".to_owned()
        } else {
            child_prefix.clone()
        };
        render_node(c, &p, last, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::Band;
    use crate::tree::{band, filter, sequence};
    use tilefuse_presburger::{Map, Set, UnionMap, UnionSet};

    #[test]
    fn renders_paper_like_structure() {
        let dom = UnionSet::from_parts([
            "{ S0[h, w] : 0 <= h <= 5 }".parse::<Set>().unwrap(),
            "{ S1[h, w] : 0 <= h <= 3 }".parse::<Set>().unwrap(),
        ])
        .unwrap();
        let b0 = Band::new(
            UnionMap::from_parts(["{ S0[h, w] -> [h, w] }".parse::<Map>().unwrap()]).unwrap(),
            true,
            vec![true, true],
        )
        .unwrap();
        let b1 = Band::new(
            UnionMap::from_parts(["{ S1[h, w] -> [h, w] }".parse::<Map>().unwrap()]).unwrap(),
            true,
            vec![true, true],
        )
        .unwrap();
        let t = ScheduleTree::new(
            dom,
            sequence(vec![
                filter(
                    UnionSet::from_parts(["{ S0[h, w] }".parse::<Set>().unwrap()]).unwrap(),
                    band(b0, crate::tree::Node::Leaf),
                ),
                filter(
                    UnionSet::from_parts(["{ S1[h, w] }".parse::<Set>().unwrap()]).unwrap(),
                    band(b1, crate::tree::Node::Leaf),
                ),
            ]),
        );
        let text = render(&t);
        assert!(text.contains("domain"), "{text}");
        assert!(text.contains("sequence"), "{text}");
        assert!(text.contains("filter: { S0[h, w] }"), "{text}");
        assert!(text.contains("permutable=1"), "{text}");
        assert!(text.contains("coincident=[1, 1]"), "{text}");
        // Two bands rendered.
        assert_eq!(text.matches("band:").count(), 2, "{text}");
    }

    #[test]
    fn renders_mark_and_extension() {
        let dom = UnionSet::from_parts(["{ S[i] : 0 <= i <= 3 }".parse::<Set>().unwrap()]).unwrap();
        let ext =
            UnionMap::from_parts(["{ [o] -> P[p] : o <= p <= o + 1 }".parse::<Map>().unwrap()])
                .unwrap();
        let t = ScheduleTree::new(
            dom,
            crate::tree::mark(
                "kernel",
                crate::tree::extension(ext, crate::tree::Node::Leaf),
            ),
        );
        let text = render(&t);
        assert!(text.contains("mark: \"kernel\""), "{text}");
        assert!(text.contains("extension:"), "{text}");
    }
}
