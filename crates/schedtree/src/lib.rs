//! Schedule trees for polyhedral compilation.
//!
//! This crate implements the schedule-tree representation of Grosser,
//! Verdoolaege & Cohen (TOPLAS 2015) as used by the MICRO 2020 post-tiling
//! fusion paper: [`Node::Domain`], [`Node::Band`] (with `permutable` and
//! `coincident` attributes), [`Node::Sequence`]/[`Node::Filter`],
//! [`Node::Mark`], and — crucially — [`Node::Extension`], whose
//! expressiveness the paper extends to schedule *additional statement
//! instances under a filter*, enabling tile-wise fusion after tiling.
//!
//! Besides the tree structure this crate provides:
//! * [`Band::tile`] — splitting a band into tile and point bands with fixed
//!   integer tile sizes;
//! * [`flatten`] — lowering a tree to per-statement schedule relations (the
//!   form consumed by the interpreter and the cost models), honouring
//!   `"skipped"` marks and extension-node recomputation semantics;
//! * [`render`] — ASCII rendering matching the paper's figures.

mod band;
mod error;
mod flatten;
mod render;
mod tree;

pub use band::Band;
pub use error::{Error, Result};
pub use flatten::{flatten, FlatEntry};
pub use render::render;
pub use tree::{band, extension, filter, mark, sequence, Node, ScheduleTree, MARK_SKIPPED};
