//! Band nodes: partial multi-dimensional schedules with tilability and
//! parallelism attributes.
//!
//! A band represents a loop nest. Its `sched` maps each statement's
//! instances into an anonymous band space of `n_member` dimensions; the
//! `permutable` flag says the loops may be freely interchanged (and hence
//! tiled), and `coincident[k]` says loop `k` carries no dependence (is
//! parallel) — exactly the two attributes the paper attaches to band nodes
//! (Section II-B).

use crate::error::{Error, Result};
use tilefuse_presburger::{BasicSet, Map, Space, Tuple, UnionMap};

/// A band node's payload.
#[derive(Debug, Clone)]
pub struct Band {
    sched: UnionMap,
    n_member: usize,
    permutable: bool,
    coincident: Vec<bool>,
}

impl Band {
    /// Creates a band from per-statement partial schedules.
    ///
    /// # Errors
    /// Returns an error if the parts disagree on member count or
    /// `coincident` has the wrong length.
    pub fn new(sched: UnionMap, permutable: bool, coincident: Vec<bool>) -> Result<Self> {
        let n_member = sched
            .parts()
            .first()
            .map(|m| m.space().n_out())
            .ok_or_else(|| Error::Structure("band must have at least one part".into()))?;
        for part in sched.parts() {
            if part.space().n_out() != n_member {
                return Err(Error::Structure(format!(
                    "band parts disagree on member count: {} vs {n_member}",
                    part.space().n_out()
                )));
            }
        }
        if coincident.len() != n_member {
            return Err(Error::Structure(format!(
                "coincident has {} entries for a {n_member}-member band",
                coincident.len()
            )));
        }
        Ok(Band {
            sched,
            n_member,
            permutable,
            coincident,
        })
    }

    /// The per-statement partial schedules.
    pub fn sched(&self) -> &UnionMap {
        &self.sched
    }

    /// Number of band members (loop depth).
    pub fn n_member(&self) -> usize {
        self.n_member
    }

    /// Whether the band is permutable (tilable).
    pub fn permutable(&self) -> bool {
        self.permutable
    }

    /// Per-member parallelism flags.
    pub fn coincident(&self) -> &[bool] {
        &self.coincident
    }

    /// Number of leading parallel members (the `m` of Algorithm 1/2).
    pub fn n_outer_parallel(&self) -> usize {
        self.coincident.iter().take_while(|&&c| c).count()
    }

    /// Splits the band into a *tile band* and a *point band* using fixed
    /// integer `sizes` (one per member): the tile band maps instances to
    /// their tile coordinates `o` with `size·o ≤ b < size·o + size`, the
    /// point band keeps the original schedule (Section IV-A).
    ///
    /// # Errors
    /// Returns an error if `sizes` has the wrong length, a size is not
    /// positive, or the band is not permutable.
    pub fn tile(&self, sizes: &[i64]) -> Result<(Band, Band)> {
        if !self.permutable {
            return Err(Error::Structure("cannot tile a non-permutable band".into()));
        }
        if sizes.len() != self.n_member {
            return Err(Error::Structure(format!(
                "{} tile sizes for a {}-member band",
                sizes.len(),
                self.n_member
            )));
        }
        if sizes.iter().any(|&s| s <= 0) {
            return Err(Error::Structure("tile sizes must be positive".into()));
        }
        let mut tile_parts = Vec::new();
        for part in self.sched.parts() {
            let tr = tiling_relation(part.space(), sizes)?;
            tile_parts.push(part.compose(&tr)?);
        }
        let tile_band = Band {
            sched: UnionMap::from_parts(tile_parts)?,
            n_member: self.n_member,
            permutable: true,
            coincident: self.coincident.clone(),
        };
        let point_band = self.clone();
        Ok((tile_band, point_band))
    }

    /// Keeps only the first `k` members (used to model the `m` cap when
    /// targeting CPUs/GPUs).
    ///
    /// # Errors
    /// Returns an error if `k` is zero or exceeds the member count.
    pub fn truncate_members(&self, k: usize) -> Result<Band> {
        if k == 0 || k > self.n_member {
            return Err(Error::Structure(format!(
                "cannot truncate {}-member band to {k}",
                self.n_member
            )));
        }
        let parts = self
            .sched
            .parts()
            .iter()
            .map(|part| project_out_map_range(part, k))
            .collect::<Result<Vec<_>>>()?;
        Ok(Band {
            sched: UnionMap::from_parts(parts)?,
            n_member: k,
            permutable: self.permutable,
            coincident: self.coincident[..k].to_vec(),
        })
    }
}

/// Builds `{ [b0..bk] -> [o0..ok] : size_j * o_j <= b_j < size_j*o_j + size_j }`
/// for a band part's range space.
fn tiling_relation(part_space: &Space, sizes: &[i64]) -> Result<Map> {
    let k = sizes.len();
    let params: Vec<&str> = part_space.params().iter().map(String::as_str).collect();
    let space = Space::map(&params, Tuple::anonymous(k), Tuple::anonymous(k));
    let mut b = BasicSet::universe(space.clone());
    for (j, &size) in sizes.iter().enumerate() {
        let bj = tilefuse_presburger::AffExpr::dim(&space, j)?;
        let oj = tilefuse_presburger::AffExpr::dim(&space, k + j)?;
        let t_oj = oj.scale(size)?;
        b.add_constraint(&t_oj.le(&bj)?)?;
        let upper = t_oj.checked_add(&tilefuse_presburger::AffExpr::constant(&space, size))?;
        b.add_constraint(&bj.lt(&upper)?)?;
    }
    Ok(Map::from_basic(b)?)
}

/// Restricts a map `X -> [n]` to its first `k` output dims.
fn project_out_map_range(part: &Map, k: usize) -> Result<Map> {
    let n = part.space().n_out();
    let wrapped = part.as_wrapped_set();
    let n_in = part.space().n_in();
    let projected = wrapped.project_out_dims(n_in + k, n - k)?;
    let params: Vec<&str> = part.space().params().iter().map(String::as_str).collect();
    let space = Space::map(
        &params,
        part.space().in_tuple().clone(),
        Tuple::anonymous(k),
    );
    Ok(Map::from_wrapped_set(projected.cast(space)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_band() -> Band {
        let m: Map = "[H] -> { S[h, w] -> [h, w] : 0 <= h < H }".parse().unwrap();
        Band::new(UnionMap::from_parts([m]).unwrap(), true, vec![true, true]).unwrap()
    }

    #[test]
    fn band_accessors() {
        let b = simple_band();
        assert_eq!(b.n_member(), 2);
        assert!(b.permutable());
        assert_eq!(b.coincident(), &[true, true]);
        assert_eq!(b.n_outer_parallel(), 2);
    }

    #[test]
    fn outer_parallel_counts_prefix() {
        let m: Map = "{ S[h, w] -> [h, w] }".parse().unwrap();
        let b = Band::new(UnionMap::from_parts([m]).unwrap(), true, vec![false, true]).unwrap();
        assert_eq!(b.n_outer_parallel(), 0);
    }

    #[test]
    fn tile_produces_tile_coordinates() {
        let b = simple_band();
        let (tile, point) = b.tile(&[2, 2]).unwrap();
        assert_eq!(tile.n_member(), 2);
        assert_eq!(point.n_member(), 2);
        let part = &tile.sched().parts()[0];
        // S[5, 3] -> tile (2, 1) for 2x2 tiles (H large enough: H=8).
        assert!(part.contains_pair(&[8, 5, 3, 2, 1]).unwrap());
        assert!(!part.contains_pair(&[8, 5, 3, 2, 2]).unwrap());
    }

    #[test]
    fn tile_rejects_bad_inputs() {
        let b = simple_band();
        assert!(b.tile(&[2]).is_err());
        assert!(b.tile(&[2, 0]).is_err());
        let m: Map = "{ S[h] -> [h] }".parse().unwrap();
        let np = Band::new(UnionMap::from_parts([m]).unwrap(), false, vec![true]).unwrap();
        assert!(np.tile(&[4]).is_err());
    }

    #[test]
    fn mismatched_members_rejected() {
        let a: Map = "{ S[h] -> [h] }".parse().unwrap();
        let c: Map = "{ T[h, w] -> [h, w] }".parse().unwrap();
        assert!(Band::new(UnionMap::from_parts([a, c]).unwrap(), true, vec![true]).is_err());
    }

    #[test]
    fn coincident_length_checked() {
        let m: Map = "{ S[h] -> [h] }".parse().unwrap();
        assert!(Band::new(UnionMap::from_parts([m]).unwrap(), true, vec![true, false]).is_err());
    }

    #[test]
    fn truncate_members_keeps_prefix() {
        let b = simple_band();
        let t = b.truncate_members(1).unwrap();
        assert_eq!(t.n_member(), 1);
        let part = &t.sched().parts()[0];
        // S[5, 3] -> [5]
        assert!(part.contains_pair(&[8, 5, 3, 5]).unwrap());
        assert!(!part.contains_pair(&[8, 5, 3, 3]).unwrap());
        assert!(b.truncate_members(0).is_err());
        assert!(b.truncate_members(3).is_err());
    }
}
