//! Flattening: converting a schedule tree into per-statement schedule
//! relations.
//!
//! The result assigns every (possibly extension-introduced) statement
//! occurrence a relation `{ Stmt[i] -> [d0, d1, ...] }` into one common
//! lexicographic schedule space. Execution order is the lexicographic order
//! of the schedule tuples — the interpreter and the cost models both
//! consume this form, and the "skipped" mark prunes subtrees exactly like
//! the paper's code generator does.
//!
//! For a *tile* band the relation is not a function of the instance alone
//! (an extension-introduced instance can appear under several tiles); the
//! relation's graph enumerates each (tile, instance) execution pair, which
//! is precisely the recomputation semantics of overlapped tiling.

use crate::error::{Error, Result};
use crate::tree::{Node, ScheduleTree, MARK_SKIPPED};
use tilefuse_presburger::{AffExpr, Map, Set, Space, Tuple};

/// One scheduled statement occurrence.
#[derive(Debug, Clone)]
pub struct FlatEntry {
    /// Statement (tuple) name.
    pub stmt: String,
    /// The instances executed by this occurrence.
    pub domain: Set,
    /// `{ Stmt[i] -> [schedule tuple] }`, padded to the common length.
    pub schedule: Map,
    /// Marks on the path from the root (e.g. `"kernel"`, `"thread"`).
    pub marks: Vec<String>,
    /// One flag per schedule dimension: `true` iff the dimension comes
    /// from a band member whose `coincident` bit is set, meaning no
    /// dependence crosses distinct values of that dimension (for a fixed
    /// outer prefix) and the parallel interpreter may fan it out across
    /// threads. Sequence dimensions and padding are always `false`.
    pub par_depths: Vec<bool>,
}

#[derive(Debug, Clone)]
struct Active {
    name: String,
    domain: Set,
    prefix: Map,
    /// Coincidence flag for each dimension of `prefix` (see
    /// [`FlatEntry::par_depths`]).
    flags: Vec<bool>,
}

/// Flattens a schedule tree (see module docs).
///
/// # Errors
/// Returns an error on malformed trees or set-operation failures.
pub fn flatten(tree: &ScheduleTree) -> Result<Vec<FlatEntry>> {
    let Node::Domain { domain, child } = tree.root() else {
        return Err(Error::Structure("root must be a domain node".into()));
    };
    let mut actives = Vec::new();
    for part in domain.parts() {
        let name = part
            .space()
            .tuple()
            .name()
            .ok_or_else(|| Error::Structure("domain tuples must be named".into()))?
            .to_owned();
        let prefix = const_map(part.space(), &[])?;
        actives.push(Active {
            name,
            domain: part.clone(),
            prefix,
            flags: Vec::new(),
        });
    }
    let mut out = Vec::new();
    walk(child, &actives, &mut Vec::new(), &mut out)?;
    // Pad schedules to the maximum length (padding dims are sequential).
    let max_len = out
        .iter()
        .map(|e| e.schedule.space().n_out())
        .max()
        .unwrap_or(0);
    for e in &mut out {
        let have = e.schedule.space().n_out();
        if have < max_len {
            let pad = const_map(e.domain.space(), &vec![0; max_len - have])?;
            e.schedule = e.schedule.flat_range_product(&pad)?;
        }
        e.par_depths.resize(max_len, false);
    }
    Ok(out)
}

fn walk(
    node: &Node,
    actives: &[Active],
    marks: &mut Vec<String>,
    out: &mut Vec<FlatEntry>,
) -> Result<()> {
    match node {
        Node::Domain { .. } => Err(Error::Structure("nested domain node".into())),
        Node::Leaf => {
            for a in actives {
                if a.domain.is_empty()? {
                    continue;
                }
                out.push(FlatEntry {
                    stmt: a.name.clone(),
                    domain: a.domain.clone(),
                    schedule: a.prefix.clone(),
                    marks: marks.clone(),
                    par_depths: a.flags.clone(),
                });
            }
            Ok(())
        }
        Node::Mark { mark, child } => {
            if mark == MARK_SKIPPED {
                return Ok(());
            }
            marks.push(mark.clone());
            walk(child, actives, marks, out)?;
            marks.pop();
            Ok(())
        }
        Node::Filter { filter, child } => {
            let mut kept = Vec::new();
            for a in actives {
                if let Some(part) = filter.part_named(&a.name) {
                    let domain = a.domain.intersect(part)?;
                    if !domain.is_empty()? {
                        kept.push(Active {
                            name: a.name.clone(),
                            domain,
                            prefix: a.prefix.clone(),
                            flags: a.flags.clone(),
                        });
                    }
                }
            }
            walk(child, &kept, marks, out)
        }
        Node::Sequence { children } => {
            for (i, c) in children.iter().enumerate() {
                let mut extended = Vec::with_capacity(actives.len());
                for a in actives {
                    let k = const_map(a.domain.space(), &[i as i64])?;
                    let mut flags = a.flags.clone();
                    flags.push(false);
                    extended.push(Active {
                        name: a.name.clone(),
                        domain: a.domain.clone(),
                        prefix: a.prefix.flat_range_product(&k)?,
                        flags,
                    });
                }
                walk(c, &extended, marks, out)?;
            }
            Ok(())
        }
        Node::Band { band, child } => {
            let n = band.n_member();
            let mut extended = Vec::with_capacity(actives.len());
            for a in actives {
                let part = band
                    .sched()
                    .parts()
                    .iter()
                    .find(|m| m.space().in_tuple().name() == Some(a.name.as_str()));
                let mut flags = a.flags.clone();
                let ext = match part {
                    Some(m) => {
                        flags.extend_from_slice(band.coincident());
                        a.prefix.flat_range_product(m)?
                    }
                    None => {
                        // Statement not scheduled by this band: pad with
                        // zeros so lengths stay aligned. The padded dims
                        // are constant, but the coincidence claim was not
                        // computed for this statement, so stay sequential.
                        flags.extend(std::iter::repeat_n(false, n));
                        let zeros = const_map(a.domain.space(), &vec![0; n])?;
                        a.prefix.flat_range_product(&zeros)?
                    }
                };
                extended.push(Active {
                    name: a.name.clone(),
                    domain: a.domain.clone(),
                    prefix: ext,
                    flags,
                });
            }
            walk(child, &extended, marks, out)
        }
        Node::Extension { extension, child } => {
            let mut extended = actives.to_vec();
            for part in extension.parts() {
                let name = part
                    .space()
                    .out_tuple()
                    .name()
                    .ok_or_else(|| {
                        Error::Structure("extension target tuples must be named".into())
                    })?
                    .to_owned();
                if extended.iter().any(|a| a.name == name) {
                    return Err(Error::Structure(format!(
                        "extension re-introduces active statement {name}"
                    )));
                }
                let prefix_len = actives
                    .first()
                    .map(|a| a.prefix.space().n_out())
                    .unwrap_or(part.space().n_in());
                if part.space().n_in() != prefix_len {
                    return Err(Error::Structure(format!(
                        "extension over {} outer dims inserted at depth {prefix_len}",
                        part.space().n_in()
                    )));
                }
                // The extension statement shares the outer schedule prefix
                // with the existing actives, so it inherits their per-depth
                // coincidence flags: an extension-introduced producer is
                // tile-local (its writes land in tile-private scratch), so
                // a dimension that is parallel for the consumers stays
                // parallel with the producers fused in.
                let flags = actives
                    .first()
                    .map(|a| a.flags.clone())
                    .unwrap_or_else(|| vec![false; prefix_len]);
                extended.push(Active {
                    name,
                    domain: part.range()?,
                    prefix: part.reverse(),
                    flags,
                });
            }
            walk(child, &extended, marks, out)
        }
    }
}

/// `{ Stmt[i] -> [values...] }` over a statement's set space.
fn const_map(stmt_space: &Space, values: &[i64]) -> Result<Map> {
    let params: Vec<&str> = stmt_space.params().iter().map(String::as_str).collect();
    let space = Space::map(
        &params,
        stmt_space.tuple().clone(),
        Tuple::anonymous(values.len()),
    );
    let exprs: Vec<AffExpr> = values
        .iter()
        .map(|&v| AffExpr::constant(&space, v))
        .collect();
    Ok(Map::from_affine(space, &exprs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::Band;
    use crate::tree::{band, extension, filter, mark, sequence};
    use tilefuse_presburger::{UnionMap, UnionSet};

    fn uset(s: &str) -> UnionSet {
        UnionSet::from_parts([s.parse::<Set>().unwrap()]).unwrap()
    }

    fn umap(s: &str) -> UnionMap {
        UnionMap::from_parts([s.parse::<Map>().unwrap()]).unwrap()
    }

    fn band1(m: &str) -> Band {
        Band::new(umap(m), true, vec![true]).unwrap()
    }

    #[test]
    fn flatten_two_statement_sequence() {
        // domain { S[i]; T[i] }, sequence(filter S -> band i, filter T -> band i)
        let dom = uset("{ S[i] : 0 <= i <= 3 }")
            .union(&uset("{ T[i] : 0 <= i <= 3 }"))
            .unwrap();
        let t = ScheduleTree::new(
            dom,
            sequence(vec![
                filter(uset("{ S[i] }"), band(band1("{ S[i] -> [i] }"), Node::Leaf)),
                filter(uset("{ T[i] }"), band(band1("{ T[i] -> [i] }"), Node::Leaf)),
            ]),
        );
        let flat = flatten(&t).unwrap();
        assert_eq!(flat.len(), 2);
        let s = flat.iter().find(|e| e.stmt == "S").unwrap();
        // S[2] -> [0, 2]
        assert!(s.schedule.contains_pair(&[2, 0, 2]).unwrap());
        let tt = flat.iter().find(|e| e.stmt == "T").unwrap();
        assert!(tt.schedule.contains_pair(&[2, 1, 2]).unwrap());
        assert_eq!(s.schedule.space().n_out(), tt.schedule.space().n_out());
    }

    #[test]
    fn skipped_subtree_produces_no_entries() {
        let dom = uset("{ S[i] : 0 <= i <= 3 }");
        let t = ScheduleTree::new(
            dom,
            sequence(vec![
                filter(
                    uset("{ S[i] : i <= 1 }"),
                    mark(MARK_SKIPPED, band(band1("{ S[i] -> [i] }"), Node::Leaf)),
                ),
                filter(
                    uset("{ S[i] : i >= 2 }"),
                    band(band1("{ S[i] -> [i] }"), Node::Leaf),
                ),
            ]),
        );
        let flat = flatten(&t).unwrap();
        assert_eq!(flat.len(), 1);
        assert!(flat[0].domain.contains(&[2]).unwrap());
        assert!(!flat[0].domain.contains(&[1]).unwrap());
    }

    #[test]
    fn marks_are_recorded() {
        let dom = uset("{ S[i] : 0 <= i <= 3 }");
        let t = ScheduleTree::new(
            dom,
            mark("kernel", band(band1("{ S[i] -> [i] }"), Node::Leaf)),
        );
        let flat = flatten(&t).unwrap();
        assert_eq!(flat[0].marks, vec!["kernel".to_owned()]);
    }

    #[test]
    fn extension_introduces_instances_per_tile() {
        // Tile band over T[o] for S (o = i/2), extension adds P instances
        // per tile: (o) -> P[p] : 2o <= p <= 2o+2 (overlap!).
        let dom = uset("{ S[i] : 0 <= i <= 5 }");
        let tile_band = Band::new(
            umap("{ S[i] -> [o] : 2o <= i <= 2o + 1 }"),
            true,
            vec![true],
        )
        .unwrap();
        let ext = umap("{ [o] -> P[p] : 2o <= p <= 2o + 2 and 0 <= p <= 6 }");
        let t = ScheduleTree::new(
            dom,
            band(
                tile_band,
                extension(
                    ext,
                    sequence(vec![
                        filter(uset("{ P[p] }"), band(band1("{ P[p] -> [p] }"), Node::Leaf)),
                        filter(uset("{ S[i] }"), band(band1("{ S[i] -> [i] }"), Node::Leaf)),
                    ]),
                ),
            ),
        );
        let flat = flatten(&t).unwrap();
        let p = flat.iter().find(|e| e.stmt == "P").unwrap();
        // P[2] runs under tile o=0 (2 <= 2+2) AND tile o=1 (2 <= 2): pairs
        // (instance 2 -> sched [0, 0, 2]) and (2 -> [1, 0, 2]).
        assert!(p.schedule.contains_pair(&[2, 0, 0, 2]).unwrap());
        assert!(p.schedule.contains_pair(&[2, 1, 0, 2]).unwrap());
        assert!(!p.schedule.contains_pair(&[2, 2, 0, 2]).unwrap());
        let s = flat.iter().find(|e| e.stmt == "S").unwrap();
        // S[3] in tile 1, sequence slot 1: [1, 1, 3]
        assert!(s.schedule.contains_pair(&[3, 1, 1, 3]).unwrap());
    }

    #[test]
    fn band_pads_missing_statements() {
        let dom = uset("{ S[i] : 0 <= i <= 1 }")
            .union(&uset("{ T[i] : 0 <= i <= 1 }"))
            .unwrap();
        // Band only schedules S; T must still flatten with padded zeros.
        let t = ScheduleTree::new(
            dom,
            band(
                band1("{ S[i] -> [i] }"),
                sequence(vec![
                    filter(uset("{ S[i] }"), Node::Leaf),
                    filter(uset("{ T[i] }"), Node::Leaf),
                ]),
            ),
        );
        let flat = flatten(&t).unwrap();
        let tt = flat.iter().find(|e| e.stmt == "T").unwrap();
        assert!(tt.schedule.contains_pair(&[1, 0, 1]).unwrap());
    }

    #[test]
    fn nested_sequences_order_lexicographically() {
        let dom = uset("{ S[i] : 0 <= i <= 5 }");
        let t = ScheduleTree::new(
            dom,
            sequence(vec![
                filter(
                    uset("{ S[i] : i <= 2 }"),
                    sequence(vec![
                        filter(uset("{ S[i] : i <= 0 }"), Node::Leaf),
                        filter(uset("{ S[i] : i >= 1 }"), Node::Leaf),
                    ]),
                ),
                filter(uset("{ S[i] : i >= 3 }"), Node::Leaf),
            ]),
        );
        let flat = flatten(&t).unwrap();
        assert_eq!(flat.len(), 3);
        // All schedules padded to the same length; distinct sequence
        // prefixes keep the three occurrences ordered.
        let l = flat[0].schedule.space().n_out();
        assert!(flat.iter().all(|e| e.schedule.space().n_out() == l));
        // First occurrence: i = 0 at prefix (0, 0); last: i >= 3 at (1, _).
        assert!(flat[0].domain.contains(&[0]).unwrap());
        assert!(!flat[0].domain.contains(&[1]).unwrap());
        assert!(flat[2].domain.contains(&[4]).unwrap());
    }

    #[test]
    fn mark_below_extension_is_preserved() {
        let dom = uset("{ S[i] : 0 <= i <= 1 }");
        let ext = umap("{ [] -> P[p] : 0 <= p <= 1 }");
        let t = ScheduleTree::new(
            dom,
            extension(
                ext,
                mark(
                    "kernel",
                    sequence(vec![
                        filter(uset("{ P[p] }"), band(band1("{ P[p] -> [p] }"), Node::Leaf)),
                        filter(uset("{ S[i] }"), band(band1("{ S[i] -> [i] }"), Node::Leaf)),
                    ]),
                ),
            ),
        );
        let flat = flatten(&t).unwrap();
        assert_eq!(flat.len(), 2);
        assert!(flat.iter().all(|e| e.marks == vec!["kernel".to_owned()]));
    }

    #[test]
    fn par_depths_track_band_coincidence() {
        let dom = uset("{ S[i] : 0 <= i <= 3 }")
            .union(&uset("{ T[i] : 0 <= i <= 3 }"))
            .unwrap();
        let seq_band = Band::new(umap("{ T[i] -> [i] }"), true, vec![false]).unwrap();
        let t = ScheduleTree::new(
            dom,
            sequence(vec![
                filter(uset("{ S[i] }"), band(band1("{ S[i] -> [i] }"), Node::Leaf)),
                filter(uset("{ T[i] }"), band(seq_band, Node::Leaf)),
            ]),
        );
        let flat = flatten(&t).unwrap();
        let s = flat.iter().find(|e| e.stmt == "S").unwrap();
        // Dim 0 is the sequence dim (never parallel); dim 1 is the
        // coincident band member.
        assert_eq!(s.par_depths, vec![false, true]);
        let tt = flat.iter().find(|e| e.stmt == "T").unwrap();
        assert_eq!(tt.par_depths, vec![false, false]);
    }

    #[test]
    fn par_depths_inherited_by_extension_and_padded_with_false() {
        // Same shape as extension_introduces_instances_per_tile: a
        // coincident tile band, then an extension introducing P.
        let dom = uset("{ S[i] : 0 <= i <= 5 }");
        let tile_band = Band::new(
            umap("{ S[i] -> [o] : 2o <= i <= 2o + 1 }"),
            true,
            vec![true],
        )
        .unwrap();
        let ext = umap("{ [o] -> P[p] : 2o <= p <= 2o + 2 and 0 <= p <= 6 }");
        let t = ScheduleTree::new(
            dom,
            band(
                tile_band,
                extension(
                    ext,
                    sequence(vec![
                        filter(uset("{ P[p] }"), Node::Leaf),
                        filter(uset("{ S[i] }"), band(band1("{ S[i] -> [i] }"), Node::Leaf)),
                    ]),
                ),
            ),
        );
        let flat = flatten(&t).unwrap();
        let p = flat.iter().find(|e| e.stmt == "P").unwrap();
        // P inherits the tile dim's coincidence, gets false for the
        // sequence dim, and false padding up to the common length.
        assert_eq!(p.par_depths, vec![true, false, false]);
        let s = flat.iter().find(|e| e.stmt == "S").unwrap();
        assert_eq!(s.par_depths, vec![true, false, true]);
    }

    #[test]
    fn empty_filtered_domains_drop_out() {
        let dom = uset("{ S[i] : 0 <= i <= 3 }");
        let t = ScheduleTree::new(
            dom,
            sequence(vec![
                filter(uset("{ S[i] : i >= 10 }"), Node::Leaf),
                filter(uset("{ S[i] }"), Node::Leaf),
            ]),
        );
        let flat = flatten(&t).unwrap();
        assert_eq!(flat.len(), 1);
    }
}
