//! Text parser for sets and maps, using isl-like syntax.
//!
//! ```text
//! [H, W] -> { S0[h, w] : 0 <= h < H and 0 <= w < W }
//! { S2[h,w,kh,kw] -> A[h+kh, w+kw] : 0 <= kh < 3 and 0 <= kw < 3 }
//! { S[i] : 0 <= i <= 4; S[i] : 10 <= i <= 14 }        (union via ';')
//! ```
//!
//! Supported constraint syntax: chains of `<`, `<=`, `>`, `>=`, `=`/`==`
//! between affine expressions, joined with `and`. Affine expressions allow
//! integer literals, names, unary minus, `+`, `-`, `*` by a constant, and
//! parentheses.

use crate::aff::{AffExpr, Constraint};
use crate::bset::BasicSet;
use crate::error::{Error, Result};
use crate::map::Map;
use crate::set::Set;
use crate::space::{Space, Tuple};
use std::str::FromStr;

impl FromStr for Set {
    type Err = Error;

    fn from_str(s: &str) -> Result<Set> {
        let parsed = Parser::new(s).parse()?;
        if parsed.space().is_map() {
            return Err(Error::KindMismatch { expected: "set" });
        }
        Ok(parsed)
    }
}

impl FromStr for Map {
    type Err = Error;

    fn from_str(s: &str) -> Result<Map> {
        let parsed = Parser::new(s).parse()?;
        if !parsed.space().is_map() {
            return Err(Error::KindMismatch { expected: "map" });
        }
        Map::from_wrapped_set(parsed)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Colon,
    Semi,
    Arrow,
    Plus,
    Minus,
    Star,
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
    And,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn tokens(src: &'a str) -> Result<Vec<(Tok, usize)>> {
        let mut lx = Lexer {
            src: src.as_bytes(),
            pos: 0,
        };
        let mut out = Vec::new();
        while let Some((t, at)) = lx.next_token()? {
            out.push((t, at));
        }
        Ok(out)
    }

    fn next_token(&mut self) -> Result<Option<(Tok, usize)>> {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let at = self.pos;
        let c = self.src[self.pos];
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b':' => {
                self.pos += 1;
                Tok::Colon
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'-' => {
                if self.src.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Tok::Arrow
                } else {
                    self.pos += 1;
                    Tok::Minus
                }
            }
            b'<' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Le
                } else {
                    self.pos += 1;
                    Tok::Lt
                }
            }
            b'>' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Ge
                } else {
                    self.pos += 1;
                    Tok::Gt
                }
            }
            b'=' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                } else {
                    self.pos += 1;
                }
                Tok::Eq
            }
            b'&' => {
                if self.src.get(self.pos + 1) == Some(&b'&') {
                    self.pos += 2;
                    Tok::And
                } else {
                    return Err(Error::Parse {
                        message: "lone '&'".into(),
                        offset: at,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                let v = text.parse::<i64>().map_err(|_| Error::Parse {
                    message: "integer too large".into(),
                    offset: at,
                })?;
                Tok::Int(v)
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'_'
                        || self.src[self.pos] == b'\'')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .to_owned();
                if text == "and" {
                    Tok::And
                } else {
                    Tok::Ident(text)
                }
            }
            _ => {
                return Err(Error::Parse {
                    message: format!("unexpected character '{}'", c as char),
                    offset: at,
                })
            }
        };
        Ok(Some((tok, at)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn new(src: &str) -> Self {
        let end = src.len();
        match Lexer::tokens(src) {
            Ok(toks) => Parser { toks, pos: 0, end },
            Err(e) => {
                // Encode the lex error as a poisoned parser that fails at
                // the first peek. Simpler: stash it.
                Parser {
                    toks: vec![(Tok::Ident(format!("\u{0}{e}")), 0)],
                    pos: 0,
                    end,
                }
            }
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let offset = self.toks.get(self.pos).map_or(self.end, |(_, at)| *at);
        Err(Error::Parse {
            message: message.into(),
            offset,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Entry point: parses a whole set or map (as a wrapped set).
    fn parse(&mut self) -> Result<Set> {
        // Poisoned lexer check.
        if let Some(Tok::Ident(s)) = self.peek() {
            if let Some(msg) = s.strip_prefix('\u{0}') {
                return Err(Error::Parse {
                    message: msg.to_owned(),
                    offset: 0,
                });
            }
        }
        // Optional parameter list: [A, B] ->
        let mut params: Vec<String> = Vec::new();
        let save = self.pos;
        if self.eat(&Tok::LBracket) {
            let ok = loop {
                match self.bump() {
                    Some(Tok::Ident(name)) => {
                        params.push(name);
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RBracket) => break true,
                            _ => break false,
                        }
                    }
                    Some(Tok::RBracket) if params.is_empty() => break true,
                    _ => break false,
                }
            };
            if !ok || !self.eat(&Tok::Arrow) {
                // Not a parameter list after all.
                self.pos = save;
                params.clear();
            }
        }
        self.expect(&Tok::LBrace, "'{'")?;
        let mut space: Option<Space> = None;
        let mut basics: Vec<BasicSet> = Vec::new();
        loop {
            let (sp, basic) = self.parse_disjunct(&params)?;
            match &space {
                None => space = Some(sp),
                Some(existing) => {
                    existing.check_compatible(&sp, "parse union")?;
                }
            }
            basics.push(basic);
            if !self.eat(&Tok::Semi) {
                break;
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        if self.peek().is_some() {
            return self.err("trailing input after '}'");
        }
        let space = space.expect("at least one disjunct");
        // Cast all basics to the first disjunct's space (dim names may vary).
        let basics = basics
            .into_iter()
            .map(|b| b.cast(space.clone()))
            .collect::<Result<Vec<_>>>()?;
        Set::from_basics(space, basics)
    }

    fn parse_disjunct(&mut self, params: &[String]) -> Result<(Space, BasicSet)> {
        let first = self.parse_tuple()?;
        let mut raw_tuples = vec![first];
        if self.eat(&Tok::Arrow) {
            raw_tuples.push(self.parse_tuple()?);
        }
        // Assign dimension names. A repeated name (isl semantics: the
        // second occurrence equals the first) and an expression entry both
        // become fresh dims pinned by an equality constraint.
        let mut seen: Vec<String> = Vec::new();
        let mut extra: Vec<(usize, RawExpr)> = Vec::new();
        let mut tuples = Vec::new();
        let mut abs = 0usize;
        for (t_idx, (tname, entries)) in raw_tuples.iter().enumerate() {
            let mut dim_names: Vec<String> = Vec::new();
            for (i, d) in entries.iter().enumerate() {
                match d {
                    DimEntry::Name(n) if !seen.contains(n) => {
                        seen.push(n.clone());
                        dim_names.push(n.clone());
                    }
                    DimEntry::Name(n) => {
                        // Repeated name: fresh primed name + equality.
                        let mut fresh = format!("{n}'");
                        while seen.contains(&fresh) {
                            fresh.push('\'');
                        }
                        seen.push(fresh.clone());
                        dim_names.push(fresh);
                        extra.push((abs + i, RawExpr::var(n)));
                    }
                    DimEntry::Expr(e) => {
                        let fresh = format!("_t{t_idx}_{i}");
                        seen.push(fresh.clone());
                        dim_names.push(fresh);
                        extra.push((abs + i, e.clone()));
                    }
                }
            }
            let refs: Vec<&str> = dim_names.iter().map(String::as_str).collect();
            tuples.push(Tuple::new(tname.as_deref(), &refs));
            abs += entries.len();
        }
        let space = Space::from_parts(params.to_vec(), tuples);
        let mut basic = BasicSet::universe(space.clone());
        for (dim, raw) in &extra {
            let lhs = AffExpr::dim(&space, *dim)?;
            let rhs = raw.resolve(&space).map_err(|name| Error::Parse {
                message: format!("unknown name '{name}'"),
                offset: 0,
            })?;
            basic.add_constraint(&lhs.eq(&rhs)?)?;
        }
        if self.eat(&Tok::Colon) {
            loop {
                for c in self.parse_chain(&space)? {
                    basic.add_constraint(&c)?;
                }
                if !self.eat(&Tok::And) {
                    break;
                }
            }
        }
        Ok((space, basic))
    }

    /// Parses `Name[e0, e1, ...]` or `[e0, ...]` into the tuple name and
    /// raw dim entries; name resolution happens in `parse_disjunct` once
    /// all tuples of the disjunct are known.
    fn parse_tuple(&mut self) -> Result<(Option<String>, Vec<DimEntry>)> {
        let name = match self.peek() {
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(n)) = self.bump() else {
                    unreachable!()
                };
                Some(n)
            }
            _ => None,
        };
        self.expect(&Tok::LBracket, "'['")?;
        let mut dims: Vec<DimEntry> = Vec::new();
        if !self.eat(&Tok::RBracket) {
            loop {
                dims.push(self.parse_dim_entry()?);
                if self.eat(&Tok::RBracket) {
                    break;
                }
                self.expect(&Tok::Comma, "',' or ']'")?;
            }
        }
        Ok((name, dims))
    }

    fn parse_dim_entry(&mut self) -> Result<DimEntry> {
        // Lookahead: a single identifier followed by ',' or ']' is a name;
        // anything else is an expression.
        if let Some(Tok::Ident(n)) = self.peek() {
            let n = n.clone();
            if matches!(
                self.toks.get(self.pos + 1).map(|(t, _)| t),
                Some(Tok::Comma) | Some(Tok::RBracket)
            ) {
                self.pos += 1;
                return Ok(DimEntry::Name(n));
            }
        }
        Ok(DimEntry::Expr(self.parse_raw_expr()?))
    }

    /// Parses an affine expression into a name->coeff form, independent of
    /// any space (resolved later).
    fn parse_raw_expr(&mut self) -> Result<RawExpr> {
        let mut e = self.parse_raw_term()?;
        loop {
            if self.eat(&Tok::Plus) {
                let t = self.parse_raw_term()?;
                e = e.add(&t);
            } else if self.eat(&Tok::Minus) {
                let t = self.parse_raw_term()?;
                e = e.add(&t.neg());
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_raw_term(&mut self) -> Result<RawExpr> {
        match self.bump() {
            Some(Tok::Int(v)) => {
                // Optional `* name`, `name`, or `* (expr)`.
                if self.eat(&Tok::Star) {
                    let f = self.parse_raw_factor()?;
                    Ok(f.scale(v))
                } else if let Some(Tok::Ident(_)) = self.peek() {
                    let Some(Tok::Ident(n)) = self.bump() else {
                        unreachable!()
                    };
                    Ok(RawExpr::var(&n).scale(v))
                } else {
                    Ok(RawExpr::constant(v))
                }
            }
            Some(Tok::Ident(n)) => {
                if self.eat(&Tok::Star) {
                    // name * const
                    match self.bump() {
                        Some(Tok::Int(v)) => Ok(RawExpr::var(&n).scale(v)),
                        _ => self.err("expected integer after '*'"),
                    }
                } else {
                    Ok(RawExpr::var(&n))
                }
            }
            Some(Tok::Minus) => Ok(self.parse_raw_term()?.neg()),
            Some(Tok::LParen) => {
                let e = self.parse_raw_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            _ => self.err("expected expression"),
        }
    }

    fn parse_raw_factor(&mut self) -> Result<RawExpr> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(RawExpr::var(&n)),
            Some(Tok::Int(v)) => Ok(RawExpr::constant(v)),
            Some(Tok::LParen) => {
                let e = self.parse_raw_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            _ => self.err("expected factor"),
        }
    }

    /// Parses a chain `e0 op e1 op e2 ...` into constraints over `space`.
    fn parse_chain(&mut self, space: &Space) -> Result<Vec<Constraint>> {
        let mut exprs = vec![self.parse_expr(space)?];
        let mut ops = Vec::new();
        loop {
            let op = match self.peek() {
                Some(Tok::Le) => CmpOp::Le,
                Some(Tok::Lt) => CmpOp::Lt,
                Some(Tok::Ge) => CmpOp::Ge,
                Some(Tok::Gt) => CmpOp::Gt,
                Some(Tok::Eq) => CmpOp::Eq,
                _ => break,
            };
            self.pos += 1;
            ops.push(op);
            exprs.push(self.parse_expr(space)?);
        }
        if ops.is_empty() {
            return self.err("expected comparison operator");
        }
        let mut out = Vec::new();
        for (k, op) in ops.iter().enumerate() {
            let a = &exprs[k];
            let b = &exprs[k + 1];
            out.push(match op {
                CmpOp::Le => a.le(b)?,
                CmpOp::Lt => a.lt(b)?,
                CmpOp::Ge => a.ge(b)?,
                CmpOp::Gt => a.gt(b)?,
                CmpOp::Eq => a.eq(b)?,
            });
        }
        Ok(out)
    }

    fn parse_expr(&mut self, space: &Space) -> Result<AffExpr> {
        let raw = self.parse_raw_expr()?;
        raw.resolve(space).map_err(|name| Error::Parse {
            message: format!("unknown name '{name}'"),
            offset: self
                .toks
                .get(self.pos.saturating_sub(1))
                .map_or(0, |(_, at)| *at),
        })
    }
}

#[derive(Debug, Clone)]
enum DimEntry {
    Name(String),
    Expr(RawExpr),
}

#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
}

/// A space-independent affine expression: name -> coefficient + constant.
#[derive(Debug, Clone, Default)]
struct RawExpr {
    terms: Vec<(String, i64)>,
    constant: i64,
}

impl RawExpr {
    fn var(name: &str) -> Self {
        RawExpr {
            terms: vec![(name.to_owned(), 1)],
            constant: 0,
        }
    }

    fn constant(v: i64) -> Self {
        RawExpr {
            terms: Vec::new(),
            constant: v,
        }
    }

    fn add(&self, other: &RawExpr) -> RawExpr {
        let mut out = self.clone();
        for (n, c) in &other.terms {
            if let Some(e) = out.terms.iter_mut().find(|(m, _)| m == n) {
                e.1 += c;
            } else {
                out.terms.push((n.clone(), *c));
            }
        }
        out.constant += other.constant;
        out
    }

    fn neg(&self) -> RawExpr {
        self.scale(-1)
    }

    fn scale(&self, k: i64) -> RawExpr {
        RawExpr {
            terms: self.terms.iter().map(|(n, c)| (n.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Resolves names against a space: tuple dims shadow parameters.
    /// Returns the unresolved name on failure.
    fn resolve(&self, space: &Space) -> std::result::Result<AffExpr, String> {
        let mut e = AffExpr::constant(space, self.constant);
        let n_dim = space.n_dim();
        'terms: for (name, coeff) in &self.terms {
            // Dims first (absolute index across tuples).
            for d in 0..n_dim {
                if space.var_name(space.n_param() + d) == name {
                    let cur = e.dim_coeff(d);
                    e = e.with_dim_coeff(d, cur + coeff);
                    continue 'terms;
                }
            }
            for p in 0..space.n_param() {
                if space.params()[p] == *name {
                    let cur = e.param_coeff(p);
                    e = e.with_param_coeff(p, cur + coeff);
                    continue 'terms;
                }
            }
            return Err(name.clone());
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_set() {
        let s: Set = "{ S[i] : 0 <= i <= 4 }".parse().unwrap();
        assert_eq!(s.space().tuple().name(), Some("S"));
        assert!(s.contains(&[0]).unwrap());
        assert!(s.contains(&[4]).unwrap());
        assert!(!s.contains(&[5]).unwrap());
    }

    #[test]
    fn parse_with_params() {
        let s: Set = "[N, M] -> { S[i, j] : 0 <= i < N and 0 <= j < M }"
            .parse()
            .unwrap();
        assert_eq!(s.space().n_param(), 2);
        assert!(s.contains(&[3, 2, 2, 1]).unwrap());
        assert!(!s.contains(&[3, 2, 3, 0]).unwrap());
    }

    #[test]
    fn parse_chained_comparison() {
        let s: Set = "{ S[i] : 0 <= i < 10 }".parse().unwrap();
        assert!(s.contains(&[9]).unwrap());
        assert!(!s.contains(&[10]).unwrap());
        assert!(!s.contains(&[-1]).unwrap());
    }

    #[test]
    fn parse_union() {
        let s: Set = "{ S[i] : 0 <= i <= 2; S[j] : 5 <= j <= 6 }"
            .parse()
            .unwrap();
        assert_eq!(s.n_basic(), 2);
        assert!(s.contains(&[6]).unwrap());
        assert!(!s.contains(&[4]).unwrap());
    }

    #[test]
    fn parse_map_with_access_exprs() {
        let m: Map = "{ S[h, w] -> A[h+1, 2w - 3] }".parse().unwrap();
        assert!(m.contains_pair(&[0, 5, 1, 7]).unwrap());
        assert!(!m.contains_pair(&[0, 5, 1, 8]).unwrap());
    }

    #[test]
    fn parse_coefficients_and_parens() {
        let s: Set =
            "{ S[i, j] : 2i + 3*j - (i - 1) >= 0 and i <= 5 and j <= 5 and i >= -5 and j >= -5 }"
                .parse()
                .unwrap();
        // i + 3j + 1 >= 0 at (0, 0): yes; at (-4, 1): 0 >= 0 yes; (-5, 1): -1 no.
        assert!(s.contains(&[0, 0]).unwrap());
        assert!(s.contains(&[-4, 1]).unwrap());
        assert!(!s.contains(&[-5, 1]).unwrap());
    }

    #[test]
    fn parse_anonymous_tuple() {
        let s: Set = "{ [i, j] : i = j and 0 <= i <= 1 }".parse().unwrap();
        assert_eq!(s.space().tuple().name(), None);
        assert!(s.contains(&[1, 1]).unwrap());
        assert!(!s.contains(&[1, 0]).unwrap());
    }

    #[test]
    fn parse_double_eq() {
        let s: Set = "{ S[i] : i == 3 }".parse().unwrap();
        assert!(s.contains(&[3]).unwrap());
        assert!(!s.contains(&[2]).unwrap());
    }

    #[test]
    fn parse_and_amp_amp() {
        let s: Set = "{ S[i] : i >= 0 && i <= 2 }".parse().unwrap();
        assert!(s.contains(&[2]).unwrap());
        assert!(!s.contains(&[3]).unwrap());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!("{ S[i] ".parse::<Set>().is_err());
        assert!("{ S[i] : }".parse::<Set>().is_err());
        assert!("{ S[i] : q >= 0 }".parse::<Set>().is_err());
        assert!("{ S[i] -> A[i] }".parse::<Set>().is_err()); // map, not set
        assert!("{ S[i] : i >= 0 }".parse::<Map>().is_err()); // set, not map
        assert!("{ S[i] : i >= 0 } extra".parse::<Set>().is_err());
    }

    #[test]
    fn parse_union_space_mismatch_rejected() {
        assert!("{ S[i] : i >= 0; T[i] : i >= 0 }".parse::<Set>().is_err());
        assert!("{ S[i] : i >= 0; S[i, j] : i >= 0 }"
            .parse::<Set>()
            .is_err());
    }

    #[test]
    fn parse_negative_constants() {
        let s: Set = "{ S[i] : -3 <= i <= -1 }".parse().unwrap();
        assert!(s.contains(&[-2]).unwrap());
        assert!(!s.contains(&[0]).unwrap());
    }

    #[test]
    fn parse_map_with_tiling_constraints() {
        // Fixed tile size 4 (the paper notes tile sizes must be fixed
        // integers; symbolic tile sizes would make constraints quadratic).
        let m: Map = "{ O[o] -> S[i] : 4o <= i < 4o + 4 }".parse().unwrap();
        assert!(m.contains_pair(&[1, 4]).unwrap());
        assert!(m.contains_pair(&[1, 7]).unwrap());
        assert!(!m.contains_pair(&[1, 8]).unwrap());
    }

    #[test]
    fn parse_rejects_param_times_var() {
        assert!("[T] -> { O[o] -> S[i] : T*o <= i }".parse::<Map>().is_err());
    }

    #[test]
    fn parse_primed_names() {
        let s: Set = "{ A[h', w'] : 0 <= h' <= 1 and w' = h' }".parse().unwrap();
        assert!(s.contains(&[1, 1]).unwrap());
        assert!(!s.contains(&[1, 0]).unwrap());
    }
}
