//! Display implementations producing isl-like text.

use crate::bset::BasicSet;
use crate::map::Map;
use crate::set::Set;
use std::fmt;

/// Formats an affine row `[coeffs..., const]` as e.g. `2i - j + 3`.
/// `name` maps a coefficient index to a variable name.
pub(crate) fn fmt_affine_row(
    f: &mut fmt::Formatter<'_>,
    row: &[i64],
    name: &dyn Fn(usize) -> String,
) -> fmt::Result {
    let n = row.len() - 1;
    let mut first = true;
    for (i, &c) in row[..n].iter().enumerate() {
        if c == 0 {
            continue;
        }
        let v = name(i);
        if first {
            match c {
                1 => write!(f, "{v}")?,
                -1 => write!(f, "-{v}")?,
                _ => write!(f, "{c}{v}")?,
            }
            first = false;
        } else if c > 0 {
            if c == 1 {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}{v}")?;
            }
        } else if c == -1 {
            write!(f, " - {v}")?;
        } else {
            write!(f, " - {}{v}", -c)?;
        }
    }
    let k = row[n];
    if first {
        write!(f, "{k}")?;
    } else if k > 0 {
        write!(f, " + {k}")?;
    } else if k < 0 {
        write!(f, " - {}", -k)?;
    }
    Ok(())
}

/// Writes the body of a basic set: `S[i, j] : constraints` (with an
/// `exists(...)` wrapper when auxiliary variables are present).
fn fmt_basic_body(f: &mut fmt::Formatter<'_>, b: &BasicSet) -> fmt::Result {
    let space = b.space();
    if space.is_map() {
        write!(f, "{} -> {}", space.in_tuple(), space.out_tuple())?;
    } else {
        write!(f, "{}", space.tuple())?;
    }
    if b.n_constraint() == 0 {
        return Ok(());
    }
    write!(f, " : ")?;
    let np = space.n_param();
    let nd = space.n_dim();
    let name = |i: usize| -> String {
        if i < np + nd {
            space.var_name(i).to_owned()
        } else {
            format!("e{}", i - np - nd)
        }
    };
    if b.n_div() > 0 {
        let divs: Vec<String> = (0..b.n_div()).map(|i| format!("e{i}")).collect();
        write!(f, "exists({}: ", divs.join(", "))?;
    }
    let mut first = true;
    for r in b.eq_rows() {
        if !first {
            write!(f, " and ")?;
        }
        first = false;
        fmt_affine_row(f, r, &name)?;
        write!(f, " = 0")?;
    }
    for r in b.ineq_rows() {
        if !first {
            write!(f, " and ")?;
        }
        first = false;
        fmt_affine_row(f, r, &name)?;
        write!(f, " >= 0")?;
    }
    if b.n_div() > 0 {
        write!(f, ")")?;
    }
    Ok(())
}

fn fmt_union(f: &mut fmt::Formatter<'_>, space: &crate::Space, basics: &[BasicSet]) -> fmt::Result {
    if !space.params().is_empty() {
        write!(f, "[{}] -> ", space.params().join(", "))?;
    }
    write!(f, "{{ ")?;
    if basics.is_empty() {
        // Render the empty set with an explicit false constraint.
        if space.is_map() {
            write!(f, "{} -> {}", space.in_tuple(), space.out_tuple())?;
        } else {
            write!(f, "{}", space.tuple())?;
        }
        write!(f, " : 1 = 0")?;
    }
    for (k, b) in basics.iter().enumerate() {
        if k > 0 {
            write!(f, "; ")?;
        }
        fmt_basic_body(f, b)?;
    }
    write!(f, " }}")
}

impl fmt::Display for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_union(f, self.space(), std::slice::from_ref(self))
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_union(f, self.space(), self.basics())
    }
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_union(f, self.space(), self.basics())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Map, Set};

    #[test]
    fn set_roundtrips_through_text() {
        let s: Set = "[N] -> { S[i, j] : 0 <= i < N and j = i + 1 }"
            .parse()
            .unwrap();
        let printed = s.to_string();
        let back: Set = printed.parse().unwrap();
        assert!(s.is_equal(&back).unwrap(), "printed: {printed}");
    }

    #[test]
    fn map_roundtrips_through_text() {
        let m: Map = "{ S[h, w] -> A[h+1, w] : 0 <= h <= 3 }".parse().unwrap();
        let printed = m.to_string();
        let back: Map = printed.parse().unwrap();
        assert!(m.is_equal(&back).unwrap(), "printed: {printed}");
    }

    #[test]
    fn union_roundtrips() {
        let s: Set = "{ S[i] : 0 <= i <= 2; S[i] : 7 <= i <= 9 }"
            .parse()
            .unwrap();
        let back: Set = s.to_string().parse().unwrap();
        assert!(s.is_equal(&back).unwrap());
    }

    #[test]
    fn empty_set_prints_false() {
        let s = Set::empty(crate::Space::set(&[], crate::Tuple::new(Some("S"), &["i"])));
        assert_eq!(s.to_string(), "{ S[i] : 1 = 0 }");
        let back: Set = s.to_string().parse().unwrap();
        assert!(back.is_empty().unwrap());
    }

    #[test]
    fn universe_prints_bare_tuple() {
        let s: Set = "{ S[i] }".parse().unwrap();
        assert_eq!(s.to_string(), "{ S[i] }");
    }
}
