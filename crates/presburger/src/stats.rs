//! Hit/miss counters for the memoized presburger operations.
//!
//! The memo table in [`crate::cache`] records a hit or miss here on
//! every lookup, per operation, so callers (the bench harness, the
//! experiment driver) can observe how much recomputation the cache is
//! eliminating. Counters are process-global atomics: cheap to bump,
//! safe to read from any thread.
//!
//! When span tracing is enabled (`tilefuse_trace::set_enabled`), every
//! hit/miss — and the wall time of every *uncached* operation body, via
//! [`timed`] — is additionally attributed to the innermost open span on
//! the calling thread (counter slot = `Op as usize`), so phase tables can
//! show which pipeline phase is paying for which presburger operation.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which memoized operation a lookup belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// [`crate::BasicSet::is_empty`]
    IsEmpty,
    /// [`crate::BasicSet::project_out_dims`]
    Project,
    /// [`crate::Set::intersect`]
    Intersect,
    /// [`crate::Map::apply`]
    Apply,
    /// [`crate::Map::reverse`]
    Reverse,
}

const N_OPS: usize = 5;

/// The memoized operation names, indexed by `Op as usize`. Doubles as the
/// trace counter-slot labels for `tilefuse_trace::phase_table` /
/// `chrome_trace_json`, since [`record`] attributes each hit/miss to slot
/// `Op as usize` of the enclosing span.
pub const OP_NAMES: [&str; N_OPS] = ["is_empty", "project", "intersect", "apply", "reverse"];

/// Trace counter slot used for silent-feasible fallbacks (the slot after
/// the five memoized-operation slots).
pub const SILENT_FEASIBLE_SLOT: usize = N_OPS;

/// Every trace counter slot this crate reports to, in slot order: the five
/// memoized operations plus the silent-feasible fallback counter. Pass
/// this (instead of [`OP_NAMES`]) to `tilefuse_trace::phase_table` /
/// `chrome_trace_json` so slot 5 gets a label.
pub const SLOT_NAMES: [&str; N_OPS + 1] = [
    "is_empty",
    "project",
    "intersect",
    "apply",
    "reverse",
    "silent_feasible",
];

static HITS: [AtomicU64; N_OPS] = [const { AtomicU64::new(0) }; N_OPS];
static MISSES: [AtomicU64; N_OPS] = [const { AtomicU64::new(0) }; N_OPS];
static POISONED: AtomicU64 = AtomicU64::new(0);
static SILENT_FEASIBLE: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record(op: Op, hit: bool) {
    let i = op as usize;
    if hit {
        HITS[i].fetch_add(1, Ordering::Relaxed);
    } else {
        MISSES[i].fetch_add(1, Ordering::Relaxed);
    }
    tilefuse_trace::note_counter(i, hit);
}

/// Records a memo entry that existed under the right key but held the
/// wrong value variant (see `cache` typed lookups); the entry is evicted
/// and the operation recomputed, so this only ever costs a miss.
pub(crate) fn record_poisoned() {
    POISONED.fetch_add(1, Ordering::Relaxed);
}

/// Number of poisoned memo entries encountered (wrong value variant under
/// a key); each was evicted and recomputed. Stays 0 in normal operation.
pub fn poisoned() -> u64 {
    POISONED.load(Ordering::Relaxed)
}

/// Records one conservative "feasible" fallback from `omega::feasible`
/// hitting its branch cap: bumps the process-global counter, attributes
/// the event to the innermost trace span (slot [`SILENT_FEASIBLE_SLOT`],
/// counted as a miss), and informs the governor.
pub(crate) fn record_silent_feasible() {
    SILENT_FEASIBLE.fetch_add(1, Ordering::Relaxed);
    tilefuse_trace::note_counter(SILENT_FEASIBLE_SLOT, false);
    tilefuse_trace::governor::note_silent_feasible();
}

/// Times the Omega test fell back to the conservative "feasible" answer at
/// its branch cap (built-in or governor-shrunk) since the last [`reset`].
/// Non-zero means some emptiness answers were over-approximated — still
/// sound, but observable here instead of silent.
pub fn silent_feasible() -> u64 {
    SILENT_FEASIBLE.load(Ordering::Relaxed)
}

/// RAII timer for the uncached body of a memoized operation: on drop,
/// attributes the elapsed wall time to the enclosing trace span (slot
/// `op as usize`). Inert — no timestamps taken — while tracing is
/// disabled. Obtain via [`op_timer`] after a memo miss.
pub(crate) struct OpTimer {
    op: Op,
    start: Option<std::time::Instant>,
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            tilefuse_trace::note_counter_ns(self.op as usize, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts timing an uncached operation body (see [`OpTimer`]).
pub(crate) fn op_timer(op: Op) -> OpTimer {
    OpTimer {
        op,
        start: tilefuse_trace::is_enabled().then(std::time::Instant::now),
    }
}

/// Hit/miss counts for one memoized operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    pub hits: u64,
    pub misses: u64,
}

impl OpStats {
    /// Fraction of lookups that hit, or 0.0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A point-in-time snapshot of every operation's counters plus the memo
/// table's current size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub is_empty: OpStats,
    pub project: OpStats,
    pub intersect: OpStats,
    pub apply: OpStats,
    pub reverse: OpStats,
    /// Entries currently resident in the memo table.
    pub entries: usize,
    /// Conservative branch-cap fallbacks (see [`silent_feasible`]).
    pub silent_feasible: u64,
}

impl CacheStats {
    /// Total hits across all operations.
    pub fn total_hits(&self) -> u64 {
        self.per_op().iter().map(|s| s.hits).sum()
    }

    /// Total misses across all operations.
    pub fn total_misses(&self) -> u64 {
        self.per_op().iter().map(|s| s.misses).sum()
    }

    fn per_op(&self) -> [OpStats; N_OPS] {
        [
            self.is_empty,
            self.project,
            self.intersect,
            self.apply,
            self.reverse,
        ]
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops = self.per_op();
        for (name, s) in OP_NAMES.iter().zip(ops.iter()) {
            write!(
                f,
                "{name}: {}/{} ({:.0}%)  ",
                s.hits,
                s.hits + s.misses,
                s.hit_rate() * 100.0
            )?;
        }
        write!(f, "entries: {}", self.entries)?;
        if self.silent_feasible > 0 {
            write!(f, "  silent_feasible: {}", self.silent_feasible)?;
        }
        Ok(())
    }
}

/// Reads the current counters and memo-table size.
pub fn snapshot() -> CacheStats {
    let at = |i: usize| OpStats {
        hits: HITS[i].load(Ordering::Relaxed),
        misses: MISSES[i].load(Ordering::Relaxed),
    };
    CacheStats {
        is_empty: at(Op::IsEmpty as usize),
        project: at(Op::Project as usize),
        intersect: at(Op::Intersect as usize),
        apply: at(Op::Apply as usize),
        reverse: at(Op::Reverse as usize),
        entries: crate::cache::len(),
        silent_feasible: SILENT_FEASIBLE.load(Ordering::Relaxed),
    }
}

/// Zeroes every hit/miss counter (the memo table itself is untouched).
pub fn reset() {
    for i in 0..N_OPS {
        HITS[i].store(0, Ordering::Relaxed);
        MISSES[i].store(0, Ordering::Relaxed);
    }
    POISONED.store(0, Ordering::Relaxed);
    SILENT_FEASIBLE.store(0, Ordering::Relaxed);
}

/// Empties the memo table and the row interner. Counters are untouched;
/// combine with [`reset`] for a fully cold start.
pub fn clear_cache() {
    crate::cache::clear();
}

/// Whether the memo layers (global table, inline emptiness flag, interval
/// emptiness pre-check) are consulted. Default `true`.
static MEMO_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables every memo layer: the structural memo
/// table, the inline per-object emptiness flag and the O(rows) interval
/// emptiness pre-check. With memoization disabled every operation runs
/// the full uncached algorithm (e.g. the Omega test for emptiness).
///
/// This exists for *differential validation*: the fuzzing oracle in
/// `crates/fuzzgen` recomputes analyses with the memo off and compares
/// results bit-for-bit against the memoized run, so a stale or wrongly
/// keyed cache entry can never silently change an answer. The flag is
/// process-global; toggling it from concurrent threads only changes
/// whether work is cached, never the results.
pub fn set_memo_enabled(enabled: bool) {
    MEMO_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the memo layers are currently consulted (see
/// [`set_memo_enabled`]).
pub fn memo_enabled() -> bool {
    MEMO_ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_hit_rate() {
        let s = OpStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(OpStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn display_mentions_every_op() {
        let s = CacheStats::default();
        let text = s.to_string();
        for name in OP_NAMES {
            assert!(text.contains(name), "{text}");
        }
    }
}
