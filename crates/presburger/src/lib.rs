//! Integer sets and maps for polyhedral compilation.
//!
//! This crate is a from-scratch replacement for the subset of
//! [isl](https://libisl.sourceforge.io/) that polyhedral tiling-and-fusion
//! algorithms need: sets and maps of integer tuples defined by affine
//! constraints (Presburger formulas without quantifier alternation), with
//! *exact* integer semantics for the operations used by the MICRO 2020
//! post-tiling fusion algorithms:
//!
//! * intersection, union, subtraction, emptiness, subset/equality tests,
//! * map reversal, composition ("apply"), domain/range extraction,
//! * exact projection of existentially quantified variables (the Omega
//!   test's dark shadow + splinter decomposition, exact Fourier–Motzkin in
//!   the unit-coefficient case),
//! * lexicographic-order relations between schedule spaces,
//! * point enumeration/scanning (also the basis for AST generation),
//! * a text parser and printer using isl-like syntax.
//!
//! # Quickstart
//!
//! ```
//! use tilefuse_presburger::{Set, Map};
//!
//! // The iteration domain of a 3x3 convolution statement, 6x6 image.
//! let dom: Set = "{ S2[h,w,kh,kw] : 0 <= h <= 3 and 0 <= w <= 3 \
//!                   and 0 <= kh <= 2 and 0 <= kw <= 2 }".parse()?;
//! // Its read access to the input tensor.
//! let read: Map = "{ S2[h,w,kh,kw] -> A[h+kh, w+kw] }".parse()?;
//! // The memory footprint: all of A touched by the statement.
//! let footprint = read.intersect_domain(&dom)?.range()?;
//! let expected: Set = "{ A[i,j] : 0 <= i <= 5 and 0 <= j <= 5 }".parse()?;
//! assert!(footprint.is_equal(&expected)?);
//! # Ok::<(), tilefuse_presburger::Error>(())
//! ```

mod aff;
mod bset;
mod cache;
mod error;
mod lin;
mod map;
mod omega;
mod parse;
mod point;
mod print;
mod scan;
mod set;
mod space;
pub mod stats;
mod union;

pub use aff::{AffExpr, Constraint, ConstraintKind};
pub use bset::BasicSet;
pub use error::{Error, Result};
pub use map::Map;
pub use point::Point;
pub use scan::{LoopBounds, ScanLevel, Scanner};
pub use set::Set;
pub use space::{Space, Tuple};
pub use union::{UnionMap, UnionSet};
