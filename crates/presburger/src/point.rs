//! Integer points of a set space.

use std::fmt;

/// A concrete integer point: coordinates of one tuple instance, e.g. the
/// statement instance `S2[1, 2, 0, 1]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    name: Option<String>,
    coords: Vec<i64>,
}

impl Point {
    /// Creates a point with an optional tuple name.
    pub fn new(name: Option<&str>, coords: Vec<i64>) -> Self {
        Point {
            name: name.map(str::to_owned),
            coords,
        }
    }

    /// The tuple name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The coordinates.
    pub fn coords(&self) -> &[i64] {
        &self.coords
    }

    /// Number of coordinates.
    pub fn arity(&self) -> usize {
        self.coords.len()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}")?;
        }
        write!(
            f,
            "[{}]",
            self.coords
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_named() {
        let p = Point::new(Some("S2"), vec![1, 2, 0, 1]);
        assert_eq!(p.to_string(), "S2[1, 2, 0, 1]");
        assert_eq!(p.arity(), 4);
        assert_eq!(p.name(), Some("S2"));
    }

    #[test]
    fn display_anonymous() {
        let p = Point::new(None, vec![-3]);
        assert_eq!(p.to_string(), "[-3]");
        assert_eq!(p.coords(), &[-3]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Point::new(Some("S"), vec![0, 5]);
        let b = Point::new(Some("S"), vec![1, 0]);
        assert!(a < b);
    }
}
