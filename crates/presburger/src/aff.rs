//! Affine expressions and constraints over a [`Space`].
//!
//! An [`AffExpr`] is `Σ cᵖ·param + Σ cˣ·dim + c` with integer coefficients;
//! a [`Constraint`] asserts that such an expression is zero (equality) or
//! non-negative (inequality). These are the public building blocks from
//! which [`BasicSet`](crate::BasicSet)s are assembled programmatically; most
//! users will find the text parser more convenient.

use crate::error::{Error, Result};
use crate::lin;
use crate::space::Space;
use std::fmt;

/// An integer affine expression over the parameters and dimensions of a
/// [`Space`].
///
/// Internally a row `[params..., dims..., constant]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffExpr {
    space: Space,
    row: Vec<i64>,
}

impl AffExpr {
    /// The zero expression in `space`.
    pub fn zero(space: &Space) -> Self {
        let n = space.n_param() + space.n_dim() + 1;
        AffExpr {
            space: space.clone(),
            row: vec![0; n],
        }
    }

    /// The constant expression `c`.
    pub fn constant(space: &Space, c: i64) -> Self {
        let mut e = Self::zero(space);
        *e.row.last_mut().unwrap() = c;
        e
    }

    /// The expression `param_i` (by index into the parameter list).
    ///
    /// # Errors
    /// Returns [`Error::DimOutOfBounds`] if `i` is not a parameter index.
    pub fn param(space: &Space, i: usize) -> Result<Self> {
        if i >= space.n_param() {
            return Err(Error::DimOutOfBounds {
                index: i,
                len: space.n_param(),
            });
        }
        let mut e = Self::zero(space);
        e.row[i] = 1;
        Ok(e)
    }

    /// The expression `dim_i` (absolute index over all tuple dimensions,
    /// input dims first for a map).
    ///
    /// # Errors
    /// Returns [`Error::DimOutOfBounds`] if `i` is not a dimension index.
    pub fn dim(space: &Space, i: usize) -> Result<Self> {
        if i >= space.n_dim() {
            return Err(Error::DimOutOfBounds {
                index: i,
                len: space.n_dim(),
            });
        }
        let mut e = Self::zero(space);
        e.row[space.n_param() + i] = 1;
        Ok(e)
    }

    /// The space this expression is defined over.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Coefficient of parameter `i`.
    pub fn param_coeff(&self, i: usize) -> i64 {
        self.row[i]
    }

    /// Coefficient of dimension `i` (absolute index).
    pub fn dim_coeff(&self, i: usize) -> i64 {
        self.row[self.space.n_param() + i]
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        *self.row.last().unwrap()
    }

    /// Sets the coefficient of dimension `i`, returning `self` for chaining.
    #[must_use]
    pub fn with_dim_coeff(mut self, i: usize, c: i64) -> Self {
        self.row[self.space.n_param() + i] = c;
        self
    }

    /// Sets the coefficient of parameter `i`, returning `self` for chaining.
    #[must_use]
    pub fn with_param_coeff(mut self, i: usize, c: i64) -> Self {
        self.row[i] = c;
        self
    }

    /// Sets the constant term, returning `self` for chaining.
    #[must_use]
    pub fn with_constant(mut self, c: i64) -> Self {
        *self.row.last_mut().unwrap() = c;
        self
    }

    /// `self + other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn checked_add(&self, other: &AffExpr) -> Result<AffExpr> {
        self.space.check_compatible(&other.space, "AffExpr::add")?;
        let row = self
            .row
            .iter()
            .zip(other.row.iter())
            .map(|(&a, &b)| lin::add(a, b))
            .collect::<Result<Vec<_>>>()?;
        Ok(AffExpr {
            space: self.space.clone(),
            row,
        })
    }

    /// `self - other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn checked_sub(&self, other: &AffExpr) -> Result<AffExpr> {
        self.space.check_compatible(&other.space, "AffExpr::sub")?;
        let row = self
            .row
            .iter()
            .zip(other.row.iter())
            .map(|(&a, &b)| lin::add(a, lin::mul(-1, b)?))
            .collect::<Result<Vec<_>>>()?;
        Ok(AffExpr {
            space: self.space.clone(),
            row,
        })
    }

    /// `k * self`.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn scale(&self, k: i64) -> Result<AffExpr> {
        let row = self
            .row
            .iter()
            .map(|&a| lin::mul(k, a))
            .collect::<Result<Vec<_>>>()?;
        Ok(AffExpr {
            space: self.space.clone(),
            row,
        })
    }

    /// The constraint `self = 0`.
    pub fn eq_zero(self) -> Constraint {
        Constraint {
            kind: ConstraintKind::Equality,
            expr: self,
        }
    }

    /// The constraint `self >= 0`.
    pub fn ge_zero(self) -> Constraint {
        Constraint {
            kind: ConstraintKind::Inequality,
            expr: self,
        }
    }

    /// The constraint `self = other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn eq(&self, other: &AffExpr) -> Result<Constraint> {
        Ok(self.checked_sub(other)?.eq_zero())
    }

    /// The constraint `self >= other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn ge(&self, other: &AffExpr) -> Result<Constraint> {
        Ok(self.checked_sub(other)?.ge_zero())
    }

    /// The constraint `self <= other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn le(&self, other: &AffExpr) -> Result<Constraint> {
        Ok(other.checked_sub(self)?.ge_zero())
    }

    /// The constraint `self < other` (integer: `other - self - 1 >= 0`).
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn lt(&self, other: &AffExpr) -> Result<Constraint> {
        let d = other.checked_sub(self)?;
        Ok(d.checked_add(&AffExpr::constant(&self.space, -1))?
            .ge_zero())
    }

    /// The constraint `self > other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn gt(&self, other: &AffExpr) -> Result<Constraint> {
        other.lt(self)
    }

    /// Evaluates the expression at a full assignment
    /// `[params..., dims...]`.
    ///
    /// # Errors
    /// Returns an error on overflow.
    ///
    /// # Panics
    /// Panics if `values` has the wrong length.
    pub fn eval(&self, values: &[i64]) -> Result<i64> {
        assert_eq!(values.len(), self.row.len() - 1, "wrong number of values");
        lin::eval_row(&self.row, values)
    }

    pub(crate) fn row(&self) -> &[i64] {
        &self.row
    }

    #[allow(dead_code)]
    pub(crate) fn from_row(space: Space, row: Vec<i64>) -> Self {
        debug_assert_eq!(row.len(), space.n_param() + space.n_dim() + 1);
        AffExpr { space, row }
    }
}

impl fmt::Display for AffExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::print::fmt_affine_row(f, &self.row, &|i| self.space.var_name(i).to_owned())
    }
}

/// Whether a [`Constraint`] is an equality (`= 0`) or inequality (`>= 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// The expression equals zero.
    Equality,
    /// The expression is non-negative.
    Inequality,
}

/// An affine constraint: `expr = 0` or `expr >= 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    kind: ConstraintKind,
    expr: AffExpr,
}

impl Constraint {
    /// The constraint's kind.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// The underlying affine expression.
    pub fn expr(&self) -> &AffExpr {
        &self.expr
    }

    /// Whether the constraint holds at the assignment
    /// `[params..., dims...]`.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn holds_at(&self, values: &[i64]) -> Result<bool> {
        let v = self.expr.eval(values)?;
        Ok(match self.kind {
            ConstraintKind::Equality => v == 0,
            ConstraintKind::Inequality => v >= 0,
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            ConstraintKind::Equality => "=",
            ConstraintKind::Inequality => ">=",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Tuple;

    fn space() -> Space {
        Space::set(&["N"], Tuple::new(Some("S"), &["i", "j"]))
    }

    #[test]
    fn build_and_eval() {
        let sp = space();
        // 2i + j - N + 3
        let e = AffExpr::zero(&sp)
            .with_dim_coeff(0, 2)
            .with_dim_coeff(1, 1)
            .with_param_coeff(0, -1)
            .with_constant(3);
        // N=10, i=4, j=1 -> 8 + 1 - 10 + 3 = 2
        assert_eq!(e.eval(&[10, 4, 1]).unwrap(), 2);
    }

    #[test]
    fn add_sub_scale() {
        let sp = space();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let j = AffExpr::dim(&sp, 1).unwrap();
        let s = i.checked_add(&j).unwrap();
        assert_eq!(s.eval(&[0, 3, 4]).unwrap(), 7);
        let d = i.checked_sub(&j).unwrap();
        assert_eq!(d.eval(&[0, 3, 4]).unwrap(), -1);
        let t = i.scale(5).unwrap();
        assert_eq!(t.eval(&[0, 3, 4]).unwrap(), 15);
    }

    #[test]
    fn comparisons_build_correct_constraints() {
        let sp = space();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let n = AffExpr::param(&sp, 0).unwrap();
        // i < N holds at i=9, N=10 but not i=10.
        let c = i.lt(&n).unwrap();
        assert!(c.holds_at(&[10, 9, 0]).unwrap());
        assert!(!c.holds_at(&[10, 10, 0]).unwrap());
        // i >= 0
        let z = AffExpr::zero(&sp);
        let c2 = i.ge(&z).unwrap();
        assert!(c2.holds_at(&[10, 0, 0]).unwrap());
        assert!(!c2.holds_at(&[10, -1, 0]).unwrap());
        // i = N
        let c3 = i.eq(&n).unwrap();
        assert!(c3.holds_at(&[7, 7, 0]).unwrap());
        assert!(!c3.holds_at(&[7, 6, 0]).unwrap());
        // i > N, i <= N
        assert!(i.gt(&n).unwrap().holds_at(&[5, 6, 0]).unwrap());
        assert!(i.le(&n).unwrap().holds_at(&[5, 5, 0]).unwrap());
    }

    #[test]
    fn dim_and_param_bounds_checked() {
        let sp = space();
        assert!(AffExpr::dim(&sp, 2).is_err());
        assert!(AffExpr::param(&sp, 1).is_err());
    }

    #[test]
    fn display_renders_readable_expression() {
        let sp = space();
        let e = AffExpr::zero(&sp)
            .with_dim_coeff(0, 2)
            .with_dim_coeff(1, -1)
            .with_constant(3);
        assert_eq!(e.to_string(), "2i - j + 3");
        let c = e.ge_zero();
        assert_eq!(c.to_string(), "2i - j + 3 >= 0");
    }

    #[test]
    fn constant_expression() {
        let sp = space();
        let e = AffExpr::constant(&sp, 42);
        assert_eq!(e.eval(&[0, 0, 0]).unwrap(), 42);
        assert_eq!(e.constant_term(), 42);
    }

    #[test]
    fn accessors() {
        let sp = space();
        let e = AffExpr::zero(&sp)
            .with_param_coeff(0, 7)
            .with_dim_coeff(1, -2);
        assert_eq!(e.param_coeff(0), 7);
        assert_eq!(e.dim_coeff(0), 0);
        assert_eq!(e.dim_coeff(1), -2);
        assert!(e.space().is_set());
    }
}
