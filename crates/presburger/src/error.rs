//! Error type for the presburger crate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by set/map construction and algebra.
///
/// All fallible public functions in this crate return [`Error`]; it is
/// `Send + Sync + 'static` so it composes with `Box<dyn Error>` call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two operands live in incompatible spaces (different parameter lists,
    /// tuple names or arities).
    SpaceMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Rendering of the left-hand space.
        lhs: String,
        /// Rendering of the right-hand space.
        rhs: String,
    },
    /// A dimension index was out of bounds.
    DimOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of dimensions available.
        len: usize,
    },
    /// Text could not be parsed as a set or map.
    Parse {
        /// Human-readable reason.
        message: String,
        /// Byte offset into the input where parsing failed.
        offset: usize,
    },
    /// An arithmetic operation overflowed `i64`.
    Overflow(&'static str),
    /// The operation requires a map but got a set, or vice versa.
    KindMismatch {
        /// What was expected, e.g. `"map"`.
        expected: &'static str,
    },
    /// An operation requires bounded input (e.g. point scanning) but the
    /// argument is unbounded in some direction.
    Unbounded {
        /// Index of the unbounded dimension.
        dim: usize,
    },
    /// A cooperative resource budget was exhausted (see
    /// [`tilefuse_trace::governor`]). Non-fatal by design: the optimizer's
    /// degradation ladder catches it and falls back to a cheaper rung.
    BudgetExhausted {
        /// Which limit tripped (`"deadline"`, `"omega-ops"`, ...).
        limit: &'static str,
        /// The innermost governed phase active when it tripped.
        phase: &'static str,
    },
}

impl Error {
    /// Whether this error is a cooperative budget-exhaustion signal rather
    /// than a genuine failure.
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, Error::BudgetExhausted { .. })
    }

    /// The `(limit, phase)` pair of a budget-exhaustion error.
    #[must_use]
    pub fn budget_info(&self) -> Option<(&'static str, &'static str)> {
        match self {
            Error::BudgetExhausted { limit, phase } => Some((limit, phase)),
            _ => None,
        }
    }
}

impl From<tilefuse_trace::governor::Exhausted> for Error {
    fn from(e: tilefuse_trace::governor::Exhausted) -> Self {
        Error::BudgetExhausted {
            limit: e.limit,
            phase: e.phase,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SpaceMismatch { op, lhs, rhs } => {
                write!(f, "space mismatch in {op}: {lhs} vs {rhs}")
            }
            Error::DimOutOfBounds { index, len } => {
                write!(
                    f,
                    "dimension index {index} out of bounds for {len} dimensions"
                )
            }
            Error::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            Error::Overflow(op) => write!(f, "integer overflow during {op}"),
            Error::KindMismatch { expected } => {
                write!(f, "operand kind mismatch: expected a {expected}")
            }
            Error::Unbounded { dim } => {
                write!(f, "set is unbounded in dimension {dim}")
            }
            Error::BudgetExhausted { limit, phase } => {
                write!(f, "budget exhausted ({limit} limit) in phase {phase}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_space_mismatch() {
        let e = Error::SpaceMismatch {
            op: "intersect",
            lhs: "{ S[i] }".into(),
            rhs: "{ T[i] }".into(),
        };
        assert_eq!(
            e.to_string(),
            "space mismatch in intersect: { S[i] } vs { T[i] }"
        );
    }

    #[test]
    fn display_parse() {
        let e = Error::Parse {
            message: "expected ']'".into(),
            offset: 7,
        };
        assert_eq!(e.to_string(), "parse error at offset 7: expected ']'");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_overflow_and_unbounded() {
        assert_eq!(
            Error::Overflow("mul").to_string(),
            "integer overflow during mul"
        );
        assert_eq!(
            Error::Unbounded { dim: 2 }.to_string(),
            "set is unbounded in dimension 2"
        );
        assert_eq!(
            Error::DimOutOfBounds { index: 4, len: 2 }.to_string(),
            "dimension index 4 out of bounds for 2 dimensions"
        );
        assert_eq!(
            Error::KindMismatch { expected: "map" }.to_string(),
            "operand kind mismatch: expected a map"
        );
    }

    #[test]
    fn budget_exhausted_roundtrip() {
        let e = Error::from(tilefuse_trace::governor::Exhausted {
            limit: "deadline",
            phase: "algo1/extension",
        });
        assert!(e.is_budget_exhausted());
        assert_eq!(e.budget_info(), Some(("deadline", "algo1/extension")));
        assert_eq!(
            e.to_string(),
            "budget exhausted (deadline limit) in phase algo1/extension"
        );
        assert!(!Error::Overflow("mul").is_budget_exhausted());
        assert_eq!(Error::Overflow("mul").budget_info(), None);
    }
}
