//! Error type for the presburger crate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by set/map construction and algebra.
///
/// All fallible public functions in this crate return [`Error`]; it is
/// `Send + Sync + 'static` so it composes with `Box<dyn Error>` call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two operands live in incompatible spaces (different parameter lists,
    /// tuple names or arities).
    SpaceMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Rendering of the left-hand space.
        lhs: String,
        /// Rendering of the right-hand space.
        rhs: String,
    },
    /// A dimension index was out of bounds.
    DimOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of dimensions available.
        len: usize,
    },
    /// Text could not be parsed as a set or map.
    Parse {
        /// Human-readable reason.
        message: String,
        /// Byte offset into the input where parsing failed.
        offset: usize,
    },
    /// An arithmetic operation overflowed `i64`.
    Overflow(&'static str),
    /// The operation requires a map but got a set, or vice versa.
    KindMismatch {
        /// What was expected, e.g. `"map"`.
        expected: &'static str,
    },
    /// An operation requires bounded input (e.g. point scanning) but the
    /// argument is unbounded in some direction.
    Unbounded {
        /// Index of the unbounded dimension.
        dim: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SpaceMismatch { op, lhs, rhs } => {
                write!(f, "space mismatch in {op}: {lhs} vs {rhs}")
            }
            Error::DimOutOfBounds { index, len } => {
                write!(
                    f,
                    "dimension index {index} out of bounds for {len} dimensions"
                )
            }
            Error::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            Error::Overflow(op) => write!(f, "integer overflow during {op}"),
            Error::KindMismatch { expected } => {
                write!(f, "operand kind mismatch: expected a {expected}")
            }
            Error::Unbounded { dim } => {
                write!(f, "set is unbounded in dimension {dim}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_space_mismatch() {
        let e = Error::SpaceMismatch {
            op: "intersect",
            lhs: "{ S[i] }".into(),
            rhs: "{ T[i] }".into(),
        };
        assert_eq!(
            e.to_string(),
            "space mismatch in intersect: { S[i] } vs { T[i] }"
        );
    }

    #[test]
    fn display_parse() {
        let e = Error::Parse {
            message: "expected ']'".into(),
            offset: 7,
        };
        assert_eq!(e.to_string(), "parse error at offset 7: expected ']'");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_overflow_and_unbounded() {
        assert_eq!(
            Error::Overflow("mul").to_string(),
            "integer overflow during mul"
        );
        assert_eq!(
            Error::Unbounded { dim: 2 }.to_string(),
            "set is unbounded in dimension 2"
        );
        assert_eq!(
            Error::DimOutOfBounds { index: 4, len: 2 }.to_string(),
            "dimension index 4 out of bounds for 2 dimensions"
        );
        assert_eq!(
            Error::KindMismatch { expected: "map" }.to_string(),
            "operand kind mismatch: expected a map"
        );
    }
}
