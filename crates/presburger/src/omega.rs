//! Exact integer variable elimination and feasibility: the Omega test.
//!
//! This module works on raw constraint rows. A [`System`] holds equality rows
//! (`row · (vars, 1) == 0`) and inequality rows (`row · (vars, 1) >= 0`) over
//! `n_vars` variable columns plus one trailing constant column.
//!
//! Two clients:
//! * [`feasible`] — exact integer satisfiability (all variables existential),
//!   used for emptiness tests;
//! * [`eliminate_col`] — exact projection of a single variable, returning a
//!   *union* of systems (dark shadow + splinters when Fourier–Motzkin alone
//!   would over-approximate). Eliminating a variable may introduce fresh
//!   trailing columns (divisibility witnesses from non-unit equality
//!   elimination); callers treat those as existentials.
//!
//! References: W. Pugh, "The Omega Test: a fast and practical integer
//! programming algorithm for dependence analysis", Supercomputing '91.

use crate::error::Result;
use crate::lin;

/// A raw constraint system: rows over `n_vars` columns plus a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct System {
    /// Number of variable columns (constant column excluded).
    pub n_vars: usize,
    /// Equality rows: `row · (vars, 1) == 0`.
    pub eqs: Vec<Vec<i64>>,
    /// Inequality rows: `row · (vars, 1) >= 0`.
    pub ineqs: Vec<Vec<i64>>,
}

impl System {
    pub(crate) fn new(n_vars: usize) -> Self {
        System {
            n_vars,
            eqs: Vec::new(),
            ineqs: Vec::new(),
        }
    }

    fn cols(&self) -> usize {
        self.n_vars + 1
    }

    /// Removes variable column `col` from every row (the coefficient must
    /// already be zero everywhere).
    fn drop_col(&mut self, col: usize) {
        debug_assert!(self.eqs.iter().chain(&self.ineqs).all(|r| r[col] == 0));
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.remove(col);
        }
        self.n_vars -= 1;
    }

    /// Appends a fresh variable column (zero coefficients) before the
    /// constant column; returns its index.
    fn push_col(&mut self) -> usize {
        let at = self.n_vars;
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.insert(at, 0);
        }
        self.n_vars += 1;
        at
    }

    /// A quick consistency scan: `Some(false)` if some row is trivially
    /// unsatisfiable, `Some(true)` if there are no constraints left,
    /// `None` if undecided. Trivial rows (no variable coefficients) are
    /// removed as a side effect.
    fn triage(&mut self) -> Option<bool> {
        let mut contradiction = false;
        self.eqs.retain(|r| {
            if r[..r.len() - 1].iter().all(|&c| c == 0) {
                if r[r.len() - 1] != 0 {
                    contradiction = true;
                }
                false
            } else {
                true
            }
        });
        self.ineqs.retain(|r| {
            if r[..r.len() - 1].iter().all(|&c| c == 0) {
                if r[r.len() - 1] < 0 {
                    contradiction = true;
                }
                false
            } else {
                true
            }
        });
        if contradiction {
            Some(false)
        } else if self.eqs.is_empty() && self.ineqs.is_empty() {
            Some(true)
        } else {
            None
        }
    }

    /// Normalizes every row (GCD reduction with integer tightening for
    /// inequalities) and checks equality GCD solvability.
    /// Returns `false` if a contradiction was detected.
    fn normalize(&mut self) -> bool {
        for r in &mut self.eqs {
            let n = r.len();
            let g = lin::gcd_slice(&r[..n - 1]);
            if g == 0 {
                continue; // handled by triage
            }
            // gcd test: g must divide the constant, else infeasible.
            if r[n - 1] % g != 0 {
                return false;
            }
            if g > 1 {
                for x in r.iter_mut() {
                    *x /= g;
                }
            }
        }
        for r in &mut self.ineqs {
            lin::normalize_ineq_row(r);
        }
        true
    }

    /// Substitutes variable `col` using equality row `eq` in which `col` has
    /// coefficient ±1, into all constraints; the equality itself and the
    /// column are removed.
    fn substitute_unit(&mut self, eq_idx: usize, col: usize) -> Result<()> {
        let eq = self.eqs.remove(eq_idx);
        let a = eq[col];
        debug_assert!(a == 1 || a == -1);
        // col = -a * (eq - a*col)  i.e. for a=1: col = -(rest); a=-1: col = rest.
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            let c = r[col];
            if c == 0 {
                continue;
            }
            // r := r - (c/a) * eq ; since a = ±1, c/a = c*a.
            let k = -(c * a);
            lin::row_add_mul(r, &eq, k)?;
            debug_assert_eq!(r[col], 0);
        }
        self.drop_col(col);
        Ok(())
    }

    /// Removes duplicate rows and inequalities dominated by another row
    /// with identical coefficients and a tighter constant. Keeps the row
    /// count from squaring across successive Fourier–Motzkin steps.
    fn prune(&mut self) {
        self.eqs.sort();
        self.eqs.dedup();
        // For inequalities `coeffs·x + c >= 0`, a smaller `c` is tighter;
        // keep only the tightest row per coefficient vector.
        self.ineqs.sort();
        self.ineqs.dedup_by(|a, b| {
            let n = a.len() - 1;
            a[..n] == b[..n] && {
                // `dedup_by` removes `a` when true and keeps `b` (the
                // earlier element); after sort the earlier has smaller
                // constant, which is the tighter one.
                true
            }
        });
    }

    /// Evaluates the system at a full assignment (for tests).
    #[cfg(test)]
    fn satisfied_by(&self, point: &[i64]) -> bool {
        self.eqs
            .iter()
            .all(|r| lin::eval_row(r, point).unwrap() == 0)
            && self
                .ineqs
                .iter()
                .all(|r| lin::eval_row(r, point).unwrap() >= 0)
    }
}

/// Elimination budget: a guard against pathological splinter recursion.
const MAX_BRANCHES: usize = 4096;

/// Three-valued answer from the governed Omega test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sat {
    /// Definitely satisfiable (an assignment exists).
    Feasible,
    /// Definitely unsatisfiable (exact answer).
    Infeasible,
    /// A governor branch cap *below* the built-in `MAX_BRANCHES` was hit:
    /// the conservative "feasible" answer. Correct to act on (non-empty is
    /// the sound direction everywhere in this codebase) but not a fact
    /// about the system — callers must not memoize it. The default-cap
    /// fallback stays `Feasible` because it is deterministic process-wide.
    CappedFeasible,
}

/// Exact integer feasibility of `sys` with *all* variables existential.
/// `Ok(true)` on both exact and capped-conservative feasibility.
pub(crate) fn feasible(sys: &System) -> Result<bool> {
    Ok(feasible_sat(sys)? != Sat::Infeasible)
}

/// Governed feasibility: charges the governor per elimination step, honors
/// its per-call branch cap, and reports cap hits via `stats`.
pub(crate) fn feasible_sat(sys: &System) -> Result<Sat> {
    feasible_impl(sys, true)
}

/// Ungoverned, default-cap feasibility for *diagnostic* call sites
/// (`debug_assert!`): charges no budget and records no fallback, so a
/// consistency check can neither trip the governor nor skew its accounting.
#[allow(dead_code)] // referenced only from debug_assert! expressions
pub(crate) fn feasible_unbounded(sys: &System) -> Result<bool> {
    Ok(feasible_impl(sys, false)? != Sat::Infeasible)
}

fn feasible_impl(sys: &System, governed: bool) -> Result<Sat> {
    let cap = if governed {
        MAX_BRANCHES.min(tilefuse_trace::governor::branch_cap())
    } else {
        MAX_BRANCHES
    };
    let mut work = vec![sys.clone()];
    let mut steps = 0usize;
    while let Some(mut s) = work.pop() {
        steps += 1;
        if governed {
            tilefuse_trace::governor::tick_omega(1)?;
        }
        if steps > cap {
            // Conservative answer: treat as feasible (never claims empty
            // wrongly, so legality checks stay sound). Counted instead of
            // silent so over-approximation is observable.
            if governed {
                crate::stats::record_silent_feasible();
            }
            return Ok(if cap < MAX_BRANCHES {
                Sat::CappedFeasible
            } else {
                Sat::Feasible
            });
        }
        if !s.normalize() {
            continue;
        }
        match s.triage() {
            Some(true) => return Ok(Sat::Feasible),
            Some(false) => continue,
            None => {}
        }
        if s.n_vars == 0 {
            // All rows trivial; triage already decided. Unreachable, but be
            // safe.
            continue;
        }
        // Pick a variable to eliminate: prefer one with a unit equality
        // coefficient, then any equality, then the cheapest FM variable.
        let col = pick_col(&s);
        for branch in eliminate_col_inner(s, col, false)? {
            work.push(branch);
        }
    }
    Ok(Sat::Infeasible)
}

/// Chooses the next variable to eliminate.
fn pick_col(s: &System) -> usize {
    // Unit coefficient in an equality: free elimination.
    for eq in &s.eqs {
        for (c, &v) in eq[..s.n_vars].iter().enumerate() {
            if v == 1 || v == -1 {
                return c;
            }
        }
    }
    // Variable with the smallest non-zero |coefficient| in an equality —
    // Pugh's choice, which makes the sigma reduction shrink coefficients.
    let mut best_eq: Option<(i64, usize)> = None;
    for eq in &s.eqs {
        for (c, &v) in eq[..s.n_vars].iter().enumerate() {
            if v != 0 {
                let key = v.abs();
                if best_eq.is_none_or(|(k, _)| key < k) {
                    best_eq = Some((key, c));
                }
            }
        }
    }
    if let Some((_, c)) = best_eq {
        return c;
    }
    // Cheapest Fourier–Motzkin candidate: minimize (#lower * #upper),
    // breaking ties towards unit coefficients (exact FM).
    let mut best = 0;
    let mut best_cost = usize::MAX;
    for c in 0..s.n_vars {
        let mut lo = 0usize;
        let mut hi = 0usize;
        let mut unit = true;
        for r in &s.ineqs {
            if r[c] > 0 {
                lo += 1;
                if r[c] != 1 {
                    unit = false;
                }
            } else if r[c] < 0 {
                hi += 1;
                if r[c] != -1 {
                    unit = false;
                }
            }
        }
        if lo == 0 && hi == 0 {
            continue;
        }
        let cost = lo * hi * if unit { 1 } else { 4 };
        if cost < best_cost {
            best_cost = cost;
            best = c;
        }
    }
    best
}

/// Exact elimination of variable column `col`.
///
/// Returns a union of systems, none of which mentions `col` (the column is
/// removed, so all result systems have one fewer column *at that index*;
/// fresh trailing witness columns may have been appended).
pub(crate) fn eliminate_col(sys: &System, col: usize) -> Result<Vec<System>> {
    // One governed op per projection step: coarse (a whole elimination,
    // not a branch), but enough for the op budget to bound projection work
    // and for bulk charges to poll the deadline.
    tilefuse_trace::governor::tick_omega(1)?;
    eliminate_col_inner(sys.clone(), col, true)
}

fn eliminate_col_inner(mut s: System, col: usize, for_projection: bool) -> Result<Vec<System>> {
    debug_assert!(col < s.n_vars);
    if !s.normalize() {
        return Ok(vec![]);
    }
    // 1. Equality with this column?
    if let Some(idx) = s.eqs.iter().position(|r| r[col] != 0) {
        let a = s.eqs[idx][col];
        if a == 1 || a == -1 {
            s.substitute_unit(idx, col)?;
            return Ok(vec![s]);
        }
        // Try to find an equality where col *is* unit before doing work.
        if let Some(u) = s.eqs.iter().position(|r| r[col] == 1 || r[col] == -1) {
            s.substitute_unit(u, col)?;
            return Ok(vec![s]);
        }
        if for_projection {
            // Scaling elimination: remove `col` from every other
            // constraint by scaling (sound over the integers), then keep
            // the defining equality with `col` renamed into a fresh
            // trailing witness — a *pure divisibility* constraint the
            // complement machinery understands.
            return eliminate_nonunit_equality_scaling(s, col, idx);
        }
        // Feasibility: Pugh's mod-hat reduction shrinks coefficients and
        // terminates.
        return eliminate_nonunit_equality(s, col, idx);
    }
    // 2. Pure inequality elimination: Fourier–Motzkin with exactness repair.
    eliminate_fm(s, col, for_projection)
}

/// Removes `col` from all constraints except its defining equality by
/// scaling, then moves the column into a fresh trailing witness position.
fn eliminate_nonunit_equality_scaling(
    mut s: System,
    col: usize,
    idx: usize,
) -> Result<Vec<System>> {
    let eq = s.eqs[idx].clone();
    let a = eq[col];
    let scale = a.unsigned_abs() as i64;
    for (i, r) in s.eqs.iter_mut().enumerate() {
        if i == idx || r[col] == 0 {
            continue;
        }
        // |a|·r − sign(a)·c·eq cancels col.
        let c = r[col];
        let combined = lin::row_combine(scale, r, -a.signum() * c, &eq)?;
        *r = combined;
        debug_assert_eq!(r[col], 0);
        lin::normalize_eq_row(r);
    }
    for r in s.ineqs.iter_mut() {
        if r[col] == 0 {
            continue;
        }
        let c = r[col];
        let combined = lin::row_combine(scale, r, -a.signum() * c, &eq)?;
        *r = combined;
        debug_assert_eq!(r[col], 0);
        lin::normalize_ineq_row(r);
    }
    // Move `col`'s role into a fresh trailing witness column.
    let q = s.push_col();
    s.eqs[idx][q] = a;
    s.eqs[idx][col] = 0;
    s.drop_col(col);
    s.prune();
    Ok(vec![s])
}

/// Pugh's equality reduction: given `eqs[idx]` with non-unit coefficient on
/// `col`, introduce witness variables until some equality has coefficient ±1
/// on `col`, then substitute.
fn eliminate_nonunit_equality(mut s: System, col: usize, idx: usize) -> Result<Vec<System>> {
    let eq = s.eqs[idx].clone();
    let a = eq[col].unsigned_abs() as i64;
    debug_assert!(a > 1);
    let m = a + 1;
    // sigma = sum mod_hat(c_i, m) x_i + mod_hat(const, m), with
    // m | (that sum); introduce sigma as a fresh variable:
    //   sum mod_hat(c_i, m) x_i + mod_hat(c, m) - m*sigma = 0
    // One application suffices to make `col` unit: mod_hat(±a, a+1) = ∓1.
    let sigma = s.push_col();
    let cols = s.cols();
    let mut new_eq = vec![0i64; cols];
    for (i, item) in new_eq.iter_mut().enumerate().take(cols) {
        if i == sigma {
            *item = -m;
        } else {
            // Map old row positions: positions >= sigma shifted by one.
            let old = if i < sigma { i } else { i - 1 };
            *item = lin::mod_hat(eq[old], m);
        }
    }
    debug_assert!(new_eq[col] == 1 || new_eq[col] == -1);
    s.eqs.push(new_eq);
    let new_idx = s.eqs.len() - 1;
    s.substitute_unit(new_idx, col)?;
    Ok(vec![s])
}

/// Fourier–Motzkin elimination of `col` with the Omega test's exactness
/// repair (dark shadow + splinters) when coefficient pairs are non-unit.
fn eliminate_fm(mut s: System, col: usize, for_projection: bool) -> Result<Vec<System>> {
    let mut lowers = Vec::new(); // rows with positive coefficient on col
    let mut uppers = Vec::new(); // rows with negative coefficient on col
    let mut rest = Vec::new();
    for r in std::mem::take(&mut s.ineqs) {
        if r[col] > 0 {
            lowers.push(r);
        } else if r[col] < 0 {
            uppers.push(r);
        } else {
            rest.push(r);
        }
    }
    // Unconstrained in one direction: projection drops all rows mentioning
    // the variable.
    if lowers.is_empty() || uppers.is_empty() {
        s.ineqs = rest;
        s.drop_col(col);
        return Ok(vec![s]);
    }

    let exact = lowers.iter().all(|r| r[col] == 1) || uppers.iter().all(|r| r[col] == -1);

    // Real shadow (exact when `exact`): for each (lower, upper) pair
    //   lower: a*x + e_L >= 0, upper: -b*x + e_U >= 0  (a, b > 0)
    //   combine: b*e_L + a*e_U >= 0
    let mut shadow = s.clone();
    shadow.ineqs = rest.clone();
    for lo in &lowers {
        let a = lo[col];
        for up in &uppers {
            let b = -up[col];
            let mut row = lin::row_combine(b, lo, a, up)?;
            row[col] = 0;
            lin::normalize_ineq_row(&mut row);
            shadow.ineqs.push(row);
        }
    }

    if exact {
        shadow.drop_col(col);
        shadow.prune();
        return Ok(vec![shadow]);
    }

    // Dark shadow: guaranteed subset — add the (a-1)(b-1) slack.
    let mut dark = s.clone();
    dark.ineqs = rest.clone();
    for lo in &lowers {
        let a = lo[col];
        for up in &uppers {
            let b = -up[col];
            // No gcd reduction before subtracting the slack: the slack is
            // defined against the raw combination.
            let mut row = lin::row_combine_raw(b, lo, a, up)?;
            row[col] = 0;
            let cc = row.len() - 1;
            row[cc] = lin::add(row[cc], -((a - 1) * (b - 1)))?;
            lin::normalize_ineq_row(&mut row);
            dark.ineqs.push(row);
        }
    }
    dark.drop_col(col);
    dark.prune();
    let mut out = vec![dark];

    // Splinters: any integer point in the real shadow missed by the dark
    // shadow has a*x = -e_L + j for some lower bound and small j.
    let b_max = uppers.iter().map(|r| -r[col]).max().unwrap();
    for lo in &lowers {
        let a = lo[col];
        if a == 1 {
            continue; // unit lower bounds never splinter
        }
        // j ranges over 0 ..= (a*b_max - a - b_max) / b_max  (Pugh '91).
        let j_max = (a * b_max - a - b_max) / b_max;
        for j in 0..=j_max {
            let mut sp = s.clone();
            sp.ineqs = rest.clone();
            sp.ineqs.extend(lowers.iter().cloned());
            sp.ineqs.extend(uppers.iter().cloned());
            // a*x + e_L - j = 0
            let mut eq = lo.clone();
            let cc = eq.len() - 1;
            eq[cc] = lin::add(eq[cc], -j)?;
            sp.eqs.push(eq);
            // Recurse: the equality now admits elimination of `col`.
            out.extend(eliminate_col_inner(sp, col, for_projection)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a system over `n` variables from (eqs, ineqs) row lists.
    fn sys(n: usize, eqs: &[&[i64]], ineqs: &[&[i64]]) -> System {
        System {
            n_vars: n,
            eqs: eqs.iter().map(|r| r.to_vec()).collect(),
            ineqs: ineqs.iter().map(|r| r.to_vec()).collect(),
        }
    }

    #[test]
    fn feasible_simple_box() {
        // 0 <= x <= 5
        let s = sys(1, &[], &[&[1, 0], &[-1, 5]]);
        assert!(feasible(&s).unwrap());
    }

    #[test]
    fn infeasible_contradiction() {
        // x >= 3 and x <= 2
        let s = sys(1, &[], &[&[1, -3], &[-1, 2]]);
        assert!(!feasible(&s).unwrap());
    }

    #[test]
    fn equality_gcd_test() {
        // 2x = 5 has no integer solution.
        let s = sys(1, &[&[2, -5]], &[]);
        assert!(!feasible(&s).unwrap());
        // 2x = 6 does.
        let s = sys(1, &[&[2, -6]], &[]);
        assert!(feasible(&s).unwrap());
    }

    #[test]
    fn dark_shadow_catches_integer_gap() {
        // 2x <= 2y-1 <= 2x+1 has no integer solutions for y... check:
        // 2y - 1 >= 2x  ->  -2x + 2y - 1 >= 0
        // 2y - 1 <= 2x + 1 -> 2x - 2y + 2 >= 0
        // Eliminate y: lower on y: 2y >= 2x + 1; upper: 2y <= 2x + 2.
        // Real shadow ok (x any), but y must satisfy 2x+1 <= 2y <= 2x+2:
        // 2y = 2x+2 works (y = x+1). So actually feasible.
        let s = sys(2, &[], &[&[-2, 2, -1], &[2, -2, 2]]);
        assert!(feasible(&s).unwrap());
        // Tighten: 2x+1 <= 2y <= 2x+1 -> 2y = 2x+1, infeasible (parity).
        let s = sys(2, &[], &[&[-2, 2, -1], &[2, -2, 1]]);
        assert!(!feasible(&s).unwrap());
    }

    #[test]
    fn classic_omega_example() {
        // From Pugh '91: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4
        // (has integer solutions, e.g. x = 3, y = 1: 33+13=46? no...)
        // Check x=1..: 11x+13y in [27,45]. x=1,y=2: 37 ok; 7-18=-11 no.
        // x=3,y=1: 33+13=46 no. x=2,y=1: 35 ok; 14-9=5 no. x=1,y=1: 24 no.
        // x=2,y=2: 48 no. x=0,y=3: 39 ok; -27 no. x=3,y=0: 33 ok; 21 no.
        // x=4,y=0: 44 ok; 28 no. x=0,y=2: 26 no. Pugh's famous example is
        // infeasible over integers (it is the standard dark-shadow demo).
        let s = sys(
            2,
            &[],
            &[
                &[11, 13, -27],  // 11x + 13y - 27 >= 0
                &[-11, -13, 45], // 45 - 11x - 13y >= 0
                &[7, -9, 10],    // 7x - 9y + 10 >= 0
                &[-7, 9, 4],     // 4 - 7x + 9y >= 0
            ],
        );
        assert!(!feasible(&s).unwrap());
    }

    #[test]
    fn eliminate_unit_fm_is_exact() {
        // 0 <= x <= 9, x <= y <= x+2, eliminate x:
        // expected: 0 <= y <= 11 (y >= x >= 0 and y <= x+2 <= 11).
        let s = sys(
            2,
            &[],
            &[
                &[1, 0, 0],  // x >= 0
                &[-1, 0, 9], // x <= 9
                &[-1, 1, 0], // y >= x
                &[1, -1, 2], // y <= x + 2
            ],
        );
        let rs = eliminate_col(&s, 0).unwrap();
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        assert_eq!(r.n_vars, 1);
        // Check semantics by sampling y in -2..14.
        for y in -2..14 {
            let expect = (0..=9).any(|x| y >= x && y <= x + 2);
            let got = r
                .eqs
                .iter()
                .all(|row| lin::eval_row(row, &[y]).unwrap() == 0)
                && r.ineqs
                    .iter()
                    .all(|row| lin::eval_row(row, &[y]).unwrap() >= 0);
            assert_eq!(got, expect, "y = {y}");
        }
    }

    #[test]
    fn eliminate_nonunit_exact_via_splinters() {
        // S = { (x, y) : 3x <= y <= 3x + 1, 0 <= x <= 4 }.
        // Projection onto y: y in {0,1,3,4,6,7,9,10,12,13} — NOT an interval;
        // exact elimination must return a union covering exactly these.
        let s = sys(
            2,
            &[],
            &[
                &[-3, 1, 0], // y - 3x >= 0
                &[3, -1, 1], // 3x + 1 - y >= 0
                &[1, 0, 0],  // x >= 0
                &[-1, 0, 4], // x <= 4
            ],
        );
        let rs = eliminate_col(&s, 0).unwrap();
        assert!(!rs.is_empty());
        for y in -3..16 {
            let expect = (0..=4).any(|x| 3 * x <= y && y <= 3 * x + 1);
            let got = rs.iter().any(|r| {
                // Some result systems may have witness variables appended;
                // check satisfiability with y fixed.
                let mut fixed = r.clone();
                // y is now column 0.
                let mut eq = vec![0i64; fixed.cols()];
                eq[0] = 1;
                *eq.last_mut().unwrap() = -y;
                fixed.eqs.push(eq);
                feasible(&fixed).unwrap()
            });
            assert_eq!(got, expect, "y = {y}");
        }
    }

    #[test]
    fn eliminate_nonunit_equality_keeps_divisibility() {
        // { (x, y) : 3x = y, 0 <= y <= 9 } projected onto y must be the
        // multiples of 3 in [0, 9].
        let s = sys(
            2,
            &[&[3, -1, 0]], // 3x - y = 0
            &[&[0, 1, 0], &[0, -1, 9]],
        );
        let rs = eliminate_col(&s, 0).unwrap();
        for y in -2..12 {
            let expect = (0..=9).contains(&y) && y % 3 == 0;
            let got = rs.iter().any(|r| {
                let mut fixed = r.clone();
                let mut eq = vec![0i64; fixed.cols()];
                eq[0] = 1;
                *eq.last_mut().unwrap() = -y;
                fixed.eqs.push(eq);
                feasible(&fixed).unwrap()
            });
            assert_eq!(got, expect, "y = {y}");
        }
    }

    #[test]
    fn scaling_elimination_keeps_pure_divisibility_witness() {
        // { (x, y) : 3x = y, 0 <= y <= 9, y >= x } — eliminate x for
        // projection. The witness must appear in exactly one equality and
        // no inequality (so the complement machinery can negate it).
        let s = sys(2, &[&[3, -1, 0]], &[&[0, 1, 0], &[0, -1, 9], &[-1, 1, 0]]);
        let rs = eliminate_col(&s, 0).unwrap();
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        // Column layout now: [y, q]. q appears only in the equality.
        assert_eq!(r.n_vars, 2);
        let q_col = 1;
        assert!(r.ineqs.iter().all(|row| row[q_col] == 0), "{:?}", r.ineqs);
        assert_eq!(r.eqs.iter().filter(|row| row[q_col] != 0).count(), 1);
        // Semantics: y in {0, 3, 6, 9} (y = 3x and y >= x forces x >= 0).
        for y in -1..11 {
            let mut probe = r.clone();
            let mut eq = vec![0i64; probe.cols()];
            eq[0] = 1;
            *eq.last_mut().unwrap() = -y;
            probe.eqs.push(eq);
            let expect = (0..=9).contains(&y) && y % 3 == 0;
            assert_eq!(feasible(&probe).unwrap(), expect, "y = {y}");
        }
    }

    #[test]
    fn prune_drops_dominated_inequalities() {
        let mut s = sys(1, &[], &[&[1, 0], &[1, 5], &[1, 0], &[-1, 9]]);
        s.prune();
        // x >= 0 dominates x >= 5? No: smaller constant is tighter; the
        // kept row per coefficient vector is the tightest one.
        assert_eq!(s.ineqs.len(), 2);
        assert!(s.ineqs.contains(&vec![1, 0]));
        assert!(s.ineqs.contains(&vec![-1, 9]));
    }

    #[test]
    fn substitution_preserves_solutions() {
        // x = y + 1, 0 <= x <= 3  -- eliminate x, expect -1 <= y <= 2.
        let s = sys(2, &[&[1, -1, -1]], &[&[1, 0, 0], &[-1, 0, 3]]);
        let rs = eliminate_col(&s, 0).unwrap();
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        for y in -4..6 {
            let expect = (-1..=2).contains(&y);
            let got = r
                .ineqs
                .iter()
                .all(|row| lin::eval_row(row, &[y]).unwrap() >= 0)
                && r.eqs
                    .iter()
                    .all(|row| lin::eval_row(row, &[y]).unwrap() == 0);
            assert_eq!(got, expect, "y = {y}");
        }
    }

    #[test]
    fn unbounded_direction_drops_constraints() {
        // x <= y, eliminate x (no lower bound on x): result is everything.
        let s = sys(2, &[], &[&[-1, 1, 0]]);
        let rs = eliminate_col(&s, 0).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(rs[0].ineqs.is_empty());
        assert_eq!(rs[0].n_vars, 1);
    }

    #[test]
    fn satisfied_by_helper() {
        let s = sys(2, &[&[1, -1, 0]], &[&[1, 0, 0]]);
        assert!(s.satisfied_by(&[2, 2]));
        assert!(!s.satisfied_by(&[2, 3]));
        assert!(!s.satisfied_by(&[-1, -1]));
    }

    #[test]
    fn feasible_with_equalities_and_inequalities() {
        // x = 2y, x >= 3, x <= 5 -> x = 4, y = 2.
        let s = sys(2, &[&[1, -2, 0]], &[&[1, 0, -3], &[-1, 0, 5]]);
        assert!(feasible(&s).unwrap());
        // x = 2y, x >= 3, x <= 3 -> x = 3 odd, infeasible.
        let s = sys(2, &[&[1, -2, 0]], &[&[1, 0, -3], &[-1, 0, 3]]);
        assert!(!feasible(&s).unwrap());
    }
}
