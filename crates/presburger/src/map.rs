//! Maps: binary relations on integer tuples, as unions of basic maps.
//!
//! A [`Map`] relates points of an input tuple to points of an output tuple
//! (`{ S2[h,w,kh,kw] -> A[h+kh, w+kw] }`). Maps share the constraint
//! machinery with [`Set`] — a basic map is a [`BasicSet`] whose space has
//! two tuples.

use crate::aff::AffExpr;
use crate::bset::BasicSet;
use crate::cache::{self, CacheKey, CacheVal};
use crate::error::{Error, Result};
use crate::set::Set;
use crate::space::Space;

/// A union of basic maps over a common map [`Space`].
#[derive(Debug, Clone)]
pub struct Map {
    inner: Set,
}

impl Map {
    /// The empty map in `space`.
    ///
    /// # Errors
    /// Returns an error if `space` is not a map space.
    pub fn empty(space: Space) -> Result<Self> {
        require_map(&space)?;
        Ok(Map {
            inner: Set::empty(space),
        })
    }

    /// The universal relation in `space`.
    ///
    /// # Errors
    /// Returns an error if `space` is not a map space.
    pub fn universe(space: Space) -> Result<Self> {
        require_map(&space)?;
        Ok(Map {
            inner: Set::universe(space),
        })
    }

    /// Wraps a single basic map.
    ///
    /// # Errors
    /// Returns an error if the basic set's space is not a map space.
    pub fn from_basic(basic: BasicSet) -> Result<Self> {
        require_map(basic.space())?;
        Ok(Map {
            inner: Set::from_basic(basic),
        })
    }

    /// Builds the graph of an affine function: `{ x -> y : y_k = expr_k }`.
    ///
    /// Each `exprs[k]` is an [`AffExpr`] over the *map space* whose output
    /// coefficients must be zero; it defines output dimension `k`.
    ///
    /// # Errors
    /// Returns an error if `space` is not a map space, the number of
    /// expressions differs from the output arity, or an expression involves
    /// output dimensions.
    pub fn from_affine(space: Space, exprs: &[AffExpr]) -> Result<Self> {
        require_map(&space)?;
        if exprs.len() != space.n_out() {
            return Err(Error::DimOutOfBounds {
                index: exprs.len(),
                len: space.n_out(),
            });
        }
        let mut b = BasicSet::universe(space.clone());
        for (k, e) in exprs.iter().enumerate() {
            space.check_compatible(e.space(), "from_affine")?;
            for j in space.n_in()..space.n_dim() {
                if e.dim_coeff(j) != 0 {
                    return Err(Error::DimOutOfBounds {
                        index: j,
                        len: space.n_in(),
                    });
                }
            }
            let out_k = AffExpr::dim(&space, space.n_in() + k)?;
            b.add_constraint(&out_k.eq(e)?)?;
        }
        Map::from_basic(b)
    }

    /// The identity map on a set space.
    ///
    /// # Errors
    /// Returns an error if `set_space` is not a set space.
    pub fn identity(set_space: &Space) -> Result<Self> {
        if !set_space.is_set() {
            return Err(Error::KindMismatch { expected: "set" });
        }
        let space = set_space.join_map(set_space)?;
        let exprs: Vec<AffExpr> = (0..set_space.n_dim())
            .map(|k| AffExpr::dim(&space, k))
            .collect::<Result<_>>()?;
        Map::from_affine(space, &exprs)
    }

    /// The lexicographic strict order `{ x -> y : x ≺ y }` on a map space
    /// with equal input and output arity.
    ///
    /// # Errors
    /// Returns an error if `space` is not a map space with equal arities.
    pub fn lex_lt(space: Space) -> Result<Self> {
        require_map(&space)?;
        let n = space.n_in();
        if n != space.n_out() {
            return Err(Error::DimOutOfBounds {
                index: space.n_out(),
                len: n,
            });
        }
        let mut m = Map::empty(space.clone())?;
        for level in 0..n {
            let mut b = BasicSet::universe(space.clone());
            for k in 0..level {
                let xi = AffExpr::dim(&space, k)?;
                let yi = AffExpr::dim(&space, n + k)?;
                b.add_constraint(&xi.eq(&yi)?)?;
            }
            let xl = AffExpr::dim(&space, level)?;
            let yl = AffExpr::dim(&space, n + level)?;
            b.add_constraint(&xl.lt(&yl)?)?;
            m = m.union(&Map::from_basic(b)?)?;
        }
        Ok(m)
    }

    /// The map's space.
    pub fn space(&self) -> &Space {
        self.inner.space()
    }

    /// The disjunct basic maps.
    pub fn basics(&self) -> &[BasicSet] {
        self.inner.basics()
    }

    /// Number of disjuncts.
    pub fn n_basic(&self) -> usize {
        self.inner.n_basic()
    }

    /// Views the map as a set over the combined `(in, out)` tuple space.
    pub fn as_wrapped_set(&self) -> &Set {
        &self.inner
    }

    /// Interprets a set over a map space as a map (inverse of
    /// [`Map::as_wrapped_set`]).
    ///
    /// # Errors
    /// Returns an error if the set's space is not a map space.
    pub fn from_wrapped_set(set: Set) -> Result<Self> {
        require_map(set.space())?;
        Ok(Map { inner: set })
    }

    /// Exact emptiness test.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn is_empty(&self) -> Result<bool> {
        self.inner.is_empty()
    }

    /// Union of two maps in the same space.
    ///
    /// # Errors
    /// Returns an error on space mismatch.
    pub fn union(&self, other: &Map) -> Result<Map> {
        Ok(Map {
            inner: self.inner.union(&other.inner)?,
        })
    }

    /// Intersection of two maps in the same space.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn intersect(&self, other: &Map) -> Result<Map> {
        Ok(Map {
            inner: self.inner.intersect(&other.inner)?,
        })
    }

    /// Relation difference.
    ///
    /// # Errors
    /// See [`Set::subtract`].
    pub fn subtract(&self, other: &Map) -> Result<Map> {
        Ok(Map {
            inner: self.inner.subtract(&other.inner)?,
        })
    }

    /// Whether `self ⊆ other` as relations.
    ///
    /// # Errors
    /// See [`Set::is_subset`].
    pub fn is_subset(&self, other: &Map) -> Result<bool> {
        self.inner.is_subset(&other.inner)
    }

    /// Whether the two maps relate exactly the same pairs.
    ///
    /// # Errors
    /// See [`Set::is_equal`].
    pub fn is_equal(&self, other: &Map) -> Result<bool> {
        self.inner.is_equal(&other.inner)
    }

    /// The reversed relation `{ y -> x : x -> y ∈ self }`. Memoized on
    /// the map's structure (see [`crate::cache`]).
    pub fn reverse(&self) -> Map {
        let key = CacheKey::Reverse(cache::set_key(&self.inner));
        if let Some(m) = cache::lookup_map(&key) {
            return m;
        }
        let _timer = crate::stats::op_timer(crate::stats::Op::Reverse);
        let space = self.space().reversed();
        let n_param = self.space().n_param();
        let n_in = self.space().n_in();
        let n_out = self.space().n_out();
        let basics = self
            .basics()
            .iter()
            .map(|b| {
                let swap = |rows: &[Vec<i64>]| -> Vec<Vec<i64>> {
                    rows.iter()
                        .map(|r| {
                            let mut out = r.clone();
                            // new layout: [p | out | in | divs | c]
                            out[n_param..n_param + n_out]
                                .copy_from_slice(&r[n_param + n_in..n_param + n_in + n_out]);
                            out[n_param + n_out..n_param + n_out + n_in]
                                .copy_from_slice(&r[n_param..n_param + n_in]);
                            out
                        })
                        .collect()
                };
                BasicSet::from_rows(
                    space.clone(),
                    b.n_div(),
                    swap(b.eq_rows()),
                    swap(b.ineq_rows()),
                )
            })
            .collect();
        let result = Map {
            inner: Set::from_basics(space, basics).expect("reversed basics share space"),
        };
        cache::insert(key, CacheVal::Map(result.clone()));
        result
    }

    /// The domain `{ x : ∃y, x -> y }`.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn domain(&self) -> Result<Set> {
        let n_in = self.space().n_in();
        let n_out = self.space().n_out();
        self.inner
            .project_out_dims(n_in, n_out)?
            .cast(self.space().domain_space())
    }

    /// The range `{ y : ∃x, x -> y }`.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn range(&self) -> Result<Set> {
        let n_in = self.space().n_in();
        self.inner
            .project_out_dims(0, n_in)?
            .cast(self.space().range_space())
    }

    /// Restricts the domain to `set`.
    ///
    /// # Errors
    /// Returns an error if `set` is not in the domain space.
    pub fn intersect_domain(&self, set: &Set) -> Result<Map> {
        self.space()
            .domain_space()
            .check_compatible(set.space(), "intersect_domain")?;
        let embedded = embed_set(set, self.space(), 0)?;
        Ok(Map {
            inner: self.inner.intersect(&embedded)?,
        })
    }

    /// Restricts the range to `set`.
    ///
    /// # Errors
    /// Returns an error if `set` is not in the range space.
    pub fn intersect_range(&self, set: &Set) -> Result<Map> {
        self.space()
            .range_space()
            .check_compatible(set.space(), "intersect_range")?;
        let embedded = embed_set(set, self.space(), self.space().n_in())?;
        Ok(Map {
            inner: self.inner.intersect(&embedded)?,
        })
    }

    /// Relation composition `other ∘ self`: for `self : X -> Y` and
    /// `other : Y -> Z`, returns `{ x -> z : ∃y, x->y ∈ self ∧ y->z ∈ other }`.
    ///
    /// # Errors
    /// Returns an error if `self`'s range tuple is incompatible with
    /// `other`'s domain tuple, or on overflow.
    pub fn compose(&self, other: &Map) -> Result<Map> {
        let y_self = self.space().range_space();
        let y_other = other.space().domain_space();
        y_self.check_compatible(&y_other, "compose")?;
        if self.space().params() != other.space().params() {
            return Err(Error::SpaceMismatch {
                op: "compose",
                lhs: self.space().to_string(),
                rhs: other.space().to_string(),
            });
        }
        let space = self
            .space()
            .domain_space()
            .join_map(&other.space().range_space())?;
        let np = self.space().n_param();
        let nx = self.space().n_in();
        let ny = self.space().n_out();
        let nz = other.space().n_out();
        let mut basics = Vec::new();
        for a in self.basics() {
            for b in other.basics() {
                let n_div = ny + a.n_div() + b.n_div();
                let cols = np + nx + nz + n_div + 1;
                // target layout: [p | x | z | y | divs_a | divs_b | c]
                let map_a = |r: &Vec<i64>| -> Vec<i64> {
                    let mut o = vec![0i64; cols];
                    o[..np].copy_from_slice(&r[..np]);
                    o[np..np + nx].copy_from_slice(&r[np..np + nx]);
                    o[np + nx + nz..np + nx + nz + ny].copy_from_slice(&r[np + nx..np + nx + ny]);
                    o[np + nx + nz + ny..np + nx + nz + ny + a.n_div()]
                        .copy_from_slice(&r[np + nx + ny..np + nx + ny + a.n_div()]);
                    o[cols - 1] = r[r.len() - 1];
                    o
                };
                let map_b = |r: &Vec<i64>| -> Vec<i64> {
                    let mut o = vec![0i64; cols];
                    o[..np].copy_from_slice(&r[..np]);
                    o[np + nx + nz..np + nx + nz + ny].copy_from_slice(&r[np..np + ny]);
                    o[np + nx..np + nx + nz].copy_from_slice(&r[np + ny..np + ny + nz]);
                    o[np + nx + nz + ny + a.n_div()..np + nx + nz + ny + a.n_div() + b.n_div()]
                        .copy_from_slice(&r[np + ny + nz..np + ny + nz + b.n_div()]);
                    o[cols - 1] = r[r.len() - 1];
                    o
                };
                let eqs: Vec<Vec<i64>> = a
                    .eq_rows()
                    .iter()
                    .map(map_a)
                    .chain(b.eq_rows().iter().map(map_b))
                    .collect();
                let ineqs: Vec<Vec<i64>> = a
                    .ineq_rows()
                    .iter()
                    .map(map_a)
                    .chain(b.ineq_rows().iter().map(map_b))
                    .collect();
                let combined = BasicSet::from_rows(space.clone(), n_div, eqs, ineqs);
                // Try to eliminate the y-existentials exactly; whatever
                // remains stays existential (same semantics).
                for piece in combined.project_out_divs()? {
                    if !piece.is_empty()? {
                        basics.push(piece);
                    }
                }
            }
        }
        Ok(Map {
            inner: Set::from_basics(space, basics)?,
        })
    }

    /// The flat range product: for `self : X -> [m]` and `other : X -> [n]`
    /// (same domain tuple), returns `{ x -> [m..., n...] }` — the relation
    /// pairing each domain point with the concatenation of both images.
    /// The output tuple is anonymous.
    ///
    /// # Errors
    /// Returns an error if the domain tuples or parameters differ.
    pub fn flat_range_product(&self, other: &Map) -> Result<Map> {
        self.space()
            .domain_space()
            .check_compatible(&other.space().domain_space(), "flat_range_product")?;
        let np = self.space().n_param();
        let nx = self.space().n_in();
        let nm = self.space().n_out();
        let nn = other.space().n_out();
        let params: Vec<&str> = self.space().params().iter().map(String::as_str).collect();
        let space = Space::map(
            &params,
            self.space().in_tuple().clone(),
            crate::space::Tuple::anonymous(nm + nn),
        );
        let mut basics = Vec::new();
        for a in self.basics() {
            for b in other.basics() {
                let n_div = a.n_div() + b.n_div();
                let cols = np + nx + nm + nn + n_div + 1;
                let map_a = |r: &Vec<i64>| -> Vec<i64> {
                    let mut o = vec![0i64; cols];
                    o[..np + nx + nm].copy_from_slice(&r[..np + nx + nm]);
                    o[np + nx + nm + nn..np + nx + nm + nn + a.n_div()]
                        .copy_from_slice(&r[np + nx + nm..np + nx + nm + a.n_div()]);
                    o[cols - 1] = r[r.len() - 1];
                    o
                };
                let map_b = |r: &Vec<i64>| -> Vec<i64> {
                    let mut o = vec![0i64; cols];
                    o[..np + nx].copy_from_slice(&r[..np + nx]);
                    o[np + nx + nm..np + nx + nm + nn].copy_from_slice(&r[np + nx..np + nx + nn]);
                    o[np + nx + nm + nn + a.n_div()..np + nx + nm + nn + n_div]
                        .copy_from_slice(&r[np + nx + nn..np + nx + nn + b.n_div()]);
                    o[cols - 1] = r[r.len() - 1];
                    o
                };
                let eqs: Vec<Vec<i64>> = a
                    .eq_rows()
                    .iter()
                    .map(map_a)
                    .chain(b.eq_rows().iter().map(map_b))
                    .collect();
                let ineqs: Vec<Vec<i64>> = a
                    .ineq_rows()
                    .iter()
                    .map(map_a)
                    .chain(b.ineq_rows().iter().map(map_b))
                    .collect();
                basics.push(BasicSet::from_rows(space.clone(), n_div, eqs, ineqs));
            }
        }
        Ok(Map {
            inner: Set::from_basics(space, basics)?,
        })
    }

    /// Applies the map to a set: `{ y : ∃x ∈ set, x -> y }`. Memoized on
    /// both operands' structure (see [`crate::cache`]).
    ///
    /// # Errors
    /// Returns an error if `set` is not in the domain space, or on overflow.
    pub fn apply(&self, set: &Set) -> Result<Set> {
        let key = CacheKey::Apply(cache::set_key(&self.inner), cache::set_key(set));
        if let Some(s) = cache::lookup_set(&key) {
            return Ok(s);
        }
        let result = {
            let _timer = crate::stats::op_timer(crate::stats::Op::Apply);
            self.intersect_domain(set)?.range()?
        };
        cache::insert(key, CacheVal::Set(result.clone()));
        Ok(result)
    }

    /// The image of a single input point: `{ y : point -> y }`.
    ///
    /// # Errors
    /// Returns an error if the point arity is wrong, or on overflow.
    pub fn image_of(&self, point: &[i64]) -> Result<Set> {
        if point.len() != self.space().n_in() {
            return Err(Error::DimOutOfBounds {
                index: point.len(),
                len: self.space().n_in(),
            });
        }
        let mut m = self.inner.clone();
        for (k, &v) in point.iter().enumerate() {
            m = m.fix_dim(k, v)?;
        }
        Map { inner: m }.range()
    }

    /// Removes input dimensions `first .. first+count` by exact projection
    /// (the output tuple is unchanged; the new input tuple is anonymous).
    ///
    /// # Errors
    /// Returns an error on out-of-range indices or overflow.
    pub fn remove_in_dims(&self, first: usize, count: usize) -> Result<Map> {
        let n_in = self.space().n_in();
        if first + count > n_in {
            return Err(Error::DimOutOfBounds {
                index: first + count,
                len: n_in,
            });
        }
        let projected = self.inner.project_out_dims(first, count)?;
        let params: Vec<&str> = self.space().params().iter().map(String::as_str).collect();
        let space = Space::map(
            &params,
            crate::space::Tuple::anonymous(n_in - count),
            self.space().out_tuple().clone(),
        );
        Map::from_wrapped_set(projected.cast(space)?)
    }

    /// Fixes parameter `p` to `value`.
    ///
    /// # Errors
    /// Returns an error if `p` is out of range.
    pub fn fix_param(&self, p: usize, value: i64) -> Result<Map> {
        Ok(Map {
            inner: self.inner.fix_param(p, value)?,
        })
    }

    /// Renames tuples without changing content.
    ///
    /// # Errors
    /// Returns an error if arities differ.
    pub fn cast(&self, space: Space) -> Result<Map> {
        require_map(&space)?;
        Ok(Map {
            inner: self.inner.cast(space)?,
        })
    }

    /// Whether the pair `(x, y)` (with parameter values prepended) is in the
    /// relation: `point = [params..., in..., out...]`.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn contains_pair(&self, point: &[i64]) -> Result<bool> {
        self.inner.contains(point)
    }

    /// Whether the relation is a (partial) function: every input relates to
    /// at most one output. Point schedules are single-valued; tile-band
    /// relations and extension schedules are not.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn is_single_valued(&self) -> Result<bool> {
        // self is single-valued iff (self⁻¹ ∘ self) ⊆ identity.
        let roundtrip = self.reverse().compose(self)?;
        let out_space = self.space().range_space();
        let ident = Map::identity(&out_space)?.cast(roundtrip.space().clone())?;
        roundtrip.is_subset(&ident)
    }
}

fn require_map(space: &Space) -> Result<()> {
    if space.is_map() {
        Ok(())
    } else {
        Err(Error::KindMismatch { expected: "map" })
    }
}

/// Embeds a set's constraints into a map space at dim offset `at`
/// (0 = domain, `n_in` = range).
fn embed_set(set: &Set, map_space: &Space, at: usize) -> Result<Set> {
    let np = map_space.n_param();
    let nd = map_space.n_dim();
    let set_nd = set.space().n_dim();
    let basics = set
        .basics()
        .iter()
        .map(|b| {
            let cols = np + nd + b.n_div() + 1;
            let widen = |rows: &[Vec<i64>]| -> Vec<Vec<i64>> {
                rows.iter()
                    .map(|r| {
                        let mut o = vec![0i64; cols];
                        o[..np].copy_from_slice(&r[..np]);
                        o[np + at..np + at + set_nd].copy_from_slice(&r[np..np + set_nd]);
                        o[np + nd..np + nd + b.n_div()]
                            .copy_from_slice(&r[np + set_nd..np + set_nd + b.n_div()]);
                        o[cols - 1] = r[r.len() - 1];
                        o
                    })
                    .collect()
            };
            BasicSet::from_rows(
                map_space.clone(),
                b.n_div(),
                widen(b.eq_rows()),
                widen(b.ineq_rows()),
            )
        })
        .collect();
    Set::from_basics(map_space.clone(), basics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(s: &str) -> Map {
        s.parse().unwrap()
    }

    fn set(s: &str) -> Set {
        s.parse().unwrap()
    }

    #[test]
    fn reverse_swaps_tuples() {
        let m = map("{ S[i] -> A[i+1] : 0 <= i <= 5 }");
        let r = m.reverse();
        assert_eq!(r.space().in_tuple().name(), Some("A"));
        assert!(r.contains_pair(&[3, 2]).unwrap());
        assert!(!r.contains_pair(&[2, 3]).unwrap());
        assert!(m.reverse().reverse().is_equal(&m).unwrap());
    }

    #[test]
    fn domain_and_range() {
        let m = map("{ S[i] -> A[i+2] : 0 <= i <= 3 }");
        let d = m.domain().unwrap();
        assert!(d.is_equal(&set("{ S[i] : 0 <= i <= 3 }")).unwrap());
        let r = m.range().unwrap();
        assert!(r.is_equal(&set("{ A[a] : 2 <= a <= 5 }")).unwrap());
    }

    #[test]
    fn apply_shifts_set() {
        let m = map("{ S[i] -> A[i+2] }");
        let s = set("{ S[i] : 0 <= i <= 3 }");
        let a = m.apply(&s).unwrap();
        assert!(a.is_equal(&set("{ A[a] : 2 <= a <= 5 }")).unwrap());
    }

    #[test]
    fn compose_stencil_with_producer() {
        // Paper-like chain: tile -> statement, statement -> array.
        let rev_tile = map("{ T[o] -> S[i] : 2o <= i <= 2o+1 }");
        let access = map("{ S[i] -> A[i+1] }");
        let footprint = rev_tile.compose(&access).unwrap();
        // T[o] -> A[a] : 2o+1 <= a <= 2o+2
        assert!(footprint.contains_pair(&[0, 1]).unwrap());
        assert!(footprint.contains_pair(&[0, 2]).unwrap());
        assert!(!footprint.contains_pair(&[0, 3]).unwrap());
        assert!(footprint.contains_pair(&[1, 3]).unwrap());
    }

    #[test]
    fn compose_rejects_mismatched_tuples() {
        let a = map("{ S[i] -> A[i] }");
        let b = map("{ B[i] -> C[i] }");
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn intersect_domain_restricts() {
        let m = map("{ S[i] -> A[i] }");
        let s = set("{ S[i] : 0 <= i <= 2 }");
        let r = m.intersect_domain(&s).unwrap();
        assert!(r.contains_pair(&[1, 1]).unwrap());
        assert!(!r.contains_pair(&[5, 5]).unwrap());
        let rng = m.intersect_range(&set("{ A[a] : a = 7 }")).unwrap();
        assert!(rng.contains_pair(&[7, 7]).unwrap());
        assert!(!rng.contains_pair(&[1, 1]).unwrap());
    }

    #[test]
    fn identity_map() {
        let sp = Space::set(&[], crate::space::Tuple::new(Some("S"), &["i", "j"]));
        let id = Map::identity(&sp).unwrap();
        assert!(id.contains_pair(&[1, 2, 1, 2]).unwrap());
        assert!(!id.contains_pair(&[1, 2, 2, 1]).unwrap());
    }

    #[test]
    fn lex_lt_order() {
        let sp = Space::map(
            &[],
            crate::space::Tuple::new(None, &["a", "b"]),
            crate::space::Tuple::new(None, &["c", "d"]),
        );
        let lt = Map::lex_lt(sp).unwrap();
        assert!(lt.contains_pair(&[0, 5, 1, 0]).unwrap()); // (0,5) < (1,0)
        assert!(lt.contains_pair(&[1, 0, 1, 1]).unwrap()); // (1,0) < (1,1)
        assert!(!lt.contains_pair(&[1, 1, 1, 1]).unwrap());
        assert!(!lt.contains_pair(&[2, 0, 1, 9]).unwrap());
    }

    #[test]
    fn image_of_point() {
        let m = map("{ S[i] -> A[a] : i <= a <= i+2 }");
        let img = m.image_of(&[10]).unwrap();
        assert!(img.is_equal(&set("{ A[a] : 10 <= a <= 12 }")).unwrap());
        assert!(m.image_of(&[1, 2]).is_err());
    }

    #[test]
    fn from_affine_builds_graph() {
        let space = Space::map(
            &[],
            crate::space::Tuple::new(Some("S"), &["i", "j"]),
            crate::space::Tuple::new(Some("A"), &["a"]),
        );
        // a = i + 2j + 1
        let e = AffExpr::zero(&space)
            .with_dim_coeff(0, 1)
            .with_dim_coeff(1, 2)
            .with_constant(1);
        let m = Map::from_affine(space, &[e]).unwrap();
        assert!(m.contains_pair(&[1, 1, 4]).unwrap());
        assert!(!m.contains_pair(&[1, 1, 5]).unwrap());
    }

    #[test]
    fn map_algebra_union_subtract() {
        let a = map("{ S[i] -> A[i] : 0 <= i <= 5 }");
        let b = map("{ S[i] -> A[i] : 3 <= i <= 8 }");
        let u = a.union(&b).unwrap();
        assert!(u.contains_pair(&[7, 7]).unwrap());
        let d = u.subtract(&a).unwrap();
        assert!(d.contains_pair(&[7, 7]).unwrap());
        assert!(!d.contains_pair(&[4, 4]).unwrap());
        assert!(a.is_subset(&u).unwrap());
    }

    #[test]
    fn wrapped_set_roundtrip() {
        let m = map("{ S[i] -> A[i] : 0 <= i <= 2 }");
        let w = m.as_wrapped_set().clone();
        let m2 = Map::from_wrapped_set(w).unwrap();
        assert!(m.is_equal(&m2).unwrap());
    }

    #[test]
    fn flat_range_product_concatenates_images() {
        let a = map("{ S[i] -> [o] : 2o <= i <= 2o + 1 }");
        let b = map("{ S[i] -> [i] }");
        let p = a.flat_range_product(&b).unwrap();
        assert_eq!(p.space().n_out(), 2);
        // i = 5 -> (o = 2, 5)
        assert!(p.contains_pair(&[5, 2, 5]).unwrap());
        assert!(!p.contains_pair(&[5, 3, 5]).unwrap());
        assert!(!p.contains_pair(&[5, 2, 4]).unwrap());
    }

    #[test]
    fn flat_range_product_rejects_different_domains() {
        let a = map("{ S[i] -> [i] }");
        let b = map("{ T[i] -> [i] }");
        assert!(a.flat_range_product(&b).is_err());
    }

    #[test]
    fn single_valued_detection() {
        let f = map("{ S[i] -> A[i + 1] : 0 <= i <= 9 }");
        assert!(f.is_single_valued().unwrap());
        let r = map("{ S[i] -> A[a] : i <= a <= i + 1 }");
        assert!(!r.is_single_valued().unwrap());
        // A tile relation is not single-valued in reverse: several points
        // per tile.
        let tile = map("{ S[i] -> [o] : 4o <= i <= 4o + 3 and 0 <= i <= 15 }");
        assert!(tile.is_single_valued().unwrap(), "i determines its tile");
        assert!(!tile.reverse().is_single_valued().unwrap());
    }

    #[test]
    fn lex_lt_requires_equal_arity() {
        let sp = Space::map(
            &[],
            crate::space::Tuple::new(None, &["a"]),
            crate::space::Tuple::new(None, &["c", "d"]),
        );
        assert!(Map::lex_lt(sp).is_err());
    }
}
