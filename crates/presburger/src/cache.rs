//! A structural memo table for the expensive presburger operations.
//!
//! Operations like emptiness (the Omega test) and exact projection are
//! recomputed with identical inputs thousands of times during fusion
//! legality search and footprint analysis. This module interns
//! constraint rows (so equal rows share one allocation and hash fast)
//! and keys complete operations — `is_empty`, `project_out_dims`,
//! `Set::intersect`, `Map::apply`, `Map::reverse` — on the *exact*
//! structure of their operands: constraint rows, div counts and spaces.
//! Exact keys mean a hit is always semantically identical to a cold
//! call; there is no probabilistic hashing involved.
//!
//! The table is process-global behind a mutex: operations take the lock
//! only to look up or store, never while computing. When the table
//! exceeds its cap it is cleared wholesale — simple, and the workloads
//! re-warm in one pass. Hit/miss counts go to [`crate::stats`].

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard};

use crate::bset::BasicSet;
use crate::map::Map;
use crate::set::Set;
use crate::space::Space;
use crate::stats::{self, Op};

/// An interned constraint row. Interning canonicalizes content-equal
/// rows to one shared allocation, so equality and hashing compare the
/// *pointer* — O(1) per row instead of O(row length) — without changing
/// which keys collide.
#[derive(Debug, Clone)]
pub(crate) struct Row(Arc<[i64]>);

impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Row {}

impl Hash for Row {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (Arc::as_ptr(&self.0) as *const i64 as usize).hash(state);
    }
}

/// The constraint rows of one basic set, interned.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct SysKey {
    eqs: Vec<Row>,
    ineqs: Vec<Row>,
}

/// Full structural identity of a [`BasicSet`], including its space.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct BKey {
    space: Space,
    n_div: usize,
    sys: SysKey,
}

/// Full structural identity of a [`Set`] (or a [`Map`] via its wrapped
/// set): space plus each disjunct's rows and div count, in order.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct SetKey {
    space: Space,
    disjuncts: Vec<(usize, SysKey)>,
}

/// One memoized operation applied to specific operands.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum CacheKey {
    /// Feasibility of a raw constraint system: space-independent.
    IsEmpty(SysKey),
    ProjectDims(BKey, usize, usize),
    Intersect(SetKey, SetKey),
    Apply(SetKey, SetKey),
    Reverse(SetKey),
}

impl CacheKey {
    fn op(&self) -> Op {
        match self {
            CacheKey::IsEmpty(_) => Op::IsEmpty,
            CacheKey::ProjectDims(..) => Op::Project,
            CacheKey::Intersect(..) => Op::Intersect,
            CacheKey::Apply(..) => Op::Apply,
            CacheKey::Reverse(_) => Op::Reverse,
        }
    }
}

/// A memoized result.
#[derive(Clone)]
pub(crate) enum CacheVal {
    Bool(bool),
    BSets(Vec<BasicSet>),
    Set(Set),
    Map(Map),
}

/// Cleared wholesale when exceeded; large enough that the repo's
/// workloads never cycle it, small enough to bound memory.
const CACHE_CAP: usize = 1 << 16;

static INTERN: LazyLock<Mutex<HashSet<Arc<[i64]>>>> = LazyLock::new(|| Mutex::new(HashSet::new()));
static TABLE: LazyLock<Mutex<HashMap<CacheKey, CacheVal>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn intern_locked(g: &mut HashSet<Arc<[i64]>>, row: &[i64]) -> Row {
    if let Some(r) = g.get(row) {
        return Row(r.clone());
    }
    let arc: Arc<[i64]> = Arc::from(row);
    g.insert(arc.clone());
    Row(arc)
}

fn sys_key(eqs: &[Vec<i64>], ineqs: &[Vec<i64>]) -> SysKey {
    // Governor memory bound: past the interned-row cap the interner (and
    // the memo table, whose keys hold now-orphaned interned rows that can
    // never pointer-hit again) is cleared wholesale. A cost, not an error:
    // answers are unaffected, only recomputed.
    let cap = tilefuse_trace::governor::intern_cap();
    if cap != usize::MAX && lock(&INTERN).len() >= cap {
        // Never hold both locks at once (matches every other path here).
        lock(&INTERN).clear();
        lock(&TABLE).clear();
    }
    // One lock acquisition for the whole system, not one per row.
    let mut g = lock(&INTERN);
    let eqs = eqs.iter().map(|r| intern_locked(&mut g, r)).collect();
    let ineqs = ineqs.iter().map(|r| intern_locked(&mut g, r)).collect();
    SysKey { eqs, ineqs }
}

/// Keys the raw constraint rows of a basic set (space-independent).
pub(crate) fn rows_key(b: &BasicSet) -> SysKey {
    sys_key(b.eq_rows(), b.ineq_rows())
}

/// Keys a basic set including its space.
pub(crate) fn bset_key(b: &BasicSet) -> BKey {
    BKey {
        space: b.space().clone(),
        n_div: b.n_div(),
        sys: rows_key(b),
    }
}

/// Keys a set including its space and disjunct order.
pub(crate) fn set_key(s: &Set) -> SetKey {
    SetKey {
        space: s.space().clone(),
        disjuncts: s
            .basics()
            .iter()
            .map(|b| (b.n_div(), rows_key(b)))
            .collect(),
    }
}

/// Silently probes the table for `key`, extracting the expected value
/// variant. An entry of the *wrong* variant is poisoned — it can only
/// arise from a bug pairing keys with values — and is handled by evicting
/// it, counting it ([`stats::poisoned`]) and reporting a miss so the
/// caller recomputes; it is never returned and never panics. Records no
/// hit/miss; use the `lookup_*` wrappers (or [`stats::record`] directly
/// for multi-probe flows) for counted lookups.
fn probe<T>(key: &CacheKey, extract: impl FnOnce(&CacheVal) -> Option<T>) -> Option<T> {
    if !stats::memo_enabled() {
        return None;
    }
    let mut g = lock(&TABLE);
    let val = g.get(key)?;
    match extract(val) {
        Some(t) => Some(t),
        None => {
            g.remove(key);
            stats::record_poisoned();
            None
        }
    }
}

/// Silent typed probe for a memoized boolean (no hit/miss recorded).
pub(crate) fn probe_bool(key: &CacheKey) -> Option<bool> {
    probe(key, |v| match v {
        CacheVal::Bool(b) => Some(*b),
        _ => None,
    })
}

/// Looks up a memoized boolean, recording a hit or miss. Always a miss
/// (without touching the table) when memoization is disabled via
/// [`stats::set_memo_enabled`]. A wrong-variant (poisoned) entry is
/// evicted and reported as a miss. (`is_empty` itself uses [`probe_bool`]
/// directly — its two-level key records one hit/miss per call, not per
/// probe — so outside tests this wrapper currently has no callers.)
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn lookup_bool(key: &CacheKey) -> Option<bool> {
    let hit = probe_bool(key);
    stats::record(key.op(), hit.is_some());
    hit
}

/// Looks up a memoized basic-set union, recording a hit or miss (see
/// [`lookup_bool`] for disabled-memo and poisoned-entry behavior).
pub(crate) fn lookup_bsets(key: &CacheKey) -> Option<Vec<BasicSet>> {
    let hit = probe(key, |v| match v {
        CacheVal::BSets(b) => Some(b.clone()),
        _ => None,
    });
    stats::record(key.op(), hit.is_some());
    hit
}

/// Looks up a memoized set, recording a hit or miss (see [`lookup_bool`]
/// for disabled-memo and poisoned-entry behavior).
pub(crate) fn lookup_set(key: &CacheKey) -> Option<Set> {
    let hit = probe(key, |v| match v {
        CacheVal::Set(s) => Some(s.clone()),
        _ => None,
    });
    stats::record(key.op(), hit.is_some());
    hit
}

/// Looks up a memoized map, recording a hit or miss (see [`lookup_bool`]
/// for disabled-memo and poisoned-entry behavior).
pub(crate) fn lookup_map(key: &CacheKey) -> Option<Map> {
    let hit = probe(key, |v| match v {
        CacheVal::Map(m) => Some(m.clone()),
        _ => None,
    });
    stats::record(key.op(), hit.is_some());
    hit
}

/// Stores a computed result, clearing the table first if it is full.
/// A no-op when memoization is disabled.
pub(crate) fn insert(key: CacheKey, val: CacheVal) {
    if !stats::memo_enabled() {
        return;
    }
    let mut g = lock(&TABLE);
    if g.len() >= CACHE_CAP {
        g.clear();
    }
    g.insert(key, val);
}

/// Number of memoized entries.
pub(crate) fn len() -> usize {
    lock(&TABLE).len()
}

/// Drops every memoized entry and interned row.
pub(crate) fn clear() {
    lock(&TABLE).clear();
    lock(&INTERN).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Returns the canonical shared allocation for `row`.
    fn intern_row(row: &[i64]) -> Row {
        intern_locked(&mut lock(&INTERN), row)
    }

    #[test]
    fn interning_shares_allocations() {
        let a = intern_row(&[1, 2, 3]);
        let b = intern_row(&[1, 2, 3]);
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b, "pointer equality must mirror content equality");
        let c = intern_row(&[1, 2, 4]);
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_ne!(a, c);
    }

    #[test]
    fn lookup_miss_then_hit() {
        let key = CacheKey::IsEmpty(sys_key(&[vec![9, 9, 9, 9]], &[]));
        clear();
        assert!(lookup_bool(&key).is_none());
        insert(key.clone(), CacheVal::Bool(true));
        assert_eq!(lookup_bool(&key), Some(true));
    }

    /// A wrong-variant entry under a key (formerly a panic in consumers
    /// that pattern-matched the variant) is evicted and recomputed: the
    /// typed lookup reports a miss, counts the poisoning, and the next
    /// insert repairs the entry.
    #[test]
    fn poisoned_entry_recovers_by_recompute() {
        let key = CacheKey::IsEmpty(sys_key(&[vec![7, 7, 7, 7, 7]], &[]));
        clear();
        let poisoned_before = stats::poisoned();
        // Poison: an is_empty key holding a Set instead of a Bool.
        let junk = Set::universe(Space::set(&[], crate::space::Tuple::new(Some("T"), &["i"])));
        insert(key.clone(), CacheVal::Set(junk));
        assert_eq!(lookup_bool(&key), None, "wrong variant must read as a miss");
        assert_eq!(stats::poisoned(), poisoned_before + 1);
        assert!(
            lock(&TABLE).get(&key).is_none(),
            "poisoned entry must be evicted"
        );
        // The recompute path stores the right variant and hits thereafter.
        insert(key.clone(), CacheVal::Bool(false));
        assert_eq!(lookup_bool(&key), Some(false));
    }

    /// Every typed lookup tolerates every wrong variant (returns None,
    /// never panics).
    #[test]
    fn typed_lookups_reject_all_wrong_variants() {
        let key = CacheKey::IsEmpty(sys_key(&[], &[vec![5, 5, 5]]));
        for wrong in [
            CacheVal::Bool(true),
            CacheVal::BSets(vec![]),
            CacheVal::Set(Set::universe(Space::set(
                &[],
                crate::space::Tuple::new(Some("T"), &["i"]),
            ))),
        ] {
            clear();
            insert(key.clone(), wrong);
            // Each lookup either extracts its own variant or reports a miss.
            let _ = lookup_bool(&key);
            clear();
        }
        clear();
        insert(key.clone(), CacheVal::Bool(true));
        assert!(lookup_bsets(&key).is_none());
        insert(key.clone(), CacheVal::Bool(true));
        assert!(lookup_set(&key).is_none());
        insert(key.clone(), CacheVal::Bool(true));
        assert!(lookup_map(&key).is_none());
        clear();
    }
}
