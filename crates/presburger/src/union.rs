//! Union sets and maps: collections over *different* tuple spaces.
//!
//! A schedule tree's domain node holds instances of many statements at once
//! (`{ S0[h,w]; S1[h,w]; S2[h,w,kh,kw] }`); a program's access function maps
//! many statement tuples to many array tuples. [`UnionSet`] and [`UnionMap`]
//! are thin keyed collections of per-space [`Set`]s/[`Map`]s with the
//! pointwise algebra the optimizer needs.

use crate::error::Result;
use crate::map::Map;
use crate::set::Set;

/// A collection of [`Set`]s, at most one per tuple space.
#[derive(Debug, Clone, Default)]
pub struct UnionSet {
    parts: Vec<Set>,
}

impl UnionSet {
    /// The empty union set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a union set from parts (parts in equal spaces are unioned).
    ///
    /// # Errors
    /// Returns an error if two parts have compatible spaces but merging
    /// fails (cannot happen in practice).
    pub fn from_parts(parts: impl IntoIterator<Item = Set>) -> Result<Self> {
        let mut u = Self::new();
        for p in parts {
            u.add(p)?;
        }
        Ok(u)
    }

    /// Adds a set, merging with an existing part in the same space.
    ///
    /// # Errors
    /// Returns an error if union with the existing part fails.
    pub fn add(&mut self, set: Set) -> Result<()> {
        for p in &mut self.parts {
            if p.space().compatible(set.space()) {
                *p = p.union(&set)?;
                return Ok(());
            }
        }
        self.parts.push(set);
        Ok(())
    }

    /// The parts, one per space.
    pub fn parts(&self) -> &[Set] {
        &self.parts
    }

    /// The part in the space with tuple name `name`, if present.
    pub fn part_named(&self, name: &str) -> Option<&Set> {
        self.parts
            .iter()
            .find(|p| p.space().tuple().name() == Some(name))
    }

    /// Whether every part is empty.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn is_empty(&self) -> Result<bool> {
        for p in &self.parts {
            if !p.is_empty()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Pointwise union.
    ///
    /// # Errors
    /// Returns an error if a merge fails.
    pub fn union(&self, other: &UnionSet) -> Result<UnionSet> {
        let mut u = self.clone();
        for p in &other.parts {
            u.add(p.clone())?;
        }
        Ok(u)
    }

    /// Pointwise subtraction (parts of `other` in spaces absent from `self`
    /// are ignored).
    ///
    /// # Errors
    /// See [`Set::subtract`].
    pub fn subtract(&self, other: &UnionSet) -> Result<UnionSet> {
        let mut parts = Vec::new();
        for p in &self.parts {
            let mut cur = p.clone();
            for q in &other.parts {
                if cur.space().compatible(q.space()) {
                    cur = cur.subtract(q)?;
                }
            }
            parts.push(cur);
        }
        Ok(UnionSet { parts })
    }

    /// Applies a union map: unions the images of every (set part, map part)
    /// pair whose spaces line up.
    ///
    /// # Errors
    /// See [`Map::apply`].
    pub fn apply(&self, map: &UnionMap) -> Result<UnionSet> {
        let mut out = UnionSet::new();
        for s in &self.parts {
            for m in map.parts() {
                if m.space().domain_space().compatible(s.space()) {
                    out.add(m.apply(s)?)?;
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for UnionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{ ")?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            // Strip the outer braces of each part's rendering.
            let s = p.to_string();
            let inner = s.trim_start_matches(|c| c != '{').trim_start_matches('{');
            let inner = inner.trim_end_matches('}').trim();
            write!(f, "{inner}")?;
        }
        write!(f, " }}")
    }
}

/// A collection of [`Map`]s, at most one per (in, out) space pair.
#[derive(Debug, Clone, Default)]
pub struct UnionMap {
    parts: Vec<Map>,
}

impl UnionMap {
    /// The empty union map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a union map from parts (parts in equal spaces are unioned).
    ///
    /// # Errors
    /// Returns an error if merging fails.
    pub fn from_parts(parts: impl IntoIterator<Item = Map>) -> Result<Self> {
        let mut u = Self::new();
        for p in parts {
            u.add(p)?;
        }
        Ok(u)
    }

    /// Adds a map, merging with an existing part in the same space.
    ///
    /// # Errors
    /// Returns an error if union with the existing part fails.
    pub fn add(&mut self, map: Map) -> Result<()> {
        for p in &mut self.parts {
            if p.space().compatible(map.space()) {
                *p = p.union(&map)?;
                return Ok(());
            }
        }
        self.parts.push(map);
        Ok(())
    }

    /// The parts.
    pub fn parts(&self) -> &[Map] {
        &self.parts
    }

    /// Parts whose domain tuple is named `name`.
    pub fn parts_from(&self, name: &str) -> Vec<&Map> {
        self.parts
            .iter()
            .filter(|p| p.space().in_tuple().name() == Some(name))
            .collect()
    }

    /// Parts whose range tuple is named `name`.
    pub fn parts_to(&self, name: &str) -> Vec<&Map> {
        self.parts
            .iter()
            .filter(|p| p.space().out_tuple().name() == Some(name))
            .collect()
    }

    /// Whether every part is empty.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn is_empty(&self) -> Result<bool> {
        for p in &self.parts {
            if !p.is_empty()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Pointwise union.
    ///
    /// # Errors
    /// Returns an error if merging fails.
    pub fn union(&self, other: &UnionMap) -> Result<UnionMap> {
        let mut u = self.clone();
        for p in &other.parts {
            u.add(p.clone())?;
        }
        Ok(u)
    }

    /// The reversed union map.
    pub fn reverse(&self) -> UnionMap {
        UnionMap {
            parts: self.parts.iter().map(Map::reverse).collect(),
        }
    }

    /// Composes with `other`: all pairs `self_part : X->Y`,
    /// `other_part : Y->Z` with matching `Y`.
    ///
    /// # Errors
    /// See [`Map::compose`].
    pub fn compose(&self, other: &UnionMap) -> Result<UnionMap> {
        let mut out = UnionMap::new();
        for a in &self.parts {
            for b in &other.parts {
                if a.space()
                    .range_space()
                    .compatible(&b.space().domain_space())
                {
                    out.add(a.compose(b)?)?;
                }
            }
        }
        Ok(out)
    }

    /// The union of all part domains.
    ///
    /// # Errors
    /// See [`Map::domain`].
    pub fn domain(&self) -> Result<UnionSet> {
        let mut out = UnionSet::new();
        for p in &self.parts {
            out.add(p.domain()?)?;
        }
        Ok(out)
    }

    /// The union of all part ranges.
    ///
    /// # Errors
    /// See [`Map::range`].
    pub fn range(&self) -> Result<UnionSet> {
        let mut out = UnionSet::new();
        for p in &self.parts {
            out.add(p.range()?)?;
        }
        Ok(out)
    }

    /// Restricts every part's domain by the matching part of `domain`
    /// (parts with no matching space are dropped).
    ///
    /// # Errors
    /// See [`Map::intersect_domain`].
    pub fn intersect_domain(&self, domain: &UnionSet) -> Result<UnionMap> {
        let mut out = UnionMap::new();
        for p in &self.parts {
            for d in domain.parts() {
                if p.space().domain_space().compatible(d.space()) {
                    out.add(p.intersect_domain(d)?)?;
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for UnionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{ ")?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            let s = p.to_string();
            let inner = s.trim_start_matches(|c| c != '{').trim_start_matches('{');
            let inner = inner.trim_end_matches('}').trim();
            write!(f, "{inner}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> Set {
        s.parse().unwrap()
    }

    fn map(s: &str) -> Map {
        s.parse().unwrap()
    }

    #[test]
    fn union_set_merges_same_space() {
        let mut u = UnionSet::new();
        u.add(set("{ S[i] : 0 <= i <= 2 }")).unwrap();
        u.add(set("{ T[i] : 0 <= i <= 2 }")).unwrap();
        u.add(set("{ S[i] : 5 <= i <= 6 }")).unwrap();
        assert_eq!(u.parts().len(), 2);
        let s = u.part_named("S").unwrap();
        assert!(s.contains(&[6]).unwrap());
        assert!(u.part_named("Q").is_none());
    }

    #[test]
    fn union_set_subtract_per_space() {
        let a =
            UnionSet::from_parts([set("{ S[i] : 0 <= i <= 9 }"), set("{ T[i] : 0 <= i <= 9 }")])
                .unwrap();
        let b = UnionSet::from_parts([set("{ S[i] : 0 <= i <= 9 }")]).unwrap();
        let d = a.subtract(&b).unwrap();
        assert!(d.part_named("S").unwrap().is_empty().unwrap());
        assert!(!d.part_named("T").unwrap().is_empty().unwrap());
    }

    #[test]
    fn union_map_apply() {
        let us = UnionSet::from_parts([set("{ S[i] : 0 <= i <= 3 }")]).unwrap();
        let um =
            UnionMap::from_parts([map("{ S[i] -> A[i+1] }"), map("{ T[i] -> B[i] }")]).unwrap();
        let img = us.apply(&um).unwrap();
        assert_eq!(img.parts().len(), 1);
        assert!(img
            .part_named("A")
            .unwrap()
            .is_equal(&set("{ A[a] : 1 <= a <= 4 }"))
            .unwrap());
    }

    #[test]
    fn union_map_compose_and_reverse() {
        let w = UnionMap::from_parts([map("{ S[i] -> A[i] }")]).unwrap();
        let r = UnionMap::from_parts([map("{ T[j] -> A[j+1] }")]).unwrap();
        // dependence-style composition: S -> A -> T
        let dep = w.compose(&r.reverse()).unwrap();
        assert_eq!(dep.parts().len(), 1);
        let m = &dep.parts()[0];
        assert_eq!(m.space().in_tuple().name(), Some("S"));
        assert_eq!(m.space().out_tuple().name(), Some("T"));
        // S[i] writes A[i]; T[j] reads A[j+1]; so i = j+1, i.e. S[i] -> T[i-1].
        assert!(m.contains_pair(&[3, 2]).unwrap());
        assert!(!m.contains_pair(&[3, 3]).unwrap());
    }

    #[test]
    fn union_map_domain_range_and_filters() {
        let um = UnionMap::from_parts([map("{ S[i] -> A[i] : 0 <= i <= 1 }")]).unwrap();
        assert!(um.domain().unwrap().part_named("S").is_some());
        assert!(um.range().unwrap().part_named("A").is_some());
        assert_eq!(um.parts_from("S").len(), 1);
        assert_eq!(um.parts_to("A").len(), 1);
        assert_eq!(um.parts_from("X").len(), 0);
        assert!(!um.is_empty().unwrap());
    }

    #[test]
    fn union_map_intersect_domain() {
        let um = UnionMap::from_parts([map("{ S[i] -> A[i] }")]).unwrap();
        let dom = UnionSet::from_parts([set("{ S[i] : 0 <= i <= 1 }")]).unwrap();
        let r = um.intersect_domain(&dom).unwrap();
        let rng = r.range().unwrap();
        assert!(rng
            .part_named("A")
            .unwrap()
            .is_equal(&set("{ A[i] : 0 <= i <= 1 }"))
            .unwrap());
    }

    #[test]
    fn display_lists_all_parts() {
        let u = UnionSet::from_parts([set("{ S[i] : i = 0 }"), set("{ T[j] : j = 1 }")]).unwrap();
        let text = u.to_string();
        assert!(text.contains("S[i]"), "{text}");
        assert!(text.contains("T[j]"), "{text}");
    }
}
