//! Exact integer linear-arithmetic helpers.
//!
//! All coefficient arithmetic in this crate goes through the checked helpers
//! here so that an overflow is reported as [`Error::Overflow`] instead of
//! silently wrapping. Coefficients in polyhedral compilation stay tiny in
//! practice (tile sizes, stencil extents), but Fourier–Motzkin elimination
//! multiplies coefficient pairs, so the checks are not free of purpose.

use crate::error::{Error, Result};

/// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// GCD of a whole slice (0 for an all-zero or empty slice).
pub(crate) fn gcd_slice(v: &[i64]) -> i64 {
    v.iter().fold(0, |g, &x| gcd(g, x))
}

/// Checked multiplication.
pub(crate) fn mul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(Error::Overflow("multiplication"))
}

/// Checked addition.
pub(crate) fn add(a: i64, b: i64) -> Result<i64> {
    a.checked_add(b).ok_or(Error::Overflow("addition"))
}

/// `a + b * c`, checked.
pub(crate) fn add_mul(a: i64, b: i64, c: i64) -> Result<i64> {
    add(a, mul(b, c)?)
}

/// Floor division (rounds towards negative infinity). `d` must be nonzero.
pub(crate) fn fdiv(n: i64, d: i64) -> i64 {
    debug_assert!(d != 0);
    let q = n / d;
    if (n % d != 0) && ((n < 0) != (d < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division (rounds towards positive infinity). `d` must be nonzero.
pub(crate) fn cdiv(n: i64, d: i64) -> i64 {
    debug_assert!(d != 0);
    let q = n / d;
    if (n % d != 0) && ((n < 0) == (d < 0)) {
        q + 1
    } else {
        q
    }
}

/// Mathematical modulo with a non-negative result for positive modulus.
pub(crate) fn fmod(n: i64, d: i64) -> i64 {
    n - d * fdiv(n, d)
}

/// Pugh's "hat" rounding used in Omega-test equality elimination:
/// `mod_hat(a, b)` is the representative of `a (mod b)` in
/// `[-⌊b/2⌋, b − 1 − ⌊b/2⌋]`... specifically the symmetric residue
/// `a - b*⌊a/b + 1/2⌋` per the Omega paper.
pub(crate) fn mod_hat(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let r = fmod(a, b);
    if 2 * r >= b {
        r - b
    } else {
        r
    }
}

/// Divide every entry of `row` by the GCD of all entries (no-op for zero
/// rows). Used to keep coefficients small after combination steps.
pub(crate) fn normalize_eq_row(row: &mut [i64]) {
    let g = gcd_slice(row);
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
}

/// Normalize an inequality row `expr >= 0`: divide coefficients (all but the
/// final constant column) by their GCD `g` and replace the constant `c` by
/// `⌊c / g⌋` — the integer tightening step that makes Fourier–Motzkin sound
/// over the integers.
pub(crate) fn normalize_ineq_row(row: &mut [i64]) {
    let n = row.len();
    if n < 2 {
        return;
    }
    let g = gcd_slice(&row[..n - 1]);
    if g > 1 {
        for x in row[..n - 1].iter_mut() {
            *x /= g;
        }
        row[n - 1] = fdiv(row[n - 1], g);
    }
}

/// Reduces an `i128` row by the GCD of *all* entries (constant included —
/// exactly equivalence-preserving for both equalities and inequalities),
/// then narrows to `i64`.
fn narrow_row(mut v: Vec<i128>) -> Result<Vec<i64>> {
    let mut g: i128 = 0;
    for &x in &v {
        let mut a = g.unsigned_abs();
        let mut b = x.unsigned_abs();
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        g = a as i128;
    }
    if g > 1 {
        for x in &mut v {
            *x /= g;
        }
    }
    v.into_iter()
        .map(|x| i64::try_from(x).map_err(|_| Error::Overflow("row combination")))
        .collect()
}

/// `dst += k * src`, element-wise; computed in `i128` and gcd-reduced so
/// transient coefficient growth does not overflow.
pub(crate) fn row_add_mul(dst: &mut [i64], src: &[i64], k: i64) -> Result<()> {
    debug_assert_eq!(dst.len(), src.len());
    let wide: Vec<i128> = dst
        .iter()
        .zip(src.iter())
        .map(|(&d, &s)| d as i128 + k as i128 * s as i128)
        .collect();
    let narrow = narrow_row(wide)?;
    dst.copy_from_slice(&narrow);
    Ok(())
}

/// `a*x + b*y` for full rows; computed in `i128` and gcd-reduced (used by
/// Fourier–Motzkin combination, where coefficient products grow fast).
pub(crate) fn row_combine(a: i64, x: &[i64], b: i64, y: &[i64]) -> Result<Vec<i64>> {
    debug_assert_eq!(x.len(), y.len());
    let wide: Vec<i128> = x
        .iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| a as i128 * xi as i128 + b as i128 * yi as i128)
        .collect();
    narrow_row(wide)
}

/// `a*x + b*y` without any gcd reduction — required where an exact
/// constant (e.g. the dark-shadow slack) is subtracted *after* combining.
pub(crate) fn row_combine_raw(a: i64, x: &[i64], b: i64, y: &[i64]) -> Result<Vec<i64>> {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| {
            let v = a as i128 * xi as i128 + b as i128 * yi as i128;
            i64::try_from(v).map_err(|_| Error::Overflow("row combination"))
        })
        .collect()
}

/// Dot product of a row (without its trailing constant column) with a point,
/// plus the constant: evaluates the affine expression at `point`.
pub(crate) fn eval_row(row: &[i64], point: &[i64]) -> Result<i64> {
    debug_assert_eq!(row.len(), point.len() + 1);
    let mut acc = row[row.len() - 1];
    for (c, v) in row[..row.len() - 1].iter().zip(point.iter()) {
        acc = add_mul(acc, *c, *v)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn gcd_slice_basics() {
        assert_eq!(gcd_slice(&[4, 6, 8]), 2);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[-3, 9]), 3);
    }

    #[test]
    fn floor_and_ceil_division() {
        assert_eq!(fdiv(7, 2), 3);
        assert_eq!(fdiv(-7, 2), -4);
        assert_eq!(fdiv(7, -2), -4);
        assert_eq!(fdiv(-7, -2), 3);
        assert_eq!(cdiv(7, 2), 4);
        assert_eq!(cdiv(-7, 2), -3);
        assert_eq!(cdiv(6, 2), 3);
        assert_eq!(cdiv(6, 3), 2);
    }

    #[test]
    fn fmod_is_nonnegative_for_positive_modulus() {
        assert_eq!(fmod(7, 3), 1);
        assert_eq!(fmod(-7, 3), 2);
        assert_eq!(fmod(6, 3), 0);
    }

    #[test]
    fn mod_hat_symmetric_residue() {
        // Examples from the Omega paper behaviour: residue in [-(b/2), b/2).
        assert_eq!(mod_hat(5, 3), -1); // 5 mod 3 = 2, 2*2 >= 3 so 2-3 = -1
        assert_eq!(mod_hat(4, 3), 1);
        assert_eq!(mod_hat(-5, 3), 1);
        assert_eq!(mod_hat(6, 4), -2); // 6 mod 4 = 2, 2*2 >= 4 so -2
    }

    #[test]
    fn ineq_normalization_tightens_constant() {
        // 2x - 5 >= 0  =>  x - 3 >= 0  (x >= 2.5 tightens to x >= 3)
        let mut row = vec![2, -5];
        normalize_ineq_row(&mut row);
        assert_eq!(row, vec![1, -3]);
    }

    #[test]
    fn eq_normalization() {
        let mut row = vec![2, 4, -6];
        normalize_eq_row(&mut row);
        assert_eq!(row, vec![1, 2, -3]);
    }

    #[test]
    fn eval_row_evaluates_affine_expr() {
        // 2x + 3y - 1 at (2, 1) = 6
        assert_eq!(eval_row(&[2, 3, -1], &[2, 1]).unwrap(), 6);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert!(mul(i64::MAX, 2).is_err());
        assert!(add(i64::MAX, 1).is_err());
        assert!(add_mul(1, i64::MAX, 2).is_err());
    }

    #[test]
    fn row_combine_combines() {
        let r = row_combine(2, &[1, 0, 3], 1, &[0, 1, -1]).unwrap();
        assert_eq!(r, vec![2, 1, 5]);
    }
}
